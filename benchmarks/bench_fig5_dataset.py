"""Fig. 5 — the street-cleanliness dataset itself.

The paper's Fig. 5 shows example images of the five classes from the
22K LASAN corpus.  This bench regenerates our synthetic stand-in and
prints its composition (class balance, spatial extent, capture span),
and measures generation throughput.
"""

from benchmarks.conftest import print_table
from repro.datasets import dataset_summary, generate_lasan_dataset


def test_fig5_dataset_composition(benchmark, capsys, bench_record):
    records = benchmark.pedantic(
        lambda: generate_lasan_dataset(n_per_class=20, image_size=48, seed=0),
        rounds=1,
        iterations=1,
    )
    summary = dataset_summary(records)
    rows = [
        f"{'total images':<26}{summary['total']:>10}",
        f"{'image size':<26}{str(summary['image_size']):>10}",
        f"{'capture span (days)':<26}{summary['capture_span_s'] / 86400:>10.1f}",
    ]
    for label, count in summary["per_class"].items():
        rows.append(f"{'  ' + label:<26}{count:>10}")
    bbox = summary["bbox"]
    rows.append(
        f"{'geo bbox':<26}({bbox.min_lat:.3f},{bbox.min_lng:.3f})"
        f"..({bbox.max_lat:.3f},{bbox.max_lng:.3f})"
    )
    graffiti = sum(1 for r in records if r.has_graffiti)
    rows.append(f"{'graffiti overlay rate':<26}{graffiti / len(records):>10.2f}")
    print_table(
        capsys,
        "Fig. 5: synthetic LASAN dataset composition",
        f"{'property':<26}{'value':>10}",
        rows,
    )
    bench_record["results"] = {
        "total": summary["total"],
        "per_class": dict(summary["per_class"]),
        "graffiti_rate": round(graffiti / len(records), 3),
    }

    assert summary["total"] == 100
    assert len(summary["per_class"]) == 5
