"""Scale-out — speedup vs shard count on the geo-tile partitioned catalog.

The scatter-gather engine's pitch on a city-scale catalog is **work
reduction**: the planner prunes shards whose statistics prove they
cannot contribute (spatial bounds, time ranges, posting counts,
annotation-type counts), so a well-localised query touches one shard's
slice instead of the whole catalog.  This bench builds a corpus whose
timestamps are correlated with its geo-tiles (the smart-city shape:
districts are instrumented in waves, cameras in one area come online
together), runs a pruning-friendly, temporal-heavy query mix through
``execute_many`` at shard counts 1/2/4/8 on the **inline** pool
(single-core: any speedup is pruning, not parallelism), and records
the speedup curve.  The process pool is measured once at 4 shards for
reference — on a one-core runner it pays fork + pickle for no
parallel gain, so it is informational, not asserted.

``results.speedup_at_4`` is gated as an absolute floor by
``tools/bench_compare.py`` (full runs only; smoke sizes drown the
signal in coordination overhead and report ``speedup_at_4_smoke``).
"""

import time

import numpy as np

from benchmarks.conftest import PERF_ASSERTS, print_table, sized
from repro.core import (
    CategoricalQuery,
    SpatialQuery,
    TemporalQuery,
    TextualQuery,
    TVDP,
)
from repro.geo import BoundingBox, FieldOfView, GeoPoint
from repro.imaging import Image

REGION = BoundingBox(34.00, -118.50, 34.40, -118.10)
#: Geo-tile lattice: 16 "districts", each with its own time wave.
TILE_ROWS, TILE_COLS = 4, 4
N_DISTRICTS = TILE_ROWS * TILE_COLS
#: Seconds of capture time per district wave.
WAVE_S = 1000.0
SHARD_COUNTS = (2, 4, 8)


def _district_box(district: int) -> BoundingBox:
    row, col = divmod(district, TILE_COLS)
    lat_step = (REGION.max_lat - REGION.min_lat) / TILE_ROWS
    lng_step = (REGION.max_lng - REGION.min_lng) / TILE_COLS
    return BoundingBox(
        REGION.min_lat + row * lat_step,
        REGION.min_lng + col * lng_step,
        REGION.min_lat + (row + 1) * lat_step,
        REGION.min_lng + (col + 1) * lng_step,
    )


def _build_corpus(n_images: int) -> TVDP:
    """A platform whose districts light up in successive time waves."""
    rng = np.random.default_rng(11)
    platform = TVDP(shard_grid=(TILE_ROWS, TILE_COLS))
    platform.catalog.define(
        "district", [f"d{d}" for d in range(N_DISTRICTS)]
    )
    for i in range(n_images):
        district = i % N_DISTRICTS
        box = _district_box(district)
        lat = float(rng.uniform(box.min_lat + 1e-4, box.max_lat - 1e-4))
        lng = float(rng.uniform(box.min_lng + 1e-4, box.max_lng - 1e-4))
        captured = district * WAVE_S + float(rng.uniform(0.0, WAVE_S - 1.0))
        pixel = np.full((1, 1, 3), (i + 1) / (n_images + 1))
        receipt = platform.upload_image(
            image=Image(pixel),
            fov=FieldOfView(GeoPoint(lat, lng), float(i * 37 % 360), 60.0, 120.0),
            captured_at=captured,
            uploaded_at=captured + 5.0,
            keywords=(f"district{district}", "street"),
        )
        platform.annotations.annotate(
            receipt.image_id,
            "district",
            f"d{district}",
            confidence=0.9,
            source="machine",
        )
    return platform


def _workload(rounds: int) -> list:
    """Temporal-heavy, per-district query mix (all prunable families)."""
    queries: list = []
    for _ in range(rounds):
        for district in range(N_DISTRICTS):
            start = district * WAVE_S
            queries.append(TemporalQuery(start=start, end=start + WAVE_S / 2))
            queries.append(
                TemporalQuery(start=start + WAVE_S / 4, end=start + WAVE_S - 1)
            )
            queries.append(
                TemporalQuery(
                    start=start, end=start + WAVE_S, field="timestamp_uploading"
                )
            )
            queries.append(
                TemporalQuery(start=start + WAVE_S / 2, end=start + WAVE_S * 0.9)
            )
            queries.append(SpatialQuery(region=_district_box(district)))
            queries.append(
                CategoricalQuery(
                    classification="district",
                    labels=(f"d{district}",),
                    min_confidence=0.5,
                )
            )
            queries.append(TextualQuery(text=f"district{district}", match="any"))
    return queries


def test_shard_scaling(benchmark, capsys, bench_record):
    n_images = sized(2400, 240)
    rounds = sized(4, 1)
    platform = _build_corpus(n_images)
    queries = _workload(rounds)

    def timed_batch() -> float:
        t0 = time.perf_counter()
        platform.execute_many(queries)
        return time.perf_counter() - t0

    def run():
        walls: dict[str, float] = {}
        partition_walls: dict[str, float] = {}
        serial_results = platform.execute_many(queries)  # warmup
        walls["serial"] = timed_batch()
        for n in SHARD_COUNTS:
            platform.set_shards(n, pool="inline")
            t0 = time.perf_counter()
            sharded_results = platform.execute_many(queries)  # partition + warmup
            partition_walls[f"inline x{n}"] = time.perf_counter() - t0
            assert sharded_results == serial_results, f"equivalence broke at {n}"
            walls[f"inline x{n}"] = timed_batch()
        platform.set_shards(4, pool="process")
        t0 = time.perf_counter()
        platform.execute_many(queries)
        partition_walls["process x4"] = time.perf_counter() - t0
        walls["process x4"] = timed_batch()
        platform.set_shards(1)
        return walls, partition_walls

    walls, partition_walls = benchmark.pedantic(run, rounds=1, iterations=1)
    serial_wall = walls["serial"]
    speedups = {
        label: serial_wall / wall for label, wall in walls.items() if wall > 0
    }

    header = f"{'configuration':<16}{'wall s':>10}{'speedup':>10}{'1st batch s':>13}"
    rows = [
        f"{label:<16}{walls[label]:>10.3f}{speedups.get(label, 0.0):>10.2f}"
        f"{partition_walls.get(label, 0.0):>13.3f}"
        for label in walls
    ]
    rows.append("")
    rows.append(
        f"corpus: {n_images} images, {N_DISTRICTS} districts, "
        f"{len(queries)} queries/batch (1st batch includes partition build)"
    )
    print_table(
        capsys,
        "Scale-out: scatter-gather speedup vs shard count (1 core)",
        header,
        rows,
    )

    suffix = "" if PERF_ASSERTS else "_smoke"
    bench_record["results"] = {
        "serial_wall_s": round(serial_wall, 4),
        f"speedup_at_2{suffix}": round(speedups["inline x2"], 3),
        f"speedup_at_4{suffix}": round(speedups["inline x4"], 3),
        f"speedup_at_8{suffix}": round(speedups["inline x8"], 3),
        "process_speedup_at_4": round(speedups["process x4"], 3),
    }
    if PERF_ASSERTS:
        # The ISSUE's acceptance floor: pruning alone must buy >1.8x at
        # 4 shards.  (tools/bench_compare.py re-checks this from the
        # recorded document, --skip-wall included: it is a same-run,
        # same-machine ratio.)
        assert speedups["inline x4"] > 1.8, (
            f"speedup at 4 shards {speedups['inline x4']:.2f}x <= 1.8x floor"
        )
        # More shards must not get slower than fewer on this workload.
        assert speedups["inline x8"] > speedups["inline x2"] * 0.8
