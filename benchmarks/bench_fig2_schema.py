"""Fig. 2 — the TVDP database schema, exercised at volume.

The ER diagram is validated functionally: bulk-insert a corpus across
every entity, measure insert and lookup throughput, and verify that the
satellite tables (FOV, scene location, features, annotations, keywords)
stay referentially consistent through a JSON persistence round-trip.
"""

import time

from benchmarks.conftest import print_table
from repro.core import TVDP
from repro.db import dump_database, load_database
from repro.imaging import CLEANLINESS_CLASSES


def test_fig2_schema_throughput(benchmark, lasan_corpus, tmp_path, capsys, bench_record):
    def run():
        platform = TVDP()
        platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
        t0 = time.perf_counter()
        ids = []
        for record in lasan_corpus:
            receipt = platform.upload_image(
                record.image,
                record.fov,
                record.captured_at,
                record.uploaded_at,
                keywords=record.keywords,
            )
            ids.append(receipt.image_id)
            platform.annotations.annotate(
                receipt.image_id, "street_cleanliness", record.label, 1.0, "human"
            )
        insert_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for image_id in ids:
            platform.db.table("image_fov").find("image_id", image_id)
            platform.db.table("image_content_annotation").find("image_id", image_id)
        lookup_s = time.perf_counter() - t0
        return platform, ids, insert_s, lookup_s

    platform, ids, insert_s, lookup_s = benchmark.pedantic(run, rounds=1, iterations=1)

    path = tmp_path / "tvdp.json"
    t0 = time.perf_counter()
    dump_database(platform.db, path)
    restored = load_database(path)
    roundtrip_s = time.perf_counter() - t0

    counts = platform.db.row_counts()
    n = len(ids)
    rows = [
        f"{'images inserted':<30}{n:>10}",
        f"{'insert throughput':<30}{n / insert_s:>10.0f} img/s",
        f"{'indexed FK lookups':<30}{2 * n / lookup_s:>10.0f} lookups/s",
        f"{'persistence round-trip':<30}{roundtrip_s * 1000:>10.0f} ms",
        "",
    ]
    for table, count in sorted(counts.items()):
        rows.append(f"{'  ' + table:<30}{count:>10}")
    print_table(
        capsys,
        "Fig. 2: schema population & throughput",
        f"{'quantity':<30}{'value':>10}",
        rows,
    )

    bench_record["results"] = {
        "images": n,
        "insert_per_s": round(n / insert_s, 1),
        "lookups_per_s": round(2 * n / lookup_s, 1),
        "roundtrip_ms": round(roundtrip_s * 1000, 2),
        "row_counts": dict(sorted(counts.items())),
    }

    assert counts["images"] == n
    assert counts["image_fov"] == n
    assert counts["image_scene_location"] == n
    assert counts["image_content_annotation"] == n
    assert restored.row_counts() == counts
