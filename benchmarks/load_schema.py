"""Schema for the ``load`` section of ``BENCH_<sha>.json``.

The closed-loop harness (``benchmarks/loadgen.py``) emits one ``load``
dict per run; ``tools/bench_compare.py`` refuses documents whose load
section fails :func:`validate_load_section`, so the gate catches both
regressions and malformed emitters.  Stdlib-only on purpose — the tools
directory imports this without the platform installed.
"""

from __future__ import annotations

#: Bump when the load-section layout changes incompatibly.
#: v2: added ``principals`` (multi-tenant worker-cohort key mix).
LOAD_SCHEMA_VERSION = 2

_TOP_KEYS = {
    "schema_version": int,
    "seed": int,
    "smoke": bool,
    "zipf_s": float,
    "requests_per_worker": int,
    "principals": dict,
    "families": dict,
    "stages": list,
    "hot_queries": list,
    "schedule_digest": str,
}

_STAGE_KEYS = {
    "concurrency": int,
    "requests": int,
    "errors": int,
    "duration_s": float,
    "throughput_rps": float,
    "latency_ms": dict,
}

_LATENCY_KEYS = ("p50", "p95", "p99", "mean", "max")


def _check_keys(mapping: dict, spec: dict, where: str, problems: list[str]) -> None:
    for key, kind in spec.items():
        if key not in mapping:
            problems.append(f"{where}: missing key {key!r}")
            continue
        value = mapping[key]
        # bool is an int subclass; keep the two distinct in the schema.
        if kind is int and isinstance(value, bool):
            problems.append(f"{where}.{key}: expected int, got bool")
        elif kind is float and isinstance(value, int) and not isinstance(value, bool):
            continue  # whole-number floats serialise as ints; accept
        elif not isinstance(value, kind):
            problems.append(
                f"{where}.{key}: expected {kind.__name__}, got {type(value).__name__}"
            )


def validate_load_section(load: object) -> list[str]:
    """Problems with a ``load`` section; empty when it is well-formed."""
    problems: list[str] = []
    if not isinstance(load, dict):
        return [f"load: expected dict, got {type(load).__name__}"]
    _check_keys(load, _TOP_KEYS, "load", problems)
    if load.get("schema_version") != LOAD_SCHEMA_VERSION:
        problems.append(
            f"load.schema_version: expected {LOAD_SCHEMA_VERSION}, "
            f"got {load.get('schema_version')!r}"
        )
    digest = load.get("schedule_digest")
    if isinstance(digest, str) and len(digest) != 64:
        problems.append("load.schedule_digest: expected 64 hex chars (sha256)")
    stages = load.get("stages")
    if isinstance(stages, list):
        if not stages:
            problems.append("load.stages: must not be empty")
        for i, stage in enumerate(stages):
            where = f"load.stages[{i}]"
            if not isinstance(stage, dict):
                problems.append(f"{where}: expected dict, got {type(stage).__name__}")
                continue
            _check_keys(stage, _STAGE_KEYS, where, problems)
            latency = stage.get("latency_ms")
            if isinstance(latency, dict):
                for key in _LATENCY_KEYS:
                    if not isinstance(latency.get(key), (int, float)) or isinstance(
                        latency.get(key), bool
                    ):
                        problems.append(f"{where}.latency_ms.{key}: expected number")
            if (
                isinstance(stage.get("errors"), int)
                and isinstance(stage.get("requests"), int)
                and not isinstance(stage.get("errors"), bool)
                and stage["errors"] > stage["requests"]
            ):
                problems.append(f"{where}: errors exceed requests")
    families = load.get("families")
    if isinstance(families, dict):
        for family, count in families.items():
            if not isinstance(count, int) or isinstance(count, bool):
                problems.append(f"load.families.{family}: expected int count")
    principals = load.get("principals")
    if isinstance(principals, dict):
        count = principals.get("count")
        if not isinstance(count, int) or isinstance(count, bool) or count < 1:
            problems.append("load.principals.count: expected positive int")
        mix = principals.get("mix")
        if not isinstance(mix, dict) or not mix:
            problems.append("load.principals.mix: expected non-empty dict")
        else:
            for label, requests in mix.items():
                if not isinstance(requests, int) or isinstance(requests, bool):
                    problems.append(
                        f"load.principals.mix.{label}: expected int request count"
                    )
    return problems
