"""Ablation — one-model-for-all vs capability-aware dispatch.

The Action service's founding argument (paper Section VI): a single
static model either drowns weak devices (too heavy) or wastes strong
ones (too light).  The fleet simulator quantifies both failure modes
against capability-aware dispatch on a shared 1.5 Hz frame stream.
"""

from benchmarks.conftest import print_table
from repro.edge import (
    DESKTOP,
    INCEPTION_V3,
    MOBILENET_V1,
    PAPER_DEVICES,
    PAPER_MODELS,
    RASPBERRY_PI,
    SMARTPHONE,
    dispatch_model,
    simulate_fleet,
)

DEVICES = {
    "desktop": DESKTOP,
    "raspberry_pi_3b+": RASPBERRY_PI,
    "smartphone": SMARTPHONE,
}
DURATION_S = 60.0
RATE_HZ = 1.5


def test_ablation_dispatch_strategies(benchmark, capsys, bench_record):
    def run():
        heavy_everywhere = {
            name: (device, INCEPTION_V3) for name, device in DEVICES.items()
        }
        light_everywhere = {
            name: (device, MOBILENET_V1) for name, device in DEVICES.items()
        }
        matched = {
            name: (
                device,
                dispatch_model(
                    device, list(PAPER_MODELS), latency_budget_ms=1000.0 / RATE_HZ
                ).model,
            )
            for name, device in DEVICES.items()
        }
        reports = {
            "inception everywhere": simulate_fleet(
                heavy_everywhere, DURATION_S, RATE_HZ, seed=0
            ),
            "mobilenet_v1 everywhere": simulate_fleet(
                light_everywhere, DURATION_S, RATE_HZ, seed=0
            ),
            "capability-aware": simulate_fleet(matched, DURATION_S, RATE_HZ, seed=0),
        }
        return matched, reports

    matched, reports = benchmark.pedantic(run, rounds=1, iterations=1)
    header = (
        f"{'strategy':<26}{'eff. accuracy':>15}{'dropped':>10}{'p95 ms (rpi)':>14}"
    )
    rows = []
    for name, report in reports.items():
        rpi = next(s for s in report.stats if s.device == "raspberry_pi_3b+")
        rows.append(
            f"{name:<26}{report.fleet_effective_accuracy:>15.3f}"
            f"{report.total_dropped:>10}{rpi.p95_latency_ms:>14.0f}"
        )
    rows.append("")
    rows.append(
        "matched models: "
        + ", ".join(f"{n}->{dm.name}" for n, (_, dm) in sorted(matched.items()))
    )
    print_table(
        capsys,
        f"Ablation: dispatch strategy ({RATE_HZ} Hz stream, {DURATION_S:.0f} s)",
        header,
        rows,
    )

    bench_record["results"] = {
        name: {
            "effective_accuracy": round(report.fleet_effective_accuracy, 3),
            "dropped": report.total_dropped,
        }
        for name, report in reports.items()
    }
    aware = reports["capability-aware"]
    heavy = reports["inception everywhere"]
    light = reports["mobilenet_v1 everywhere"]
    # Capability-aware dominates the uniform strategies.
    assert aware.fleet_effective_accuracy > heavy.fleet_effective_accuracy
    assert aware.fleet_effective_accuracy > light.fleet_effective_accuracy
    assert aware.total_dropped <= heavy.total_dropped