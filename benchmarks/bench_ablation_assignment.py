"""Ablation — task-assignment algorithms at growing scale (ref [13]).

The paper cites its scalable-spatial-crowdsourcing study for the
distributed assignment strategy.  This bench measures the three
implemented strategies on growing instances: assignment runtime, travel
cost, and completion — the partitioned ("distributed") strategy should
approach greedy's quality at a fraction of its runtime as N grows.
"""

import time

import numpy as np

from benchmarks.conftest import PERF_ASSERTS, print_table, sized
from repro.crowd import Task, Worker, assign_greedy, assign_nearest, assign_partitioned
from repro.geo import BoundingBox, GeoPoint

REGION = BoundingBox(34.00, -118.34, 34.08, -118.26)
SIZES = sized(
    ((20, 60), (40, 120), (80, 240)), ((20, 60), (40, 120))
)  # (workers, tasks)


def make_instance(n_workers, n_tasks, seed):
    rng = np.random.default_rng(seed)

    def random_point():
        return GeoPoint(
            float(rng.uniform(REGION.min_lat, REGION.max_lat)),
            float(rng.uniform(REGION.min_lng, REGION.max_lng)),
        )

    workers = [Worker(worker_id=i + 1, location=random_point()) for i in range(n_workers)]
    tasks = [
        Task(task_id=i + 1, location=random_point(), direction_deg=None, campaign_id=1)
        for i in range(n_tasks)
    ]
    return workers, tasks


def test_ablation_assignment_scalability(benchmark, capsys, bench_record):
    strategies = {
        "greedy": lambda w, t: assign_greedy(w, t, per_worker=5),
        "nearest": lambda w, t: assign_nearest(w, t, per_worker=5),
        "partitioned": lambda w, t: assign_partitioned(
            w, t, REGION, partitions=3, per_worker=5
        ),
    }

    def run():
        table = []
        for n_workers, n_tasks in SIZES:
            workers, tasks = make_instance(n_workers, n_tasks, seed=n_tasks)
            for name, strategy in strategies.items():
                t0 = time.perf_counter()
                result = strategy(workers, tasks)
                elapsed = time.perf_counter() - t0
                table.append(
                    (
                        n_workers,
                        n_tasks,
                        name,
                        elapsed,
                        len(result.assignments),
                        result.mean_distance_m,
                    )
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    header = (
        f"{'workers':>8}{'tasks':>7}{'strategy':>14}{'time ms':>10}"
        f"{'assigned':>10}{'mean travel m':>15}"
    )
    rows = [
        f"{w:>8}{t:>7}{name:>14}{sec * 1000:>10.1f}{done:>10}{travel:>15.0f}"
        for w, t, name, sec, done, travel in table
    ]
    print_table(capsys, "Ablation: assignment strategies vs scale", header, rows)

    largest = {row[2]: row for row in table if row[1] == SIZES[-1][1]}
    bench_record["results"] = {
        name: {"assigned": row[4], "mean_travel_m": round(row[5], 1)}
        for name, row in largest.items()
    }

    # All strategies assign every task (capacity 5 x workers >= tasks).
    assert all(row[4] == SIZES[-1][1] for row in largest.values())
    # Partitioned is faster than global greedy at the largest size...
    if PERF_ASSERTS:
        assert largest["partitioned"][3] < largest["greedy"][3]
    # ...with travel quality within 2x of greedy.
    assert largest["partitioned"][5] <= 2.0 * largest["greedy"][5]
