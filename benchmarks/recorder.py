"""Process-global collector behind ``python -m benchmarks``.

The ``bench_record`` autouse fixture (``benchmarks/conftest.py``) drops
one record per executed bench into :data:`RECORDS`; the runner
(``benchmarks/__main__.py``) then assembles them into the
schema-versioned ``BENCH_<git-sha>.json`` trajectory document that
``tools/bench_compare.py`` diffs between commits.

Record shape (one per pytest nodeid)::

    {
      "wall_s": 1.234,          # wall time of the bench body
      "mem_peak_kb": 4567.8,    # tracemalloc peak while it ran
      "counters": {...},        # observability-counter increments
      "results": {...}          # bench-specific headline numbers
    }
"""

from __future__ import annotations

import json
import platform
import subprocess
from pathlib import Path

#: Bump when the document layout changes incompatibly; bench_compare
#: refuses to diff documents with mismatched versions.
SCHEMA_VERSION = 1

REPO_ROOT = Path(__file__).resolve().parent.parent

#: pytest nodeid -> record; filled by the ``bench_record`` fixture.
RECORDS: dict[str, dict] = {}


def git_sha() -> str:
    """Short commit hash of the working tree, or ``"unknown"``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def expected_modules() -> list[str]:
    """Every ``bench_*.py`` module the trajectory should cover."""
    return sorted(p.name for p in (REPO_ROOT / "benchmarks").glob("bench_*.py"))


def covered_modules() -> list[str]:
    """Modules with at least one record in :data:`RECORDS`."""
    return sorted(
        {nodeid.split("::")[0].replace("\\", "/").rsplit("/", 1)[-1] for nodeid in RECORDS}
    )


def build_document(smoke: bool) -> dict:
    """The full trajectory document for the records collected so far."""
    return {
        "schema_version": SCHEMA_VERSION,
        "git_sha": git_sha(),
        "smoke": smoke,
        "python": platform.python_version(),
        "benches": {nodeid: RECORDS[nodeid] for nodeid in sorted(RECORDS)},
    }


def write_document(path: str | Path, smoke: bool) -> dict:
    """Serialise :func:`build_document` to ``path``; returns the doc."""
    document = build_document(smoke)
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def attach_load(path: str | Path, load: dict, smoke: bool) -> dict:
    """Merge a ``load`` section (from ``benchmarks/loadgen.py``) into
    the trajectory document at ``path``.

    An existing compatible document keeps its ``benches``; otherwise a
    fresh document is built from the records collected so far (usually
    none — ``python -m benchmarks.load`` runs standalone).
    """
    target = Path(path)
    document: dict | None = None
    if target.exists():
        try:
            candidate = json.loads(target.read_text())
        except (OSError, json.JSONDecodeError):
            candidate = None
        if (
            isinstance(candidate, dict)
            and candidate.get("schema_version") == SCHEMA_VERSION
        ):
            document = candidate
    if document is None:
        document = build_document(smoke)
    document["load"] = load
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document
