"""Shared fixtures for the benchmark harness.

The expensive artefacts (dataset, feature matrices) are built once per
session; each bench then measures and prints its own table.  Benches
use ``benchmark.pedantic(rounds=1)`` because the measured units are
whole experiments, not microbenchmarks.
"""

import contextlib

import numpy as np
import pytest

from repro import obs
from repro.analysis import build_feature_suite, feature_matrices
from repro.datasets import generate_lasan_dataset
from repro.obs import counters_delta

#: Scale of the synthetic LASAN corpus used by the experiment benches.
#: The paper's corpus is 22K images; 5 x 40 keeps the full pipeline
#: under a minute while preserving every qualitative shape.
N_PER_CLASS = 40
IMAGE_SIZE = 48
SEED = 0


@pytest.fixture(scope="session")
def lasan_corpus():
    return generate_lasan_dataset(
        n_per_class=N_PER_CLASS, image_size=IMAGE_SIZE, seed=SEED
    )


@pytest.fixture(scope="session")
def feature_suite(lasan_corpus):
    return build_feature_suite(lasan_corpus, bow_words=48, seed=SEED)


@pytest.fixture(scope="session")
def matrices(lasan_corpus, feature_suite):
    return feature_matrices(lasan_corpus, feature_suite)


@contextlib.contextmanager
def probe_counters(out: dict, prefix: str = "index."):
    """Accumulate observability-counter increments produced inside the
    block into ``out`` (filtered to ``prefix``), so benches can report
    index-probe work (node visits, candidates, bucket hits) alongside
    wall time."""
    before = obs.snapshot()
    try:
        yield out
    finally:
        after = obs.snapshot()
        for name, delta in counters_delta(before, after).items():
            if name.startswith(prefix):
                out[name] = out.get(name, 0) + delta


def print_table(capsys, title, header, rows):
    """Uniform table printer that bypasses pytest capture so the tables
    land in the bench log."""
    with capsys.disabled():
        print(f"\n=== {title} ===")
        print(header)
        print("-" * len(header))
        for row in rows:
            print(row)
