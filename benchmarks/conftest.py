"""Shared fixtures for the benchmark harness.

The expensive artefacts (dataset, feature matrices) are built once per
session; each bench then measures and prints its own table.  Benches
use ``benchmark.pedantic(rounds=1)`` because the measured units are
whole experiments, not microbenchmarks.

Every bench runs inside the autouse ``bench_record`` fixture, which
isolates the process-wide metrics around it and meters wall time,
counter increments, and the tracemalloc peak into
``benchmarks.recorder`` — that is what ``python -m benchmarks`` writes
out as the ``BENCH_<git-sha>.json`` trajectory.

Smoke mode (``python -m benchmarks --smoke``, or the
``TVDP_BENCH_SMOKE=1`` environment variable) shrinks the size-swept
benches via :func:`sized` and turns off the timing-sensitive
assertions (:data:`PERF_ASSERTS`) so the suite can gate CI on shared
runners.  The session corpus itself is *not* shrunk — several benches
assert against its exact size.
"""

import contextlib
import os
import time
import tracemalloc

import numpy as np
import pytest

from benchmarks import recorder
from repro import obs
from repro.analysis import build_feature_suite, feature_matrices
from repro.datasets import generate_lasan_dataset
from repro.obs import counters_delta

#: Scale of the synthetic LASAN corpus used by the experiment benches.
#: The paper's corpus is 22K images; 5 x 40 keeps the full pipeline
#: under a minute while preserving every qualitative shape.
N_PER_CLASS = 40
IMAGE_SIZE = 48
SEED = 0

#: Smoke mode: reduced sweep sizes, timing assertions off.  Read at
#: import time — ``python -m benchmarks`` sets the variable before
#: pytest collects this file.
SMOKE = os.environ.get("TVDP_BENCH_SMOKE") == "1"

#: Wall-clock-sensitive assertions ("the index beats the scan by 10x")
#: hold on a quiet machine at full sizes but are noise on shared CI
#: runners at smoke sizes; benches gate them on this flag.
PERF_ASSERTS = not SMOKE


def sized(full, smoke):
    """Pick the smoke-mode variant of a size sweep in smoke mode."""
    return smoke if SMOKE else full


@pytest.fixture(scope="session")
def lasan_corpus():
    return generate_lasan_dataset(
        n_per_class=N_PER_CLASS, image_size=IMAGE_SIZE, seed=SEED
    )


@pytest.fixture(scope="session")
def feature_suite(lasan_corpus):
    return build_feature_suite(lasan_corpus, bow_words=48, seed=SEED)


@pytest.fixture(scope="session")
def matrices(lasan_corpus, feature_suite):
    return feature_matrices(lasan_corpus, feature_suite)


@pytest.fixture(autouse=True)
def bench_record(request):
    """Metrics isolation + meter around every bench.

    The process-wide registry/tracer state is reset before *and* after
    each bench, so no bench sees another's counters or slow-span
    exemplars.  On the way out the fixture records wall time, the
    bench's counter increments, and its tracemalloc peak into
    ``recorder.RECORDS`` under the bench's nodeid.

    Benches that want their headline numbers in the trajectory request
    this fixture by name and fill ``bench_record["results"]``.
    """
    obs.reset()
    record: dict = {"results": {}}
    already_tracing = tracemalloc.is_tracing()
    if already_tracing:
        tracemalloc.reset_peak()
    else:
        tracemalloc.start()
    t0 = time.perf_counter()
    try:
        yield record
    finally:
        wall_s = time.perf_counter() - t0
        _, peak = tracemalloc.get_traced_memory()
        if not already_tracing:
            tracemalloc.stop()
        record["wall_s"] = round(wall_s, 4)
        record["mem_peak_kb"] = round(peak / 1024.0, 1)
        # The registry was zeroed on entry, so the live counter values
        # ARE the bench's increments.
        record["counters"] = {
            name: value
            for name, value in obs.metrics().counter_values().items()
            if value
        }
        recorder.RECORDS[request.node.nodeid] = record
        obs.reset()


@contextlib.contextmanager
def probe_counters(out: dict, prefix: str = "index."):
    """Accumulate observability-counter increments produced inside the
    block into ``out`` (filtered to ``prefix``), so benches can report
    index-probe work (node visits, candidates, bucket hits) alongside
    wall time."""
    before = obs.snapshot()
    try:
        yield out
    finally:
        after = obs.snapshot()
        for name, delta in counters_delta(before, after).items():
            if name.startswith(prefix):
                out[name] = out.get(name, 0) + delta


def print_table(capsys, title, header, rows):
    """Uniform table printer that bypasses pytest capture so the tables
    land in the bench log."""
    with capsys.disabled():
        print(f"\n=== {title} ===")
        print(header)
        print("-" * len(header))
        for row in rows:
            print(row)
