"""Ablation — prioritised vs random edge data selection, and
feature-vs-raw-image upload cost.

Two design choices of the Action service (paper Section VI): the
"distributed selection algorithm that prioritizes the crowdsourced
data", and uploading locally-extracted feature vectors rather than raw
images.  Fixed upload budget: compare learning outcomes and bytes.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.edge import (
    MOBILENET_V2,
    SMARTPHONE,
    CrowdLearningFramework,
    EdgeBatch,
    compare_upload_strategies,
)
from repro.ml import train_test_split

SEED_POOL = 12
ROUNDS = 4
BUDGET = 10


def learning_curve(strategy, X_pool, y_pool, X_test, y_test):
    framework = CrowdLearningFramework(
        model_variants=[MOBILENET_V2],
        upload_budget=BUDGET,
        human_label_rate=1.0,
        strategy=strategy,
        seed=0,
    )
    framework.seed_pool(X_pool[:SEED_POOL], y_pool[:SEED_POOL])
    edge_X, edge_y = X_pool[SEED_POOL:], y_pool[SEED_POOL:]
    chunk = len(edge_X) // ROUNDS
    for r in range(ROUNDS):
        batch = EdgeBatch(
            SMARTPHONE, edge_X[r * chunk : (r + 1) * chunk], edge_y[r * chunk : (r + 1) * chunk]
        )
        framework.run_round([batch], X_test, y_test)
    return framework.history


def test_ablation_prioritized_vs_random_selection(benchmark, matrices, capsys, bench_record):
    X_all, y_all = matrices["cnn"]
    X_pool, X_test, y_pool, y_test = train_test_split(X_all, y_all, 0.3, seed=1)

    def run():
        prioritized = learning_curve("prioritized", X_pool, y_pool, X_test, y_test)
        random_hist = learning_curve("random", X_pool, y_pool, X_test, y_test)
        return prioritized, random_hist

    prioritized, random_hist = benchmark.pedantic(run, rounds=1, iterations=1)
    header = f"{'round':>6}{'prioritized acc':>18}{'random acc':>14}{'bytes each':>12}"
    rows = [
        f"{p.round_index:>6}{p.test_accuracy:>18.3f}{r.test_accuracy:>14.3f}"
        f"{p.uploaded_bytes:>12}"
        for p, r in zip(prioritized, random_hist)
    ]
    final_p = np.mean([s.test_accuracy for s in prioritized[-2:]])
    final_r = np.mean([s.test_accuracy for s in random_hist[-2:]])
    rows.append("")
    rows.append(f"late-round mean: prioritized={final_p:.3f} random={final_r:.3f}")
    print_table(
        capsys,
        f"Ablation: edge selection strategy (budget {BUDGET}/round)",
        header,
        rows,
    )
    bench_record["results"] = {
        "late_round_prioritized": round(float(final_p), 3),
        "late_round_random": round(float(final_r), 3),
    }
    # Same bytes spent; prioritised selection should not lose.
    assert prioritized[-1].uploaded_bytes == random_hist[-1].uploaded_bytes
    assert final_p >= final_r - 0.05


def test_ablation_feature_vs_raw_upload(benchmark, matrices, capsys, bench_record):
    dim = matrices["cnn"][0].shape[1]

    def run():
        return compare_upload_strategies(
            SMARTPHONE, n_items=BUDGET * ROUNDS, image_px=1024, feature_dim=dim
        )

    plans = benchmark.pedantic(run, rounds=1, iterations=1)
    header = f"{'payload':<14}{'MB total':>12}{'transfer s':>12}"
    rows = [
        f"{name:<14}{plan.total_bytes / 1e6:>12.2f}{plan.transfer_time_s:>12.1f}"
        for name, plan in plans.items()
    ]
    ratio = plans["raw_images"].total_bytes / plans["features"].total_bytes
    rows.append("")
    rows.append(f"feature upload is {ratio:.0f}x cheaper in bandwidth")
    print_table(
        capsys, "Ablation: raw-image vs feature-vector upload", header, rows
    )
    bench_record["results"] = {"bandwidth_ratio": round(ratio, 1)}
    assert ratio > 50
