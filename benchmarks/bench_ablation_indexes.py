"""Ablation — index structures vs linear scans.

The paper justifies its index suite (Section IV-C): LSH for visual
queries, R-tree family for spatial, and the hybrid Visual R*-tree for
spatial-visual queries.  This bench measures each against the obvious
baseline at growing N, checking both the win and result fidelity.
"""

import time

import numpy as np

from benchmarks.conftest import PERF_ASSERTS, print_table, probe_counters, sized
from repro.geo import BoundingBox, GeoPoint
from repro.index import GridIndex, LSHIndex, RTree, VisualRTree

REGION = BoundingBox(33.9, -118.5, 34.1, -118.3)
DIM = 64
N_QUERIES = 50
LSH_SIZES = sized((500, 2_000, 8_000), (500, 2_000))
HYBRID_SIZES = sized((500, 2_000), (500,))
RTREE_N = sized(5_000, 2_000)


def dataset(n, seed=0):
    rng = np.random.default_rng(seed)
    points = [
        GeoPoint(
            float(rng.uniform(REGION.min_lat, REGION.max_lat)),
            float(rng.uniform(REGION.min_lng, REGION.max_lng)),
        )
        for _ in range(n)
    ]
    vectors = rng.normal(0, 1, (n, DIM))
    return points, vectors


def clustered_vectors(n, seed=0, cluster_size=20, spread=0.15):
    """Near-duplicate-rich corpus: street imagery contains many shots of
    the same scenes, which is exactly the structure LSH exploits."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 1, (max(n // cluster_size, 1), DIM))
    assignment = rng.integers(0, centers.shape[0], n)
    return centers[assignment] + spread * rng.normal(0, 1, (n, DIM))


def test_ablation_lsh_vs_linear(benchmark, capsys, bench_record):
    def run():
        table = []
        for n in LSH_SIZES:
            vectors = clustered_vectors(n)
            lsh = LSHIndex(dimension=DIM, n_tables=8, n_projections=6, bucket_width=8.0, seed=0)
            for i in range(n):
                lsh.insert(i, vectors[i])
            queries = vectors[:N_QUERIES] + 0.05 * np.random.default_rng(1).normal(
                0, 1, (N_QUERIES, DIM)
            )
            probes: dict = {}
            t0 = time.perf_counter()
            with probe_counters(probes):
                approx = [lsh.query_topk(q, k=10) for q in queries]
            lsh_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            exact = [lsh.linear_topk(q, k=10) for q in queries]
            linear_s = time.perf_counter() - t0
            recall = np.mean(
                [
                    len({i for i, _ in a} & {i for i, _ in e}) / 10.0
                    for a, e in zip(approx, exact)
                ]
            )
            cand_per_q = probes.get("index.lsh.candidates", 0) / N_QUERIES
            table.append((n, lsh_s, linear_s, recall, cand_per_q))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    header = (
        f"{'N':>8}{'LSH':>14}{'linear':>14}{'speedup':>10}"
        f"{'recall@10':>12}{'cand/query':>12}"
    )
    rows = [
        f"{n:>8}{a * 1000:>11.1f} ms{b * 1000:>11.1f} ms{b / a:>9.1f}x"
        f"{r:>12.2f}{c:>12.1f}"
        for n, a, b, r, c in table
    ]
    print_table(capsys, "Ablation: LSH vs linear scan (visual top-10)", header, rows)
    bench_record["results"] = {
        "sizes": list(LSH_SIZES),
        "recall_at_10": [round(r, 3) for *_, r, _ in table],
        "candidates_per_query": [round(c, 1) for *_, c in table],
    }
    # LSH wins at scale with high recall.
    if PERF_ASSERTS:
        assert table[-1][1] < table[-1][2]
    assert all(row[3] >= 0.8 for row in table)


def scene_dataset(n, seed=2, cluster_size=20, spread=0.15):
    """Repeated shots of the same scenes: each cluster shares a location
    (plus GPS jitter) and a visual appearance (plus noise) — the regime
    the Visual R*-tree's node feature-spheres are designed for."""
    rng = np.random.default_rng(seed)
    n_scenes = max(n // cluster_size, 1)
    scene_locs = np.column_stack(
        [
            rng.uniform(REGION.min_lat, REGION.max_lat, n_scenes),
            rng.uniform(REGION.min_lng, REGION.max_lng, n_scenes),
        ]
    )
    scene_vecs = rng.normal(0, 1, (n_scenes, DIM))
    assignment = rng.integers(0, n_scenes, n)
    points = [
        GeoPoint(
            float(np.clip(scene_locs[s, 0] + rng.normal(0, 1e-4), REGION.min_lat, REGION.max_lat)),
            float(np.clip(scene_locs[s, 1] + rng.normal(0, 1e-4), REGION.min_lng, REGION.max_lng)),
        )
        for s in assignment
    ]
    vectors = scene_vecs[assignment] + spread * rng.normal(0, 1, (n, DIM))
    return points, vectors


def test_ablation_hybrid_vs_linear(benchmark, capsys, bench_record):
    def run():
        table = []
        for n in HYBRID_SIZES:
            points, vectors = scene_dataset(n, seed=2)
            hybrid = VisualRTree(dimension=DIM, max_entries=8)
            for i in range(n):
                hybrid.insert(i, points[i], vectors[i])
            rng = np.random.default_rng(3)
            queries = []
            for _ in range(N_QUERIES):
                lat = float(rng.uniform(REGION.min_lat, REGION.max_lat - 0.05))
                lng = float(rng.uniform(REGION.min_lng, REGION.max_lng - 0.05))
                queries.append(
                    (BoundingBox(lat, lng, lat + 0.05, lng + 0.05), vectors[rng.integers(n)])
                )
            probes: dict = {}
            t0 = time.perf_counter()
            with probe_counters(probes):
                fast = [hybrid.spatial_visual_knn(b, v, k=10) for b, v in queries]
            fast_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            slow = [hybrid.linear_spatial_visual_knn(b, v, k=10) for b, v in queries]
            slow_s = time.perf_counter() - t0
            for a, b in zip(fast, slow):
                assert [i for i, _ in a] == [i for i, _ in b]
            pops_per_q = probes.get("index.visual_rtree.heap_pops", 0) / N_QUERIES
            pruned_per_q = probes.get("index.visual_rtree.spatial_pruned", 0) / N_QUERIES
            table.append((n, fast_s, slow_s, pops_per_q, pruned_per_q))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    header = (
        f"{'N':>8}{'Visual R*-tree':>18}{'linear':>14}{'speedup':>10}"
        f"{'pops/query':>12}{'pruned/query':>14}"
    )
    rows = [
        f"{n:>8}{a * 1000:>15.1f} ms{b * 1000:>11.1f} ms{b / a:>9.1f}x"
        f"{pops:>12.1f}{pruned:>14.1f}"
        for n, a, b, pops, pruned in table
    ]
    print_table(
        capsys, "Ablation: hybrid index vs scan (spatial-visual top-10)", header, rows
    )
    bench_record["results"] = {
        "sizes": list(HYBRID_SIZES),
        "heap_pops_per_query": [round(p, 1) for _, _, _, p, _ in table],
        "spatial_pruned_per_query": [round(p, 1) for *_, p in table],
    }
    if PERF_ASSERTS:
        assert table[-1][1] < table[-1][2]


def test_ablation_rtree_vs_grid_vs_scan(benchmark, capsys, bench_record):
    def run():
        n = RTREE_N
        points, _ = dataset(n, seed=4)
        rtree = RTree(max_entries=8)
        grid = GridIndex(REGION, rows=32, cols=32)
        for i, p in enumerate(points):
            rtree.insert_point(i, p)
            grid.insert(i, p)
        rng = np.random.default_rng(5)
        queries = []
        for _ in range(200):
            lat = float(rng.uniform(REGION.min_lat, REGION.max_lat - 0.02))
            lng = float(rng.uniform(REGION.min_lng, REGION.max_lng - 0.02))
            queries.append(BoundingBox(lat, lng, lat + 0.02, lng + 0.02))

        probes: dict = {}
        t0 = time.perf_counter()
        with probe_counters(probes):
            rtree_hits = [set(rtree.search_range(q)) for q in queries]
        rtree_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        grid_hits = [set(grid.search_range(q)) for q in queries]
        grid_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        scan_hits = [
            {i for i, p in enumerate(points) if q.contains_point(p)} for q in queries
        ]
        scan_s = time.perf_counter() - t0
        for a, b, c in zip(rtree_hits, grid_hits, scan_hits):
            assert a == c and b == c
        visits_per_q = probes.get("index.rtree.node_visits", 0) / len(queries)
        return rtree_s, grid_s, scan_s, visits_per_q

    rtree_s, grid_s, scan_s, visits_per_q = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    header = f"{'method':<16}{'time':>12}{'vs scan':>10}{'visits/query':>14}"
    rows = [
        f"{'r-tree':<16}{rtree_s * 1000:>9.1f} ms{scan_s / rtree_s:>9.1f}x"
        f"{visits_per_q:>14.1f}",
        f"{'uniform grid':<16}{grid_s * 1000:>9.1f} ms{scan_s / grid_s:>9.1f}x",
        f"{'linear scan':<16}{scan_s * 1000:>9.1f} ms{1.0:>9.1f}x",
    ]
    print_table(
        capsys,
        f"Ablation: spatial range query, N={RTREE_N}, 200 queries",
        header,
        rows,
    )
    bench_record["results"] = {
        "n": RTREE_N,
        "rtree_visits_per_query": round(visits_per_q, 1),
    }
    if PERF_ASSERTS:
        assert rtree_s < scan_s and grid_s < scan_s
