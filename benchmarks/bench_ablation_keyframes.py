"""Ablation — uniform vs content-adaptive key-frame selection.

TVDP stores videos as key-frame sets.  Uniform every-k sampling is the
MediaQ default; adaptive selection keeps a frame only when its features
drift from the last kept frame, trading frame count against how many of
the video's distinct scene labels survive into storage.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.core import select_keyframes_adaptive, select_keyframes_uniform
from repro.datasets import generate_fleet_videos
from repro.features import ColorHistogramExtractor


def label_recall(video, kept):
    """Fraction of the video's distinct labels present among kept frames."""
    all_labels = {f.label for f in video.frames}
    kept_labels = {f.label for f in kept}
    return len(kept_labels & all_labels) / len(all_labels)


def test_ablation_keyframe_selection(benchmark, capsys, bench_record):
    videos = generate_fleet_videos(n_videos=4, n_frames=30, image_size=40, seed=0)
    extractor = ColorHistogramExtractor()

    def run():
        stats = {"uniform_k5": [], "adaptive": []}
        for video in videos:
            uniform = select_keyframes_uniform(video, every=5)
            adaptive = select_keyframes_adaptive(video, extractor, threshold=0.18)
            stats["uniform_k5"].append((len(uniform), label_recall(video, uniform)))
            stats["adaptive"].append((len(adaptive), label_recall(video, adaptive)))
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    header = f"{'policy':<14}{'mean frames kept':>18}{'label recall':>14}"
    rows = []
    summary = {}
    for name, entries in stats.items():
        frames = np.mean([n for n, _ in entries])
        recall = np.mean([r for _, r in entries])
        summary[name] = (frames, recall)
        rows.append(f"{name:<14}{frames:>18.1f}{recall:>14.2f}")
    rows.append("")
    rows.append("(30-frame videos; adaptive keeps frames only on feature drift)")
    print_table(capsys, "Ablation: key-frame selection policies", header, rows)

    bench_record["results"] = {
        name: {"mean_frames": round(frames, 2), "label_recall": round(recall, 3)}
        for name, (frames, recall) in summary.items()
    }

    # Adaptive must not lose label coverage relative to uniform while
    # remaining well below storing every frame.
    assert summary["adaptive"][1] >= summary["uniform_k5"][1] - 0.1
    assert summary["adaptive"][0] < 30
