"""Ablation — storage saved by key-frame selection and deduplication.

"Visual data is huge in size and many times redundant" (paper Section
II).  A redundant truck-video corpus is ingested three ways: every
frame, uniform key frames, and content-adaptive key frames; exact
dedup and near-duplicate flagging report what redundancy remains.
"""

from benchmarks.conftest import print_table
from repro.core import TVDP, ingest_video, select_keyframes_adaptive
from repro.datasets import generate_fleet_videos
from repro.features import ColorHistogramExtractor

N_VIDEOS = 3
N_FRAMES = 24


def ingest_policy(policy: str) -> tuple[int, int, int]:
    """Returns (frames offered, rows stored, near-duplicate flags)."""
    platform = TVDP(detect_near_duplicates=True)
    extractor = ColorHistogramExtractor()
    videos = generate_fleet_videos(
        n_videos=N_VIDEOS, n_frames=N_FRAMES, image_size=40, seed=0,
        scene_change_prob=0.15,
    )
    offered = 0
    flagged = 0
    for video in videos:
        if policy == "all_frames":
            keyframes = list(video.frames)
        elif policy == "uniform_k4":
            keyframes = video.key_frames(every=4)
        else:
            keyframes = select_keyframes_adaptive(video, extractor, threshold=0.18)
        offered += len(keyframes)
        video_row = platform.register_video(uri=f"tvdp://videos/{video.video_id}")
        for frame in keyframes:
            receipt = platform.upload_image(
                video.render_frame(frame.frame_number),
                frame.fov,
                frame.timestamp,
                frame.timestamp + 300.0,
                video_id=video_row,
                frame_number=frame.frame_number,
            )
            if receipt.near_duplicate_of is not None:
                flagged += 1
    stored = platform.stats()["rows"]["images"]
    return offered, stored, flagged


def test_ablation_redundancy_and_dedup(benchmark, capsys, bench_record):
    def run():
        return {
            policy: ingest_policy(policy)
            for policy in ("all_frames", "uniform_k4", "adaptive")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    header = f"{'ingest policy':<16}{'offered':>9}{'stored':>8}{'near-dup flags':>16}"
    rows = [
        f"{policy:<16}{offered:>9}{stored:>8}{flagged:>16}"
        for policy, (offered, stored, flagged) in results.items()
    ]
    total = N_VIDEOS * N_FRAMES
    adaptive_stored = results["adaptive"][1]
    rows.append("")
    rows.append(
        f"adaptive stores {adaptive_stored}/{total} frames "
        f"({1 - adaptive_stored / total:.0%} storage saved vs raw)"
    )
    print_table(capsys, "Ablation: redundancy handling at ingest", header, rows)

    bench_record["results"] = {
        policy: {"offered": offered, "stored": stored, "flagged": flagged}
        for policy, (offered, stored, flagged) in results.items()
    }
    all_offered, all_stored, all_flagged = results["all_frames"]
    # Raw ingest is drowning in near-duplicates (static-scene runs)...
    assert all_flagged > all_stored * 0.3
    # ...adaptive key-framing stores far less with few redundant frames.
    assert results["adaptive"][1] < all_stored * 0.6
    assert results["adaptive"][2] <= all_flagged
