"""Closed-loop load harness runner: ``python -m benchmarks.load``.

Drives the in-process API with the seeded zipfian workload from
``benchmarks/loadgen.py`` across ramping concurrency stages, validates
the result against ``benchmarks/load_schema.py``, and merges it as the
``load`` section of the ``BENCH_<git-sha>.json`` trajectory document
(creating the document if ``python -m benchmarks`` has not run yet).

Flags:

``--smoke``
    Small corpus, two stages — the CI profile.
``--seed N``
    Workload seed (default 0); two runs with the same seed issue the
    identical request schedule (compare ``schedule_digest``).
``--out PATH``
    Target document (default: ``BENCH_<git-sha>.json`` at repo root).
``--print``
    Also dump the load section to stdout.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.load",
        description="Run the closed-loop load harness into BENCH_<git-sha>.json.",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="small corpus, two stages (CI mode)"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_<git-sha>.json at the repo root)",
    )
    parser.add_argument(
        "--print",
        dest="dump",
        action="store_true",
        help="also dump the load section to stdout",
    )
    args = parser.parse_args(argv)

    if importlib.util.find_spec("repro") is None:
        sys.path.insert(0, str(REPO_ROOT / "src"))

    from benchmarks import recorder
    from benchmarks.load_schema import validate_load_section
    from benchmarks.loadgen import LoadConfig, run_load

    config = LoadConfig.for_mode(smoke=args.smoke, seed=args.seed)
    load = run_load(config)

    problems = validate_load_section(load)
    if problems:
        print("load section failed schema validation:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 2

    out_path = Path(args.out) if args.out else REPO_ROOT / f"BENCH_{recorder.git_sha()}.json"
    recorder.attach_load(out_path, load, smoke=args.smoke)

    if args.dump:
        print(json.dumps(load, indent=2, sort_keys=True))
    total = sum(stage["requests"] for stage in load["stages"])
    errors = sum(stage["errors"] for stage in load["stages"])
    peak = load["stages"][-1]
    print(
        f"wrote load section into {out_path} "
        f"({len(load['stages'])} stages, {total} requests, {errors} errors, "
        f"peak {peak['throughput_rps']:g} req/s at c={peak['concurrency']}, "
        f"digest {load['schedule_digest'][:12]}..., smoke={args.smoke})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
