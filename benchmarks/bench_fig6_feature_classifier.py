"""Fig. 6 — F1 of every (image feature, classifier) combination.

Paper result: CNN features dominate, SIFT-BoW is second, the colour
histogram trails; SVM is the strongest classifier, scoring 0.64 with
SIFT-BoW and 0.83 with CNN.  Absolute numbers here come from the
synthetic corpus, but the bench asserts the qualitative shape: for the
paper's winning classifier (SVM) the feature ordering
``cnn > sift_bow > color_histogram`` holds, and the best overall cell
uses CNN features.
"""

from benchmarks.conftest import print_table
from repro.analysis import DEFAULT_CLASSIFIERS, best_cell, run_classifier_grid


def test_fig6_feature_classifier_grid(benchmark, matrices, capsys, bench_record):
    results = benchmark.pedantic(
        lambda: run_classifier_grid(matrices, DEFAULT_CLASSIFIERS, seed=0),
        rounds=1,
        iterations=1,
    )
    features = ["color_histogram", "sift_bow", "cnn"]
    classifiers = sorted({r.classifier for r in results})
    grid = {(r.feature, r.classifier): r.f1 for r in results}

    header = f"{'classifier':<22}" + "".join(f"{f:>18}" for f in features)
    rows = [
        f"{clf:<22}" + "".join(f"{grid[(f, clf)]:>18.3f}" for f in features)
        for clf in classifiers
    ]
    best = best_cell(results)
    rows.append("")
    rows.append(
        f"best: {best.classifier} + {best.feature} (macro F1 = {best.f1:.3f}) "
        f"[paper: svm + cnn = 0.83]"
    )
    print_table(capsys, "Fig. 6: feature x classifier macro F1", header, rows)

    bench_record["results"] = {
        "grid_f1": {f"{f}+{c}": round(v, 3) for (f, c), v in sorted(grid.items())},
        "best": f"{best.classifier}+{best.feature}",
        "best_f1": round(best.f1, 3),
    }

    # Shape assertions (paper's qualitative findings).
    assert grid[("cnn", "svm")] > grid[("sift_bow", "svm")]
    assert grid[("sift_bow", "svm")] > grid[("color_histogram", "svm")]
    assert best.feature == "cnn"
    assert grid[("cnn", "svm")] > 0.7  # paper: 0.83
