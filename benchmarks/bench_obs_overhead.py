"""Resource-accounting overhead: what the per-request ledger adds.

The cost ledger (``repro.obs.accounting``) rides the serving hot path:
``Router.dispatch`` opens one ``ledger_scope`` per request and every
index probe / row scan calls ``charge*``.  This bench pins that cost
down with two measurements and gates their ratio:

1. **Marginal metering cost** — the same seeded R-tree range-query
   batch runs in alternating *plain* chunks (no ledger active:
   ``charge_probes`` takes the contextvar fast path) and *ledgered*
   chunks (each query wrapped in its own registry-backed
   ``ledger_scope``, the per-request serving pattern).  Differencing
   the best chunk per mode isolates the ledger's fixed per-request
   cost; interleaving makes machine noise hit both modes equally.
2. **Serving request cost** — the wall time of a real ``POST /search``
   through ``TVDPService.handle`` (auth, routing, spans, envelope),
   the unit that actually opens one ledger in production.

``results.overhead_pct`` = marginal metering cost per query as a
percentage of the serving request; ``tools/bench_compare.py`` fails
any run where it exceeds ``OVERHEAD_LIMIT_PCT`` (5%), even under
``--skip-wall`` — both walls come from the same run on the same
machine, so the ratio survives slow CI runners.

Tracemalloc is paused around the timed sections: the bench harness
traces allocations for its ``mem_peak_kb`` record, but production
serving does not trace, and tracing inflates every allocation in both
modes (the ledger's memory metering is itself gated on
``tracemalloc.is_tracing()`` for exactly that reason).
"""

import time
import tracemalloc

import numpy as np

from benchmarks.conftest import print_table, sized
from repro import TVDP, obs
from repro.api import Request, TVDPService
from repro.datasets import generate_lasan_dataset
from repro.features import ColorHistogramExtractor
from repro.geo import BoundingBox, GeoPoint
from repro.index import RTree

REGION = BoundingBox(33.9, -118.5, 34.1, -118.3)
N_POINTS = sized(4_000, 1_000)
QUERIES_PER_CHUNK = sized(400, 250)
#: Back-to-back (plain, ledgered) chunk pairs.  Differencing within a
#: pair cancels machine drift; the median over pairs rejects outlier
#: pairs that caught a scheduler hiccup on one side.
PAIRS = 6
REQUEST_CHUNKS = 4
REQUESTS_PER_CHUNK = sized(200, 80)


class pause_tracemalloc:
    """Stop tracing for the timed sections, resume after (production
    does not trace; the harness's per-bench peak is informational)."""

    def __enter__(self):
        self._was_tracing = tracemalloc.is_tracing()
        if self._was_tracing:
            tracemalloc.stop()
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._was_tracing:
            tracemalloc.start()
        return False


def build_index_workload(seed: int = 0):
    rng = np.random.default_rng(seed)
    rtree = RTree(max_entries=8)
    for i in range(N_POINTS):
        rtree.insert_point(
            i,
            GeoPoint(
                float(rng.uniform(REGION.min_lat, REGION.max_lat)),
                float(rng.uniform(REGION.min_lng, REGION.max_lng)),
            ),
        )
    queries = []
    for _ in range(QUERIES_PER_CHUNK):
        lat = float(rng.uniform(REGION.min_lat, REGION.max_lat - 0.02))
        lng = float(rng.uniform(REGION.min_lng, REGION.max_lng - 0.02))
        queries.append(BoundingBox(lat, lng, lat + 0.02, lng + 0.02))
    return rtree, queries


def run_index_chunk(rtree, queries, *, ledgered, table):
    """Wall seconds for one batch; ledgered mode opens one ledger per
    query (the serving pattern: one request, one scope, one absorb)."""
    if ledgered:
        t0 = time.perf_counter()
        for query in queries:
            with obs.ledger_scope(
                table=table, principal="bench", operation="bench.spatial"
            ):
                rtree.search_range(query)
        return time.perf_counter() - t0
    t0 = time.perf_counter()
    for query in queries:
        rtree.search_range(query)
    return time.perf_counter() - t0


def build_service():
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    service = TVDPService(platform, deterministic_keys=True)
    api_key = service.keys.issue(platform.add_user("bench", "benchmark"))
    for record in generate_lasan_dataset(n_per_class=10, image_size=24, seed=0):
        platform.upload_image(
            record.image, record.fov, record.captured_at, record.uploaded_at,
            keywords=record.keywords,
        )
    spec = {
        "type": "spatial",
        "region": {
            "min_lat": REGION.min_lat,
            "min_lng": REGION.min_lng,
            "max_lat": REGION.max_lat,
            "max_lng": REGION.max_lng,
        },
    }
    return service, api_key, spec


def run_request_chunk(service, api_key, spec):
    t0 = time.perf_counter()
    for _ in range(REQUESTS_PER_CHUNK):
        response = service.handle(
            Request(method="POST", path="/search", body=spec, api_key=api_key)
        )
        assert response.status == 200
    return time.perf_counter() - t0


def test_accounting_overhead(benchmark, capsys, bench_record):
    def run():
        table = obs.UsageTable(registry=obs.metrics())
        rtree, queries = build_index_workload()
        service, api_key, spec = build_service()
        with pause_tracemalloc():
            # One untimed warmup per mode: caches, allocator, interning.
            run_index_chunk(rtree, queries, ledgered=False, table=table)
            run_index_chunk(rtree, queries, ledgered=True, table=table)
            run_request_chunk(service, api_key, spec)
            diffs = []
            for _ in range(PAIRS):
                plain = run_index_chunk(rtree, queries, ledgered=False, table=table)
                ledgered = run_index_chunk(rtree, queries, ledgered=True, table=table)
                diffs.append(ledgered - plain)
            requests = [
                run_request_chunk(service, api_key, spec)
                for _ in range(REQUEST_CHUNKS)
            ]
        return diffs, min(requests), table

    diffs, request_s, table = benchmark.pedantic(run, rounds=1, iterations=1)
    marginal_s = sorted(diffs)[len(diffs) // 2]
    marginal_us = marginal_s / QUERIES_PER_CHUNK * 1e6
    request_us = request_s / REQUESTS_PER_CHUNK * 1e6
    overhead_pct = marginal_us / request_us * 100.0

    header = f"{'measure':<28}{'value':>14}"
    rows = [
        f"{'ledger marginal cost':<28}{marginal_us:>11.2f} us",
        f"{'serving request (/search)':<28}{request_us:>11.2f} us",
        f"{'overhead per request':<28}{overhead_pct:>13.2f}%",
    ]
    print_table(
        capsys,
        f"Accounting overhead: {QUERIES_PER_CHUNK} range queries/chunk, "
        f"N={N_POINTS}, {PAIRS} (plain, ledgered) pairs",
        header,
        rows,
    )

    # The ledgered chunks really metered: every query charged its probes
    # and absorbed into the table under the bench principal.
    report = table.report()
    bench_row = next(
        row for row in report["by_principal"] if row["key"] == "bench"
    )
    assert bench_row["count"] >= PAIRS * QUERIES_PER_CHUNK
    assert bench_row["cost"] > 0.0

    bench_record["results"] = {
        "n_points": N_POINTS,
        "queries_per_chunk": QUERIES_PER_CHUNK,
        "ledger_marginal_us": round(marginal_us, 2),
        "request_us": round(request_us, 2),
        "overhead_pct": round(overhead_pct, 2),
    }
