"""Ablation — does storing augmented images pay off?

TVDP stores augmented variants alongside originals (Section IV-B).
This bench trains the cleanliness classifier with and without
augmentation at a reduced training-set size (where augmentation should
matter most) and compares held-out F1.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.features import CnnFeatureExtractor
from repro.imaging import (
    add_noise,
    adjust_brightness,
    center_crop,
    flip_horizontal,
    resize,
)
from repro.ml import LinearSVM, StandardScaler, f1_score

TRAIN_PER_CLASS = 12  # deliberately scarce
TEST_START = 100  # corpus tail reserved for testing


def augmented_variants(image, rng):
    out = [flip_horizontal(image)]
    out.append(resize(center_crop(image, 0.85), image.height, image.width))
    out.append(adjust_brightness(image, 0.08))
    out.append(add_noise(image, 0.02, rng))
    return out


def test_ablation_augmentation(benchmark, lasan_corpus, capsys, bench_record):
    extractor = CnnFeatureExtractor()
    rng = np.random.default_rng(0)

    # Scarce training set: first TRAIN_PER_CLASS records of each class.
    by_class: dict[str, list] = {}
    for record in lasan_corpus[:TEST_START]:
        by_class.setdefault(record.label, []).append(record)
    train_records = [
        record for records in by_class.values() for record in records[:TRAIN_PER_CLASS]
    ]
    test_records = lasan_corpus[TEST_START:]

    def run():
        X_plain = [extractor.extract(r.image) for r in train_records]
        y_plain = [r.label for r in train_records]
        X_aug, y_aug = list(X_plain), list(y_plain)
        for record in train_records:
            for variant in augmented_variants(record.image, rng):
                X_aug.append(extractor.extract(variant))
                y_aug.append(record.label)
        X_test = np.vstack([extractor.extract(r.image) for r in test_records])
        y_test = np.array([r.label for r in test_records])

        scores = {}
        for name, (X, y) in (
            ("originals only", (np.vstack(X_plain), np.array(y_plain))),
            ("with augmentation", (np.vstack(X_aug), np.array(y_aug))),
        ):
            scaler = StandardScaler()
            model = LinearSVM(epochs=40, seed=0).fit(scaler.fit_transform(X), y)
            predictions = model.predict(scaler.transform(X_test))
            scores[name] = (X.shape[0], f1_score(y_test, predictions))
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    header = f"{'training set':<22}{'samples':>10}{'macro F1':>12}"
    rows = [
        f"{name:<22}{n:>10}{f1:>12.3f}" for name, (n, f1) in scores.items()
    ]
    print_table(
        capsys,
        f"Ablation: augmentation at {TRAIN_PER_CLASS}/class training scale",
        header,
        rows,
    )
    plain_f1 = scores["originals only"][1]
    aug_f1 = scores["with augmentation"][1]
    bench_record["results"] = {
        "plain_f1": round(plain_f1, 3),
        "augmented_f1": round(aug_f1, 3),
    }
    # Augmentation must not hurt a scarce-data model (usually helps).
    assert aug_f1 >= plain_f1 - 0.03
