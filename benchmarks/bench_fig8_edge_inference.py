"""Fig. 8 — inference time vs model on desktop / Raspberry Pi / phone.

Paper result (log10 ms scale): desktops need tens of milliseconds for
every model; the RPI needs thousands in most cases and "on average is
1.5x order of magnitude slower compared to desktop class devices"; the
smartphone sits in between.  Our device cost models are calibrated to
the published FLOPs of MobileNetV1/V2 and InceptionV3, so the grid
reproduces the ratio structure exactly.
"""

import math

import numpy as np

from benchmarks.conftest import print_table
from repro.edge import PAPER_DEVICES, PAPER_MODELS, predicted_latency_ms

#: Input resolutions swept in the paper ("models with various
#: complexities and image sizes").
IMAGE_SIZES = (128, 224, 299)


def test_fig8_inference_time_grid(benchmark, capsys, bench_record):
    def run():
        grid = {}
        for model in PAPER_MODELS:
            for device in PAPER_DEVICES:
                for px in IMAGE_SIZES:
                    grid[(model.name, device.name, px)] = predicted_latency_ms(
                        device, model, input_px=px
                    )
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)

    header = f"{'model @ px':<22}" + "".join(
        f"{d.name:>22}" for d in PAPER_DEVICES
    )
    rows = []
    for model in PAPER_MODELS:
        for px in IMAGE_SIZES:
            cells = []
            for device in PAPER_DEVICES:
                ms = grid[(model.name, device.name, px)]
                cells.append(f"{ms:>12.1f} ({math.log10(ms):4.2f})")
            rows.append(f"{model.name + ' @' + str(px):<22}" + "".join(f"{c:>22}" for c in cells))
    ratios = [
        grid[(m.name, "raspberry_pi_3b+", px)] / grid[(m.name, "desktop", px)]
        for m in PAPER_MODELS
        for px in IMAGE_SIZES
    ]
    rows.append("")
    rows.append(
        f"mean RPI/desktop slowdown: {np.mean([math.log10(r) for r in ratios]):.2f} "
        "orders of magnitude (paper: ~1.5)"
    )
    print_table(capsys, "Fig. 8: inference time ms (log10)", header, rows)

    bench_record["results"] = {
        "mean_rpi_slowdown_orders": round(
            float(np.mean([math.log10(r) for r in ratios])), 3
        ),
        "inception_rpi_299_ms": round(grid[("inception_v3", "raspberry_pi_3b+", 299)], 1),
    }

    # Shape assertions from the paper.
    desktop_at_native = [
        grid[(m.name, "desktop", 224 if "mobilenet" in m.name else 299)]
        for m in PAPER_MODELS
    ]
    assert all(ms < 100.0 for ms in desktop_at_native)  # "tens of ms"
    rpi_heavy = grid[("inception_v3", "raspberry_pi_3b+", 299)]
    assert rpi_heavy > 1_000.0  # "thousands of milliseconds"
    mean_orders = np.mean([math.log10(r) for r in ratios])
    assert 1.2 < mean_orders < 1.8  # "1.5x order of magnitude"
    for model in PAPER_MODELS:
        for px in IMAGE_SIZES:
            assert (
                grid[(model.name, "desktop", px)]
                < grid[(model.name, "smartphone", px)]
                < grid[(model.name, "raspberry_pi_3b+", px)]
            )
