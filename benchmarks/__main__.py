"""Unified benchmark runner: ``python -m benchmarks``.

Runs every ``bench_*`` module in-process under pytest (with
pytest-benchmark's own timing disabled — the ``bench_record`` fixture
does the metering), then writes the schema-versioned trajectory
document ``BENCH_<git-sha>.json`` at the repo root.  Diff two of those
documents with ``tools/bench_compare.py``.

Flags:

``--smoke``
    Reduced sweep sizes and no timing-sensitive assertions (sets
    ``TVDP_BENCH_SMOKE=1`` before collection).  This is what CI runs.
``--out PATH``
    Write the document somewhere other than the default.
``-k EXPR``
    Forwarded to pytest to run a subset; the all-modules coverage
    check is skipped for partial runs.
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks",
        description="Run the benchmark suite and write BENCH_<git-sha>.json.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sweep sizes, timing assertions off (CI mode)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_<git-sha>.json at the repo root)",
    )
    parser.add_argument(
        "-k",
        dest="expr",
        default=None,
        help="pytest -k filter; skips the all-modules coverage check",
    )
    args = parser.parse_args(argv)

    if importlib.util.find_spec("repro") is None:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    if args.smoke:
        os.environ["TVDP_BENCH_SMOKE"] = "1"

    import pytest

    from benchmarks import recorder

    pytest_args = [
        str(REPO_ROOT / "benchmarks"),
        "-q",
        "--benchmark-disable",
        "-p",
        "no:cacheprovider",
    ]
    if args.expr:
        pytest_args += ["-k", args.expr]
    exit_code = pytest.main(pytest_args)
    if exit_code != 0:
        print(
            f"bench run failed (pytest exit {exit_code}); no BENCH file written",
            file=sys.stderr,
        )
        return int(exit_code)

    expected = recorder.expected_modules()
    covered = recorder.covered_modules()
    if args.expr is None:
        missing = sorted(set(expected) - set(covered))
        if missing:
            print(
                "bench modules ran but produced no records: " + ", ".join(missing),
                file=sys.stderr,
            )
            return 1

    out_path = Path(args.out) if args.out else REPO_ROOT / f"BENCH_{recorder.git_sha()}.json"
    document = recorder.write_document(out_path, smoke=args.smoke)
    print(
        f"wrote {out_path} "
        f"({len(document['benches'])} benches, "
        f"{len(covered)}/{len(expected)} modules, smoke={args.smoke})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
