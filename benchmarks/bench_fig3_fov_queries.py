"""Fig. 3 — the FOV model at work: directional spatial search.

The FOV figure is exercised as a query workload: N sector-tagged images
in the Oriented R-tree, range and directional range queries, with the
index's throughput compared against a brute-force scan at several
corpus sizes (who wins, and how the margin grows with N).
"""

import time

import numpy as np

from benchmarks.conftest import PERF_ASSERTS, print_table, probe_counters, sized
from repro.geo import BoundingBox, FieldOfView, GeoPoint
from repro.index import OrientedRTree

REGION = (33.9, -118.5, 34.1, -118.3)
SIZES = sized((200, 800, 2_000), (200, 800))
N_QUERIES = 40


def make_fovs(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        FieldOfView(
            GeoPoint(
                float(rng.uniform(REGION[0], REGION[2])),
                float(rng.uniform(REGION[1], REGION[3])),
            ),
            float(rng.uniform(0, 360)),
            60.0,
            float(rng.uniform(50, 250)),
        )
        for _ in range(n)
    ]


def make_queries(seed=1):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(N_QUERIES):
        lat = float(rng.uniform(REGION[0], REGION[2] - 0.02))
        lng = float(rng.uniform(REGION[1], REGION[3] - 0.02))
        out.append(
            (BoundingBox(lat, lng, lat + 0.02, lng + 0.02), float(rng.uniform(0, 360)))
        )
    return out


def test_fig3_oriented_queries_vs_scan(benchmark, capsys, bench_record):
    queries = make_queries()

    def run():
        table = []
        for n in SIZES:
            fovs = make_fovs(n)
            index = OrientedRTree(max_entries=8)
            for i, fov in enumerate(fovs):
                index.insert(i, fov)

            probes: dict = {}
            t0 = time.perf_counter()
            with probe_counters(probes):
                indexed_hits = [
                    index.search_range(box, direction_deg=direction, tolerance_deg=30.0)
                    for box, direction in queries
                ]
            indexed_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            scan_hits = []
            for box, direction in queries:
                scan_hits.append(
                    [
                        i
                        for i, fov in enumerate(fovs)
                        if fov.direction_matches(direction, 30.0)
                        and fov.intersects_box(box)
                    ]
                )
            scan_s = time.perf_counter() - t0

            for a, b in zip(indexed_hits, scan_hits):
                assert set(a) == set(b)
            cand_per_q = probes.get("index.oriented.candidates", 0) / N_QUERIES
            pruned_per_q = probes.get("index.oriented.mask_pruned", 0) / N_QUERIES
            table.append((n, indexed_s, scan_s, cand_per_q, pruned_per_q))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    header = (
        f"{'N':>8}{'oriented R-tree':>20}{'linear scan':>18}{'speedup':>12}"
        f"{'cand/query':>12}{'pruned/query':>14}"
    )
    rows = [
        f"{n:>8}{idx * 1000:>17.1f} ms{scan * 1000:>15.1f} ms{scan / idx:>11.1f}x"
        f"{cand:>12.1f}{pruned:>14.1f}"
        for n, idx, scan, cand, pruned in table
    ]
    print_table(
        capsys,
        f"Fig. 3: directional FOV queries ({N_QUERIES} queries)",
        header,
        rows,
    )

    speedups = [scan / idx for _, idx, scan, *_ in table]
    bench_record["results"] = {
        "sizes": list(SIZES),
        "speedups": [round(s, 2) for s in speedups],
        "candidates_per_query": [round(c, 1) for *_, c, _ in table],
    }

    # Index wins clearly at every size, decisively at the largest N.
    # (Strict monotonicity in N is too timing-noise-sensitive to assert.)
    if PERF_ASSERTS:
        assert all(s > 2.0 for s in speedups)
        assert speedups[-1] > 10.0
