"""Fig. 1 — the full Acquisition-Access-Analysis-Action cycle.

The architecture figure is exercised functionally: one complete loop
through all four core services, from crowdsourced capture to an edge
dispatch decision, with per-stage wall-clock timing printed.
"""

import time

import numpy as np

from benchmarks.conftest import print_table
from repro.core import CategoricalQuery, TVDP
from repro.crowd import Campaign, WorkerPool, measure_coverage, run_iterative_campaign
from repro.edge import PAPER_DEVICES, PAPER_MODELS, dispatch_fleet
from repro.features import ColorHistogramExtractor
from repro.geo import DOWNTOWN_LA
from repro.imaging import CLEANLINESS_CLASSES, render_street_scene
from repro.ml import LinearSVM, StandardScaler


def test_fig1_full_cycle(benchmark, capsys, bench_record):
    timings: dict[str, float] = {}

    def run():
        rng = np.random.default_rng(0)
        platform = TVDP()
        platform.register_extractor(ColorHistogramExtractor())
        platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))

        # 1) ACQUISITION: an iterative crowdsourcing campaign collects FOVs.
        t0 = time.perf_counter()
        campaign = Campaign(1, "lasan", DOWNTOWN_LA, target_coverage=0.6, min_directions=1)
        pool = WorkerPool.spawn(8, DOWNTOWN_LA, seed=0, camera_range_m=400.0)
        collected = run_iterative_campaign(
            campaign, pool, grid_rows=6, grid_cols=6, max_rounds=4, seed=0
        )
        # Workers' captures become labelled images (simulated scenes).
        labels = []
        image_ids = []
        for i, fov in enumerate(collected.fovs):
            label = CLEANLINESS_CLASSES[i % len(CLEANLINESS_CLASSES)]
            image = render_street_scene(label, rng, size=40)
            receipt = platform.upload_image(image, fov, float(i), float(i) + 60.0)
            image_ids.append(receipt.image_id)
            labels.append(label)
        timings["acquisition"] = time.perf_counter() - t0

        # 2) ACCESS: features extracted + indexed.
        t0 = time.perf_counter()
        features = platform.extract_features("color_hsv_20_20_10", image_ids)
        timings["access"] = time.perf_counter() - t0

        # 3) ANALYSIS: train, machine-annotate everything.
        t0 = time.perf_counter()
        X = StandardScaler().fit_transform(np.vstack([features[i] for i in image_ids]))
        y = np.array(labels)
        model = LinearSVM(epochs=25).fit(X, y)
        for image_id, label in zip(image_ids, model.predict(X)):
            platform.annotations.annotate(
                image_id, "street_cleanliness", str(label), 0.9, "machine"
            )
        encampments = platform.execute(
            CategoricalQuery("street_cleanliness", labels=("encampment",))
        )
        timings["analysis"] = time.perf_counter() - t0

        # 4) ACTION: dispatch capability-matched models to the edge fleet.
        t0 = time.perf_counter()
        decisions = dispatch_fleet(list(PAPER_DEVICES), list(PAPER_MODELS), 1_000.0)
        timings["action"] = time.perf_counter() - t0
        return platform, collected, encampments, decisions

    platform, collected, encampments, decisions = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        f"{'campaign coverage':<28}{collected.final_coverage:>10.0%}",
        f"{'images ingested':<28}{platform.stats()['rows']['images']:>10}",
        f"{'encampment annotations':<28}{len(encampments):>10}",
    ]
    for name, decision in sorted(decisions.items()):
        rows.append(f"{'  dispatch ' + name:<28}{decision.model.name:>16}")
    rows.append("")
    for stage, seconds in timings.items():
        rows.append(f"{'stage ' + stage:<28}{seconds * 1000:>8.0f} ms")
    print_table(
        capsys,
        "Fig. 1: full 4-A pipeline cycle",
        f"{'quantity':<28}{'value':>10}",
        rows,
    )

    bench_record["results"] = {
        "coverage": round(collected.final_coverage, 3),
        "images": platform.stats()["rows"]["images"],
        "encampments": len(encampments),
        "stage_s": {stage: round(s, 4) for stage, s in timings.items()},
    }

    assert collected.final_coverage >= 0.6
    assert platform.stats()["rows"]["images"] > 20
    assert len(encampments) > 0
    assert set(decisions) == {d.name for d in PAPER_DEVICES}
