"""Extension bench — the disaster data platform (paper Section VIII).

The paper's future work: TVDP as a wildfire drone-monitoring platform.
Measures the full chain (survey -> detection -> situation awareness ->
spread estimation) and checks that the estimated spread rate recovers
the simulated ground truth.
"""

from benchmarks.conftest import print_table
from repro.analysis import (
    WildfireGroundTruth,
    detect_events,
    detection_quality,
    estimate_spread,
    fly_survey,
    situation_report,
)
from repro.geo import BoundingBox, GeoPoint

REGION = BoundingBox(34.10, -118.40, 34.14, -118.36)
TRUE_GROWTH_MPS = 0.5


def test_ext_wildfire_monitoring(benchmark, capsys, bench_record):
    truth = WildfireGroundTruth(
        ignitions=[GeoPoint(34.12, -118.38)],
        growth_mps=TRUE_GROWTH_MPS,
        initial_radius_m=250.0,
    )

    def run():
        sweep1 = fly_survey(REGION, truth, start_time=0.0, rows=6, seed=0)
        events1 = detect_events(sweep1)
        report1 = situation_report(REGION, events1)
        sweep2 = fly_survey(REGION, truth, start_time=3_600.0, rows=6, seed=0)
        events2 = detect_events(sweep2)
        report2 = situation_report(REGION, events2)
        quality = detection_quality(sweep1, events1)
        spread = estimate_spread(report1, report2, dt_s=3_600.0)
        return sweep1, report1, report2, quality, spread

    sweep1, report1, report2, quality, spread = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        f"{'tiles per sweep':<30}{len(sweep1):>10}",
        f"{'fire recall (sweep 1)':<30}{quality['recall']:>10.0%}",
        f"{'fire precision (sweep 1)':<30}{quality['precision']:>10.0%}",
        f"{'burning cells t=0':<30}{report1.burning_cells:>10}",
        f"{'burning cells t=+1h':<30}{report2.burning_cells:>10}",
        f"{'estimated front growth':<30}{spread['front_growth_mps']:>8.2f} m/s",
        f"{'ground-truth growth':<30}{TRUE_GROWTH_MPS:>8.2f} m/s",
    ]
    print_table(
        capsys,
        "Extension: drone wildfire monitoring",
        f"{'quantity':<30}{'value':>10}",
        rows,
    )

    bench_record["results"] = {
        "recall": round(quality["recall"], 3),
        "precision": round(quality["precision"], 3),
        "front_growth_mps": round(spread["front_growth_mps"], 3),
    }

    assert quality["recall"] > 0.6
    assert quality["precision"] > 0.8
    assert report2.burning_cells > report1.burning_cells
    # The spread estimate recovers the simulated growth within 2x.
    assert 0.5 * TRUE_GROWTH_MPS < spread["front_growth_mps"] < 2.0 * TRUE_GROWTH_MPS
