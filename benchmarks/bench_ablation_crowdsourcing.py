"""Ablation — coverage-driven vs random task placement.

The acquisition loop targets measured coverage gaps.  The alternative —
spraying the same number of tasks at random locations — wastes captures
on already-covered cells.  Fixed task budget, compare final coverage.
"""

import numpy as np

from benchmarks.conftest import print_table, sized
from repro.crowd import (
    Campaign,
    Task,
    WorkerPool,
    assign_greedy,
    measure_coverage,
)
from repro.geo import DOWNTOWN_LA, GeoPoint


TASK_BUDGET = 60
GRID = (8, 8)
N_SEEDS = sized(3, 2)


def run_strategy(strategy: str, seed: int) -> float:
    rng = np.random.default_rng(seed)
    pool = WorkerPool.spawn(10, DOWNTOWN_LA, seed=seed, camera_range_m=250.0)
    fovs = []
    issued = 0
    round_budget = 20
    while issued < TASK_BUDGET:
        report = measure_coverage(
            fovs, DOWNTOWN_LA, rows=GRID[0], cols=GRID[1], min_directions=1
        )
        n_tasks = min(round_budget, TASK_BUDGET - issued)
        if strategy == "coverage":
            campaign = Campaign(1, "x", DOWNTOWN_LA, min_directions=1)
            tasks = campaign.generate_tasks(report, max_tasks=n_tasks)
        else:
            tasks = [
                Task(
                    task_id=issued * 100 + k,
                    location=GeoPoint(
                        float(rng.uniform(DOWNTOWN_LA.min_lat, DOWNTOWN_LA.max_lat)),
                        float(rng.uniform(DOWNTOWN_LA.min_lng, DOWNTOWN_LA.max_lng)),
                    ),
                    direction_deg=None,
                    campaign_id=1,
                )
                for k in range(n_tasks)
            ]
        issued += len(tasks)
        result = assign_greedy(pool.workers, tasks, per_worker=round_budget)
        for match in result.assignments:
            fovs.append(match.worker.perform(match.task, rng))
    final = measure_coverage(
        fovs, DOWNTOWN_LA, rows=GRID[0], cols=GRID[1], min_directions=1
    )
    return final.coverage_ratio


def test_ablation_coverage_vs_random_tasks(benchmark, capsys, bench_record):
    def run():
        coverage, random_placement = [], []
        for seed in range(N_SEEDS):
            coverage.append(run_strategy("coverage", seed))
            random_placement.append(run_strategy("random", seed))
        return float(np.mean(coverage)), float(np.mean(random_placement))

    cov_mean, rand_mean = benchmark.pedantic(run, rounds=1, iterations=1)
    header = f"{'task placement':<22}{'final coverage':>16}"
    rows = [
        f"{'coverage-driven':<22}{cov_mean:>15.0%}",
        f"{'random':<22}{rand_mean:>15.0%}",
        "",
        f"(budget: {TASK_BUDGET} tasks over a {GRID[0]}x{GRID[1]} grid, "
        f"mean of {N_SEEDS} seeds)",
    ]
    print_table(
        capsys, "Ablation: coverage-driven vs random task placement", header, rows
    )
    bench_record["results"] = {
        "coverage_driven": round(cov_mean, 3),
        "random": round(rand_mean, 3),
    }
    assert cov_mean > rand_mean
