"""Fig. 4 — the crowd-based learning framework, round by round.

The framework figure is exercised as a longitudinal experiment: a small
server-side seed pool, four rounds of edge batches arriving on a
heterogeneous fleet, prioritised selection under an upload budget, and
retraining.  The printed series is test accuracy + pool size + bytes
uploaded per round ("our experiments show that this approach can
efficiently upgrade the learning model").
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.edge import (
    PAPER_MODELS,
    RASPBERRY_PI,
    SMARTPHONE,
    CrowdLearningFramework,
    EdgeBatch,
)
from repro.ml import StandardScaler, train_test_split

SEED_POOL = 15
ROUNDS = 4


def test_fig4_crowd_learning_rounds(benchmark, matrices, capsys, bench_record):
    X_all, y_all = matrices["cnn"]
    X_pool, X_test, y_pool, y_test = train_test_split(X_all, y_all, 0.3, seed=0)

    def run():
        framework = CrowdLearningFramework(
            model_variants=list(PAPER_MODELS),
            upload_budget=12,
            human_label_rate=0.6,
            seed=0,
        )
        framework.seed_pool(X_pool[:SEED_POOL], y_pool[:SEED_POOL])
        edge_X, edge_y = X_pool[SEED_POOL:], y_pool[SEED_POOL:]
        chunk = len(edge_X) // (2 * ROUNDS)
        for round_index in range(ROUNDS):
            lo = 2 * round_index * chunk
            batches = [
                EdgeBatch(SMARTPHONE, edge_X[lo : lo + chunk], edge_y[lo : lo + chunk]),
                EdgeBatch(
                    RASPBERRY_PI,
                    edge_X[lo + chunk : lo + 2 * chunk],
                    edge_y[lo + chunk : lo + 2 * chunk],
                ),
            ]
            framework.run_round(batches, X_test, y_test, latency_budget_ms=1_500.0)
        return framework

    framework = benchmark.pedantic(run, rounds=1, iterations=1)
    header = (
        f"{'round':>6}{'accuracy':>12}{'pool':>8}{'uploaded':>10}{'kB':>10}"
        f"{'human':>8}"
    )
    rows = [
        f"{s.round_index:>6}{s.test_accuracy:>12.3f}{s.pool_size:>8}"
        f"{s.uploaded_samples:>10}{s.uploaded_bytes / 1e3:>10.1f}{s.human_labels:>8}"
        for s in framework.history
    ]
    first_dispatch = framework.history[0].dispatch
    rows.append("")
    for device, decision in sorted(first_dispatch.items()):
        rows.append(
            f"  {device:<20} got {decision.model.name} "
            f"({decision.predicted_latency_ms:.0f} ms predicted)"
        )
    print_table(capsys, "Fig. 4: crowd-based learning rounds", header, rows)

    history = framework.history
    bench_record["results"] = {
        "accuracy": [round(s.test_accuracy, 3) for s in history],
        "pool": [s.pool_size for s in history],
        "uploaded_bytes": [s.uploaded_bytes for s in history],
    }

    assert len(history) == ROUNDS
    # The pool grows every round and accuracy ends at a useful level.
    pools = [s.pool_size for s in history]
    assert pools == sorted(pools) and pools[-1] > SEED_POOL
    assert history[-1].test_accuracy > 0.6
    # Heterogeneous dispatch: the RPI gets a lighter model than allowed
    # by an unconstrained pick (inception exceeds its 1.5 s budget).
    assert first_dispatch["raspberry_pi_3b+"].model.name != "inception_v3"
