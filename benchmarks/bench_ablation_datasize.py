"""Ablation — "the larger and richer the dataset, the more accurate
the results" (paper Section I).

The platform's whole pitch is pooling data across participants.  This
bench trains the winning Fig. 6 configuration (SVM + CNN) on growing
shares of the corpus and reports held-out macro F1 — the curve that
justifies sharing.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.ml import LinearSVM, f1_score

TRAIN_SIZES = (25, 50, 100, 160)  # samples drawn from the 200-image corpus


def test_ablation_training_set_size(benchmark, matrices, capsys, bench_record):
    X, y = matrices["cnn"]
    rng = np.random.default_rng(0)
    order = rng.permutation(len(y))
    test_idx = order[160:]
    X_test, y_test = X[test_idx], y[test_idx]

    def run():
        curve = []
        for size in TRAIN_SIZES:
            train_idx = order[:size]
            model = LinearSVM(epochs=40, seed=0).fit(X[train_idx], y[train_idx])
            curve.append((size, f1_score(y_test, model.predict(X_test))))
        return curve

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    header = f"{'training samples':>18}{'macro F1':>12}"
    rows = [f"{size:>18}{f1:>12.3f}" for size, f1 in curve]
    rows.append("")
    rows.append("(held-out test set of 40 images; SVM + CNN features)")
    print_table(capsys, "Ablation: F1 vs shared-dataset size", header, rows)

    bench_record["results"] = {
        "curve_f1": {str(size): round(f1, 3) for size, f1 in curve}
    }
    first, last = curve[0][1], curve[-1][1]
    # More pooled data gives a clearly better model.
    assert last > first + 0.1
    # And the curve is broadly monotone (allowing small dips).
    for (_, a), (_, b) in zip(curve, curve[1:]):
        assert b >= a - 0.08
