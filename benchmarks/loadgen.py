"""Closed-loop load generator for the in-process TVDP API.

The benchmark suite measures single operations; this harness measures
the platform *under concurrency*: N worker threads drive the service
closed-loop (each worker issues its next request only after the
previous one returns) through ramping concurrency stages, with a seeded
zipfian mix over the six query families — a few shapes dominate, a
long tail of everything else, like a real city-dashboard workload.

Determinism: the request schedule is a pure function of the corpus
profile and :class:`LoadConfig` — every worker draws from its own
``random.Random`` seeded by ``(seed, stage, worker)``, so two runs with
the same seed issue the *identical* request sequence per worker
(``schedule_digest`` in the emitted section proves it).  Wall-clock
numbers (throughput, percentiles) of course still vary per machine;
``tools/bench_compare.py`` gates them only when wall gating is on.

The emitted ``load`` section (see ``benchmarks/load_schema.py``) rides
in the same ``BENCH_<sha>.json`` trajectory document as the per-bench
records.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass

from repro import TVDP, obs
from repro.api.auth import principal_label
from repro.api.http import Request
from repro.api.service import TVDPService
from repro.datasets import generate_lasan_dataset
from repro.features import ColorHistogramExtractor
from repro.imaging import CLEANLINESS_CLASSES

from benchmarks.load_schema import LOAD_SCHEMA_VERSION

#: Query families in fixed zipf-rank order: weight of rank r is
#: ``1 / r**zipf_s``, so the first family dominates the mix.
FAMILY_RANKS = ("spatial", "textual", "categorical", "visual", "temporal", "hybrid")

EXTRACTOR_NAME = "color_hsv_20_20_10"


@dataclass(frozen=True)
class LoadConfig:
    """Knobs of one load run (the schedule is a pure function of
    this plus the corpus profile)."""

    seed: int = 0
    smoke: bool = False
    stages: tuple[int, ...] = (1, 2, 4, 8)
    requests_per_worker: int = 40
    zipf_s: float = 1.1
    n_per_class: int = 12
    image_size: int = 32
    #: Distinct API keys the workers share round-robin (worker cohort
    #: ``w`` presents key ``w % principals``), so resource accounting
    #: sees a multi-tenant mix rather than one anonymous blob.
    principals: int = 3

    @classmethod
    def for_mode(cls, smoke: bool, seed: int = 0) -> "LoadConfig":
        """The shipped full/smoke profiles."""
        if smoke:
            return cls(
                seed=seed,
                smoke=True,
                stages=(1, 2),
                requests_per_worker=12,
                n_per_class=6,
                image_size=24,
                principals=2,
            )
        return cls(seed=seed, smoke=False)


@dataclass(frozen=True)
class CorpusProfile:
    """The schedule-relevant fingerprint of a built corpus: bounding
    box, time range, sample feature vectors, vocabularies.  Everything
    here is derived deterministically from the dataset seed."""

    min_lat: float
    min_lng: float
    max_lat: float
    max_lng: float
    t_min: float
    t_max: float
    labels: tuple[str, ...]
    keywords: tuple[str, ...]
    vectors: tuple[tuple[float, ...], ...]


def build_corpus(
    config: LoadConfig,
) -> tuple[TVDPService, tuple[str, ...], CorpusProfile]:
    """A populated platform + service + one issued API key per
    configured principal + profile."""
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
    records = generate_lasan_dataset(
        n_per_class=config.n_per_class,
        image_size=config.image_size,
        seed=config.seed,
    )
    keywords: set[str] = set()
    for record in records:
        receipt = platform.upload_image(
            record.image,
            record.fov,
            record.captured_at,
            record.uploaded_at,
            keywords=record.keywords,
        )
        platform.annotations.annotate(
            receipt.image_id, "street_cleanliness", record.label, 1.0, "human"
        )
        keywords.update(record.keywords)
    vectors = platform.extract_features(EXTRACTOR_NAME)

    service = TVDPService(platform, deterministic_keys=True)
    api_keys = tuple(
        service.keys.issue(platform.add_user(f"loadgen-{i}", "benchmark"))
        for i in range(max(1, config.principals))
    )

    lats = [r.fov.camera.lat for r in records]
    lngs = [r.fov.camera.lng for r in records]
    times = [r.captured_at for r in records]
    sample_ids = sorted(vectors)[:8]
    profile = CorpusProfile(
        min_lat=min(lats),
        min_lng=min(lngs),
        max_lat=max(lats),
        max_lng=max(lngs),
        t_min=min(times),
        t_max=max(times),
        labels=tuple(CLEANLINESS_CLASSES),
        keywords=tuple(sorted(keywords)),
        vectors=tuple(
            tuple(round(float(v), 6) for v in vectors[i]) for i in sample_ids
        ),
    )
    return service, api_keys, profile


# -- schedule construction (pure, seeded) -----------------------------------


def _zipf_weights(n: int, s: float) -> list[float]:
    return [1.0 / (rank**s) for rank in range(1, n + 1)]


def _spatial_spec(rng, profile: CorpusProfile) -> dict:
    lat_span = profile.max_lat - profile.min_lat
    lng_span = profile.max_lng - profile.min_lng
    lat0 = profile.min_lat + rng.random() * lat_span * 0.6
    lng0 = profile.min_lng + rng.random() * lng_span * 0.6
    spec = {
        "type": "spatial",
        "region": {
            "min_lat": round(lat0, 6),
            "min_lng": round(lng0, 6),
            "max_lat": round(lat0 + lat_span * (0.2 + rng.random() * 0.4), 6),
            "max_lng": round(lng0 + lng_span * (0.2 + rng.random() * 0.4), 6),
        },
        "mode": rng.choice(("scene", "camera")),
    }
    if rng.random() < 0.25:
        spec["direction_deg"] = float(rng.randrange(0, 360, 45))
    return spec


def _visual_spec(rng, profile: CorpusProfile) -> dict:
    spec = {
        "type": "visual",
        "extractor": EXTRACTOR_NAME,
        "vector": list(rng.choice(profile.vectors)),
        "k": rng.choice((5, 10)),
    }
    if rng.random() < 0.2:
        spec["max_distance"] = round(0.5 + rng.random(), 3)
    return spec


def _categorical_spec(rng, profile: CorpusProfile) -> dict:
    n_labels = rng.choice((1, 1, 2))
    return {
        "type": "categorical",
        "classification": "street_cleanliness",
        "labels": sorted(rng.sample(profile.labels, n_labels)),
        "min_confidence": rng.choice((0.0, 0.0, 0.5)),
    }


def _textual_spec(rng, profile: CorpusProfile) -> dict:
    n_terms = rng.choice((1, 2, 2, 3))
    terms = rng.sample(profile.keywords, min(n_terms, len(profile.keywords)))
    return {
        "type": "textual",
        "text": " ".join(terms),
        "match": rng.choice(("any", "any", "all")),
    }


def _temporal_spec(rng, profile: CorpusProfile) -> dict:
    span = profile.t_max - profile.t_min
    start = profile.t_min + rng.random() * span * 0.5
    return {
        "type": "temporal",
        "start": round(start, 3),
        "end": round(start + span * (0.25 + rng.random() * 0.5), 3),
    }


def _hybrid_spec(rng, profile: CorpusProfile) -> dict:
    return {
        "type": "hybrid",
        "queries": [_spatial_spec(rng, profile), _visual_spec(rng, profile)],
    }


_SPEC_BUILDERS = {
    "spatial": _spatial_spec,
    "visual": _visual_spec,
    "categorical": _categorical_spec,
    "textual": _textual_spec,
    "temporal": _temporal_spec,
    "hybrid": _hybrid_spec,
}


def _worker_seed(seed: int, stage: int, worker: int) -> int:
    """Derived int seed, stable across processes (no hash())."""
    blob = f"{seed}:{stage}:{worker}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def build_schedule(
    profile: CorpusProfile, config: LoadConfig
) -> list[list[list[dict]]]:
    """``schedule[stage][worker]`` -> list of query specs.

    Pure: same profile + config always yields the identical nested
    structure (the determinism contract ``schedule_digest`` certifies).
    """
    import random

    weights = _zipf_weights(len(FAMILY_RANKS), config.zipf_s)
    schedule: list[list[list[dict]]] = []
    for stage_index, concurrency in enumerate(config.stages):
        stage_plan: list[list[dict]] = []
        for worker in range(concurrency):
            rng = random.Random(_worker_seed(config.seed, stage_index, worker))
            families = rng.choices(
                FAMILY_RANKS, weights=weights, k=config.requests_per_worker
            )
            stage_plan.append(
                [_SPEC_BUILDERS[family](rng, profile) for family in families]
            )
        schedule.append(stage_plan)
    return schedule


def schedule_digest(schedule: list[list[list[dict]]]) -> str:
    """sha256 over the canonical JSON of the schedule."""
    blob = json.dumps(schedule, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _principal_mix(
    schedule: list[list[list[dict]]], api_keys: tuple[str, ...]
) -> dict:
    """Planned requests per principal label across all stages (pure —
    derived from the schedule shape and the cohort assignment)."""
    mix: dict[str, int] = {}
    for stage in schedule:
        for worker, plan in enumerate(stage):
            label = principal_label(api_keys[worker % len(api_keys)])
            mix[label] = mix.get(label, 0) + len(plan)
    return {"count": len(api_keys), "mix": dict(sorted(mix.items()))}


def _family_counts(schedule: list[list[list[dict]]]) -> dict[str, int]:
    counts = dict.fromkeys(FAMILY_RANKS, 0)
    for stage in schedule:
        for worker_plan in stage:
            for spec in worker_plan:
                counts[spec["type"]] += 1
    return counts


# -- execution ---------------------------------------------------------------


def _percentile(sorted_values: list[float], q: float) -> float:
    """Exact nearest-rank-with-interpolation percentile over raw
    samples (the harness keeps every latency, unlike the bucketed
    registry histograms)."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return sorted_values[lower] * (1 - fraction) + sorted_values[upper] * fraction


def run_stage(
    service: TVDPService, api_keys: tuple[str, ...], stage_plan: list[list[dict]]
) -> dict:
    """Run one concurrency stage closed-loop; returns the stage record.

    Worker cohort ``w`` presents key ``w % len(api_keys)``, so higher
    concurrency stages exercise a multi-principal mix and the usage
    table attributes the stage's charges across tenants.
    """
    concurrency = len(stage_plan)
    barrier = threading.Barrier(concurrency + 1)
    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    errors = [0] * concurrency

    def worker(index: int) -> None:
        plan = stage_plan[index]
        mine = latencies[index]
        api_key = api_keys[index % len(api_keys)]
        barrier.wait()
        for spec in plan:
            start = time.perf_counter()
            response = service.handle(
                Request(method="POST", path="/search", body=spec, api_key=api_key)
            )
            mine.append((time.perf_counter() - start) * 1000.0)
            if response.status >= 400:
                errors[index] += 1

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"loadgen-{i}")
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    stage_start = time.perf_counter()
    for thread in threads:
        thread.join()
    duration_s = time.perf_counter() - stage_start

    merged = sorted(value for worker_values in latencies for value in worker_values)
    requests = len(merged)
    return {
        "concurrency": concurrency,
        "requests": requests,
        "errors": sum(errors),
        "duration_s": round(duration_s, 6),
        "throughput_rps": round(requests / duration_s, 3) if duration_s > 0 else 0.0,
        "latency_ms": {
            "p50": round(_percentile(merged, 0.50), 3),
            "p95": round(_percentile(merged, 0.95), 3),
            "p99": round(_percentile(merged, 0.99), 3),
            "mean": round(sum(merged) / requests, 3) if requests else 0.0,
            "max": round(merged[-1], 3) if merged else 0.0,
        },
    }


def run_load(config: LoadConfig) -> dict:
    """Build the corpus, run every stage, and emit the ``load`` section
    for ``BENCH_<sha>.json`` (validated by ``benchmarks/load_schema``)."""
    service, api_keys, profile = build_corpus(config)
    schedule = build_schedule(profile, config)
    obs.reset()  # stage numbers should not include corpus-build spans
    stages = [run_stage(service, api_keys, stage_plan) for stage_plan in schedule]
    return {
        "schema_version": LOAD_SCHEMA_VERSION,
        "seed": config.seed,
        "smoke": config.smoke,
        "zipf_s": config.zipf_s,
        "requests_per_worker": config.requests_per_worker,
        "principals": _principal_mix(schedule, api_keys),
        "families": _family_counts(schedule),
        "stages": stages,
        "hot_queries": obs.hot_queries().top(10),
        "schedule_digest": schedule_digest(schedule),
    }
