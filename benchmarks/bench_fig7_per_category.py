"""Fig. 7 — per-category F1 of SVM with each feature type.

Paper result: SVM+CNN scores above 0.8 on *every* cleanliness category,
peaking on "Overgrown Vegetation" and bottoming out on "Encampment".
The synthetic corpus reproduces the shape: vegetation is the easiest
class for every feature (reliably green + textured), encampment the
hardest (tents share silhouettes and hues with bulky items and carry
confusable clutter).
"""

from benchmarks.conftest import print_table
from repro.analysis import per_category_f1
from repro.imaging import CLEANLINESS_CLASSES
from repro.ml import LinearSVM


def test_fig7_svm_per_category(benchmark, matrices, capsys, bench_record):
    def run():
        out = {}
        for feature_name, (X, y) in matrices.items():
            out[feature_name] = per_category_f1(
                X, y, lambda: LinearSVM(epochs=40), n_splits=10, seed=0
            )
        return out

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    features = ["color_histogram", "sift_bow", "cnn"]
    header = f"{'category':<24}" + "".join(f"{f:>18}" for f in features)
    rows = [
        f"{label:<24}"
        + "".join(f"{scores[f][label]:>18.3f}" for f in features)
        for label in CLEANLINESS_CLASSES
    ]
    rows.append("")
    rows.append("paper: SVM+CNN > 0.8 everywhere; max = vegetation, min = encampment")
    print_table(capsys, "Fig. 7: SVM per-category F1 by feature", header, rows)

    cnn = scores["cnn"]
    bench_record["results"] = {
        feature: {label: round(f1, 3) for label, f1 in per_cat.items()}
        for feature, per_cat in scores.items()
    }

    # Shape assertions from the paper's Fig. 7.
    assert max(cnn, key=cnn.get) == "overgrown_vegetation"
    assert min(cnn, key=cnn.get) == "encampment"
    # CNN helps the hard classes more than the colour histogram does.
    assert cnn["encampment"] > scores["color_histogram"]["encampment"]
