"""Fig. 9 — translational data: cleanliness labels fuel other studies.

The paper's translational pipeline: the street-cleanliness classifier
machine-annotates the corpus; those annotations are then reused — with
no extra learning — by (a) the homeless study, which counts and
clusters encampment sightings, and (b) a graffiti study trained on the
*same* images for a different question.  This bench runs the whole
chain and prints the cluster table the homeless coordinator would see.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.analysis import cluster_encampments, run_graffiti_study
from repro.core import TVDP
from repro.features import ColorHistogramExtractor
from repro.imaging import CLEANLINESS_CLASSES
from repro.ml import LinearSVM


def test_fig9_translational_pipeline(benchmark, lasan_corpus, matrices, capsys, bench_record):
    X, y = matrices["cnn"]
    n_train = int(0.6 * len(lasan_corpus))

    def run():
        platform = TVDP()
        platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
        # Analysis 1: cleanliness model (trained once, on the shared data).
        model = LinearSVM(epochs=40).fit(X[:n_train], y[:n_train])
        predictions = model.predict(X[n_train:])
        # Upload + machine-annotate the "new" images.
        for record, label in zip(lasan_corpus[n_train:], predictions):
            receipt = platform.upload_image(
                record.image, record.fov, record.captured_at, record.uploaded_at
            )
            platform.annotations.annotate(
                receipt.image_id,
                "street_cleanliness",
                str(label),
                confidence=0.9,
                source="machine",
                annotator="svm_cnn",
            )
        # Analysis 2 (translational, no learning): tent clustering.
        report = cluster_encampments(platform, eps_m=600.0, min_samples=2)
        return platform, report

    platform, report = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        f"{'encampment sightings':<28}{report.total_sightings:>8}",
        f"{'clusters found':<28}{report.n_clusters:>8}",
        f"{'noise sightings':<28}{report.noise_sightings:>8}",
    ]
    for cluster in report.clusters:
        rows.append(
            f"  cluster {cluster.cluster_id}: {cluster.size:>3} tents near "
            f"({cluster.centroid.lat:.4f}, {cluster.centroid.lng:.4f})"
        )

    # Analysis 3 (same dataset, different question): graffiti detection.
    graffiti, _, _ = run_graffiti_study(
        lasan_corpus, ColorHistogramExtractor(), seed=0
    )
    rows.append("")
    rows.append(
        f"graffiti study on the same corpus: macro F1 = {graffiti.f1:.3f} "
        f"(positives {graffiti.positive_rate:.0%})"
    )
    print_table(
        capsys,
        "Fig. 9: translational pipeline (cleanliness -> homeless + graffiti)",
        f"{'quantity':<28}{'value':>8}",
        rows,
    )

    bench_record["results"] = {
        "sightings": report.total_sightings,
        "clusters": report.n_clusters,
        "graffiti_f1": round(graffiti.f1, 3),
    }

    # The encampment annotations exist and cluster spatially (hotspots).
    assert report.total_sightings > 0
    assert report.n_clusters >= 1
    assert report.largest_cluster_size >= 2
    # The translational consumer used annotations only — no pixels left
    # the platform, no second model was trained for the homeless study.
    histogram = platform.annotations.label_histogram("street_cleanliness")
    assert sum(histogram.values()) == len(lasan_corpus) - int(0.6 * len(lasan_corpus))
    # The graffiti study (independent question, same data) also learns.
    assert graffiti.f1 > 0.5
