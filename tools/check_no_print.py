#!/usr/bin/env python
"""CI lint: library code must log through ``repro.obs``, not ``print``.

Scans ``src/repro`` for ``print(`` calls and exits non-zero listing any
hits.  ``__main__.py`` is exempt — the guided tour's stdout *is* its
user interface.
"""

from __future__ import annotations

import pathlib
import re
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
EXEMPT = {"__main__.py"}
PATTERN = re.compile(r"(?<![\w.])print\(")


def main() -> int:
    violations: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name in EXEMPT:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            stripped = line.split("#", 1)[0]
            if PATTERN.search(stripped):
                violations.append(f"{path.relative_to(SRC.parent.parent)}:{lineno}: {line.strip()}")
    if violations:
        print("print() calls found in library code (use repro.obs.get_logger):")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print(f"OK: no print() calls in {SRC} (excluding {sorted(EXEMPT)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
