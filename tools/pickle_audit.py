#!/usr/bin/env python3
"""Runtime pickle audit: round-trip every shard-boundary structure.

The static ``picklability`` pass (``repro.devtools.picklability``)
proves the *absence* of known-unpicklable state reachable from the
shard roots; this harness proves the *presence* of working pickle
support at runtime.  Every index family, the classification catalog's
record tables, every query-spec dataclass, and the resource-accounting
structures (trace context, ledgers, usage tables) are:

1. built with a seeded workload,
2. round-tripped through ``pickle.dumps``/``pickle.loads``, and
3. compared **structurally** — the clone must answer the same probe
   queries with the same results (NumPy arrays compared with
   ``np.array_equal``, floats exactly: the round trip must be
   bit-preserving, not merely approximate), and its recreated lock
   must actually be acquirable.

Usage::

    PYTHONPATH=src python tools/pickle_audit.py [-v]

Exits 0 when every audit passes, 1 otherwise.  CI runs this in the
sanitize job so a future ``__slots__`` addition or un-deletable field
cannot silently break the shard boundary.
"""

from __future__ import annotations

import argparse
import dataclasses
import pickle
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core.catalog import ClassificationCatalog  # noqa: E402
from repro.obs import (  # noqa: E402
    Budget,
    ResourceLedger,
    TraceContext,
    UsageTable,
    charge,
    format_traceparent,
    ledger_scope,
    parse_traceparent,
)
from repro.core.queries import (  # noqa: E402
    CategoricalQuery,
    HybridQuery,
    SpatialQuery,
    TemporalQuery,
    TextualQuery,
    VisualQuery,
    query_shape,
)
from repro.db.database import Database  # noqa: E402
from repro.geo.fov import FieldOfView  # noqa: E402
from repro.geo.point import BoundingBox, GeoPoint  # noqa: E402
from repro.index.grid import GridIndex  # noqa: E402
from repro.index.hybrid import VisualRTree  # noqa: E402
from repro.index.inverted import InvertedIndex  # noqa: E402
from repro.index.lsh import LSHIndex  # noqa: E402
from repro.index.oriented_rtree import OrientedRTree  # noqa: E402
from repro.index.rtree import RTree  # noqa: E402

SEED = 20260808
N_ITEMS = 64
DIM = 8

REGION = BoundingBox(34.0, -118.3, 34.1, -118.2)
PROBE_BOX = BoundingBox(34.02, -118.28, 34.06, -118.24)


def structurally_equal(a: object, b: object) -> bool:
    """Deep equality that treats NumPy arrays by value, not identity
    (and never trips dataclass ``__eq__`` on ndarray fields)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and np.array_equal(a, b)
        )
    if isinstance(a, (list, tuple)):
        return (
            type(a) is type(b)
            and len(a) == len(b)
            and all(structurally_equal(x, y) for x, y in zip(a, b))
        )
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and a.keys() == b.keys()
            and all(structurally_equal(v, b[k]) for k, v in a.items())
        )
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        # Field-wise, because an ndarray field makes dataclass __eq__
        # raise ("truth value of an array is ambiguous").
        return type(a) is type(b) and all(
            structurally_equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    return type(a) is type(b) and a == b


def _lock_works(index: object) -> bool:
    """The recreated ``_lock`` must be a real, acquirable lock."""
    lock = getattr(index, "_lock", None)
    if lock is None:
        return False
    if not lock.acquire(blocking=False):
        return False
    lock.release()
    return True


class Audit:
    def __init__(self, verbose: bool) -> None:
        self.verbose = verbose
        self.failures: list[str] = []
        self.passed = 0

    def check(self, name: str, ok: bool, detail: str = "") -> None:
        if ok:
            self.passed += 1
            if self.verbose:
                print(f"  ok: {name}")
        else:
            self.failures.append(f"{name}: {detail or 'mismatch'}")
            print(f"  FAIL: {name}: {detail or 'mismatch'}", file=sys.stderr)

    def roundtrip_index(self, name: str, index: object, probes: dict) -> None:
        """Round-trip ``index`` and compare every probe's answer."""
        before = {key: probe(index) for key, probe in probes.items()}
        clone = pickle.loads(pickle.dumps(index))
        self.check(f"{name}: lock recreated", _lock_works(clone))
        self.check(
            f"{name}: lock not shared",
            getattr(clone, "_lock", None) is not getattr(index, "_lock", object()),
        )
        self.check(f"{name}: size preserved", len(clone) == len(index))
        for key, probe in probes.items():
            after = probe(clone)
            self.check(
                f"{name}: {key}",
                structurally_equal(before[key], after),
                f"before={before[key]!r} after={after!r}",
            )


def _points(rng: np.random.Generator, n: int) -> list[GeoPoint]:
    lats = rng.uniform(REGION.min_lat, REGION.max_lat, n)
    lngs = rng.uniform(REGION.min_lng, REGION.max_lng, n)
    return [GeoPoint(float(lat), float(lng)) for lat, lng in zip(lats, lngs)]


def audit_indexes(audit: Audit) -> None:
    rng = np.random.default_rng(SEED)
    points = _points(rng, N_ITEMS)
    vectors = rng.normal(0.0, 1.0, (N_ITEMS, DIM))
    probe_vector = rng.normal(0.0, 1.0, DIM)

    rtree = RTree()
    for i, point in enumerate(points):
        rtree.insert_point(f"img-{i}", point)
    audit.roundtrip_index(
        "RTree",
        rtree,
        {
            "search_range": lambda ix: sorted(ix.search_range(PROBE_BOX), key=str),
            "search_knn": lambda ix: ix.search_knn(points[0], 5),
            "height": lambda ix: ix.height(),
        },
    )

    oriented = OrientedRTree()
    for i, point in enumerate(points):
        fov = FieldOfView(point, float((i * 37) % 360), 60.0, 200.0)
        oriented.insert(f"img-{i}", fov)
    audit.roundtrip_index(
        "OrientedRTree",
        oriented,
        {
            "search_range": lambda ix: sorted(
                ix.search_range(PROBE_BOX, direction_deg=0.0), key=str
            ),
            "search_point": lambda ix: sorted(
                ix.search_point(points[3].lat, points[3].lng), key=str
            ),
            "fov_of": lambda ix: ix.fov_of("img-7"),
        },
    )

    lsh = LSHIndex(dimension=DIM, seed=SEED)
    for i in range(N_ITEMS):
        lsh.insert(f"img-{i}", vectors[i])
    audit.roundtrip_index(
        "LSHIndex",
        lsh,
        {
            "query_topk": lambda ix: ix.query_topk(probe_vector, 5),
            "linear_topk": lambda ix: ix.linear_topk(probe_vector, 5),
            "query_radius": lambda ix: sorted(
                ix.query_radius(probe_vector, 4.0), key=str
            ),
        },
    )

    inverted = InvertedIndex()
    words = ["pothole", "graffiti", "sidewalk", "crosswalk", "lamp", "overflow"]
    for i in range(N_ITEMS):
        text = " ".join(words[(i + j) % len(words)] for j in range(3))
        inverted.add(f"img-{i}", text)
    audit.roundtrip_index(
        "InvertedIndex",
        inverted,
        {
            "search_any": lambda ix: ix.search_any("pothole sidewalk"),
            "search_all": lambda ix: ix.search_all("graffiti lamp"),
            "vocabulary": lambda ix: ix.vocabulary(),
        },
    )

    grid = GridIndex(REGION)
    for i, point in enumerate(points):
        grid.insert(f"img-{i}", point)
    audit.roundtrip_index(
        "GridIndex",
        grid,
        {
            "search_range": lambda ix: sorted(ix.search_range(PROBE_BOX), key=str),
            "cell_counts": lambda ix: ix.cell_counts(),
        },
    )

    hybrid = VisualRTree(dimension=DIM)
    for i, point in enumerate(points):
        hybrid.insert(f"img-{i}", point, vectors[i])
    audit.roundtrip_index(
        "VisualRTree",
        hybrid,
        {
            "spatial_visual_knn": lambda ix: ix.spatial_visual_knn(
                PROBE_BOX, probe_vector, 5
            ),
            "linear_knn": lambda ix: ix.linear_spatial_visual_knn(
                PROBE_BOX, probe_vector, 5
            ),
        },
    )


def audit_catalog(audit: Audit) -> None:
    """Catalog records cross the shard boundary as plain rows; both the
    row dicts and the whole backing tables must survive the trip."""
    db = Database.tvdp()
    catalog = ClassificationCatalog(db)
    catalog.define(
        "street_cleanliness", ["clean", "moderate", "dirty"], description="ref [1]"
    )
    catalog.define("road_damage", ["pothole", "crack", "none"])

    for table_name in (
        "image_content_classification",
        "image_content_classification_types",
    ):
        rows = db.table(table_name).all_rows()
        clone_rows = pickle.loads(pickle.dumps(rows))
        audit.check(
            f"catalog rows: {table_name}",
            structurally_equal(rows, clone_rows),
        )

    clone_db = pickle.loads(pickle.dumps(db))
    clone_catalog = ClassificationCatalog(clone_db)
    audit.check(
        "catalog: names preserved", clone_catalog.names() == catalog.names()
    )
    audit.check(
        "catalog: labels preserved",
        clone_catalog.labels("street_cleanliness")
        == catalog.labels("street_cleanliness"),
    )
    audit.check(
        "catalog: type ids preserved",
        clone_catalog.type_id("road_damage", "pothole")
        == catalog.type_id("road_damage", "pothole"),
    )


def audit_queries(audit: Audit) -> None:
    """Query specs are the wire format coordinator -> worker; every
    family must round-trip with its shape (and ndarray payload) intact."""
    rng = np.random.default_rng(SEED)
    spatial = SpatialQuery(region=REGION, mode="scene", direction_deg=90.0)
    visual = VisualQuery("hsv", vector=rng.normal(0.0, 1.0, DIM), k=5)
    specs = [
        spatial,
        visual,
        CategoricalQuery("street_cleanliness", ("dirty",), min_confidence=0.5),
        TextualQuery("pothole sidewalk", match="any"),
        TemporalQuery(start=100.0, end=200.0),
        HybridQuery(queries=(spatial, visual)),
    ]
    for spec in specs:
        clone = pickle.loads(pickle.dumps(spec))
        name = type(spec).__name__
        audit.check(f"{name}: shape preserved", query_shape(clone) == query_shape(spec))
        for field_name, value in vars(spec).items():
            audit.check(
                f"{name}: field {field_name}",
                structurally_equal(value, getattr(clone, field_name)),
            )


def audit_accounting(audit: Audit) -> None:
    """Resource accounting crosses the shard boundary twice: trace
    context travels outward on the wire (traceparent), and workers
    pickle their ledgers/usage tables back for coordinator merge."""
    context = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
    clone = pickle.loads(pickle.dumps(context))
    audit.check("TraceContext: fields preserved", structurally_equal(context, clone))
    audit.check(
        "TraceContext: wire format round-trips",
        parse_traceparent(format_traceparent(clone)) == context,
    )

    ledger = ResourceLedger(principal="key:abcd1234", operation="POST /search")
    ledger.annotate(shape="spatial(mode=scene,region)", trace_id="ab" * 16)
    ledger.add("rows_scanned", 12)
    ledger.add("probes.rtree", 7.0)
    ledger.add("feature_bytes", 4096.0)
    clone_ledger = pickle.loads(pickle.dumps(ledger))
    audit.check(
        "ResourceLedger: snapshot preserved",
        structurally_equal(ledger.snapshot(), clone_ledger.snapshot()),
    )

    table = UsageTable(budget=Budget(cost_per_window=100.0, window_s=30.0))
    for principal, shape in (
        ("key:abcd1234", "spatial(mode=scene,region)"),
        ("key:abcd1234", "textual(match=any)"),
        ("local", "spatial(mode=scene,region)"),
    ):
        with ledger_scope(
            table=table, principal=principal, operation="audit", shape=shape
        ):
            charge("rows_scanned", 5)
            charge("probes.rtree", 3)
    clone_table = pickle.loads(pickle.dumps(table))
    audit.check("UsageTable: lock recreated", _lock_works(clone_table))
    audit.check(
        "UsageTable: lock not shared", clone_table._lock is not table._lock
    )
    audit.check(
        "UsageTable: clock recreated", clone_table._clock is not None
    )
    before, after = table.report(), clone_table.report()
    for section in ("by_principal", "by_shape", "by_operation", "budget"):
        audit.check(
            f"UsageTable: {section} preserved",
            structurally_equal(before[section], after[section]),
        )
    # The clone is a working merge target: coordinator-sum doubles the
    # charge aggregates.
    clone_table.merge(table)
    merged = {
        row["key"]: row["count"] for row in clone_table.report()["by_principal"]
    }
    audit.check(
        "UsageTable: merge on clone sums charges",
        merged == {"key:abcd1234": 4, "local": 2},
        f"merged counts={merged!r}",
    )


def audit_shards(audit: Audit) -> None:
    """Shard handles are *the* live pickle boundary: every partition of
    a real platform must round-trip with unshared locks and answer the
    same physical-plan tasks, and the worker's result envelope (payloads
    plus shipped obs state) must survive the return trip."""
    from repro.core import TVDP
    from repro.datasets import generate_lasan_dataset
    from repro.features import ColorHistogramExtractor
    from repro.shard import InlineShardPool, ShardTask, partition_catalog, run_task

    records = generate_lasan_dataset(n_per_class=4, image_size=32, seed=3)
    platform = TVDP()
    for record in records:
        platform.upload_image(
            image=record.image,
            fov=record.fov,
            captured_at=record.captured_at,
            uploaded_at=record.uploaded_at,
            keywords=record.keywords,
        )
    platform.register_extractor(ColorHistogramExtractor())
    platform.extract_features("color_hsv_20_20_10")

    lats = [record.fov.camera.lat for record in records]
    lngs = [record.fov.camera.lng for record in records]
    probe_box = BoundingBox(min(lats), min(lngs), max(lats), max(lngs))
    times = sorted(record.captured_at for record in records)
    probe_vector = platform.feature_vector(
        platform.image_ids()[0], "color_hsv_20_20_10"
    )
    term = records[0].keywords[0].lower()
    tasks = [
        ShardTask("spatial", {"query": SpatialQuery(region=probe_box)}),
        ShardTask(
            "temporal",
            {"query": TemporalQuery(start=times[0], end=times[len(times) // 2])},
        ),
        ShardTask("textual", {"terms": [term]}),
        ShardTask(
            "visual_topk",
            {"extractor": "color_hsv_20_20_10", "vector": probe_vector, "k": 5},
        ),
        ShardTask(
            "hybrid_fused",
            {
                "extractor": "color_hsv_20_20_10",
                "region": probe_box,
                "vector": probe_vector,
                "k": 5,
            },
        ),
    ]

    handles = partition_catalog(platform, 3)
    for handle in handles:
        clone = pickle.loads(pickle.dumps(handle))
        name = f"ShardHandle[{handle.shard_id}]"
        for index_name in ("spatial", "text"):
            original = getattr(handle, index_name)
            cloned = getattr(clone, index_name)
            audit.check(f"{name}: {index_name} lock recreated", _lock_works(cloned))
            audit.check(
                f"{name}: {index_name} lock not shared",
                getattr(cloned, "_lock", None)
                is not getattr(original, "_lock", object()),
            )
        for extractor_name, original in handle.lsh.items():
            audit.check(
                f"{name}: lsh[{extractor_name}] lock not shared",
                clone.lsh[extractor_name]._lock is not original._lock,
            )
        audit.check(
            f"{name}: stats preserved", structurally_equal(handle.stats, clone.stats)
        )
        audit.check(
            f"{name}: row counts preserved",
            clone.db.row_counts() == handle.db.row_counts(),
        )
        for task in tasks:
            audit.check(
                f"{name}: task {task.op} parity",
                structurally_equal(run_task(handle, task), run_task(clone, task)),
            )

    # The worker's return envelope: payloads + shipped charges survive
    # the coordinator-bound trip and merge cleanly.
    pool = InlineShardPool(handles)
    result = pool.fetch(pool.submit(0, tasks), timeout_s=5.0)
    clone_result = pickle.loads(pickle.dumps(result))
    audit.check(
        "WorkerResult: payloads preserved",
        structurally_equal(result.payloads, clone_result.payloads),
    )
    audit.check(
        "WorkerResult: charges preserved",
        structurally_equal(result.charges, clone_result.charges),
    )
    merged: dict[str, float] = {}
    for source in (result, clone_result):
        for kind, amount in source.charges.items():
            merged[kind] = merged.get(kind, 0.0) + amount
    audit.check(
        "WorkerResult: clone is a working merge source",
        all(merged[kind] == 2 * result.charges[kind] for kind in result.charges),
        f"merged={merged!r}",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-v", "--verbose", action="store_true")
    options = parser.parse_args(argv)

    audit = Audit(options.verbose)
    audit_indexes(audit)
    audit_catalog(audit)
    audit_queries(audit)
    audit_accounting(audit)
    audit_shards(audit)

    total = audit.passed + len(audit.failures)
    if audit.failures:
        print(f"pickle audit: {len(audit.failures)}/{total} check(s) FAILED")
        return 1
    print(
        f"pickle audit: OK — {total} check(s) across indexes, catalog, "
        f"queries, accounting, shard handles"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
