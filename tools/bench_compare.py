#!/usr/bin/env python3
"""Diff two ``BENCH_<git-sha>.json`` trajectory documents.

Usage::

    python tools/bench_compare.py BASELINE.json CURRENT.json [--skip-wall]

Exits non-zero when the current run regresses past the tolerance
(default 20%) on:

* **wall time** per bench (skipped with ``--skip-wall`` — CI runners
  have wildly different clocks; the probe counters below are seeded
  and deterministic, so they gate CI instead),
* **probe counters** per bench (more index probes / node visits for
  the same seeded workload means an algorithmic regression),
* **coverage** — a bench present in the baseline but missing from the
  current run,
* **load section** (from ``python -m benchmarks.load``) — schema
  validity, schedule-digest drift between runs with identical workload
  knobs, per-stage error growth, and (when wall gating is on)
  throughput collapse / p95 blow-up per concurrency stage,
* **accounting overhead** — any bench reporting
  ``results.overhead_pct`` above :data:`OVERHEAD_LIMIT_PCT` fails the
  current run outright (checked even with ``--skip-wall``; see
  ``benchmarks/bench_obs_overhead.py``).

Tiny values are noise, not signal: wall times under ``WALL_FLOOR_S``
and counters under ``COUNTER_FLOOR`` never regress.  New benches and
counters (present only in the current run) are informational.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.load_schema import validate_load_section  # noqa: E402

#: Relative growth beyond which a wall time / counter is a regression.
DEFAULT_TOLERANCE = 0.20
#: Wall times below this are measurement noise and never compared.
WALL_FLOOR_S = 0.05
#: Counters below this are too small for a ratio test.
COUNTER_FLOOR = 50.0
#: Allowed relative throughput drop / p95 growth per load stage (load
#: runs are noisier than single benches, so the band is wider).
LOAD_TOLERANCE = 0.35
#: Hard ceiling on ``results.overhead_pct`` reported by any bench in
#: the *current* run (``bench_obs_overhead.py``: the resource ledger's
#: cost as a percentage of one serving request).  Checked even under
#: ``--skip-wall`` — it is a ratio of two walls from the same run on
#: the same machine, so it survives slow CI runners.
OVERHEAD_LIMIT_PCT = 5.0
#: Hard floor on ``results.speedup_at_4`` reported by any bench in the
#: *current* run (``benchmarks/bench_shard_scaling.py``: scatter-gather
#: speedup over serial at 4 shards).  Checked even under ``--skip-wall``
#: for the same reason as the overhead ceiling: it is a ratio of two
#: walls from the same run on the same machine.  Smoke runs report the
#: measurement under ``speedup_at_4_smoke``, which this gate ignores —
#: smoke corpus sizes drown the pruning signal in fixed overhead.
SHARD_SPEEDUP_FLOOR = 1.8


def load_document(path: str | Path) -> dict:
    document = json.loads(Path(path).read_text())
    version = document.get("schema_version")
    if version != 1:
        raise ValueError(f"{path}: unsupported schema_version {version!r}")
    if "load" in document:
        problems = validate_load_section(document["load"])
        if problems:
            raise ValueError(f"{path}: invalid load section: {'; '.join(problems)}")
    return document


def compare(
    baseline: dict,
    current: dict,
    *,
    wall_tolerance: float = DEFAULT_TOLERANCE,
    counter_tolerance: float = DEFAULT_TOLERANCE,
    skip_wall: bool = False,
) -> list[dict]:
    """Regressions of ``current`` against ``baseline``, empty if clean.

    Each regression dict has ``kind`` (``wall`` / ``counter`` /
    ``missing``), ``bench``, and for ratio kinds ``baseline`` /
    ``current`` / ``ratio``.
    """
    regressions: list[dict] = []
    base_benches = baseline.get("benches", {})
    cur_benches = current.get("benches", {})
    if "benches" in baseline and "benches" not in current:
        # A candidate without the section at all (e.g. a load-only
        # document) is a coverage failure, not a crash.
        regressions.append({"kind": "section-missing", "bench": "benches"})
    for bench in sorted(set(base_benches) - set(cur_benches)):
        regressions.append({"kind": "missing", "bench": bench})
    for bench in sorted(set(base_benches) & set(cur_benches)):
        base, cur = base_benches[bench], cur_benches[bench]
        if not skip_wall:
            base_wall, cur_wall = base["wall_s"], cur["wall_s"]
            if base_wall >= WALL_FLOOR_S and cur_wall > base_wall * (1 + wall_tolerance):
                regressions.append(
                    {
                        "kind": "wall",
                        "bench": bench,
                        "baseline": base_wall,
                        "current": cur_wall,
                        "ratio": cur_wall / base_wall,
                    }
                )
        base_counters = base.get("counters", {})
        cur_counters = cur.get("counters", {})
        for name in sorted(set(base_counters) & set(cur_counters)):
            base_value, cur_value = base_counters[name], cur_counters[name]
            if base_value >= COUNTER_FLOOR and cur_value > base_value * (
                1 + counter_tolerance
            ):
                regressions.append(
                    {
                        "kind": "counter",
                        "bench": bench,
                        "counter": name,
                        "baseline": base_value,
                        "current": cur_value,
                        "ratio": cur_value / base_value,
                    }
                )
    regressions.extend(_compare_load(baseline, current, skip_wall=skip_wall))
    regressions.extend(_check_overhead(current))
    regressions.extend(_check_shard_speedup(current))
    return regressions


def _check_overhead(current: dict) -> list[dict]:
    """Benches whose reported ``results.overhead_pct`` breaks the hard
    ceiling — an absolute gate on the current run, not a baseline diff."""
    over: list[dict] = []
    for bench, record in sorted(current.get("benches", {}).items()):
        pct = record.get("results", {}).get("overhead_pct")
        if isinstance(pct, (int, float)) and not isinstance(pct, bool) and (
            pct > OVERHEAD_LIMIT_PCT
        ):
            over.append(
                {
                    "kind": "overhead",
                    "bench": bench,
                    "baseline": OVERHEAD_LIMIT_PCT,
                    "current": pct,
                }
            )
    return over


def _check_shard_speedup(current: dict) -> list[dict]:
    """Benches whose reported ``results.speedup_at_4`` falls below the
    hard floor — an absolute gate on the current run, not a baseline
    diff (smoke runs report ``speedup_at_4_smoke`` and are exempt)."""
    slow: list[dict] = []
    for bench, record in sorted(current.get("benches", {}).items()):
        speedup = record.get("results", {}).get("speedup_at_4")
        if isinstance(speedup, (int, float)) and not isinstance(speedup, bool) and (
            speedup < SHARD_SPEEDUP_FLOOR
        ):
            slow.append(
                {
                    "kind": "shard-speedup",
                    "bench": bench,
                    "baseline": SHARD_SPEEDUP_FLOOR,
                    "current": speedup,
                }
            )
    return slow


def _same_workload(base_load: dict, cur_load: dict) -> bool:
    """Whether the two load sections ran identical workload knobs (only
    then are digest and throughput comparisons meaningful)."""
    keys = (
        "schema_version",
        "seed",
        "smoke",
        "zipf_s",
        "requests_per_worker",
        "principals",
    )
    return all(base_load.get(k) == cur_load.get(k) for k in keys)


def _compare_load(baseline: dict, current: dict, *, skip_wall: bool) -> list[dict]:
    """Regressions of the load sections; empty when either is absent
    or the workloads are not comparable (except coverage loss)."""
    base_load = baseline.get("load")
    cur_load = current.get("load")
    if base_load is None:
        return []  # nothing to hold the current run to
    if cur_load is None:
        return [{"kind": "load-missing", "bench": "load"}]
    if not _same_workload(base_load, cur_load):
        return []  # different knobs: numbers are incommensurable
    regressions: list[dict] = []
    if base_load["schedule_digest"] != cur_load["schedule_digest"]:
        # Same seed and knobs must replay the same request schedule —
        # a drifted digest means the generator lost determinism.
        regressions.append(
            {
                "kind": "load-schedule",
                "bench": "load",
                "baseline": base_load["schedule_digest"][:12],
                "current": cur_load["schedule_digest"][:12],
            }
        )
    base_stages = {s["concurrency"]: s for s in base_load["stages"]}
    cur_stages = {s["concurrency"]: s for s in cur_load["stages"]}
    for concurrency in sorted(set(base_stages) & set(cur_stages)):
        base_stage, cur_stage = base_stages[concurrency], cur_stages[concurrency]
        stage = f"load[c={concurrency}]"
        if cur_stage["errors"] > base_stage["errors"]:
            regressions.append(
                {
                    "kind": "load-errors",
                    "bench": stage,
                    "baseline": base_stage["errors"],
                    "current": cur_stage["errors"],
                }
            )
        if skip_wall:
            continue  # throughput/latency are wall-clock measurements
        base_rps, cur_rps = base_stage["throughput_rps"], cur_stage["throughput_rps"]
        if base_rps > 0 and cur_rps < base_rps * (1 - LOAD_TOLERANCE):
            regressions.append(
                {
                    "kind": "load-throughput",
                    "bench": stage,
                    "baseline": base_rps,
                    "current": cur_rps,
                    "ratio": cur_rps / base_rps,
                }
            )
        base_p95 = base_stage["latency_ms"]["p95"]
        cur_p95 = cur_stage["latency_ms"]["p95"]
        if base_p95 > 0.5 and cur_p95 > base_p95 * (1 + LOAD_TOLERANCE):
            regressions.append(
                {
                    "kind": "load-p95",
                    "bench": stage,
                    "baseline": base_p95,
                    "current": cur_p95,
                    "ratio": cur_p95 / base_p95,
                }
            )
    return regressions


_KIND_LABELS = {
    "wall": "wall_s",
    "load-errors": "errors",
    "load-throughput": "throughput_rps",
    "load-p95": "latency_ms.p95",
}


def format_regression(regression: dict) -> str:
    kind = regression["kind"]
    if kind == "missing":
        return f"MISSING  {regression['bench']} (in baseline, not in current run)"
    if kind == "section-missing":
        return (
            f"SECTION-MISSING  {regression['bench']} section in baseline, "
            f"not in current run"
        )
    if kind == "load-missing":
        return "LOAD-MISSING  load section in baseline, not in current run"
    if kind == "overhead":
        return (
            f"OVERHEAD  {regression['bench']}: results.overhead_pct "
            f"{regression['current']:g} exceeds the {regression['baseline']:g}% "
            f"accounting-overhead ceiling"
        )
    if kind == "shard-speedup":
        return (
            f"SHARD-SPEEDUP  {regression['bench']}: results.speedup_at_4 "
            f"{regression['current']:g}x is below the {regression['baseline']:g}x "
            f"scatter-gather speedup floor"
        )
    if kind == "load-schedule":
        return (
            f"LOAD-SCHEDULE  schedule digest drifted "
            f"{regression['baseline']}... -> {regression['current']}... "
            f"(same seed must replay the same schedule)"
        )
    label = _KIND_LABELS.get(kind) or regression["counter"]
    ratio = f" ({regression['ratio']:.2f}x)" if "ratio" in regression else ""
    return (
        f"{kind.upper():<8} {regression['bench']}: {label} "
        f"{regression['baseline']:g} -> {regression['current']:g}{ratio}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_*.json files; exit 1 on regression."
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument(
        "--skip-wall",
        action="store_true",
        help="ignore wall-time changes (CI: machines differ; counters gate)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"relative wall-time growth allowed (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--counter-tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"relative counter growth allowed (default {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_document(args.baseline)
        current = load_document(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if baseline.get("smoke") != current.get("smoke"):
        print(
            "warning: comparing a smoke run against a full run — "
            "sweep sizes differ, expect counter noise",
            file=sys.stderr,
        )

    regressions = compare(
        baseline,
        current,
        wall_tolerance=args.wall_tolerance,
        counter_tolerance=args.counter_tolerance,
        skip_wall=args.skip_wall,
    )
    shared = len(set(baseline.get("benches", {})) & set(current.get("benches", {})))
    new = sorted(set(current.get("benches", {})) - set(baseline.get("benches", {})))
    print(
        f"compared {shared} benches "
        f"({baseline.get('git_sha')} -> {current.get('git_sha')}, "
        f"wall {'skipped' if args.skip_wall else 'checked'})"
    )
    for bench in new:
        print(f"NEW      {bench} (not in baseline)")
    if not regressions:
        print("no regressions")
        return 0
    for regression in regressions:
        print(format_regression(regression))
    print(f"{len(regressions)} regression(s)")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
