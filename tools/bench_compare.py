#!/usr/bin/env python3
"""Diff two ``BENCH_<git-sha>.json`` trajectory documents.

Usage::

    python tools/bench_compare.py BASELINE.json CURRENT.json [--skip-wall]

Exits non-zero when the current run regresses past the tolerance
(default 20%) on:

* **wall time** per bench (skipped with ``--skip-wall`` — CI runners
  have wildly different clocks; the probe counters below are seeded
  and deterministic, so they gate CI instead),
* **probe counters** per bench (more index probes / node visits for
  the same seeded workload means an algorithmic regression),
* **coverage** — a bench present in the baseline but missing from the
  current run.

Tiny values are noise, not signal: wall times under ``WALL_FLOOR_S``
and counters under ``COUNTER_FLOOR`` never regress.  New benches and
counters (present only in the current run) are informational.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Relative growth beyond which a wall time / counter is a regression.
DEFAULT_TOLERANCE = 0.20
#: Wall times below this are measurement noise and never compared.
WALL_FLOOR_S = 0.05
#: Counters below this are too small for a ratio test.
COUNTER_FLOOR = 50.0


def load_document(path: str | Path) -> dict:
    document = json.loads(Path(path).read_text())
    version = document.get("schema_version")
    if version != 1:
        raise ValueError(f"{path}: unsupported schema_version {version!r}")
    return document


def compare(
    baseline: dict,
    current: dict,
    *,
    wall_tolerance: float = DEFAULT_TOLERANCE,
    counter_tolerance: float = DEFAULT_TOLERANCE,
    skip_wall: bool = False,
) -> list[dict]:
    """Regressions of ``current`` against ``baseline``, empty if clean.

    Each regression dict has ``kind`` (``wall`` / ``counter`` /
    ``missing``), ``bench``, and for ratio kinds ``baseline`` /
    ``current`` / ``ratio``.
    """
    regressions: list[dict] = []
    base_benches = baseline["benches"]
    cur_benches = current["benches"]
    for bench in sorted(set(base_benches) - set(cur_benches)):
        regressions.append({"kind": "missing", "bench": bench})
    for bench in sorted(set(base_benches) & set(cur_benches)):
        base, cur = base_benches[bench], cur_benches[bench]
        if not skip_wall:
            base_wall, cur_wall = base["wall_s"], cur["wall_s"]
            if base_wall >= WALL_FLOOR_S and cur_wall > base_wall * (1 + wall_tolerance):
                regressions.append(
                    {
                        "kind": "wall",
                        "bench": bench,
                        "baseline": base_wall,
                        "current": cur_wall,
                        "ratio": cur_wall / base_wall,
                    }
                )
        base_counters = base.get("counters", {})
        cur_counters = cur.get("counters", {})
        for name in sorted(set(base_counters) & set(cur_counters)):
            base_value, cur_value = base_counters[name], cur_counters[name]
            if base_value >= COUNTER_FLOOR and cur_value > base_value * (
                1 + counter_tolerance
            ):
                regressions.append(
                    {
                        "kind": "counter",
                        "bench": bench,
                        "counter": name,
                        "baseline": base_value,
                        "current": cur_value,
                        "ratio": cur_value / base_value,
                    }
                )
    return regressions


def format_regression(regression: dict) -> str:
    if regression["kind"] == "missing":
        return f"MISSING  {regression['bench']} (in baseline, not in current run)"
    label = "wall_s" if regression["kind"] == "wall" else regression["counter"]
    return (
        f"{regression['kind'].upper():<8} {regression['bench']}: {label} "
        f"{regression['baseline']:g} -> {regression['current']:g} "
        f"({regression['ratio']:.2f}x)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_*.json files; exit 1 on regression."
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument(
        "--skip-wall",
        action="store_true",
        help="ignore wall-time changes (CI: machines differ; counters gate)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"relative wall-time growth allowed (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--counter-tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"relative counter growth allowed (default {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_document(args.baseline)
        current = load_document(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if baseline.get("smoke") != current.get("smoke"):
        print(
            "warning: comparing a smoke run against a full run — "
            "sweep sizes differ, expect counter noise",
            file=sys.stderr,
        )

    regressions = compare(
        baseline,
        current,
        wall_tolerance=args.wall_tolerance,
        counter_tolerance=args.counter_tolerance,
        skip_wall=args.skip_wall,
    )
    shared = len(set(baseline["benches"]) & set(current["benches"]))
    new = sorted(set(current["benches"]) - set(baseline["benches"]))
    print(
        f"compared {shared} benches "
        f"({baseline.get('git_sha')} -> {current.get('git_sha')}, "
        f"wall {'skipped' if args.skip_wall else 'checked'})"
    )
    for bench in new:
        print(f"NEW      {bench} (not in baseline)")
    if not regressions:
        print("no regressions")
        return 0
    for regression in regressions:
        print(format_regression(regression))
    print(f"{len(regressions)} regression(s)")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
