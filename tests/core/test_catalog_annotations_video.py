"""Tests for the classification catalog, annotations, and video ingest."""

import pytest

from repro.core import TVDP, ingest_video, select_keyframes_adaptive
from repro.datasets import generate_video
from repro.errors import QueryError, TVDPError
from repro.features import ColorHistogramExtractor
from repro.geo import FieldOfView, GeoPoint
from repro.imaging import CLEANLINESS_CLASSES, solid_color


@pytest.fixture()
def platform():
    return TVDP()


def upload_one(platform, shade=0.5):
    fov = FieldOfView(GeoPoint(34.04, -118.25), 0.0, 60.0, 100.0)
    receipt = platform.upload_image(
        image=solid_color(32, 32, (shade, shade, shade)),
        fov=fov,
        captured_at=1.0,
        uploaded_at=2.0,
    )
    return receipt.image_id


class TestCatalog:
    def test_define_and_lookup(self, platform):
        cid = platform.catalog.define(
            "street_cleanliness", list(CLEANLINESS_CLASSES), description="LASAN levels"
        )
        assert platform.catalog.classification_id("street_cleanliness") == cid
        assert platform.catalog.labels("street_cleanliness") == list(
            CLEANLINESS_CLASSES
        )
        assert "street_cleanliness" in platform.catalog.names()

    def test_type_id_round_trip(self, platform):
        platform.catalog.define("graffiti", ["graffiti", "no_graffiti"])
        type_id = platform.catalog.type_id("graffiti", "graffiti")
        assert platform.catalog.label_of_type(type_id) == ("graffiti", "graffiti")

    def test_unknown_lookups_raise(self, platform):
        with pytest.raises(QueryError):
            platform.catalog.classification_id("nope")
        platform.catalog.define("graffiti", ["yes", "no"])
        with pytest.raises(QueryError):
            platform.catalog.type_id("graffiti", "maybe")
        with pytest.raises(QueryError):
            platform.catalog.label_of_type(12345)

    def test_duplicate_name_rejected(self, platform):
        platform.catalog.define("graffiti", ["yes", "no"])
        from repro.errors import IntegrityError

        with pytest.raises(IntegrityError):
            platform.catalog.define("graffiti", ["a", "b"])

    def test_empty_or_duplicate_labels_rejected(self, platform):
        with pytest.raises(QueryError):
            platform.catalog.define("bad", [])
        with pytest.raises(QueryError):
            platform.catalog.define("bad", ["x", "x"])

    def test_multiple_classifications_coexist(self, platform):
        platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
        platform.catalog.define("graffiti", ["graffiti", "no_graffiti"])
        assert set(platform.catalog.names()) == {"graffiti", "street_cleanliness"}


class TestAnnotations:
    def test_annotate_and_read_back(self, platform):
        platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
        image_id = upload_one(platform)
        platform.annotations.annotate(
            image_id,
            "street_cleanliness",
            "encampment",
            confidence=0.9,
            source="machine",
            annotator="svm_cnn_v1",
            created_at=123.0,
        )
        annotations = platform.annotations.annotations_of(image_id)
        assert len(annotations) == 1
        a = annotations[0]
        assert a.label == "encampment"
        assert a.classification == "street_cleanliness"
        assert a.confidence == 0.9
        assert a.source == "machine"
        assert a.annotator == "svm_cnn_v1"

    def test_multi_classification_annotations(self, platform):
        platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
        platform.catalog.define("graffiti", ["graffiti", "no_graffiti"])
        image_id = upload_one(platform)
        platform.annotations.annotate(image_id, "street_cleanliness", "clean")
        platform.annotations.annotate(image_id, "graffiti", "graffiti", 0.7, "machine")
        annotations = platform.annotations.annotations_of(image_id)
        assert {a.classification for a in annotations} == {
            "street_cleanliness",
            "graffiti",
        }

    def test_invalid_annotation_inputs(self, platform):
        platform.catalog.define("graffiti", ["yes", "no"])
        image_id = upload_one(platform)
        with pytest.raises(QueryError):
            platform.annotations.annotate(image_id, "graffiti", "yes", source="robot")
        with pytest.raises(QueryError):
            platform.annotations.annotate(image_id, "graffiti", "yes", confidence=1.5)

    def test_label_locations(self, platform):
        platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
        a = upload_one(platform, shade=0.2)
        b = upload_one(platform, shade=0.8)
        platform.annotations.annotate(a, "street_cleanliness", "encampment", 0.9, "machine")
        platform.annotations.annotate(b, "street_cleanliness", "clean", 0.9, "machine")
        locations = platform.annotations.label_locations(
            "street_cleanliness", "encampment"
        )
        assert [image_id for image_id, _ in locations] == [a]
        assert isinstance(locations[0][1], GeoPoint)

    def test_label_histogram(self, platform):
        platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
        image_id = upload_one(platform)
        platform.annotations.annotate(image_id, "street_cleanliness", "clean")
        hist = platform.annotations.label_histogram("street_cleanliness")
        assert hist["clean"] == 1
        assert hist["encampment"] == 0
        assert set(hist) == set(CLEANLINESS_CLASSES)

    def test_bbox_stored(self, platform):
        platform.catalog.define("graffiti", ["yes", "no"])
        image_id = upload_one(platform)
        platform.annotations.annotate(
            image_id, "graffiti", "yes", bbox={"x": 1, "y": 2, "w": 10, "h": 12}
        )
        a = platform.annotations.annotations_of(image_id)[0]
        assert a.bbox == {"x": 1, "y": 2, "w": 10, "h": 12}


class TestVideoIngest:
    def test_uniform_ingest(self, platform):
        video = generate_video(
            1, GeoPoint(34.04, -118.25), initial_bearing=90.0, n_frames=20, seed=0,
            image_size=32,
        )
        video_row, image_ids = ingest_video(platform, video, every=5)
        assert len(image_ids) == 4
        for image_id, frame_number in zip(image_ids, (0, 5, 10, 15)):
            row = platform.db.table("images").get(image_id)
            assert row["video_id"] == video_row
            assert row["frame_number"] == frame_number

    def test_adaptive_keeps_fewer_frames_when_static(self, platform):
        video = generate_video(
            2, GeoPoint(34.04, -118.25), initial_bearing=0.0, n_frames=12, seed=1,
            image_size=32,
        )
        extractor = ColorHistogramExtractor()
        adaptive = select_keyframes_adaptive(video, extractor, threshold=0.4)
        assert 1 <= len(adaptive) <= 12
        assert adaptive[0].frame_number == 0

    def test_adaptive_threshold_zero_keeps_everything(self, platform):
        video = generate_video(
            3, GeoPoint(34.04, -118.25), initial_bearing=0.0, n_frames=6, seed=2,
            image_size=32,
        )
        extractor = ColorHistogramExtractor()
        kept = select_keyframes_adaptive(video, extractor, threshold=0.0)
        assert len(kept) == 6
        with pytest.raises(TVDPError):
            select_keyframes_adaptive(video, extractor, threshold=-1.0)

    def test_ingest_with_explicit_keyframes(self, platform):
        video = generate_video(
            4, GeoPoint(34.04, -118.25), initial_bearing=0.0, n_frames=10, seed=3,
            image_size=32,
        )
        keyframes = [video.frames[0], video.frames[7]]
        _, image_ids = ingest_video(platform, video, keyframes=keyframes)
        assert len(image_ids) == 2
