"""Tests for platform-level multi-view scene localisation."""

import pytest

from repro.core import TVDP
from repro.geo import FieldOfView, GeoPoint, destination_point
from repro.imaging import solid_color

SCENE = GeoPoint(34.05, -118.25)


def upload_view(platform, bearing, shade, distance=200.0, angle=60.0, range_m=400.0):
    """A camera at ``bearing``/``distance`` from SCENE, looking back."""
    camera = destination_point(SCENE, bearing, distance)
    fov = FieldOfView(camera, (bearing + 180.0) % 360.0, angle, range_m)
    receipt = platform.upload_image(
        solid_color(24, 24, (shade, shade, shade)), fov, 0.0, 1.0
    )
    return receipt.image_id


class TestLocalizeScene:
    def test_single_view_equals_fov_mbr(self):
        platform = TVDP()
        image_id = upload_view(platform, 0.0, 0.3)
        estimate = platform.localize_scene(image_id)
        assert estimate.supporting_fovs == 1
        assert estimate.box == platform.fov(image_id).mbr()

    def test_multi_view_shrinks_box_and_raises_confidence(self):
        platform = TVDP()
        first = upload_view(platform, 0.0, 0.30)
        upload_view(platform, 120.0, 0.45)
        upload_view(platform, 240.0, 0.60)
        single_platform = TVDP()
        only = upload_view(single_platform, 0.0, 0.30)
        single = single_platform.localize_scene(only)
        multi = platform.localize_scene(first)
        assert multi.supporting_fovs == 3
        assert multi.box.area < single.box.area
        assert multi.confidence > single.confidence
        assert multi.box.contains_point(SCENE)

    def test_scene_row_updated(self):
        platform = TVDP()
        first = upload_view(platform, 0.0, 0.30)
        upload_view(platform, 90.0, 0.50)
        before = platform.db.table("image_scene_location").find("image_id", first)[0]
        estimate = platform.localize_scene(first)
        after = platform.db.table("image_scene_location").find("image_id", first)[0]
        assert after["min_lat"] == pytest.approx(estimate.box.min_lat)
        assert (
            after["max_lat"] - after["min_lat"]
            <= before["max_lat"] - before["min_lat"] + 1e-12
        )

    def test_distant_images_do_not_contribute(self):
        platform = TVDP()
        first = upload_view(platform, 0.0, 0.30)
        # A camera 50 km away cannot overlap.
        far_camera = destination_point(SCENE, 90.0, 50_000.0)
        platform.upload_image(
            solid_color(24, 24, (0.8, 0.8, 0.8)),
            FieldOfView(far_camera, 0.0, 60.0, 300.0),
            0.0,
            1.0,
        )
        estimate = platform.localize_scene(first)
        assert estimate.supporting_fovs == 1

    def test_max_views_cap(self):
        platform = TVDP()
        first = upload_view(platform, 0.0, 0.05)
        for i, bearing in enumerate(range(30, 360, 30)):
            upload_view(platform, float(bearing), 0.1 + i * 0.05)
        estimate = platform.localize_scene(first, max_views=4)
        assert estimate.supporting_fovs == 4
