"""Tests for the TVDP platform facade: upload, access, queries."""

import numpy as np
import pytest

from repro.core import (
    CategoricalQuery,
    HybridQuery,
    SpatialQuery,
    TemporalQuery,
    TextualQuery,
    TVDP,
    VisualQuery,
)
from repro.datasets import generate_lasan_dataset
from repro.errors import QueryError, TVDPError
from repro.features import ColorHistogramExtractor
from repro.geo import BoundingBox, FieldOfView, GeoPoint
from repro.imaging import CLEANLINESS_CLASSES, flip_horizontal, Augmentation


@pytest.fixture(scope="module")
def records():
    return generate_lasan_dataset(n_per_class=6, image_size=32, seed=0)


@pytest.fixture()
def platform(records):
    tvdp = TVDP()
    uploader = tvdp.add_user("lasan", role="government", organization="City of LA")
    for record in records:
        tvdp.upload_image(
            image=record.image,
            fov=record.fov,
            captured_at=record.captured_at,
            uploaded_at=record.uploaded_at,
            keywords=record.keywords,
            uploader_id=uploader,
        )
    return tvdp


class TestUpload:
    def test_rows_created(self, platform, records):
        counts = platform.db.row_counts()
        assert counts["images"] == len(records)
        assert counts["image_fov"] == len(records)
        assert counts["image_scene_location"] == len(records)
        assert counts["image_manual_keywords"] >= len(records)

    def test_dedup(self, platform, records):
        first = records[0]
        receipt = platform.upload_image(
            image=first.image,
            fov=first.fov,
            captured_at=0.0,
            uploaded_at=1.0,
        )
        assert receipt.deduplicated
        assert platform.db.row_counts()["images"] == len(records)

    def test_image_and_fov_round_trip(self, platform, records):
        image_ids = platform.image_ids()
        img = platform.image(image_ids[0])
        assert img.shape == (32, 32)
        fov = platform.fov(image_ids[0])
        assert fov.angle_deg > 0

    def test_missing_blob_raises(self, platform):
        with pytest.raises(TVDPError):
            platform.image(10_000)
        with pytest.raises(TVDPError):
            platform.fov(10_000)

    def test_augmentation(self, platform):
        image_id = platform.image_ids()[0]
        aug_ids = platform.add_augmented(
            image_id, [Augmentation("flip_h", flip_horizontal)]
        )
        assert len(aug_ids) == 1
        row = platform.db.table("images").get(aug_ids[0])
        assert row["is_augmented"] is True
        assert row["source_image_id"] == image_id
        assert row["augmentation_name"] == "flip_h"
        assert aug_ids[0] not in platform.image_ids(include_augmented=False)


class TestSpatialQueries:
    def test_camera_mode_matches_db(self, platform):
        region = BoundingBox(34.035, -118.26, 34.05, -118.24)
        results = platform.execute(SpatialQuery(region=region, mode="camera"))
        expected = {
            row["image_id"]
            for row in platform.db.table("images").all_rows()
            if region.contains_point(GeoPoint(row["lat"], row["lng"]))
            and not row["is_augmented"]
        }
        assert {r.image_id for r in results} == expected

    def test_scene_mode_superset_of_camera(self, platform):
        region = BoundingBox(34.035, -118.26, 34.05, -118.24)
        camera = {r.image_id for r in platform.execute(SpatialQuery(region=region, mode="camera"))}
        scene = {r.image_id for r in platform.execute(SpatialQuery(region=region, mode="scene"))}
        assert camera <= scene

    def test_point_radius(self, platform):
        results = platform.execute(
            SpatialQuery(point=GeoPoint(34.045, -118.25), radius_m=800.0)
        )
        assert isinstance(results, list)

    def test_direction_filter_reduces(self, platform):
        region = BoundingBox(34.03, -118.27, 34.06, -118.23)
        unfiltered = platform.execute(SpatialQuery(region=region))
        filtered = platform.execute(
            SpatialQuery(region=region, direction_deg=0.0, direction_tolerance_deg=30.0)
        )
        assert len(filtered) <= len(unfiltered)

    def test_invalid_construction(self):
        with pytest.raises(QueryError):
            SpatialQuery()
        with pytest.raises(QueryError):
            SpatialQuery(
                region=BoundingBox(0, 0, 1, 1), point=GeoPoint(0, 0), radius_m=1.0
            )
        with pytest.raises(QueryError):
            SpatialQuery(point=GeoPoint(0, 0), radius_m=1.0, mode="teleport")


class TestVisualQueries:
    def test_requires_extraction_first(self, platform, records):
        platform.register_extractor(ColorHistogramExtractor())
        with pytest.raises(QueryError):
            platform.execute(
                VisualQuery(extractor_name="color_hsv_20_20_10", example=records[0].image)
            )

    def test_topk_by_example(self, platform, records):
        platform.register_extractor(ColorHistogramExtractor())
        platform.extract_features("color_hsv_20_20_10")
        results = platform.execute(
            VisualQuery(
                extractor_name="color_hsv_20_20_10", example=records[0].image, k=5
            )
        )
        assert len(results) == 5
        # The stored copy of the example is its own nearest neighbour.
        assert results[0].score == pytest.approx(1.0)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_query_validation(self, records):
        with pytest.raises(QueryError):
            VisualQuery(extractor_name="x")
        with pytest.raises(QueryError):
            VisualQuery(extractor_name="x", example=records[0].image, k=0)


class TestTextualTemporalQueries:
    def test_textual_any(self, platform):
        results = platform.execute(TextualQuery(text="encampment tent"))
        assert results
        # All hits actually carry one of the words.
        keyword_rows = platform.db.table("image_manual_keywords").all_rows()
        tagged = {
            row["image_id"]
            for row in keyword_rows
            if row["keyword"] in ("encampment", "tent")
        }
        assert {r.image_id for r in results} <= tagged

    def test_textual_all_narrower(self, platform):
        any_hits = platform.execute(TextualQuery(text="dumping trash"))
        all_hits = platform.execute(TextualQuery(text="dumping trash", match="all"))
        assert len(all_hits) <= len(any_hits)

    def test_textual_validation(self):
        with pytest.raises(QueryError):
            TextualQuery(text="  ")
        with pytest.raises(QueryError):
            TextualQuery(text="x", match="fuzzy")

    def test_temporal_window(self, platform, records):
        t0 = min(r.captured_at for r in records)
        t1 = t0 + 86_400.0
        results = platform.execute(TemporalQuery(start=t0, end=t1))
        expected = sum(1 for r in records if t0 <= r.captured_at <= t1)
        assert len(results) == expected

    def test_temporal_open_ended(self, platform, records):
        results = platform.execute(TemporalQuery(start=0.0))
        assert len(results) == len(records)

    def test_temporal_validation(self):
        with pytest.raises(QueryError):
            TemporalQuery()
        with pytest.raises(QueryError):
            TemporalQuery(start=10.0, end=5.0)
        with pytest.raises(QueryError):
            TemporalQuery(start=0.0, field="timestamp_deleted")


class TestCategoricalAndHybrid:
    def setup_annotations(self, platform):
        platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
        ids = platform.image_ids()
        platform.annotations.annotate(
            ids[0], "street_cleanliness", "encampment", 0.9, source="machine"
        )
        platform.annotations.annotate(
            ids[1], "street_cleanliness", "clean", 0.8, source="machine"
        )
        platform.annotations.annotate(
            ids[2], "street_cleanliness", "encampment", 0.4, source="human"
        )
        return ids

    def test_categorical(self, platform):
        ids = self.setup_annotations(platform)
        results = platform.execute(
            CategoricalQuery("street_cleanliness", labels=("encampment",))
        )
        assert {r.image_id for r in results} == {ids[0], ids[2]}

    def test_categorical_confidence_and_source(self, platform):
        ids = self.setup_annotations(platform)
        confident = platform.execute(
            CategoricalQuery(
                "street_cleanliness", labels=("encampment",), min_confidence=0.5
            )
        )
        assert {r.image_id for r in confident} == {ids[0]}
        human = platform.execute(
            CategoricalQuery(
                "street_cleanliness", labels=("encampment",), source="human"
            )
        )
        assert {r.image_id for r in human} == {ids[2]}

    def test_hybrid_spatial_categorical(self, platform):
        ids = self.setup_annotations(platform)
        row = platform.db.table("images").get(ids[0])
        region = BoundingBox.around(GeoPoint(row["lat"], row["lng"]), 500.0)
        results = platform.execute(
            HybridQuery(
                queries=(
                    SpatialQuery(region=region, mode="camera"),
                    CategoricalQuery("street_cleanliness", labels=("encampment",)),
                )
            )
        )
        assert ids[0] in {r.image_id for r in results}
        assert ids[1] not in {r.image_id for r in results}

    def test_hybrid_spatial_visual_uses_hybrid_index(self, platform, records):
        platform.register_extractor(ColorHistogramExtractor())
        platform.extract_features("color_hsv_20_20_10")
        region = BoundingBox(34.03, -118.27, 34.06, -118.23)
        results = platform.execute(
            HybridQuery(
                queries=(
                    SpatialQuery(region=region, mode="camera"),
                    VisualQuery(
                        extractor_name="color_hsv_20_20_10",
                        example=records[0].image,
                        k=5,
                    ),
                )
            )
        )
        assert len(results) <= 5
        for result in results:
            row = platform.db.table("images").get(result.image_id)
            assert region.contains_point(GeoPoint(row["lat"], row["lng"]))

    def test_hybrid_validation(self):
        with pytest.raises(QueryError):
            HybridQuery(queries=(TemporalQuery(start=0.0),))

    def test_unknown_query_type(self, platform):
        with pytest.raises(QueryError):
            platform.execute("not a query")


class TestStats:
    def test_stats_shape(self, platform):
        stats = platform.stats()
        assert stats["blobs"] == stats["rows"]["images"]
        assert stats["indexed_fovs"] == stats["rows"]["image_fov"]
