"""Tests for upload quality gating and near-duplicate flagging."""

import numpy as np
import pytest

from repro.core import TVDP
from repro.errors import TVDPError
from repro.geo import FieldOfView, GeoPoint
from repro.imaging import adjust_brightness, blur, render_street_scene, solid_color

FOV = FieldOfView(GeoPoint(34.04, -118.25), 0.0, 60.0, 100.0)


@pytest.fixture()
def scene():
    return render_street_scene("bulky_item", np.random.default_rng(0), size=48)


class TestQualityGate:
    def test_gate_off_accepts_anything(self):
        platform = TVDP()
        receipt = platform.upload_image(solid_color(32, 32, (1.0,) * 3), FOV, 0.0, 1.0)
        assert receipt.image_id > 0

    def test_gate_rejects_blown_out_frame(self):
        platform = TVDP(reject_low_quality=True)
        with pytest.raises(TVDPError, match="badly_exposed"):
            platform.upload_image(solid_color(32, 32, (1.0,) * 3), FOV, 0.0, 1.0)
        assert platform.stats()["rows"]["images"] == 0

    def test_gate_accepts_normal_scene(self, scene):
        platform = TVDP(reject_low_quality=True)
        receipt = platform.upload_image(scene, FOV, 0.0, 1.0)
        assert not receipt.deduplicated

    def test_gate_rejects_flat_blur(self):
        platform = TVDP(reject_low_quality=True)
        flat = solid_color(32, 32, (0.5, 0.5, 0.5))
        with pytest.raises(TVDPError, match="blurry"):
            platform.upload_image(flat, FOV, 0.0, 1.0)


class TestNearDuplicateFlagging:
    def test_first_upload_unflagged(self, scene):
        platform = TVDP(detect_near_duplicates=True)
        receipt = platform.upload_image(scene, FOV, 0.0, 1.0)
        assert receipt.near_duplicate_of is None

    def test_brightness_variant_flagged_but_stored(self, scene):
        platform = TVDP(detect_near_duplicates=True)
        first = platform.upload_image(scene, FOV, 0.0, 1.0)
        variant = adjust_brightness(scene, 0.03)
        second = platform.upload_image(variant, FOV, 2.0, 3.0)
        assert not second.deduplicated  # different pixels: stored
        assert second.near_duplicate_of == first.image_id
        assert platform.stats()["rows"]["images"] == 2

    def test_distinct_scene_not_flagged(self, scene):
        platform = TVDP(detect_near_duplicates=True)
        platform.upload_image(scene, FOV, 0.0, 1.0)
        other = render_street_scene("clean", np.random.default_rng(7), size=48)
        receipt = platform.upload_image(other, FOV, 2.0, 3.0)
        assert receipt.near_duplicate_of is None

    def test_exact_duplicate_still_deduplicated(self, scene):
        platform = TVDP(detect_near_duplicates=True)
        first = platform.upload_image(scene, FOV, 0.0, 1.0)
        again = platform.upload_image(scene, FOV, 5.0, 6.0)
        assert again.deduplicated
        assert again.image_id == first.image_id

    def test_detection_off_never_flags(self, scene):
        platform = TVDP()
        platform.upload_image(scene, FOV, 0.0, 1.0)
        variant = adjust_brightness(scene, 0.03)
        receipt = platform.upload_image(variant, FOV, 2.0, 3.0)
        assert receipt.near_duplicate_of is None
