"""Tests for whole-platform persistence and query EXPLAIN."""

import numpy as np
import pytest

from repro.core import (
    CategoricalQuery,
    HybridQuery,
    SpatialQuery,
    TemporalQuery,
    TextualQuery,
    TVDP,
    VisualQuery,
    explain,
    load_platform,
    save_platform,
)
from repro.datasets import generate_lasan_dataset
from repro.errors import QueryError, TVDPError
from repro.features import ColorHistogramExtractor
from repro.geo import BoundingBox, GeoPoint
from repro.imaging import CLEANLINESS_CLASSES


@pytest.fixture()
def populated():
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
    records = generate_lasan_dataset(n_per_class=4, image_size=32, seed=0)
    for record in records:
        receipt = platform.upload_image(
            record.image, record.fov, record.captured_at, record.uploaded_at,
            keywords=record.keywords,
        )
        platform.annotations.annotate(
            receipt.image_id, "street_cleanliness", record.label, 1.0, "human"
        )
    platform.extract_features("color_hsv_20_20_10")
    return platform, records


class TestPlatformPersistence:
    def test_round_trip_rows_and_blobs(self, populated, tmp_path):
        platform, records = populated
        save_platform(platform, tmp_path / "snap")
        restored = load_platform(tmp_path / "snap")
        assert restored.db.row_counts() == platform.db.row_counts()
        for image_id in platform.image_ids():
            assert restored.image(image_id) == platform.image(image_id)

    def test_queries_survive_reload(self, populated, tmp_path):
        platform, records = populated
        region = BoundingBox(34.03, -118.27, 34.06, -118.23)
        queries = [
            SpatialQuery(region=region, mode="camera"),
            TextualQuery(text="encampment tent"),
            CategoricalQuery("street_cleanliness", labels=("clean",)),
            VisualQuery(
                extractor_name="color_hsv_20_20_10", example=records[0].image, k=5
            ),
        ]
        before = [platform.execute(q) for q in queries]
        save_platform(platform, tmp_path / "snap")
        restored = load_platform(tmp_path / "snap")
        # Extractors are code, not data: re-register after load.
        restored.register_extractor(ColorHistogramExtractor())
        after = [restored.execute(q) for q in queries]
        for b, a in zip(before, after):
            assert {r.image_id for r in b} == {r.image_id for r in a}

    def test_dedup_state_survives(self, populated, tmp_path):
        platform, records = populated
        save_platform(platform, tmp_path / "snap")
        restored = load_platform(tmp_path / "snap")
        receipt = restored.upload_image(
            records[0].image, records[0].fov, 0.0, 1.0
        )
        assert receipt.deduplicated

    def test_upload_continues_after_reload(self, populated, tmp_path):
        platform, _ = populated
        save_platform(platform, tmp_path / "snap")
        restored = load_platform(tmp_path / "snap")
        fresh = generate_lasan_dataset(n_per_class=1, image_size=32, seed=99)[0]
        receipt = restored.upload_image(fresh.image, fresh.fov, 0.0, 1.0)
        assert not receipt.deduplicated
        assert receipt.image_id not in platform.image_ids()

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(TVDPError):
            load_platform(tmp_path / "nothing")


class TestExplain:
    def test_spatial_plan(self, populated):
        platform, _ = populated
        plan = explain(
            platform,
            SpatialQuery(
                region=BoundingBox(34.0, -118.3, 34.1, -118.2),
                direction_deg=90.0,
            ),
        )
        assert plan.query_type == "spatial"
        assert "oriented_rtree" in plan.access_path
        assert "direction_filter" in plan.details
        assert plan.rows is None

    def test_visual_plan_modes(self, populated):
        platform, records = populated
        topk = explain(
            platform,
            VisualQuery(extractor_name="color_hsv_20_20_10", example=records[0].image),
        )
        assert "query_topk" in topk.access_path
        radius = explain(
            platform,
            VisualQuery(
                extractor_name="color_hsv_20_20_10",
                example=records[0].image,
                max_distance=0.5,
            ),
        )
        assert "query_radius" in radius.access_path

    def test_hybrid_spatial_visual_uses_hybrid_index(self, populated):
        platform, records = populated
        plan = explain(
            platform,
            HybridQuery(
                queries=(
                    SpatialQuery(region=BoundingBox(34.0, -118.3, 34.1, -118.2)),
                    VisualQuery(
                        extractor_name="color_hsv_20_20_10", example=records[0].image
                    ),
                )
            ),
        )
        assert "visual_rtree" in plan.access_path
        assert len(plan.children) == 2

    def test_generic_hybrid_intersection(self, populated):
        platform, _ = populated
        plan = explain(
            platform,
            HybridQuery(
                queries=(
                    TemporalQuery(start=0.0),
                    CategoricalQuery("street_cleanliness", labels=("clean",)),
                )
            ),
        )
        assert "intersect" in plan.access_path
        assert len(plan.children) == 2

    def test_analyze_fills_rows_and_time(self, populated):
        platform, _ = populated
        plan = explain(platform, TemporalQuery(start=0.0), analyze=True)
        assert plan.rows == 20
        assert plan.elapsed_ms is not None and plan.elapsed_ms >= 0.0

    def test_render(self, populated):
        platform, _ = populated
        plan = explain(platform, TextualQuery(text="trash"), analyze=True)
        text = plan.render()
        assert "inverted_index" in text
        assert "rows=" in text

    def test_unknown_query_raises(self, populated):
        platform, _ = populated
        with pytest.raises(QueryError):
            explain(platform, object())
