"""EXPLAIN-ANALYZE plan instrumentation and query-shape normalization."""

import pytest

from repro import obs
from repro.core import (
    CategoricalQuery,
    HybridQuery,
    SpatialQuery,
    TemporalQuery,
    TextualQuery,
    TVDP,
    VisualQuery,
    explain,
)
from repro.core.queries import query_shape
from repro.datasets import generate_lasan_dataset
from repro.errors import QueryError
from repro.features import ColorHistogramExtractor
from repro.geo import BoundingBox, GeoPoint
from repro.imaging import CLEANLINESS_CLASSES


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture()
def populated():
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
    records = generate_lasan_dataset(n_per_class=4, image_size=32, seed=0)
    for record in records:
        receipt = platform.upload_image(
            record.image, record.fov, record.captured_at, record.uploaded_at,
            keywords=record.keywords,
        )
        platform.annotations.annotate(
            receipt.image_id, "street_cleanliness", record.label, 1.0, "human"
        )
    platform.extract_features("color_hsv_20_20_10")
    return platform, records


class TestQueryShape:
    def test_shape_is_literal_free(self):
        a = SpatialQuery(region=BoundingBox(34.0, -118.3, 34.1, -118.2))
        b = SpatialQuery(region=BoundingBox(40.0, -74.1, 40.1, -74.0))
        assert query_shape(a) == query_shape(b) == "spatial(mode=scene,region)"

    def test_structural_parameters_stay_in_shape(self):
        point = SpatialQuery(
            point=GeoPoint(34.0, -118.3), radius_m=100.0, direction_deg=90.0
        )
        assert query_shape(point) == "spatial(mode=scene,point+radius,direction)"
        assert (
            query_shape(VisualQuery(extractor_name="hsv", vector=[0.1], k=5))
            == "visual(extractor=hsv,k=5)"
        )
        assert (
            query_shape(
                VisualQuery(extractor_name="hsv", vector=[0.1], k=5, max_distance=0.5)
            )
            == "visual(extractor=hsv,k=5,radius)"
        )

    def test_categorical_textual_temporal_shapes(self):
        assert (
            query_shape(
                CategoricalQuery(
                    "street_cleanliness",
                    labels=("clean", "trash"),
                    min_confidence=0.5,
                    source="human",
                )
            )
            == "categorical(classification=street_cleanliness,labels=2,"
            "min_confidence,source=human)"
        )
        assert (
            query_shape(TextualQuery(text="tent encampment", match="all"))
            == "textual(match=all,terms=2)"
        )
        assert (
            query_shape(TemporalQuery(start=1.0))
            == "temporal(field=timestamp_capturing,start)"
        )
        assert (
            query_shape(TemporalQuery(start=1.0, end=2.0))
            == "temporal(field=timestamp_capturing,start+end)"
        )

    def test_hybrid_shape_composes_recursively(self):
        hybrid = HybridQuery(
            queries=(
                SpatialQuery(region=BoundingBox(34.0, -118.3, 34.1, -118.2)),
                VisualQuery(extractor_name="hsv", vector=[0.1], k=3),
            )
        )
        assert (
            query_shape(hybrid)
            == "hybrid(spatial(mode=scene,region)+visual(extractor=hsv,k=3))"
        )

    def test_unknown_type_raises(self):
        with pytest.raises(QueryError):
            query_shape(object())


class TestAnalyzeNodes:
    def test_analyze_fills_counter_deltas_and_shape(self, populated):
        platform, _ = populated
        plan = explain(platform, TemporalQuery(start=0.0), analyze=True)
        assert plan.rows == 20
        assert plan.shape == "temporal(field=timestamp_capturing,start)"
        # Executing the query bumps at least the platform.queries probe.
        assert any(
            name.startswith("platform.queries") for name in plan.counter_deltas
        )

    def test_plain_explain_has_no_analyze_fields(self, populated):
        platform, _ = populated
        plan = explain(platform, TemporalQuery(start=0.0))
        assert plan.rows is None
        assert plan.counter_deltas == {}
        assert plan.shape is None

    def test_hybrid_children_each_get_rows_and_time(self, populated):
        platform, records = populated
        plan = explain(
            platform,
            HybridQuery(
                queries=(
                    # Deliberately (visual, spatial): the fused plan
                    # normalizes children to (spatial, visual) and the
                    # analyzer must attribute each sub-query correctly.
                    VisualQuery(
                        extractor_name="color_hsv_20_20_10",
                        example=records[0].image,
                        k=5,
                    ),
                    SpatialQuery(region=BoundingBox(34.0, -118.3, 34.1, -118.2)),
                )
            ),
            analyze=True,
        )
        assert len(plan.children) == 2
        spatial_child, visual_child = plan.children
        assert spatial_child.query_type == "spatial"
        assert spatial_child.shape == "spatial(mode=scene,region)"
        assert visual_child.query_type == "visual"
        assert visual_child.shape == "visual(extractor=color_hsv_20_20_10,k=5)"
        for child in plan.children:
            assert child.rows is not None
            assert child.elapsed_ms is not None and child.elapsed_ms >= 0.0

    def test_to_dict_round_trips_nested_structure(self, populated):
        platform, _ = populated
        plan = explain(
            platform,
            HybridQuery(
                queries=(
                    TemporalQuery(start=0.0),
                    CategoricalQuery("street_cleanliness", labels=("clean",)),
                )
            ),
            analyze=True,
        )
        as_dict = plan.to_dict()
        assert as_dict["query_type"] == "hybrid"
        assert len(as_dict["children"]) == 2
        assert all(c["rows"] is not None for c in as_dict["children"])
        import json

        json.dumps(as_dict)  # must be JSON-serialisable for the API

    def test_analyze_attaches_plan_to_active_span(self, populated):
        platform, _ = populated
        with obs.span("test.explain") as sp:
            explain(platform, TemporalQuery(start=0.0), analyze=True)
            attached = sp.attrs.get("plan")
        assert attached is not None
        assert attached["query_type"] == "temporal"
        assert attached["rows"] == 20

    def test_render_includes_probe_line(self, populated):
        platform, _ = populated
        plan = explain(
            platform, TextualQuery(text="trash encampment"), analyze=True
        )
        text = plan.render()
        assert "probes:" in text
        assert "rows=" in text

    def test_analyze_feeds_hot_query_tracker(self, populated):
        platform, _ = populated
        explain(platform, TemporalQuery(start=0.0), analyze=True)
        shapes = [e["shape"] for e in obs.hot_queries().top()]
        assert "temporal(field=timestamp_capturing,start)" in shapes


class TestCostAnnotations:
    """Static COST_MODEL annotations on plan nodes, cross-checked
    against the probe counters ANALYZE actually measures."""

    def test_spatial_visual_hybrid_plans_carry_cost(self, populated):
        platform, records = populated
        spatial = SpatialQuery(region=BoundingBox(34.0, -118.3, 34.1, -118.2))
        visual = VisualQuery(
            extractor_name="color_hsv_20_20_10", example=records[0].image, k=5
        )
        for query in (spatial, visual):
            plan = explain(platform, query)
            assert plan.cost is not None
            assert plan.cost["cost"].startswith("O(")
        hybrid_plan = explain(platform, HybridQuery(queries=(spatial, visual)))
        assert hybrid_plan.cost is not None
        for child in hybrid_plan.children:
            assert child.cost is not None

    def test_dominant_counters_move_under_analyze(self, populated):
        """The model's claim is checkable: ANALYZE on a spatial query
        must bump at least one counter the annotation calls dominant."""
        platform, _ = populated
        plan = explain(
            platform,
            SpatialQuery(region=BoundingBox(34.0, -118.3, 34.1, -118.2)),
            analyze=True,
        )
        dominant = plan.cost["dominant_counters"]
        assert dominant
        moved = [
            name for name in dominant if plan.counter_deltas.get(name, 0) > 0
        ]
        assert moved, (
            f"none of the declared dominant counters {dominant} moved; "
            f"measured deltas: {plan.counter_deltas}"
        )

    def test_render_and_dict_include_cost(self, populated):
        platform, _ = populated
        plan = explain(
            platform, SpatialQuery(region=BoundingBox(34.0, -118.3, 34.1, -118.2))
        )
        assert "cost:" in plan.render()
        as_dict = plan.to_dict()
        assert as_dict["cost"]["dominant_counters"]


class TestAnalyzeBilling:
    def test_bare_analyze_bills_the_usage_table_as_local(self, populated):
        platform, _ = populated
        region = BoundingBox(34.0, -118.3, 34.1, -118.2)
        explain(platform, SpatialQuery(region=region), analyze=True)
        report = obs.usage().report()
        [row] = report["by_principal"]
        assert row["key"] == "local"
        assert row["charges"].get("probes.rtree", 0) > 0
        assert [r["key"] for r in report["by_shape"]] == [
            "spatial(mode=scene,region)"
        ]
        assert [r["key"] for r in report["by_operation"]] == ["execute.spatial"]

    def test_analyze_under_a_ledger_bills_the_enclosing_principal(self, populated):
        from repro.obs.accounting import UsageTable, ledger_scope

        platform, _ = populated
        table = UsageTable()
        region = BoundingBox(34.0, -118.3, 34.1, -118.2)
        with ledger_scope(table=table, principal="key:abcd1234") as outer:
            explain(platform, SpatialQuery(region=region), analyze=True)
        assert outer.charges.get("probes.rtree", 0) > 0
        [row] = table.report()["by_principal"]
        assert row["key"] == "key:abcd1234"
        # Nothing leaked to the process-wide table as a duplicate bill.
        assert obs.usage().report()["by_principal"] == []
