"""Whole-program symbol table and call graph construction."""

from __future__ import annotations

import pytest

from repro.devtools.callgraph import build_call_graph, build_symbol_table


@pytest.fixture
def build(make_package):
    def _build(files):
        root, modules = make_package(files)
        table = build_symbol_table(modules, root)
        graph = build_call_graph(table)
        return table, graph

    return _build


class TestSymbolTable:
    def test_indexes_functions_classes_methods(self, build):
        table, _ = build(
            {
                "core/engine.py": """
                    class Engine:
                        def start(self):
                            return 1

                        def _spin(self):
                            return 2

                    def helper():
                        return 3
                """,
            }
        )
        assert table.symbols["pkg.core.engine.Engine"].kind == "class"
        assert table.symbols["pkg.core.engine.Engine.start"].kind == "method"
        assert table.symbols["pkg.core.engine.helper"].kind == "function"
        assert table.symbols["pkg.core.engine.Engine._spin"].is_public is False

    def test_resolves_reexports_through_init(self, build):
        table, _ = build(
            {
                "core/engine.py": "class Engine:\n    def start(self):\n        return 1\n",
                "core/__init__.py": "from pkg.core.engine import Engine\n",
            }
        )
        assert table.resolve_export("pkg.core.Engine") == "pkg.core.engine.Engine"

    def test_method_lookup_follows_base_classes(self, build):
        table, _ = build(
            {
                "a.py": "class Base:\n    def ping(self):\n        return 1\n",
                "b.py": (
                    "from pkg.a import Base\n"
                    "\n"
                    "class Child(Base):\n"
                    "    pass\n"
                ),
            }
        )
        assert table.method_on("pkg.b.Child", "ping") == "pkg.a.Base.ping"


class TestCallGraph:
    def test_direct_and_self_calls_resolve(self, build):
        _, graph = build(
            {
                "m.py": """
                    def low():
                        return 1

                    class Box:
                        def outer(self):
                            return self.inner() + low()

                        def inner(self):
                            return 2
                """,
            }
        )
        callees = graph.callees("pkg.m.Box.outer")
        assert "pkg.m.Box.inner" in callees
        assert "pkg.m.low" in callees

    def test_constructor_calls_edge_to_init(self, build):
        _, graph = build(
            {
                "m.py": """
                    class Thing:
                        def __init__(self):
                            self.x = 1

                    def make():
                        return Thing()
                """,
            }
        )
        assert "pkg.m.Thing.__init__" in graph.callees("pkg.m.make")

    def test_return_annotation_chaining(self, build):
        """``registry().counter()`` resolves through the accessor's
        return annotation to the class method."""
        _, graph = build(
            {
                "metrics.py": """
                    class Registry:
                        def counter(self, name: str):
                            return name

                    _r = Registry()

                    def registry() -> Registry:
                        return _r

                    def use():
                        return registry().counter("hits")
                """,
            }
        )
        assert "pkg.metrics.Registry.counter" in graph.callees("pkg.metrics.use")

    def test_module_variable_type_inference(self, build):
        _, graph = build(
            {
                "m.py": """
                    class Tracer:
                        def add(self):
                            return 1

                    _tracer = Tracer()

                    def wire():
                        _tracer.add()
                """,
            }
        )
        assert "pkg.m.Tracer.add" in graph.callees("pkg.m.wire")

    def test_parameter_annotation_dispatch(self, build):
        _, graph = build(
            {
                "m.py": """
                    class Sink:
                        def push(self, item):
                            return item

                    def feed(sink: Sink):
                        sink.push(1)
                """,
            }
        )
        assert "pkg.m.Sink.push" in graph.callees("pkg.m.feed")

    def test_unresolved_calls_kept_as_sites(self, build):
        _, graph = build(
            {
                "m.py": """
                    def f():
                        return open("x")
                """,
            }
        )
        sites = graph.sites_by_caller["pkg.m.f"]
        assert any(s.raw == "open" and s.callee is None for s in sites)

    def test_reachability(self, build):
        _, graph = build(
            {
                "m.py": """
                    def a():
                        return b()

                    def b():
                        return c()

                    def c():
                        return 1

                    def island():
                        return 2
                """,
            }
        )
        reachable = graph.reachable(("pkg.m.a",))
        assert {"pkg.m.a", "pkg.m.b", "pkg.m.c"} <= reachable
        assert "pkg.m.island" not in reachable


class TestInferenceBlindSpots:
    """Decorators, @property accessors, functools.partial, and container
    element types — the shapes the shard-readiness passes lean on."""

    def test_decorators_recorded_on_symbols(self, build):
        table, _ = build(
            {
                "m.py": """
                    import functools

                    def wrap(fn):
                        return fn

                    class Box:
                        @property
                        def size(self) -> int:
                            return 1

                        @functools.cached_property
                        def heavy(self) -> int:
                            return 2

                    @wrap
                    def decorated():
                        return 3
                """,
            }
        )
        assert table.symbols["pkg.m.Box.size"].decorators == ("property",)
        assert table.symbols["pkg.m.Box.size"].is_property
        assert table.symbols["pkg.m.Box.heavy"].is_property
        assert table.symbols["pkg.m.decorated"].decorators == ("wrap",)
        assert not table.symbols["pkg.m.decorated"].is_property

    def test_decorated_function_still_resolves_as_callee(self, build):
        _, graph = build(
            {
                "m.py": """
                    def wrap(fn):
                        return fn

                    @wrap
                    def target():
                        return 1

                    def caller():
                        return target()
                """,
            }
        )
        assert "pkg.m.target" in graph.callees("pkg.m.caller")

    def test_property_return_annotation_chains(self, build):
        """``self.owner.store.put()`` resolves through an annotated
        @property accessor, not just plain attribute types."""
        _, graph = build(
            {
                "m.py": """
                    class Store:
                        def put(self, item):
                            return item

                    class Owner:
                        @property
                        def store(self) -> Store:
                            return Store()

                    class User:
                        def __init__(self):
                            self.owner = Owner()

                        def go(self):
                            self.owner.store.put(1)
                """,
            }
        )
        assert "pkg.m.Store.put" in graph.callees("pkg.m.User.go")

    def test_functools_partial_adds_edge(self, build):
        _, graph = build(
            {
                "m.py": """
                    import functools

                    def worker(tag, item):
                        return (tag, item)

                    def bind():
                        return functools.partial(worker, "hot")
                """,
            }
        )
        assert "pkg.m.worker" in graph.callees("pkg.m.bind")

    def test_bare_partial_import_adds_edge(self, build):
        _, graph = build(
            {
                "m.py": """
                    from functools import partial

                    def worker(item):
                        return item

                    def bind():
                        return partial(worker)
                """,
            }
        )
        assert "pkg.m.worker" in graph.callees("pkg.m.bind")

    def test_container_element_annotation_types_subscript_reads(self, build):
        """``self._lsh: dict[str, LSH]`` makes ``self._lsh[k].query()``
        resolve — the platform's per-extractor index maps."""
        table, graph = build(
            {
                "m.py": """
                    class LSH:
                        def query(self, v):
                            return v

                    class Platform:
                        def __init__(self):
                            self._lsh: dict[str, LSH] = {}

                        def run(self, name, v):
                            index = self._lsh[name]
                            return index.query(v)
                """,
            }
        )
        assert table.attr_elem_types["pkg.m.Platform"]["_lsh"] == "pkg.m.LSH"
        assert "pkg.m.LSH.query" in graph.callees("pkg.m.Platform.run")
