"""Dead-code pass over the whole-program symbol table."""

from __future__ import annotations

import pytest

from repro.devtools.callgraph import build_symbol_table
from repro.devtools.deadcode import check_dead_code


@pytest.fixture
def run(make_package, tmp_path):
    def _run(files, examples=None):
        root, modules = make_package(files)
        if examples:
            ex_dir = tmp_path / "examples"
            ex_dir.mkdir(exist_ok=True)
            for rel, source in examples.items():
                (ex_dir / rel).write_text(source)
        table = build_symbol_table(modules, root)
        return check_dead_code(table, modules, repo_root=tmp_path)

    return _run


def test_unreferenced_public_function_flagged(run):
    findings = run({"m.py": "def orphan():\n    return 1\n"})
    assert len(findings) == 1
    assert findings[0].scope == "pkg.m.orphan"
    assert "never referenced" in findings[0].message


def test_cross_module_reference_keeps_alive(run):
    findings = run(
        {
            "m.py": "def used():\n    return 1\n",
            "caller.py": "from pkg.m import used\n\ndef go():\n    return used()\n",
        }
    )
    assert [f for f in findings if f.scope == "pkg.m.used"] == []


def test_example_reference_keeps_alive(run):
    findings = run(
        {"m.py": "def demo_api():\n    return 1\n"},
        examples={"demo.py": "from pkg.m import demo_api\n\nprint(demo_api())\n"},
    )
    assert findings == []


def test_private_symbols_exempt(run):
    findings = run({"m.py": "def _helper():\n    return 1\n"})
    assert findings == []


def test_methods_exempt(run):
    # Methods live and die with their class; only the class itself needs
    # a referent.
    findings = run(
        {
            "m.py": "class Box:\n    def never_called(self):\n        return 1\n",
            "caller.py": "from pkg.m import Box\n\nb = Box()\n",
        }
    )
    assert findings == []


def test_own_module_use_keeps_alive(run):
    findings = run(
        {"m.py": "def helper():\n    return 1\n\n_CACHE = helper()\n"}
    )
    assert findings == []


def test_main_is_implicit(run):
    findings = run({"m.py": "def main():\n    return 0\n"})
    assert findings == []


def test_all_listing_does_not_count(run):
    findings = run({"m.py": "__all__ = ['orphan']\n\ndef orphan():\n    return 1\n"})
    assert len(findings) == 1


def test_allow_comment_suppresses(run):
    findings = run(
        {
            "m.py": (
                "# devtools: allow[dead-code] — intentional API surface\n"
                "def orphan():\n"
                "    return 1\n"
            ),
        }
    )
    assert findings == []
