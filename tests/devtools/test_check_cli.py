"""The ``python -m repro.devtools.check`` CLI: exit codes, JSON, baseline."""

from __future__ import annotations

import json

import pytest

from repro.devtools.check import ALL_RULES, main, run_check

#: One seeded violation per rule class, all in one mini-package.
SEEDED = {
    "low/base.py": "VALUE = 1\n",
    "top/fine.py": "from pkg.low.base import VALUE\n",
    "low/upward.py": "from pkg.top.fine import VALUE\n",  # layer-boundary
    "low/state.py": "_CACHE = {}\n\ndef put(k, v):\n    _CACHE[k] = v\n",
    "index/structure.py": (
        "class Index:\n"
        "    def __init__(self):\n"
        "        self._items = []\n"
        "    def insert(self, item):\n"
        "        self._items.append(item)\n"  # unlocked-mutation
    ),
    "low/lints.py": (
        "def risky(fn, into=[]):\n"  # mutable-default
        "    try:\n"
        "        into.append(fn())\n"
        "    except Exception:\n"  # broad-except
        "        print('oops')\n"  # no-print
        "    return into\n"
    ),
    "low/sites.py": "from pkg.low.base import VALUE\n\nBAD = {'lat': 34.0}\n\ndef f(g):\n    return g(lat=-118.24, lng=34.05)\n",
    "low/waits.py": (
        "import time\n"
        "\n"
        "def poll():\n"
        "    time.sleep(0.5)\n"  # no-sleep
    ),
    "low/locks.py": (  # lock-order: two-lock inversion
        "import threading\n"
        "\n"
        "_a = threading.Lock()\n"
        "_b = threading.Lock()\n"
        "\n"
        "def ab():\n"
        "    with _a:\n"
        "        with _b:\n"
        "            pass\n"
        "\n"
        "def ba():\n"
        "    with _b:\n"
        "        with _a:\n"
        "            pass\n"
    ),
    "low/entropy.py": (  # determinism: process-global RNG
        "import random\n"
        "\n"
        "def jitter():\n"
        "    return random.random()\n"
    ),
    "api/entry.py": (  # exception-flow: builtin escaping the taxonomy
        "def handle():\n"
        "    raise RuntimeError('boom')\n"
    ),
    "index/pickled.py": (  # picklability: lock with no getstate/setstate
        "import threading\n"
        "\n"
        "class Sharded:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
    ),
    "core/platform.py": (  # process-safety: unclassified mutated global;
        "import threading\n"  # hot-path: sorted() inside a data-plane loop
        "\n"
        "_STATS = {}\n"
        "\n"
        "\n"
        "class Store:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._data = {}\n"
        "\n"
        "    def put(self, k, v):\n"
        "        with self._lock:\n"
        "            self._data[k] = v\n"
        "\n"
        "    def size(self):\n"
        "        return len(self._data)\n"  # atomicity: unlocked read-gap
        "\n"
        "\n"
        "class TVDP:\n"
        "    def __init__(self):\n"
        "        self._seen = {}\n"
        "        self.store = Store()\n"
        "\n"
        "    def execute(self, query):\n"
        "        _STATS[query.name] = 1\n"
        "        self._seen[query.name] = 1\n"  # thread-escape: no lock
        "        self.store.put(query.name, self.store.size())\n"
        "        out = []\n"
        "        for group in query.groups:\n"
        "            out.extend(sorted(group))\n"
        "        return out\n"
    ),
    "api/web.py": (  # blocking-in-handler: file IO in a routed handler
        "class WebService:\n"
        "    def __init__(self, router):\n"
        "        router.add('GET', '/dump', self._dump)\n"
        "\n"
        "    def _dump(self, request):\n"
        "        with open('/tmp/state.json') as fh:\n"
        "            return fh.read()\n"
    ),
    # dead-code fires on the unreferenced public defs above (put, Index,
    # risky, poll, ...) without extra seeding.
}


@pytest.fixture
def seeded_tree(make_package):
    from tests.devtools.conftest import TINY_LAYERS

    root, _ = make_package(SEEDED)
    critical = ("*/pkg/index/*.py",)
    return root, TINY_LAYERS, critical


def _run(root, layers, critical, **kwargs):
    return run_check(
        root=root,
        repo_root=root.parent,
        layer_config=layers,
        critical_globs=critical,
        **kwargs,
    )


class TestRunCheck:
    def test_every_rule_fires_on_seeded_tree(self, seeded_tree):
        result = _run(*seeded_tree)
        assert not result.ok
        assert set(result.by_rule) == set(ALL_RULES)

    def test_select_restricts_rules(self, seeded_tree):
        root, layers, critical = seeded_tree
        result = _run(root, layers, critical, select=("no-print",))
        assert set(result.by_rule) == {"no-print"}

    def test_unknown_rule_rejected(self, seeded_tree):
        root, layers, critical = seeded_tree
        with pytest.raises(ValueError, match="unknown rule"):
            _run(root, layers, critical, select=("not-a-rule",))

    def test_baseline_absorbs_one_occurrence_each(self, seeded_tree):
        root, layers, critical = seeded_tree
        first = _run(root, layers, critical)
        baseline = [f.fingerprint for f in first.findings]
        second = _run(root, layers, critical, baseline=baseline)
        assert second.ok
        assert len(second.suppressed) == len(first.findings)
        # A duplicated entry must not grant a second free violation.
        third = _run(root, layers, critical, baseline=baseline[1:])
        assert len(third.new) == 1


class TestCli:
    def test_exit_one_and_report_on_findings(self, seeded_tree, tmp_path, capsys):
        root, _, _ = seeded_tree
        rc = main(["--root", str(root), "--repo-root", str(tmp_path), "--no-baseline"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "new finding(s)" in out
        assert "[no-print]" in out

    def test_json_report_shape(self, seeded_tree, tmp_path, capsys):
        root, _, _ = seeded_tree
        rc = main(
            ["--root", str(root), "--repo-root", str(tmp_path), "--no-baseline", "--json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert report["ok"] is False
        assert report["counts"]["new"] == len(report["new_findings"])
        sample = report["new_findings"][0]
        assert {"rule", "path", "line", "message", "fingerprint"} <= set(sample)

    def test_write_baseline_then_green(self, seeded_tree, tmp_path, capsys):
        root, _, _ = seeded_tree
        baseline = tmp_path / "baseline.json"
        args = ["--root", str(root), "--repo-root", str(tmp_path), "--baseline", str(baseline)]
        assert main([*args, "--write-baseline"]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(args) == 0
        assert "baselined" in capsys.readouterr().out

    def test_unknown_select_exits_two(self, seeded_tree, tmp_path, capsys):
        root, _, _ = seeded_tree
        rc = main(
            ["--root", str(root), "--repo-root", str(tmp_path), "--select", "bogus"]
        )
        assert rc == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_passes(self, capsys):
        from repro.devtools.check import PASSES

        assert main(["--list-passes"]) == 0
        out = capsys.readouterr().out
        for name in PASSES:
            assert f"{name}:" in out
        assert "picklability" in out

    def test_only_selects_pass_rules(self, seeded_tree, tmp_path, capsys):
        root, _, _ = seeded_tree
        rc = main(
            [
                "--root", str(root), "--repo-root", str(tmp_path),
                "--no-baseline", "--only", "picklability", "--json",
            ]
        )
        report = json.loads(capsys.readouterr().out)
        assert rc == 1
        fired = {f["rule"] for f in report["new_findings"]}
        assert fired == {"picklability"}

    def test_unknown_only_exits_two(self, seeded_tree, tmp_path, capsys):
        root, _, _ = seeded_tree
        rc = main(
            ["--root", str(root), "--repo-root", str(tmp_path), "--only", "bogus"]
        )
        assert rc == 2
        assert "unknown pass" in capsys.readouterr().err

    def test_sarif_report(self, seeded_tree, tmp_path, capsys):
        root, _, _ = seeded_tree
        sarif_path = tmp_path / "out.sarif"
        main(
            [
                "--root", str(root), "--repo-root", str(tmp_path),
                "--no-baseline", "--sarif", str(sarif_path),
            ]
        )
        capsys.readouterr()
        document = json.loads(sarif_path.read_text())
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.devtools.check"
        assert run["results"]
        sample = run["results"][0]
        assert {"ruleId", "message", "locations", "partialFingerprints"} <= set(sample)

    def test_github_annotations(self, seeded_tree, tmp_path, capsys):
        root, _, _ = seeded_tree
        main(
            [
                "--root", str(root), "--repo-root", str(tmp_path),
                "--no-baseline", "--github-annotations",
            ]
        )
        out = capsys.readouterr().out
        assert "::error file=" in out

    def test_write_manifest(self, make_package, tmp_path, capsys):
        root, _ = make_package(
            {
                "core/platform.py": (
                    "import threading\n"
                    "\n"
                    "_PLANNER_LOCK = threading.Lock()\n"
                    "\n"
                    "class TVDP:\n"
                    "    def execute(self, query):\n"
                    "        with _PLANNER_LOCK:\n"
                    "            return []\n"
                ),
            }
        )
        args = ["--root", str(root), "--repo-root", str(tmp_path)]
        manifest_file = tmp_path / "tools" / "shard_safety_manifest.json"
        manifest_file.parent.mkdir()

        # Without the manifest the pass gates; --write-manifest heals it.
        rc = main([*args, "--no-baseline", "--only", "process-safety"])
        assert rc == 1
        capsys.readouterr()
        assert main([*args, "--write-manifest"]) == 0
        assert "wrote 1 classification(s)" in capsys.readouterr().out
        document = json.loads(manifest_file.read_text())
        assert document["schema"] == 1
        (entry,) = document["entries"]
        assert entry["name"] == "_PLANNER_LOCK"
        assert main([*args, "--no-baseline", "--only", "process-safety"]) == 0


class TestBaselineRatchet:
    """The ratchet only shrinks: dead suppressions are failures."""

    #: ``core`` is in the default layer DAG, so this tree has no findings.
    CLEAN = {"core/fine.py": "VALUE = 1\n"}

    def test_stale_baseline_fails_even_when_tree_is_clean(
        self, make_package, tmp_path, capsys
    ):
        root, _ = make_package(self.CLEAN)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(["no-print:low/gone.py:gone"]), encoding="utf-8"
        )
        rc = main(
            ["--root", str(root), "--repo-root", str(tmp_path), "--baseline", str(baseline)]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "stale baseline" in out
        assert "--trim-baseline" in out

    def test_trim_baseline_drops_dead_entries(self, make_package, tmp_path, capsys):
        root, _ = make_package(self.CLEAN)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(["no-print:low/gone.py:gone"]), encoding="utf-8"
        )
        args = ["--root", str(root), "--repo-root", str(tmp_path), "--baseline", str(baseline)]
        assert main([*args, "--trim-baseline"]) == 0
        assert "trimmed 1 stale entr" in capsys.readouterr().out
        assert json.loads(baseline.read_text())["suppressions"] == []
        assert main(args) == 0


class TestChangedOnly:
    def _git(self, cwd, *argv):
        import subprocess

        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
            cwd=cwd, check=True, capture_output=True,
        )

    @pytest.fixture
    def committed_tree(self, seeded_tree, tmp_path):
        root, _, _ = seeded_tree
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", "-A")
        self._git(tmp_path, "commit", "-qm", "seed")
        return root, tmp_path

    def test_unchanged_tree_is_green(self, committed_tree, capsys):
        root, repo = committed_tree
        rc = main(
            [
                "--root", str(root), "--repo-root", str(repo),
                "--no-baseline", "--changed-only", "HEAD",
            ]
        )
        assert rc == 0, capsys.readouterr().out
        # The same tree without the restriction still fails: the filter,
        # not the tree, made the run green.
        capsys.readouterr()
        assert main(["--root", str(root), "--repo-root", str(repo), "--no-baseline"]) == 1

    def test_findings_match_full_run_on_changed_files(self, committed_tree, capsys):
        """Parity pin: the restricted run reports exactly the full run's
        findings for the files that changed — no more, no fewer."""
        root, repo = committed_tree
        target = root / "low" / "lints.py"
        target.write_text(target.read_text() + "\n# touched\n", encoding="utf-8")

        main(["--root", str(root), "--repo-root", str(repo), "--no-baseline", "--json"])
        full = json.loads(capsys.readouterr().out)
        rc = main(
            [
                "--root", str(root), "--repo-root", str(repo),
                "--no-baseline", "--changed-only", "HEAD", "--json",
            ]
        )
        restricted = json.loads(capsys.readouterr().out)
        assert rc == 1
        changed_path = target.relative_to(repo).as_posix()
        expected = {
            f["fingerprint"] for f in full["new_findings"] if f["path"] == changed_path
        }
        assert expected
        assert {f["fingerprint"] for f in restricted["new_findings"]} == expected

    def test_stale_baseline_is_waived_for_incremental_runs(
        self, committed_tree, tmp_path, capsys
    ):
        root, repo = committed_tree
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(["no-print:low/gone.py:gone"]), encoding="utf-8"
        )
        rc = main(
            [
                "--root", str(root), "--repo-root", str(repo),
                "--baseline", str(baseline), "--changed-only", "HEAD",
            ]
        )
        capsys.readouterr()
        # Incremental runs answer "did MY change add findings"; only the
        # full run owns the ratchet.
        assert rc == 0

    def test_outside_a_repo_exits_two(self, seeded_tree, tmp_path, capsys):
        root, _, _ = seeded_tree
        rc = main(
            [
                "--root", str(root), "--repo-root", str(tmp_path),
                "--no-baseline", "--changed-only", "HEAD",
            ]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err


def test_shipped_tree_is_clean(capsys):
    """The acceptance gate: the repo's own source passes every rule with
    an empty baseline."""
    rc = main(["--no-baseline"])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "0 new" in out
