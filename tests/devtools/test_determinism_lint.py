"""Determinism lint: entropy, wall-clock, and set-order escapes."""

from __future__ import annotations

import pytest

from repro.devtools.determinism import check_determinism


@pytest.fixture
def lint(make_package):
    def _lint(source, filename="m.py", **kwargs):
        _, modules = make_package({filename: source})
        return check_determinism(modules, **kwargs)

    return _lint


class TestEntropyAndClock:
    def test_global_rng_flagged(self, lint):
        findings = lint("import random\n\ndef jitter():\n    return random.random()\n")
        assert len(findings) == 1
        assert "seeded" in findings[0].message

    def test_seeded_rng_instance_is_clean(self, lint):
        findings = lint(
            "import random\n\ndef jitter(seed):\n    return random.Random(seed).random()\n"
        )
        assert findings == []

    def test_wall_clock_flagged(self, lint):
        findings = lint("import time\n\ndef stamp():\n    return time.time()\n")
        assert len(findings) == 1
        assert "resilience.Clock" in findings[0].message

    def test_raw_entropy_flagged(self, lint):
        findings = lint("import os\n\ndef token():\n    return os.urandom(16)\n")
        assert len(findings) == 1

    def test_unseeded_default_rng_flagged(self, lint):
        findings = lint(
            "from numpy.random import default_rng\n\ndef r():\n    return default_rng()\n"
        )
        assert len(findings) == 1
        assert "seed" in findings[0].message

    def test_seeded_default_rng_is_clean(self, lint):
        findings = lint(
            "from numpy.random import default_rng\n\ndef r(seed):\n    return default_rng(seed)\n"
        )
        assert findings == []


class TestSetIteration:
    def test_for_over_set_call_flagged(self, lint):
        findings = lint("def f(items):\n    for x in set(items):\n        yield x\n")
        assert len(findings) == 1
        assert "sorted" in findings[0].message

    def test_sorted_set_is_clean(self, lint):
        findings = lint(
            "def f(items):\n    for x in sorted(set(items)):\n        yield x\n"
        )
        assert findings == []

    def test_comprehension_over_set_literal_flagged(self, lint):
        findings = lint("def f(a, b):\n    return [x for x in {a, b}]\n")
        assert len(findings) == 1

    def test_set_membership_is_clean(self, lint):
        findings = lint("def f(x, allowed):\n    return x in set(allowed)\n")
        assert findings == []


class TestSuppression:
    def test_allow_comment(self, lint):
        findings = lint(
            "import time\n"
            "\n"
            "def stamp():\n"
            "    return time.time()  # devtools: allow[determinism]\n"
        )
        assert findings == []

    def test_exempt_glob_skips_module(self, lint):
        findings = lint(
            "import time\n\ndef stamp():\n    return time.time()\n",
            exempt_globs=("*/pkg/*.py",),
        )
        assert findings == []
