"""Runtime lock-order sanitizer ("tsan-lite").

These tests drive *local* :class:`LockOrderSanitizer` instances with
explicitly constructed locks, so the deliberate inversions here never
touch the process-global sanitizer that ``REPRO_SANITIZE=1`` installs
through ``tests/conftest.py`` — the suite stays green under the CI
``sanitize`` job while still proving an inverted pair is caught.
"""

from __future__ import annotations

import threading

import pytest

from repro.devtools.sanitizers import LockOrderSanitizer, _SanitizedLock


@pytest.fixture
def sanitizer():
    return LockOrderSanitizer()


class TestInversionDetection:
    def test_deliberate_inversion_across_threads_is_caught(self, sanitizer):
        """The acceptance scenario: thread one takes A then B, thread
        two takes B then A — the second thread's acquisition of A must
        record an inversion violation."""
        a = sanitizer.make_lock("A")
        b = sanitizer.make_lock("B")

        def take_a_then_b():
            with a:
                with b:
                    pass

        worker = threading.Thread(target=take_a_then_b, name="ab-thread")
        worker.start()
        worker.join()
        assert sanitizer.violations == []

        with b:
            with a:  # inverted relative to the worker thread
                pass

        assert len(sanitizer.violations) == 1
        violation = sanitizer.violations[0]
        assert violation.kind == "inversion"
        assert {violation.first, violation.second} == {"A", "B"}
        assert "ab-thread" in violation.detail
        rendered = violation.render()
        assert "[inversion]" in rendered and "A" in rendered and "B" in rendered

    def test_consistent_order_is_clean(self, sanitizer):
        a = sanitizer.make_lock("A")
        b = sanitizer.make_lock("B")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert sanitizer.violations == []
        assert sanitizer.order_edges() == {"A": ("B",)}

    def test_reentrant_rlock_is_not_an_inversion(self, sanitizer):
        r = sanitizer.make_rlock("R")
        with r:
            with r:  # reentrancy, RLock's job — not an ordering fact
                pass
        assert sanitizer.violations == []
        assert sanitizer.order_edges() == {}

    def test_instances_of_one_site_share_a_node(self, sanitizer):
        """Two locks from the same creation site (e.g. two ``Counter``
        instances) nesting in each other is instance fan-out, not an
        ordering cycle."""
        first = sanitizer.make_lock("Counter._lock")
        second = sanitizer.make_lock("Counter._lock")
        with first:
            with second:
                pass
        with second:
            with first:
                pass
        assert sanitizer.violations == []


class TestBlockingDetection:
    def test_blocking_under_lock_is_flagged(self, sanitizer):
        lock = sanitizer.make_lock("L")
        with lock:
            sanitizer.note_blocking("SystemClock.sleep")
        assert len(sanitizer.violations) == 1
        violation = sanitizer.violations[0]
        assert violation.kind == "held-across-blocking"
        assert violation.first == "L"
        assert violation.second == "SystemClock.sleep"

    def test_blocking_without_lock_is_fine(self, sanitizer):
        sanitizer.note_blocking("SystemClock.sleep")
        assert sanitizer.violations == []

    def test_reset_clears_state(self, sanitizer):
        lock = sanitizer.make_lock("L")
        with lock:
            sanitizer.note_blocking("execute")
        sanitizer.reset()
        assert sanitizer.violations == []
        assert sanitizer.order_edges() == {}


class TestInstallation:
    def test_install_wraps_only_project_locks(self, sanitizer):
        """After ``install()``, a ``threading.Lock()`` created from a
        file under ``repro/`` comes back sanitized; one created from
        anywhere else stays native."""
        sanitizer.install()
        try:
            namespace: dict = {}
            code = compile(
                "import threading\nLOCK = threading.Lock()\n",
                "/synthetic/repro/fake_module.py",  # looks like project source
                "exec",
            )
            exec(code, namespace)
            assert isinstance(namespace["LOCK"], _SanitizedLock)
            # This test file is not under a ``repro/`` directory.
            assert not isinstance(threading.Lock(), _SanitizedLock)
        finally:
            sanitizer.uninstall()

    def test_wrapped_lock_still_locks(self, sanitizer):
        lock = sanitizer.make_lock("L")
        assert lock.acquire()
        assert lock.locked()
        assert not lock.acquire(blocking=False)
        lock.release()
        assert not lock.locked()

    def test_uninstall_restores_factories(self, sanitizer):
        original_lock = threading.Lock
        original_rlock = threading.RLock
        sanitizer.install()
        sanitizer.uninstall()
        assert threading.Lock is original_lock
        assert threading.RLock is original_rlock
