"""Lock-coverage sanitizer: manifest-declared guards enforced at runtime."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.devtools.sanitizers import LockCoverageSanitizer


class Guarded:
    """A class shaped like the manifest's lock-guarded rows."""

    def __init__(self):
        self._lock = threading.Lock()
        self._data = {}
        self._items = []
        self._size = 0

    def put_locked(self, k, v):
        with self._lock:
            self._data[k] = v

    def put_unlocked(self, k, v):
        self._data[k] = v

    def bump_locked(self):
        with self._lock:
            self._size += 1

    def bump_unlocked(self):
        self._size += 1


@pytest.fixture
def sanitizer():
    cov = LockCoverageSanitizer()
    cov.instrument_class(
        Guarded, {"_data": "_lock", "_items": "_lock", "_size": "_lock"}
    )
    try:
        yield cov
    finally:
        cov.uninstrument()


class TestEnforcement:
    def test_unlocked_container_mutation_is_a_violation(self, sanitizer):
        obj = Guarded()
        obj.put_unlocked("k", 1)
        (violation,) = sanitizer.violations
        assert violation.attr == "Guarded._data"
        assert violation.op == "__setitem__"
        assert "without _lock held" in violation.render()

    def test_locked_mutation_is_clean(self, sanitizer):
        obj = Guarded()
        obj.put_locked("k", 1)
        obj.bump_locked()
        assert sanitizer.violations == []
        assert obj._data == {"k": 1}
        assert obj._size == 1

    def test_unlocked_rebind_is_a_violation(self, sanitizer):
        obj = Guarded()
        obj.bump_unlocked()  # read-modify-write rebinds _size
        (violation,) = sanitizer.violations
        assert violation.attr == "Guarded._size"
        assert violation.op == "rebind"

    def test_first_bind_in_init_is_publication_not_violation(self, sanitizer):
        Guarded()
        assert sanitizer.violations == []

    def test_violation_from_worker_thread_names_the_thread(self, sanitizer):
        obj = Guarded()
        worker = threading.Thread(
            target=obj.put_unlocked, args=("k", 1), name="hammer-0"
        )
        worker.start()
        worker.join()
        (violation,) = sanitizer.violations
        assert violation.thread == "hammer-0"

    def test_list_and_set_mutators_are_covered(self, sanitizer):
        obj = Guarded()
        obj._items.append(1)  # no lock held
        assert [v.op for v in sanitizer.violations] == ["append"]


class TestTransparency:
    def test_values_stay_visible_through_vars_and_pickle(self, sanitizer):
        obj = Guarded()
        obj.put_locked("k", 1)
        assert vars(obj)["_data"] == {"k": 1}
        # Guarded containers reduce to plain builtins so snapshots and
        # shard pickling never ship sanitizer state.
        restored = pickle.loads(pickle.dumps(obj._data))
        assert type(restored) is dict
        assert restored == {"k": 1}

    def test_uninstrument_restores_plain_attributes(self):
        cov = LockCoverageSanitizer()
        cov.instrument_class(Guarded, {"_data": "_lock"})
        cov.uninstrument()
        obj = Guarded()
        obj.put_unlocked("k", 1)  # no longer instrumented
        assert cov.violations == []
        assert type(obj._data) is dict

    def test_slotted_classes_are_skipped(self):
        class Slotted:
            __slots__ = ("_lock", "_data")

        cov = LockCoverageSanitizer()
        assert cov.instrument_class(Slotted, {"_data": "_lock"}) == 0
        cov.uninstrument()

    def test_cross_class_guards_are_skipped(self):
        cov = LockCoverageSanitizer()
        manifest = {
            "entries": [
                {
                    "attr": "tests.devtools.test_lock_coverage.Guarded._data",
                    "classification": "lock-guarded",
                    "guard": "tests.devtools.test_lock_coverage.Other._lock",
                },
            ]
        }
        assert cov.install_from_manifest(manifest) == 0
        cov.uninstrument()

    def test_install_from_manifest_resolves_by_dotted_name(self):
        cov = LockCoverageSanitizer()
        manifest = {
            "entries": [
                {
                    "attr": "tests.devtools.test_lock_coverage.Guarded._data",
                    "classification": "lock-guarded",
                    "guard": "tests.devtools.test_lock_coverage.Guarded._lock",
                },
                {
                    "attr": "tests.devtools.test_lock_coverage.Guarded._limit",
                    "classification": "immutable",
                    "guard": None,
                },
            ]
        }
        try:
            assert cov.install_from_manifest(manifest) == 1
            obj = Guarded()
            obj.put_unlocked("k", 1)
            assert len(cov.violations) == 1
        finally:
            cov.uninstrument()
