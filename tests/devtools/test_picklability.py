"""Picklability pass: unpicklable state on the shard-boundary closure."""

from __future__ import annotations

import pytest

from repro.devtools.callgraph import build_symbol_table
from repro.devtools.picklability import check_picklability


@pytest.fixture
def run(make_package):
    def _run(files, root_globs=("*/index/*.py",)):
        root, modules = make_package(files)
        table = build_symbol_table(modules, root)
        return check_picklability(modules, table, root_globs=root_globs)

    return _run


LOCKED_INDEX = """
    import threading

    class Tree:
        def __init__(self):
            self._items = []
            self._lock = threading.Lock()
"""


def test_lock_attribute_flagged(run):
    findings = run({"index/tree.py": LOCKED_INDEX})
    assert len(findings) == 1
    assert "threading lock" in findings[0].message
    assert "self._lock" in findings[0].message
    assert "__getstate__" in findings[0].message


def test_getstate_setstate_pair_clears(run):
    findings = run(
        {
            "index/tree.py": """
    import threading

    class Tree:
        def __init__(self):
            self._lock = threading.Lock()

        def __getstate__(self):
            state = self.__dict__.copy()
            del state["_lock"]
            return state

        def __setstate__(self, state):
            self.__dict__.update(state)
            self._lock = threading.Lock()
"""
        }
    )
    assert findings == []


def test_half_a_pair_is_a_finding(run):
    findings = run(
        {
            "index/tree.py": """
    import threading

    class Tree:
        def __init__(self):
            self._lock = threading.Lock()

        def __getstate__(self):
            return dict(self.__dict__)
"""
        }
    )
    assert len(findings) == 1
    assert "without __setstate__" in findings[0].message


def test_from_import_alias_resolved(run):
    findings = run(
        {
            "index/tree.py": """
    from threading import RLock

    class Tree:
        def __init__(self):
            self._lock = RLock()
"""
        }
    )
    assert len(findings) == 1
    assert "reentrant lock" in findings[0].message


def test_open_file_and_lambda_flagged(run):
    findings = run(
        {
            "index/tree.py": """
    class Tree:
        def __init__(self, path):
            self._fh = open(path)
            self._key = lambda x: x
"""
        }
    )
    descriptions = sorted(f.message.split(" holds ")[1].split(" in ")[0] for f in findings)
    assert descriptions == ["a lambda", "an open file handle"]


def test_closure_and_generator_flagged(run):
    findings = run(
        {
            "index/tree.py": """
    class Tree:
        def __init__(self):
            def helper():
                return 1
            def gen():
                yield 1
            self._fn = helper
            self._stream = gen()
"""
        }
    )
    descriptions = {f.message.split(" holds ")[1].split(" in ")[0] for f in findings}
    assert descriptions == {"a closure (nested def)", "a generator"}


def test_closure_follows_held_attribute_types(run):
    # The lock lives on a class *outside* the root globs; the root holds
    # an instance of it, so the closure must pull it in and say why.
    findings = run(
        {
            "index/tree.py": """
    from pkg.store import Store

    class Tree:
        def __init__(self):
            self._store = Store()
""",
            "store.py": """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
""",
        }
    )
    assert len(findings) == 1
    assert findings[0].path.endswith("store.py")
    assert "reachable from shard root pkg.index.tree.Tree" in findings[0].message


def test_annotated_parameter_assign_follows(run):
    findings = run(
        {
            "index/tree.py": """
    from pkg.store import Store

    class Tree:
        def __init__(self, store: Store):
            self._store = store
""",
            "store.py": """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
""",
        }
    )
    assert len(findings) == 1
    assert findings[0].path.endswith("store.py")


def test_outside_roots_not_scanned(run):
    findings = run({"other/tree.py": LOCKED_INDEX})
    assert findings == []


def test_allow_comment_suppresses(run):
    findings = run(
        {
            "index/tree.py": """
    import threading

    class Tree:
        def __init__(self):
            # devtools: allow[picklability] debug-only, never shipped
            self._lock = threading.Lock()
"""
        }
    )
    assert findings == []


def test_real_tree_is_clean():
    # The shipped indexes all carry __getstate__/__setstate__ pairs; the
    # runtime companion tools/pickle_audit.py proves they work.
    from pathlib import Path

    from repro.devtools.findings import collect_modules

    src_root = Path(__file__).resolve().parents[2] / "src" / "repro"
    modules = collect_modules(src_root, repo_root=src_root.parents[1])
    table = build_symbol_table(modules, src_root)
    assert check_picklability(modules, table) == []
