"""The mypy ratchet wrapper: parsing, baseline comparison, graceful skip."""

from __future__ import annotations

import json

from repro.devtools import typecheck

MYPY_OUTPUT = """\
src/repro/errors.py:12: error: Incompatible return value type  [return-value]
src/repro/errors.py:40:9: error: Missing type parameters  [type-arg]
src/repro/geo/point.py:7: error: Name "x" is not defined  [name-defined]
src/repro/geo/point.py:8: note: See https://mypy.readthedocs.io
Found 3 errors in 2 files (checked 100 source files)
"""


def test_errors_by_file_counts_only_errors():
    counts = typecheck.errors_by_file(MYPY_OUTPUT)
    assert counts == {"src/repro/errors.py": 2, "src/repro/geo/point.py": 1}


def test_compare_partitions_regressions_and_improvements():
    baseline = {"src/repro/errors.py": 2, "src/repro/geo/point.py": 3}
    regressions, improvements = typecheck.compare(
        {"src/repro/errors.py": 4, "src/repro/geo/point.py": 1}, baseline
    )
    assert regressions == ["src/repro/errors.py: 2 -> 4 error(s)"]
    assert improvements == ["src/repro/geo/point.py: 3 -> 1 error(s)"]


def test_new_file_with_errors_is_a_regression():
    regressions, _ = typecheck.compare({"src/repro/new.py": 1}, {})
    assert regressions == ["src/repro/new.py: 0 -> 1 error(s)"]


def test_load_baseline_roundtrip(tmp_path):
    path = tmp_path / "mypy_baseline.json"
    assert typecheck.load_mypy_baseline(path) == {}
    path.write_text(json.dumps({"files": {"a.py": 2}}), encoding="utf-8")
    assert typecheck.load_mypy_baseline(path) == {"a.py": 2}


def test_main_skips_cleanly_without_mypy(monkeypatch, capsys):
    monkeypatch.setattr(typecheck, "mypy_available", lambda: False)
    assert typecheck.main([]) == 0
    assert "skipping" in capsys.readouterr().out


def test_main_gates_on_regressions(monkeypatch, tmp_path, capsys):
    monkeypatch.setattr(typecheck, "mypy_available", lambda: True)
    monkeypatch.setattr(typecheck, "run_mypy", lambda root: (1, MYPY_OUTPUT))
    baseline = tmp_path / "baseline.json"

    # First run against an empty baseline: everything is a regression.
    assert typecheck.main(["--baseline", str(baseline)]) == 1
    assert "regressions" in capsys.readouterr().out

    # Accept the current counts, then the same output is green.
    assert typecheck.main(["--baseline", str(baseline), "--update"]) == 0
    capsys.readouterr()
    assert typecheck.main(["--baseline", str(baseline)]) == 0
    assert "no regressions" in capsys.readouterr().out
