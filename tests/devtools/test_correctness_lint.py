"""Correctness lints: broad except, mutable defaults, print, geo ranges."""

from __future__ import annotations

from repro.devtools.correctness import (
    check_broad_except,
    check_geo_literals,
    check_mutable_defaults,
    check_no_print,
)


class TestBroadExcept:
    def test_swallowing_handler_flagged(self, make_package):
        _, modules = make_package(
            {
                "low/swallow.py": """
                def load(path):
                    try:
                        return open(path).read()
                    except Exception:
                        return None
                """
            }
        )
        findings = check_broad_except(modules)
        assert [f.rule for f in findings] == ["broad-except"]
        assert findings[0].scope == "load"

    def test_bare_except_flagged(self, make_package):
        _, modules = make_package(
            {
                "low/bare.py": """
                def load(path):
                    try:
                        return open(path).read()
                    except:
                        pass
                """
            }
        )
        assert len(check_broad_except(modules)) == 1

    def test_reraising_translation_passes(self, make_package):
        _, modules = make_package(
            {
                "low/translate.py": """
                def parse(payload):
                    try:
                        return int(payload)
                    except Exception as exc:
                        raise ValueError(f"bad payload: {exc}") from exc
                """
            }
        )
        assert check_broad_except(modules) == []

    def test_logging_handler_passes(self, make_package):
        _, modules = make_package(
            {
                "low/logged.py": """
                import logging

                def attempt(fn):
                    try:
                        return fn()
                    except Exception:
                        logging.getLogger(__name__).exception("attempt failed")
                        return None
                """
            }
        )
        assert check_broad_except(modules) == []

    def test_counting_handler_passes(self, make_package):
        _, modules = make_package(
            {
                "low/counted.py": """
                def attempt(fn, errors):
                    try:
                        return fn()
                    except Exception:
                        errors.inc()
                        return None
                """
            }
        )
        assert check_broad_except(modules) == []

    def test_narrow_handler_passes(self, make_package):
        _, modules = make_package(
            {
                "low/narrow.py": """
                def parse(payload):
                    try:
                        return int(payload)
                    except (TypeError, ValueError):
                        return None
                """
            }
        )
        assert check_broad_except(modules) == []


class TestMutableDefault:
    def test_list_default_flagged(self, make_package):
        _, modules = make_package(
            {"low/defaults.py": "def collect(item, into=[]):\n    into.append(item)\n"}
        )
        findings = check_mutable_defaults(modules)
        assert [f.rule for f in findings] == ["mutable-default"]

    def test_dict_call_and_kwonly_defaults_flagged(self, make_package):
        _, modules = make_package(
            {
                "low/defaults.py": (
                    "def configure(*, options=dict(), tags=set()):\n    return options, tags\n"
                )
            }
        )
        assert len(check_mutable_defaults(modules)) == 2

    def test_none_and_tuple_defaults_pass(self, make_package):
        _, modules = make_package(
            {"low/defaults.py": "def collect(item, into=None, shape=(1, 2)):\n    return item\n"}
        )
        assert check_mutable_defaults(modules) == []


class TestNoPrint:
    def test_print_call_flagged(self, make_package):
        _, modules = make_package(
            {"low/noisy.py": "def report(x):\n    print(x)\n"}
        )
        findings = check_no_print(modules)
        assert [f.rule for f in findings] == ["no-print"]
        assert "repro.obs" in findings[0].message

    def test_method_named_print_passes(self, make_package):
        _, modules = make_package(
            {"low/quiet.py": "def report(doc):\n    doc.print()\n"}
        )
        assert check_no_print(modules) == []

    def test_inline_allow_suppresses(self, make_package):
        _, modules = make_package(
            {
                "low/sanctioned.py": (
                    "def report(x):\n"
                    "    # devtools: allow[no-print]\n"
                    "    print(x)\n"
                )
            }
        )
        assert check_no_print(modules) == []


class TestGeoRange:
    def test_transposed_positional_args_flagged(self, make_package):
        _, modules = make_package(
            {
                "low/sites.py": """
                from pkg.low.geo import GeoPoint

                CITY_HALL = GeoPoint(-118.24, 34.05)
                """
            }
        )
        findings = check_geo_literals(modules)
        assert [f.rule for f in findings] == ["geo-range"]
        assert "transposed" in findings[0].message

    def test_bad_keyword_flagged(self, make_package):
        _, modules = make_package(
            {"low/sites.py": "def probe(q):\n    return q.near(lat=34.0, lng=241.76)\n"}
        )
        findings = check_geo_literals(modules)
        assert [f.rule for f in findings] == ["geo-range"]
        assert "longitude" in findings[0].message

    def test_valid_coordinates_pass(self, make_package):
        _, modules = make_package(
            {
                "low/sites.py": """
                from pkg.low.geo import BoundingBox, GeoPoint

                LA = GeoPoint(34.05, -118.24)
                BLOCK = BoundingBox(34.035, -118.26, 34.05, -118.24)
                """
            }
        )
        assert check_geo_literals(modules) == []

    def test_non_literal_args_ignored(self, make_package):
        _, modules = make_package(
            {
                "low/sites.py": """
                from pkg.low.geo import GeoPoint

                def locate(lat, lng):
                    return GeoPoint(lat, lng)
                """
            }
        )
        assert check_geo_literals(modules) == []
