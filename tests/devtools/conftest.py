"""Fixture helpers: build throwaway mini-packages for the lint passes."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.devtools.findings import SourceModule, collect_modules
from repro.devtools.layers import LayerConfig


@pytest.fixture
def make_package(tmp_path):
    """Write ``{relative_path: source}`` under a package root and parse it.

    Returns ``(package_root, modules)``; sources are dedented so tests
    can use indented triple-quoted literals.
    """

    def build(files: dict[str, str], package: str = "pkg") -> tuple[Path, list[SourceModule]]:
        root = tmp_path / package
        for rel, source in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
            init = path.parent / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
        if not (root / "__init__.py").exists():
            (root / "__init__.py").write_text("", encoding="utf-8")
        return root, collect_modules(root, repo_root=tmp_path)

    return build


#: A tiny two-level DAG for layer tests: ``top`` may use ``low``, never
#: the reverse; ``util`` is importable from anywhere.
TINY_LAYERS = LayerConfig(
    top_package="pkg",
    deps={
        "low": frozenset(),
        "mid": frozenset({"low"}),
        "top": frozenset({"mid"}),
        "util": frozenset(),
    },
    universal=frozenset({"util"}),
)
