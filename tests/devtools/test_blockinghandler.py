"""Blocking-in-handler pass: blocking sites reachable from routed handlers."""

from __future__ import annotations

import pytest

from repro.devtools.blockinghandler import check_blocking_in_handler
from repro.devtools.callgraph import build_call_graph, build_symbol_table


@pytest.fixture
def run(make_package):
    def _run(files):
        root, modules = make_package(files)
        table = build_symbol_table(modules, root)
        graph = build_call_graph(table)
        return check_blocking_in_handler(table, graph)

    return _run


def test_file_io_in_handler_is_flagged(run):
    findings = run(
        {
            "api/web.py": """
                class WebService:
                    def __init__(self, router):
                        router.add('GET', '/dump', self._dump)

                    def _dump(self, request):
                        with open('/tmp/state.json') as fh:
                            return fh.read()
            """,
        }
    )
    assert len(findings) == 1
    assert "open()" in findings[0].message
    assert "_dump" in findings[0].message


def test_transitive_sleep_is_traced_with_chain(run):
    findings = run(
        {
            "api/web.py": """
                from pkg.api.helper import refresh

                class WebService:
                    def __init__(self, router):
                        router.add('GET', '/x', self._x)

                    def _x(self, request):
                        return refresh()
            """,
            "api/helper.py": """
                import time

                def refresh():
                    time.sleep(0.1)
                    return {}
            """,
        }
    )
    assert len(findings) == 1
    assert "time.sleep" in findings[0].message
    assert "_x -> refresh" in findings[0].message


def test_future_result_without_timeout(run):
    findings = run(
        {
            "api/web.py": """
                class WebService:
                    def __init__(self, router):
                        router.add('GET', '/x', self._x)

                    def _x(self, request):
                        return self.future.result()
            """,
        }
    )
    assert len(findings) == 1
    assert "without a timeout" in findings[0].message


def test_result_with_timeout_is_clean(run):
    findings = run(
        {
            "api/web.py": """
                class WebService:
                    def __init__(self, router):
                        router.add('GET', '/x', self._x)

                    def _x(self, request):
                        return self.future.result(timeout=2.0)
            """,
        }
    )
    assert findings == []


def test_string_join_is_not_io(run):
    findings = run(
        {
            "api/web.py": """
                class WebService:
                    def __init__(self, router):
                        router.add('GET', '/x', self._x)

                    def _x(self, request):
                        return ', '.join(sorted(request))
            """,
        }
    )
    assert findings == []


def test_one_allow_comment_covers_all_handlers(run):
    findings = run(
        {
            "api/web.py": """
                from pkg.api.helper import dispatch

                class WebService:
                    def __init__(self, router):
                        router.add('GET', '/a', self._a)
                        router.add('GET', '/b', self._b)

                    def _a(self, request):
                        return dispatch(request)

                    def _b(self, request):
                        return dispatch(request)
            """,
            "api/helper.py": """
                import time

                def dispatch(request):
                    time.sleep(0.01)  # devtools: allow[blocking-in-handler]
                    return {}
            """,
        }
    )
    assert findings == []


def test_no_handlers_no_findings(run):
    findings = run(
        {
            "core/util.py": """
                import time

                def slow():
                    time.sleep(1)
            """,
        }
    )
    assert findings == []
