"""Layer-boundary checker: DAG closure, import extraction, findings."""

from __future__ import annotations

import pytest

from repro.devtools.layers import DEFAULT_LAYER_CONFIG, LayerConfig, check_layers
from tests.devtools.conftest import TINY_LAYERS


def _rules(findings):
    return [f.rule for f in findings]


class TestClosure:
    def test_transitive_reach(self):
        closed = TINY_LAYERS.closure()
        assert closed["top"] == frozenset({"mid", "low"})
        assert closed["low"] == frozenset()

    def test_cycle_detected(self):
        cyclic = LayerConfig(
            top_package="pkg",
            deps={"a": frozenset({"b"}), "b": frozenset({"a"})},
        )
        with pytest.raises(ValueError, match="cycle"):
            cyclic.closure()

    def test_default_config_is_acyclic(self):
        closed = DEFAULT_LAYER_CONFIG.closure()
        assert "core" in closed["api"]
        assert "api" not in closed["core"]


class TestCheckLayers:
    def test_clean_edges_pass(self, make_package):
        root, modules = make_package(
            {
                "low/base.py": "VALUE = 1\n",
                "top/use.py": "from pkg.mid.helper import VALUE\n",
                "mid/helper.py": "from pkg.low.base import VALUE\n",
            }
        )
        assert check_layers(modules, root, TINY_LAYERS) == []

    def test_upward_import_flagged(self, make_package):
        root, modules = make_package(
            {"low/bad.py": "from pkg.top.use import anything\n"}
        )
        findings = check_layers(modules, root, TINY_LAYERS)
        assert _rules(findings) == ["layer-boundary"]
        assert "low -> top" in findings[0].message

    def test_lazy_function_local_import_flagged(self, make_package):
        root, modules = make_package(
            {
                "low/sneaky.py": """
                def helper():
                    from pkg.top import use
                    return use
                """
            }
        )
        findings = check_layers(modules, root, TINY_LAYERS)
        assert _rules(findings) == ["layer-boundary"]

    def test_relative_import_resolved(self, make_package):
        root, modules = make_package(
            {"low/relative.py": "from ..top import use\n"}
        )
        findings = check_layers(modules, root, TINY_LAYERS)
        assert _rules(findings) == ["layer-boundary"]

    def test_universal_package_importable_anywhere(self, make_package):
        root, modules = make_package(
            {"low/uses_util.py": "from pkg.util import thing\n"}
        )
        assert check_layers(modules, root, TINY_LAYERS) == []

    def test_undeclared_package_flagged(self, make_package):
        root, modules = make_package({"mystery/mod.py": "X = 1\n"})
        findings = check_layers(modules, root, TINY_LAYERS)
        # Every module of the unknown package is flagged (mod.py and the
        # auto-created __init__.py).
        assert findings and all("not declared" in f.message for f in findings)
        assert "pkg/mystery/mod.py" in {f.path for f in findings}

    def test_root_facade_exempt_but_facade_import_flagged(self, make_package):
        root, modules = make_package(
            {
                "__init__.py": "from pkg.top.use import anything\n",
                "low/facade_user.py": "from pkg import anything\n",
            }
        )
        findings = check_layers(modules, root, TINY_LAYERS)
        # __init__.py may re-export from anywhere; low importing the
        # root facade is a hidden upward edge.
        assert len(findings) == 1
        assert findings[0].path.endswith("low/facade_user.py")
        assert "root facade" in findings[0].message

    def test_inline_allow_suppresses(self, make_package):
        root, modules = make_package(
            {
                "low/allowed.py": (
                    "from pkg.top import use  # devtools: allow[layer-boundary]\n"
                )
            }
        )
        assert check_layers(modules, root, TINY_LAYERS) == []

    def test_shipped_tree_has_no_layer_violations(self):
        from repro.devtools.check import run_check

        result = run_check(select=("layer-boundary",))
        assert result.findings == []
