"""Runtime companion to the concurrency lints: hammer the structures the
``unlocked-mutation`` rule declares critical and assert exact results.

Unlocked ``value += n`` / ``list.append`` paths lose updates under
thread switches; lowering the switch interval makes the interleavings
the lint reasons about actually happen.
"""

from __future__ import annotations

import sys
import threading

import numpy as np
import pytest

from repro.geo.point import BoundingBox, GeoPoint
from repro.index.grid import GridIndex
from repro.index.lsh import LSHIndex
from repro.index.rtree import RTree
from repro.obs.metrics import MetricsRegistry

THREADS = 8
OPS = 2_000


@pytest.fixture(autouse=True)
def aggressive_switching():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(previous)


def hammer(worker, n_threads: int = THREADS) -> None:
    """Run ``worker(thread_index)`` on N threads, rethrowing any failure."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_threads)

    def run(index: int) -> None:
        try:
            barrier.wait()
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - test harness relay
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestMetricsRegistryUnderThreads:
    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("race.counter")
        hammer(lambda _i: [counter.inc() for _ in range(OPS)])
        assert counter.value == THREADS * OPS

    def test_get_or_create_yields_one_handle(self):
        """All threads racing the registry must share a single counter —
        distinct handles would silently split the total."""
        registry = MetricsRegistry()

        def worker(_index: int) -> None:
            for _ in range(OPS // 10):
                registry.counter("race.shared", {"kind": "get-or-create"}).inc()

        hammer(worker)
        (counter,) = [
            registry.counter("race.shared", {"kind": "get-or-create"})
        ]
        assert counter.value == THREADS * (OPS // 10)

    def test_histogram_observations_are_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram("race.latency")

        def worker(index: int) -> None:
            for i in range(OPS // 4):
                hist.observe(float(index * OPS + i) % 7.0)

        hammer(worker)
        summary = hist.summary()
        assert summary["count"] == THREADS * (OPS // 4)
        assert sum(hist.bucket_counts) == THREADS * (OPS // 4)

    def test_snapshot_while_writing_does_not_crash(self):
        registry = MetricsRegistry()

        def worker(index: int) -> None:
            for i in range(200):
                if index == 0:
                    registry.snapshot()
                    registry.render_prometheus()
                else:
                    registry.counter("race.mixed", {"t": str(index)}).inc()
                    registry.histogram("race.mixed.ms").observe(float(i))

        hammer(worker)
        snapshot = registry.snapshot()
        total = sum(
            value
            for key, value in snapshot["counters"].items()
            if key.startswith("race.mixed")
        )
        assert total == (THREADS - 1) * 200


class TestIndexesUnderThreads:
    def test_rtree_concurrent_inserts_all_land(self):
        tree = RTree(max_entries=8)
        per_thread = 150

        def worker(index: int) -> None:
            for i in range(per_thread):
                lat = 34.0 + (index * per_thread + i) * 1e-4
                lng = -118.3 + (index * per_thread + i) * 1e-4
                tree.insert_point((index, i), GeoPoint(lat, lng))

        hammer(worker)
        assert len(tree) == THREADS * per_thread
        assert len(tree.all_items()) == THREADS * per_thread
        everywhere = BoundingBox(-90.0, -180.0, 90.0, 180.0)
        assert len(tree.search_range(everywhere)) == THREADS * per_thread

    def test_grid_concurrent_inserts_all_land(self):
        region = BoundingBox(34.0, -118.4, 34.2, -118.2)
        grid = GridIndex(region, rows=16, cols=16)
        per_thread = 300

        def worker(index: int) -> None:
            for i in range(per_thread):
                lat = 34.0 + ((index * per_thread + i) % 1000) * 2e-4
                grid.insert((index, i), GeoPoint(lat, -118.3))

        hammer(worker)
        assert len(grid) == THREADS * per_thread
        assert len(grid.search_range(region)) == THREADS * per_thread

    def test_lsh_concurrent_inserts_and_queries(self):
        rng = np.random.default_rng(7)
        index = LSHIndex(dimension=8, n_tables=4, n_projections=6, seed=1)
        per_thread = 100
        vectors = rng.normal(size=(THREADS * per_thread, 8))

        def worker(thread: int) -> None:
            for i in range(per_thread):
                row = thread * per_thread + i
                index.insert(row, vectors[row])
                if i % 10 == 0:
                    # Interleave reads so the dense-matrix cache is
                    # rebuilt while other threads insert.
                    index.linear_topk(vectors[row], k=3)

        hammer(worker)
        assert len(index) == THREADS * per_thread
        top = index.linear_topk(vectors[0], k=1)
        assert top[0][0] == 0
