"""Process-safety pass: classify data-plane module globals for scale-out."""

from __future__ import annotations

import pytest

from repro.devtools.callgraph import build_call_graph, build_symbol_table
from repro.devtools.processsafety import (
    check_process_safety,
    classify,
    render_manifest,
)

PLATFORM = """
    from pkg.core.runner import run_family

    class TVDP:
        def execute(self, query):
            return run_family(query)
"""


@pytest.fixture
def run(make_package):
    def _run(files, checked_in=None):
        root, modules = make_package(files)
        table = build_symbol_table(modules, root)
        graph = build_call_graph(table)
        return check_process_safety(modules, table, graph, checked_in=checked_in)

    return _run


def test_unclassified_global_is_unsafe_finding(run):
    findings, manifest = run(
        {
            "core/platform.py": PLATFORM,
            "core/runner.py": """
    _CACHE = {}

    def run_family(query):
        _CACHE[query] = 1
        return _CACHE
""",
        }
    )
    assert len(findings) == 1
    assert "no shard-safety classification" in findings[0].message
    assert findings[0].scope == "_CACHE"
    assert manifest["entries"] == []


def test_counter_classified_as_merge_sum(run):
    findings, manifest = run(
        {
            "core/platform.py": PLATFORM,
            "core/runner.py": """
    from pkg.obs.metrics import Counter

    _QUERIES = Counter("queries")

    def run_family(query):
        _QUERIES.inc()
        return []
""",
            "obs/metrics.py": """
    class Counter:
        def __init__(self, name):
            self.name = name
            self.value = 0

        def inc(self):
            self.value += 1
""",
        },
        checked_in=None,
    )
    # The classified entry makes the *missing manifest* the only finding.
    assert [f.scope for f in findings] == ["manifest"]
    assert "missing" in findings[0].message
    (entry,) = manifest["entries"]
    assert entry["name"] == "_QUERIES"
    assert entry["classification"] == "must-merge-at-coordinator"
    assert entry["merge"] == "sum"


def test_checked_in_manifest_matching_is_clean(run):
    files = {
        "core/platform.py": PLATFORM,
        "core/runner.py": """
    import threading

    _RUNNER_LOCK = threading.Lock()

    def run_family(query):
        with _RUNNER_LOCK:
            return []
""",
    }
    _, manifest = run(files)
    findings, _ = run(files, checked_in=manifest)
    assert findings == []
    (entry,) = manifest["entries"]
    assert entry["classification"] == "worker-local-ok"


def test_stale_manifest_is_a_finding(run):
    files = {
        "core/platform.py": PLATFORM,
        "core/runner.py": """
    import threading

    _RUNNER_LOCK = threading.Lock()

    def run_family(query):
        with _RUNNER_LOCK:
            return []
""",
    }
    _, manifest = run(files)
    stale = dict(manifest, entries=[])
    findings, _ = run(files, checked_in=stale)
    assert len(findings) == 1
    assert "stale" in findings[0].message


def test_unreferenced_global_not_in_manifest(run):
    _, manifest = run(
        {
            "core/platform.py": PLATFORM,
            "core/runner.py": """
    import threading

    _UNTOUCHED = threading.Lock()

    def run_family(query):
        return []
""",
        }
    )
    assert manifest["entries"] == []


def test_upper_case_container_is_worker_local(run):
    findings, manifest = run(
        {
            "core/platform.py": PLATFORM,
            "core/runner.py": """
    _FAMILIES = {"spatial": 1}

    def run_family(query):
        return _FAMILIES[query]
""",
        },
        checked_in=None,
    )
    assert [f.scope for f in findings] == ["manifest"]
    (entry,) = manifest["entries"]
    assert entry["classification"] == "worker-local-ok"
    assert "read-only constant" in entry["reason"]


def test_allow_comment_excludes_from_manifest(run):
    findings, manifest = run(
        {
            "core/platform.py": PLATFORM,
            "core/runner.py": """
    # devtools: allow[process-safety] scratch state, rebuilt per request
    _SCRATCH = {}

    def run_family(query):
        _SCRATCH[query] = 1
        return []
""",
        }
    )
    assert findings == []
    assert manifest["entries"] == []


def test_classify_rules():
    assert classify("_lock", None, "threading.RLock", "object")[0] == "worker-local-ok"
    assert classify("_log", None, "logging.getLogger", "object")[0] == "worker-local-ok"
    counter = classify("_hits", "pkg.obs.metrics.Counter", "", "object")
    assert counter == (
        "must-merge-at-coordinator",
        "sum",
        "monotone counter — the coordinator sums worker deltas",
    )
    assert classify("_cache", None, "", "container") is None


def test_render_manifest_is_deterministic(run):
    files = {
        "core/platform.py": PLATFORM,
        "core/runner.py": """
    import threading

    _RUNNER_LOCK = threading.Lock()

    def run_family(query):
        with _RUNNER_LOCK:
            return []
""",
    }
    _, first = run(files)
    _, second = run(files)
    assert render_manifest(first) == render_manifest(second)
    assert render_manifest(first).endswith("\n")


def test_real_manifest_matches_tree():
    # The checked-in manifest must be exactly what the tree computes.
    import json
    from pathlib import Path

    from repro.devtools.findings import collect_modules

    repo = Path(__file__).resolve().parents[2]
    src_root = repo / "src" / "repro"
    modules = collect_modules(src_root, repo_root=repo)
    table = build_symbol_table(modules, src_root)
    graph = build_call_graph(table)
    checked_in = json.loads((repo / "tools" / "shard_safety_manifest.json").read_text())
    findings, manifest = check_process_safety(modules, table, graph, checked_in=checked_in)
    assert findings == []
    assert render_manifest(manifest) == (
        repo / "tools" / "shard_safety_manifest.json"
    ).read_text()
