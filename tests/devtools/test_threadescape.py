"""Thread-escape pass: shared-state classification and manifest drift."""

from __future__ import annotations

import pytest

from repro.devtools.callgraph import build_call_graph, build_symbol_table
from repro.devtools.threadescape import (
    analyze_escape,
    build_concurrency_manifest,
    check_thread_escape,
    DEFAULT_CONCURRENT_ROOTS,
    discover_handlers,
)


@pytest.fixture
def run(make_package):
    def _run(files, checked_in=None):
        root, modules = make_package(files)
        table = build_symbol_table(modules, root)
        graph = build_call_graph(table)
        return check_thread_escape(table, graph, checked_in=checked_in)

    return _run


@pytest.fixture
def analyze(make_package):
    def _analyze(files):
        root, modules = make_package(files)
        table = build_symbol_table(modules, root)
        graph = build_call_graph(table)
        return analyze_escape(table, graph)

    return _analyze


UNGUARDED = {
    "core/platform.py": """
        class TVDP:
            def __init__(self):
                self._seen = {}

            def execute(self, query):
                self._seen[query] = 1
                return len(self._seen)
    """,
}

GUARDED = {
    "core/platform.py": """
        import threading

        class TVDP:
            def __init__(self):
                self._lock = threading.Lock()
                self._seen = {}

            def execute(self, query):
                with self._lock:
                    self._seen[query] = 1
                return True
    """,
}


class TestClassification:
    def test_unlocked_mutation_from_root_is_a_finding(self, run):
        findings, manifest, _ = run(UNGUARDED)
        assert len(findings) == 1
        assert findings[0].scope == "TVDP._seen"
        assert "without a consistent lock" in findings[0].message
        # Findings never become accepted manifest state.
        assert all(e["attr"] != "pkg.core.platform.TVDP._seen" for e in manifest["entries"])

    def test_locked_mutation_is_classified_not_flagged(self, analyze):
        analysis = analyze(GUARDED)
        record = analysis.attrs[("pkg.core.platform.TVDP", "_seen")]
        assert record.classification == "lock-guarded"
        assert record.guard.endswith("_lock")

    def test_construction_only_attr_is_immutable(self, analyze):
        analysis = analyze(
            {
                "core/platform.py": """
                    class TVDP:
                        def __init__(self):
                            self._limit = {"max": 10}

                        def execute(self, query):
                            return self._limit["max"]
                """,
            }
        )
        record = analysis.attrs[("pkg.core.platform.TVDP", "_limit")]
        assert record.classification == "immutable"

    def test_unreachable_class_stays_out(self, analyze):
        analysis = analyze(
            {
                "core/platform.py": """
                    class Orphan:
                        def __init__(self):
                            self._data = {}

                        def poke(self):
                            self._data["x"] = 1

                    class TVDP:
                        def execute(self, query):
                            return query
                """,
            }
        )
        assert ("pkg.core.platform.Orphan", "_data") not in analysis.attrs


class TestManifestDrift:
    def test_missing_manifest_is_a_finding(self, run):
        findings, manifest, _ = run(GUARDED)
        assert manifest["entries"]
        assert len(findings) == 1
        assert findings[0].scope == "manifest"
        assert "missing" in findings[0].message

    def test_matching_manifest_is_clean(self, make_package):
        root, modules = make_package(GUARDED)
        table = build_symbol_table(modules, root)
        graph = build_call_graph(table)
        _, manifest, _ = check_thread_escape(table, graph)
        findings, _, _ = check_thread_escape(table, graph, checked_in=manifest)
        assert findings == []

    def test_stale_manifest_is_a_finding(self, make_package):
        root, modules = make_package(GUARDED)
        table = build_symbol_table(modules, root)
        graph = build_call_graph(table)
        _, manifest, _ = check_thread_escape(table, graph)
        stale = dict(manifest, entries=[])
        findings, _, _ = check_thread_escape(table, graph, checked_in=stale)
        assert len(findings) == 1
        assert "stale" in findings[0].message

    def test_manifest_is_deterministic(self, make_package):
        root, modules = make_package(GUARDED)
        table = build_symbol_table(modules, root)
        graph = build_call_graph(table)
        analysis = analyze_escape(table, graph)
        first = build_concurrency_manifest(analysis, DEFAULT_CONCURRENT_ROOTS)
        second = build_concurrency_manifest(analysis, DEFAULT_CONCURRENT_ROOTS)
        assert first == second
        (entry,) = first["entries"]
        assert entry["attr"] == "pkg.core.platform.TVDP._seen"
        assert entry["classification"] == "lock-guarded"


def test_discover_handlers_finds_router_registrations(make_package):
    root, modules = make_package(
        {
            "api/web.py": """
                class WebService:
                    def __init__(self, router):
                        router.add('GET', '/stats', self._stats)

                    def _stats(self, request):
                        return {}
            """,
        }
    )
    table = build_symbol_table(modules, root)
    assert "pkg.api.web.WebService._stats" in discover_handlers(table)
