"""Static lock-order analysis: cycles and blocking-under-lock."""

from __future__ import annotations

import pytest

from repro.devtools.callgraph import build_call_graph, build_symbol_table
from repro.devtools.lockorder import analyze_locks, check_lock_order


@pytest.fixture
def analyze(make_package):
    def _analyze(files):
        root, modules = make_package(files)
        table = build_symbol_table(modules, root)
        graph = build_call_graph(table)
        analysis = analyze_locks(table, graph)
        findings = check_lock_order(table, graph, modules, analysis)
        return analysis, findings

    return _analyze


INVERSION = {
    "m.py": """
        import threading

        _a = threading.Lock()
        _b = threading.Lock()

        def ab():
            with _a:
                with _b:
                    pass

        def ba():
            with _b:
                with _a:
                    pass
    """,
}


class TestAcquisitionGraph:
    def test_nested_with_records_edge(self, analyze):
        analysis, _ = analyze(
            {
                "m.py": """
                    import threading

                    _outer = threading.Lock()
                    _inner = threading.Lock()

                    def f():
                        with _outer:
                            with _inner:
                                pass
                """,
            }
        )
        assert ("pkg.m._outer", "pkg.m._inner") in analysis.graph.edges

    def test_self_attr_lock_identified_by_class(self, analyze):
        analysis, _ = analyze(
            {
                "m.py": """
                    import threading

                    class Box:
                        def __init__(self):
                            self._lock = threading.RLock()

                        def get(self):
                            with self._lock:
                                return 1
                """,
            }
        )
        assert "pkg.m.Box._lock" in analysis.graph.locks
        assert "pkg.m.Box._lock" in analysis.may_acquire["pkg.m.Box.get"]

    def test_interprocedural_edge_through_helper(self, analyze):
        """Calling a function that takes lock M while holding L adds
        the L -> M edge even though no ``with`` is nested lexically."""
        analysis, _ = analyze(
            {
                "m.py": """
                    import threading

                    _l = threading.Lock()
                    _m = threading.Lock()

                    def helper():
                        with _m:
                            pass

                    def outer():
                        with _l:
                            helper()
                """,
            }
        )
        edge = analysis.graph.edges[("pkg.m._l", "pkg.m._m")]
        assert edge.via == "pkg.m.helper"


class TestCycleFindings:
    def test_two_lock_inversion_is_a_cycle_finding(self, analyze):
        analysis, findings = analyze(INVERSION)
        assert analysis.graph.cycles() == [["pkg.m._a", "pkg.m._b"]]
        cycle_findings = [f for f in findings if f.scope.startswith("cycle:")]
        assert len(cycle_findings) == 1
        assert "deadlock" in cycle_findings[0].message

    def test_consistent_order_is_clean(self, analyze):
        _, findings = analyze(
            {
                "m.py": """
                    import threading

                    _a = threading.Lock()
                    _b = threading.Lock()

                    def one():
                        with _a:
                            with _b:
                                pass

                    def two():
                        with _a:
                            with _b:
                                pass
                """,
            }
        )
        assert findings == []

    def test_reentrancy_is_not_a_cycle(self, analyze):
        """Same creation-site lock nested in itself (RLock reentrancy)
        must not produce a self-edge."""
        analysis, findings = analyze(
            {
                "m.py": """
                    import threading

                    class Stats:
                        def __init__(self):
                            self._lock = threading.RLock()

                        def summary(self):
                            with self._lock:
                                return self.count()

                        def count(self):
                            with self._lock:
                                return 1
                """,
            }
        )
        assert analysis.graph.cycles() == []
        assert findings == []


class TestBlockingUnderLock:
    def test_direct_io_under_lock_flagged(self, analyze):
        _, findings = analyze(
            {
                "m.py": """
                    import threading

                    _lock = threading.Lock()

                    def save(path, data):
                        with _lock:
                            path.write_text(data)
                """,
            }
        )
        assert len(findings) == 1
        assert "blocking call" in findings[0].message

    def test_transitive_blocking_flagged(self, analyze):
        _, findings = analyze(
            {
                "m.py": """
                    import threading

                    _lock = threading.Lock()

                    def flush_to_disk(path, data):
                        path.write_text(data)

                    def save(path, data):
                        with _lock:
                            flush_to_disk(path, data)
                """,
            }
        )
        assert len(findings) == 1
        assert "flush_to_disk" in findings[0].message

    def test_allow_comment_suppresses(self, analyze):
        _, findings = analyze(
            {
                "m.py": (
                    "import threading\n"
                    "\n"
                    "_lock = threading.Lock()\n"
                    "\n"
                    "def save(path, data):\n"
                    "    with _lock:\n"
                    "        path.write_text(data)  # devtools: allow[lock-order]\n"
                ),
            }
        )
        assert findings == []
