"""Hot-path cost pass: per-item work on the data-plane closure."""

from __future__ import annotations

import pytest

from repro.devtools.callgraph import build_call_graph, build_symbol_table
from repro.devtools.hotpath import check_hot_path, load_cost_model, model_hot_sites

PLATFORM_HEAD = """
    import numpy as np

    class TVDP:
        def execute(self, query):
            return self._run_spatial(query)

"""


@pytest.fixture
def run(make_package):
    def _run(files, cost_model=None):
        root, modules = make_package(files)
        table = build_symbol_table(modules, root)
        graph = build_call_graph(table)
        return check_hot_path(modules, table, graph, cost_model=cost_model)

    return _run


def test_numpy_in_loop_flagged(run):
    findings = run(
        {
            "core/platform.py": PLATFORM_HEAD
            + """
        def _run_spatial(self, query):
            out = []
            for row in query.rows:
                out.append(np.linalg.norm(row - query.vector))
            return out
"""
        }
    )
    assert len(findings) == 1
    assert "NumPy call np.linalg.norm()" in findings[0].message
    assert "vectorised" in findings[0].message


def test_sorted_in_loop_flagged(run):
    findings = run(
        {
            "core/platform.py": PLATFORM_HEAD
            + """
        def _run_spatial(self, query):
            out = []
            for group in query.groups:
                out.extend(sorted(group))
            return out
"""
        }
    )
    assert len(findings) == 1
    assert "repeated sorted()" in findings[0].message


def test_scan_driving_loop_flagged(run):
    findings = run(
        {
            "core/platform.py": PLATFORM_HEAD
            + """
        def _run_spatial(self, query):
            hits = []
            for row in self.db.all_rows():
                hits.append(row)
            return hits
"""
        }
    )
    assert len(findings) == 1
    assert "O(n) access path" in findings[0].message


def test_bare_scan_on_query_path_flagged(run):
    # _run_temporal's shape: one full-table scan call, not in any loop.
    findings = run(
        {
            "core/platform.py": PLATFORM_HEAD
            + """
        def _run_spatial(self, query):
            return self.db.scan(query.predicate)
"""
        }
    )
    assert len(findings) == 1
    assert "scans the full collection on a query path" in findings[0].message


def test_n_plus_one_lookup_flagged(run):
    findings = run(
        {
            "core/platform.py": PLATFORM_HEAD
            + """
        def _run_spatial(self, query):
            return [self.db.table("images").get(i) for i in query.ids]
"""
        }
    )
    assert len(findings) == 1
    assert "N+1" in findings[0].message


def test_outside_closure_not_flagged(run):
    findings = run(
        {
            "core/platform.py": PLATFORM_HEAD
            + """
        def offline_report(self):
            out = []
            for row in self.rows:
                out.append(np.mean(row))
            return out
"""
        }
    )
    assert findings == []


def test_cost_model_hot_site_sanctions(run):
    files = {
        "core/platform.py": PLATFORM_HEAD
        + """
        def _run_spatial(self, query):
            out = []
            for row in query.rows:
                out.append(np.linalg.norm(row - query.vector))
            return out
"""
    }
    model = {
        "spatial": {
            "hot_sites": ["pkg.core.platform.TVDP._run_spatial"],
        }
    }
    assert run(files, cost_model=model) == []


def test_stale_hot_site_is_a_finding(run):
    findings = run(
        {
            "core/platform.py": PLATFORM_HEAD
            + """
        def _run_spatial(self, query):
            return []
""",
            "core/costmodel.py": """
    COST_MODEL = {
        "spatial": {
            "hot_sites": ["pkg.core.platform.TVDP._run_gone"],
        },
    }
""",
        }
    )
    assert len(findings) == 1
    assert "stale" in findings[0].message
    assert findings[0].scope == "pkg.core.platform.TVDP._run_gone"
    assert findings[0].path.endswith("costmodel.py")


def test_allow_comment_suppresses(run):
    findings = run(
        {
            "core/platform.py": PLATFORM_HEAD
            + """
        def _run_spatial(self, query):
            out = []
            for group in query.groups:
                # devtools: allow[hot-path] groups are tiny (<= 4)
                out.extend(sorted(group))
            return out
"""
        }
    )
    assert findings == []


def test_load_cost_model_from_tree(make_package):
    _, modules = make_package(
        {
            "core/costmodel.py": """
    COST_MODEL = {
        "visual": {
            "cost": "O(c*d)",
            "hot_sites": ["pkg.index.lsh.LSH._rank"],
        },
    }
"""
        }
    )
    model, module, line = load_cost_model(modules)
    assert module is not None and module.rel_path.endswith("costmodel.py")
    assert line > 0
    assert model["visual"]["cost"] == "O(c*d)"
    assert model_hot_sites(model) == frozenset({"pkg.index.lsh.LSH._rank"})


def test_real_tree_cost_model_covers_real_sites():
    # Every hot site the shipped COST_MODEL sanctions must exist, and
    # the data plane must carry no un-modelled per-item work.
    from pathlib import Path

    from repro.devtools.findings import collect_modules

    repo = Path(__file__).resolve().parents[2]
    src_root = repo / "src" / "repro"
    modules = collect_modules(src_root, repo_root=repo)
    table = build_symbol_table(modules, src_root)
    graph = build_call_graph(table)
    assert check_hot_path(modules, table, graph) == []
    model, _, _ = load_cost_model(modules)
    assert {"spatial", "visual", "categorical", "textual", "temporal", "hybrid"} <= set(
        model
    )
