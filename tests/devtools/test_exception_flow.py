"""Exception-flow analysis: entry points raise only taxonomy errors."""

from __future__ import annotations

import pytest

from repro.devtools.callgraph import build_call_graph, build_symbol_table
from repro.devtools.exceptions import analyze_exceptions, check_exception_flow

#: A miniature taxonomy mirroring ``repro.errors``.
ERRORS = """
    class TVDPError(Exception):
        pass

    class QueryError(TVDPError):
        pass
"""


@pytest.fixture
def run(make_package):
    def _run(files):
        root, modules = make_package(files)
        table = build_symbol_table(modules, root)
        graph = build_call_graph(table)
        flow = analyze_exceptions(table, graph)
        findings = check_exception_flow(table, graph, modules, flow=flow)
        return flow, findings

    return _run


class TestFlowInference:
    def test_direct_raise_recorded(self, run):
        flow, _ = run(
            {
                "api/entry.py": """
                    def handle():
                        raise RuntimeError("boom")
                """,
            }
        )
        assert "RuntimeError" in flow.raises["pkg.api.entry.handle"]

    def test_caught_exception_does_not_propagate(self, run):
        flow, findings = run(
            {
                "errors.py": ERRORS,
                "api/entry.py": """
                    from pkg.errors import QueryError

                    def risky():
                        raise RuntimeError("boom")

                    def handle():
                        try:
                            return risky()
                        except RuntimeError:
                            raise QueryError("mapped")
                """,
            }
        )
        assert "RuntimeError" not in flow.raises["pkg.api.entry.handle"]
        assert "QueryError" in flow.raises["pkg.api.entry.handle"]
        assert [f for f in findings if "handle" in f.scope] == []

    def test_subclass_absorbed_by_base_handler(self, run):
        flow, _ = run(
            {
                "errors.py": ERRORS,
                "api/entry.py": """
                    from pkg.errors import QueryError, TVDPError

                    def inner():
                        raise QueryError("bad query")

                    def handle():
                        try:
                            return inner()
                        except TVDPError:
                            return None
                """,
            }
        )
        assert flow.raises["pkg.api.entry.handle"] == {}

    def test_transparent_handler_passes_through(self, run):
        """``except Exception: ...; raise`` neither absorbs the body's
        raises nor turns them into ``Exception``."""
        flow, _ = run(
            {
                "api/entry.py": """
                    def inner():
                        raise RuntimeError("boom")

                    def handle():
                        try:
                            return inner()
                        except Exception:
                            raise
                """,
            }
        )
        assert set(flow.raises["pkg.api.entry.handle"]) == {"RuntimeError"}

    def test_known_external_raisers(self, run):
        flow, _ = run(
            {
                "db/store.py": """
                    def load(path):
                        with open(path) as fh:
                            return fh.read()
                """,
            }
        )
        assert "OSError" in flow.raises["pkg.db.store.load"]


class TestFindings:
    def test_builtin_escaping_taxonomy_is_flagged(self, run):
        _, findings = run(
            {
                "errors.py": ERRORS,
                "api/entry.py": """
                    def handle():
                        raise RuntimeError("boom")
                """,
            }
        )
        assert len(findings) == 1
        assert findings[0].scope == "pkg.api.entry.handle:RuntimeError"

    def test_taxonomy_raise_is_clean(self, run):
        _, findings = run(
            {
                "errors.py": ERRORS,
                "api/entry.py": """
                    from pkg.errors import QueryError

                    def handle():
                        raise QueryError("bad")
                """,
            }
        )
        assert findings == []

    def test_sanctioned_builtins_are_clean(self, run):
        _, findings = run(
            {
                "api/entry.py": """
                    def handle(k):
                        if not k:
                            raise ValueError("empty key")
                        raise KeyError(k)
                """,
            }
        )
        assert findings == []

    def test_declared_retryable_set_sanctions(self, run):
        """An ``OSError`` escaping db is fine when a ``*TRANSIENT*``
        tuple declares it retryable."""
        _, findings = run(
            {
                "db/store.py": """
                    _PERSIST_TRANSIENT = (OSError,)

                    def load(path):
                        with open(path) as fh:
                            return fh.read()
                """,
            }
        )
        assert findings == []

    def test_private_helpers_not_entry_points(self, run):
        _, findings = run(
            {
                "api/entry.py": """
                    def _internal():
                        raise RuntimeError("boom")
                """,
            }
        )
        assert findings == []

    def test_non_entry_packages_not_checked(self, run):
        _, findings = run(
            {
                "core/engine.py": """
                    def run():
                        raise RuntimeError("boom")
                """,
            }
        )
        assert findings == []

    def test_higher_order_policy_call_propagates(self, run):
        """A callable handed to ``resilience.policies.execute``
        contributes its raises to the caller."""
        _, findings = run(
            {
                "resilience/policies.py": """
                    def execute(fn, policy=None):
                        return fn()
                """,
                "api/entry.py": """
                    from pkg.resilience.policies import execute

                    def fetch():
                        raise ConnectionError("down")

                    def handle():
                        return execute(fetch)
                """,
            }
        )
        assert any(f.scope == "pkg.api.entry.handle:ConnectionError" for f in findings)

    def test_allow_comment_suppresses(self, run):
        _, findings = run(
            {
                "api/entry.py": (
                    "# devtools: allow[exception-flow]\n"
                    "def handle():\n"
                    "    raise RuntimeError('boom')\n"
                ),
            }
        )
        assert findings == []
