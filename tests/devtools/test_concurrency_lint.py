"""Concurrency lints: module-level mutable state and unlocked mutations."""

from __future__ import annotations

from repro.devtools.concurrency import (
    check_concurrency,
    check_module_state,
    check_unlocked_mutations,
)

CRITICAL = ("*/pkg/index/*.py",)


class TestModuleState:
    def test_unlocked_global_dict_write_flagged(self, make_package):
        _, modules = make_package(
            {
                "low/registry.py": """
                _CACHE = {}

                def put(key, value):
                    _CACHE[key] = value
                """
            }
        )
        findings = check_module_state(modules)
        assert [f.rule for f in findings] == ["module-mutable-state"]
        assert "_CACHE" in findings[0].message

    def test_locked_write_passes(self, make_package):
        _, modules = make_package(
            {
                "low/registry.py": """
                import threading

                _CACHE = {}
                _cache_lock = threading.Lock()

                def put(key, value):
                    with _cache_lock:
                        _CACHE[key] = value
                """
            }
        )
        assert check_module_state(modules) == []

    def test_read_only_registry_passes(self, make_package):
        _, modules = make_package(
            {
                "low/registry.py": """
                _FAMILIES = {"spatial": 1, "textual": 2}

                def lookup(kind):
                    return _FAMILIES[kind]
                """
            }
        )
        assert check_module_state(modules) == []

    def test_global_rebind_outside_lock_flagged(self, make_package):
        _, modules = make_package(
            {
                "low/singleton.py": """
                _instance = None

                def get():
                    global _instance
                    if _instance is None:
                        _instance = object()
                    return _instance
                """
            }
        )
        findings = check_module_state(modules)
        assert [f.rule for f in findings] == ["module-mutable-state"]
        assert "global _instance" in findings[0].message

    def test_global_rebind_under_lock_passes(self, make_package):
        _, modules = make_package(
            {
                "low/singleton.py": """
                import threading

                _instance = None
                _lock = threading.Lock()

                def get():
                    global _instance
                    with _lock:
                        if _instance is None:
                            _instance = object()
                        return _instance
                """
            }
        )
        assert check_module_state(modules) == []

    def test_inline_allow_suppresses(self, make_package):
        _, modules = make_package(
            {
                "low/registry.py": """
                _CACHE = {}

                def put(key, value):
                    _CACHE[key] = value  # devtools: allow[module-mutable-state]
                """
            }
        )
        assert check_module_state(modules) == []


UNLOCKED_INDEX = """
class Index:
    def __init__(self):
        self._items = []
        self._size = 0

    def insert(self, item):
        self._items.append(item)
        self._size += 1
"""

LOCKED_INDEX = """
import threading

class Index:
    def __init__(self):
        self._items = []
        self._size = 0
        self._lock = threading.Lock()

    def insert(self, item):
        with self._lock:
            self._items.append(item)
            self._size += 1

    def _rebalance(self):
        self._items.sort()
"""


class TestUnlockedMutation:
    def test_public_method_mutation_flagged(self, make_package):
        _, modules = make_package({"index/structure.py": UNLOCKED_INDEX})
        findings = check_unlocked_mutations(modules, CRITICAL)
        assert {f.rule for f in findings} == {"unlocked-mutation"}
        assert len(findings) == 2  # .append() and the augmented assignment

    def test_locked_method_and_private_helper_pass(self, make_package):
        _, modules = make_package({"index/structure.py": LOCKED_INDEX})
        assert check_unlocked_mutations(modules, CRITICAL) == []

    def test_non_critical_module_exempt(self, make_package):
        _, modules = make_package({"low/structure.py": UNLOCKED_INDEX})
        assert check_unlocked_mutations(modules, CRITICAL) == []

    def test_fingerprint_stable_across_line_shifts(self, make_package):
        _, before = make_package({"index/structure.py": UNLOCKED_INDEX})
        _, after = make_package(
            {"index/structure.py": "# a new leading comment\n" + UNLOCKED_INDEX},
            package="pkg2",
        )
        fp = lambda mods: sorted(
            f.fingerprint.split(":", 1)[1].split("/", 1)[1]
            for f in check_unlocked_mutations(mods, ("*/index/*.py",))
        )
        assert fp(before) == fp(after)


def test_check_concurrency_merges_both_rules(make_package):
    _, modules = make_package(
        {
            "index/structure.py": UNLOCKED_INDEX,
            "low/registry.py": "_CACHE = {}\n\ndef put(k, v):\n    _CACHE[k] = v\n",
        }
    )
    rules = {f.rule for f in check_concurrency(modules, CRITICAL)}
    assert rules == {"unlocked-mutation", "module-mutable-state"}
