"""Atomicity pass: check-then-act and unlocked traversals of guarded state."""

from __future__ import annotations

import pytest

from repro.devtools.atomicity import check_atomicity
from repro.devtools.callgraph import build_call_graph, build_symbol_table


@pytest.fixture
def run(make_package):
    def _run(files):
        root, modules = make_package(files)
        table = build_symbol_table(modules, root)
        graph = build_call_graph(table)
        return check_atomicity(table, graph)

    return _run


def test_unlocked_traversal_of_guarded_attr(run):
    findings = run(
        {
            "core/platform.py": """
                import threading

                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._data = {}

                    def put(self, k, v):
                        with self._lock:
                            self._data[k] = v

                    def size(self):
                        return len(self._data)

                class TVDP:
                    def __init__(self):
                        self.store = Store()

                    def execute(self, query):
                        self.store.put(query, self.store.size())
            """,
        }
    )
    assert any(
        "len() over" in f.message and "Store._data" in f.scope for f in findings
    )


def test_traversal_under_the_lock_is_clean(run):
    findings = run(
        {
            "core/platform.py": """
                import threading

                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._data = {}

                    def put(self, k, v):
                        with self._lock:
                            self._data[k] = v

                    def size(self):
                        with self._lock:
                            return len(self._data)

                class TVDP:
                    def __init__(self):
                        self.store = Store()

                    def execute(self, query):
                        self.store.put(query, self.store.size())
            """,
        }
    )
    assert findings == []


def test_check_then_act_outside_lock(run):
    findings = run(
        {
            "core/platform.py": """
                import threading

                class TVDP:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._seen = {}

                    def execute(self, query):
                        if query not in self._seen:
                            with self._lock:
                                self._seen[query] = 1
                        return True
            """,
        }
    )
    assert any("check-then-act" in f.message for f in findings)


def test_check_and_act_under_one_lock_is_clean(run):
    findings = run(
        {
            "core/platform.py": """
                import threading

                class TVDP:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._seen = {}

                    def execute(self, query):
                        with self._lock:
                            if query not in self._seen:
                                self._seen[query] = 1
                        return True
            """,
        }
    )
    assert findings == []


def test_allow_comment_suppresses(run):
    findings = run(
        {
            "core/platform.py": """
                import threading

                class TVDP:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._seen = {}

                    def execute(self, query):
                        if query not in self._seen:  # devtools: allow[atomicity]
                            with self._lock:
                                self._seen[query] = 1
                        return True
            """,
        }
    )
    assert findings == []


def test_unshared_state_is_ignored(run):
    findings = run(
        {
            "core/platform.py": """
                class TVDP:
                    def execute(self, query):
                        local = {}
                        if query not in local:
                            local[query] = 1
                        return len(local)
            """,
        }
    )
    assert findings == []
