"""Tests for the Oriented R-tree (direction-aware FOV index)."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.geo import BoundingBox, FieldOfView, GeoPoint, destination_point
from repro.index import OrientedRTree, direction_mask, SECTORS


def make_fovs(n, seed=0):
    rng = np.random.default_rng(seed)
    fovs = []
    for _ in range(n):
        camera = GeoPoint(float(rng.uniform(33.9, 34.1)), float(rng.uniform(-118.5, -118.3)))
        fovs.append(
            FieldOfView(
                camera,
                float(rng.uniform(0, 360)),
                float(rng.uniform(40, 80)),
                float(rng.uniform(50, 300)),
            )
        )
    return fovs


class TestDirectionMask:
    def test_zero_tolerance_single_sector_band(self):
        mask = direction_mask(0.0, tolerance_deg=0.0)
        assert mask != 0
        assert bin(mask).count("1") <= 2  # boundary bearings touch 2 sectors

    def test_full_tolerance_all_sectors(self):
        mask = direction_mask(123.0, tolerance_deg=180.0)
        assert mask == (1 << SECTORS) - 1

    def test_opposite_directions_disjoint(self):
        north = direction_mask(0.0, tolerance_deg=20.0)
        south = direction_mask(180.0, tolerance_deg=20.0)
        assert north & south == 0

    def test_wraparound(self):
        near_north = direction_mask(355.0, tolerance_deg=15.0)
        also_north = direction_mask(5.0, tolerance_deg=15.0)
        assert near_north & also_north != 0


class TestOrientedRTree:
    def test_insert_and_len(self):
        index = OrientedRTree()
        for i, fov in enumerate(make_fovs(20)):
            index.insert(i, fov)
        assert len(index) == 20

    def test_duplicate_item_raises(self):
        index = OrientedRTree()
        fov = make_fovs(1)[0]
        index.insert("a", fov)
        with pytest.raises(IndexError_):
            index.insert("a", fov)

    def test_fov_of_round_trip(self):
        index = OrientedRTree()
        fov = make_fovs(1)[0]
        index.insert("a", fov)
        assert index.fov_of("a") == fov
        with pytest.raises(IndexError_):
            index.fov_of("missing")

    def test_range_matches_brute_force(self):
        fovs = make_fovs(150, seed=1)
        index = OrientedRTree(max_entries=6)
        for i, fov in enumerate(fovs):
            index.insert(i, fov)
        query = BoundingBox(33.95, -118.45, 34.05, -118.35)
        expected = {i for i, fov in enumerate(fovs) if fov.intersects_box(query)}
        assert set(index.search_range(query)) == expected

    def test_direction_filter_matches_brute_force(self):
        fovs = make_fovs(150, seed=2)
        index = OrientedRTree(max_entries=6)
        for i, fov in enumerate(fovs):
            index.insert(i, fov)
        query = BoundingBox(33.9, -118.5, 34.1, -118.3)
        expected = {
            i
            for i, fov in enumerate(fovs)
            if fov.intersects_box(query) and fov.direction_matches(90.0, 30.0)
        }
        got = set(index.search_range(query, direction_deg=90.0, tolerance_deg=30.0))
        assert got == expected

    def test_search_point_finds_depicting_images(self):
        index = OrientedRTree()
        scene = GeoPoint(34.0, -118.4)
        camera = destination_point(scene, 180.0, 100.0)  # south of scene
        looking_at = FieldOfView(camera, 0.0, 60.0, 200.0)  # looks north
        looking_away = FieldOfView(camera, 180.0, 60.0, 200.0)
        index.insert("at", looking_at)
        index.insert("away", looking_away)
        found = index.search_point(scene.lat, scene.lng)
        assert found == ["at"]

    def test_search_point_direction_filter(self):
        index = OrientedRTree()
        scene = GeoPoint(34.0, -118.4)
        camera = destination_point(scene, 180.0, 100.0)
        index.insert("north_facing", FieldOfView(camera, 0.0, 60.0, 200.0))
        assert index.search_point(scene.lat, scene.lng, direction_deg=0.0) == [
            "north_facing"
        ]
        assert index.search_point(scene.lat, scene.lng, direction_deg=180.0) == []

    def test_search_overlapping(self):
        index = OrientedRTree()
        base = GeoPoint(34.0, -118.4)
        a = FieldOfView(base, 0.0, 60.0, 200.0)
        far_camera = destination_point(base, 90.0, 5_000.0)
        b = FieldOfView(far_camera, 0.0, 60.0, 200.0)
        index.insert("a", a)
        index.insert("b", b)
        hits = index.search_overlapping(FieldOfView(base, 0.0, 90.0, 150.0))
        assert "a" in hits and "b" not in hits
