"""Tests for the R-tree, validated against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.geo import BoundingBox, GeoPoint
from repro.index import RTree, box_point_distance_deg


def random_points(n, seed=0, region=(33.7, -118.7, 34.3, -118.1)):
    rng = np.random.default_rng(seed)
    lats = rng.uniform(region[0], region[2], n)
    lngs = rng.uniform(region[1], region[3], n)
    return [GeoPoint(float(a), float(b)) for a, b in zip(lats, lngs)]


class TestInsertAndStructure:
    def test_empty(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.search_range(BoundingBox(-90, -180, 90, 180)) == []

    def test_size_tracks_inserts(self):
        tree = RTree()
        for i, p in enumerate(random_points(50)):
            tree.insert_point(i, p)
        assert len(tree) == 50
        assert sorted(tree.all_items()) == list(range(50))

    def test_height_grows_logarithmically(self):
        tree = RTree(max_entries=4)
        for i, p in enumerate(random_points(200)):
            tree.insert_point(i, p)
        assert 2 <= tree.height() <= 8

    def test_min_fanout_enforced(self):
        with pytest.raises(IndexError_):
            RTree(max_entries=3)


class TestRangeSearch:
    def test_matches_brute_force(self):
        points = random_points(300, seed=1)
        tree = RTree(max_entries=6)
        for i, p in enumerate(points):
            tree.insert_point(i, p)
        query = BoundingBox(33.9, -118.5, 34.1, -118.3)
        expected = {i for i, p in enumerate(points) if query.contains_point(p)}
        assert set(tree.search_range(query)) == expected

    def test_box_entries(self):
        tree = RTree()
        tree.insert("wide", BoundingBox(0.0, 0.0, 10.0, 10.0))
        tree.insert("narrow", BoundingBox(20.0, 20.0, 21.0, 21.0))
        assert set(tree.search_range(BoundingBox(5.0, 5.0, 6.0, 6.0))) == {"wide"}
        assert set(tree.search_range(BoundingBox(0.0, 0.0, 30.0, 30.0))) == {
            "wide",
            "narrow",
        }

    def test_disjoint_query_empty(self):
        tree = RTree()
        for i, p in enumerate(random_points(50)):
            tree.insert_point(i, p)
        assert tree.search_range(BoundingBox(80.0, 170.0, 81.0, 171.0)) == []

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_queries_match_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        points = random_points(80, seed=seed)
        tree = RTree(max_entries=5)
        for i, p in enumerate(points):
            tree.insert_point(i, p)
        lat0, lng0 = rng.uniform(33.7, 34.3), rng.uniform(-118.7, -118.1)
        query = BoundingBox(lat0, lng0, min(lat0 + 0.2, 90), min(lng0 + 0.2, 180))
        expected = {i for i, p in enumerate(points) if query.contains_point(p)}
        assert set(tree.search_range(query)) == expected


class TestKnn:
    def test_matches_brute_force(self):
        points = random_points(200, seed=2)
        tree = RTree(max_entries=6)
        for i, p in enumerate(points):
            tree.insert_point(i, p)
        query = GeoPoint(34.0, -118.4)
        results = tree.search_knn(query, k=10)
        assert len(results) == 10
        probe = BoundingBox(query.lat, query.lng, query.lat, query.lng)

        def dist(i):
            p = points[i]
            return box_point_distance_deg(
                BoundingBox(p.lat, p.lng, p.lat, p.lng), query
            )

        expected = sorted(range(len(points)), key=dist)[:10]
        assert {item for item, _ in results} == set(expected)

    def test_distances_ascending(self):
        tree = RTree()
        for i, p in enumerate(random_points(100, seed=3)):
            tree.insert_point(i, p)
        results = tree.search_knn(GeoPoint(34.0, -118.4), k=20)
        distances = [d for _, d in results]
        assert distances == sorted(distances)

    def test_k_larger_than_size(self):
        tree = RTree()
        for i, p in enumerate(random_points(5, seed=4)):
            tree.insert_point(i, p)
        assert len(tree.search_knn(GeoPoint(34.0, -118.4), k=50)) == 5

    def test_bad_k(self):
        with pytest.raises(IndexError_):
            RTree().search_knn(GeoPoint(0, 0), k=0)


class TestBoxPointDistance:
    def test_inside_is_zero(self):
        box = BoundingBox(0.0, 0.0, 2.0, 2.0)
        assert box_point_distance_deg(box, GeoPoint(1.0, 1.0)) == 0.0

    def test_outside_positive(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box_point_distance_deg(box, GeoPoint(3.0, 0.5)) == pytest.approx(2.0)
