"""Tests for R-tree STR bulk loading and deletion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import BoundingBox, GeoPoint
from repro.index import RTree


def random_entries(n, seed=0):
    rng = np.random.default_rng(seed)
    entries = []
    for i in range(n):
        lat = float(rng.uniform(33.9, 34.1))
        lng = float(rng.uniform(-118.5, -118.3))
        entries.append((i, BoundingBox(lat, lng, lat, lng)))
    return entries


class TestBulkLoad:
    def test_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0
        assert tree.search_range(BoundingBox(-90, -180, 90, 180)) == []

    def test_contains_everything(self):
        entries = random_entries(500)
        tree = RTree.bulk_load(entries, max_entries=8)
        assert len(tree) == 500
        assert sorted(tree.all_items()) == list(range(500))

    def test_range_queries_match_incremental(self):
        entries = random_entries(300, seed=1)
        bulk = RTree.bulk_load(entries, max_entries=6)
        incremental = RTree(max_entries=6)
        for item, box in entries:
            incremental.insert(item, box)
        query = BoundingBox(33.95, -118.45, 34.05, -118.35)
        assert set(bulk.search_range(query)) == set(incremental.search_range(query))

    def test_bulk_tree_is_shallower_or_equal(self):
        entries = random_entries(400, seed=2)
        bulk = RTree.bulk_load(entries, max_entries=6)
        incremental = RTree(max_entries=6)
        for item, box in entries:
            incremental.insert(item, box)
        assert bulk.height() <= incremental.height()

    def test_knn_works_on_bulk_tree(self):
        entries = random_entries(200, seed=3)
        tree = RTree.bulk_load(entries)
        results = tree.search_knn(GeoPoint(34.0, -118.4), k=5)
        assert len(results) == 5

    def test_single_entry(self):
        tree = RTree.bulk_load([("only", BoundingBox(1.0, 1.0, 1.0, 1.0))])
        assert len(tree) == 1
        assert tree.search_range(BoundingBox(0.0, 0.0, 2.0, 2.0)) == ["only"]


class TestDelete:
    def test_delete_existing(self):
        entries = random_entries(100, seed=4)
        tree = RTree(max_entries=5)
        for item, box in entries:
            tree.insert(item, box)
        item, box = entries[37]
        assert tree.delete(item, box) is True
        assert len(tree) == 99
        assert 37 not in tree.all_items()

    def test_delete_missing_returns_false(self):
        tree = RTree()
        tree.insert("a", BoundingBox(0, 0, 1, 1))
        assert tree.delete("b", BoundingBox(0, 0, 1, 1)) is False
        assert tree.delete("a", BoundingBox(5, 5, 6, 6)) is False
        assert len(tree) == 1

    def test_queries_correct_after_many_deletes(self):
        entries = random_entries(200, seed=5)
        tree = RTree(max_entries=5)
        for item, box in entries:
            tree.insert(item, box)
        removed = set()
        for item, box in entries[::3]:
            assert tree.delete(item, box)
            removed.add(item)
        query = BoundingBox(33.9, -118.5, 34.1, -118.3)
        expected = {i for i, _ in entries} - removed
        assert set(tree.search_range(query)) == expected
        assert len(tree) == len(expected)

    def test_delete_everything(self):
        entries = random_entries(50, seed=6)
        tree = RTree(max_entries=4)
        for item, box in entries:
            tree.insert(item, box)
        for item, box in entries:
            assert tree.delete(item, box)
        assert len(tree) == 0
        assert tree.search_range(BoundingBox(-90, -180, 90, 180)) == []

    def test_reinsert_after_delete(self):
        entries = random_entries(60, seed=7)
        tree = RTree(max_entries=4)
        for item, box in entries:
            tree.insert(item, box)
        item, box = entries[10]
        tree.delete(item, box)
        tree.insert(item, box)
        assert len(tree) == 60
        assert set(tree.all_items()) == {i for i, _ in entries}

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_delete_sequences_preserve_invariants(self, seed):
        rng = np.random.default_rng(seed)
        entries = random_entries(60, seed=seed)
        tree = RTree(max_entries=4)
        alive = {}
        for item, box in entries:
            tree.insert(item, box)
            alive[item] = box
        for item, box in entries:
            if rng.random() < 0.5:
                assert tree.delete(item, box)
                del alive[item]
        assert len(tree) == len(alive)
        query = BoundingBox(33.9, -118.5, 34.1, -118.3)
        assert set(tree.search_range(query)) == set(alive)
