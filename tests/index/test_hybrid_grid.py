"""Tests for the Visual R*-tree hybrid index and the grid index."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.geo import BoundingBox, GeoPoint
from repro.index import GridIndex, VisualRTree


def make_dataset(n=150, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    points = [
        GeoPoint(float(rng.uniform(33.9, 34.1)), float(rng.uniform(-118.5, -118.3)))
        for _ in range(n)
    ]
    vectors = rng.normal(0, 1, (n, dim))
    return points, vectors


class TestVisualRTree:
    def test_insert_and_len(self):
        points, vectors = make_dataset(30)
        index = VisualRTree(dimension=8)
        for i in range(30):
            index.insert(i, points[i], vectors[i])
        assert len(index) == 30

    def test_dimension_validation(self):
        index = VisualRTree(dimension=4)
        with pytest.raises(IndexError_):
            index.insert(0, GeoPoint(0, 0), np.zeros(5))
        with pytest.raises(IndexError_):
            VisualRTree(dimension=0)

    def test_knn_matches_linear_baseline(self):
        points, vectors = make_dataset(n=200, seed=1)
        index = VisualRTree(dimension=8, max_entries=6)
        for i in range(200):
            index.insert(i, points[i], vectors[i])
        region = BoundingBox(33.95, -118.45, 34.05, -118.35)
        query = np.random.default_rng(5).normal(0, 1, 8)
        fast = index.spatial_visual_knn(region, query, k=10)
        slow = index.linear_spatial_visual_knn(region, query, k=10)
        assert [item for item, _ in fast] == [item for item, _ in slow]
        for (_, d_fast), (_, d_slow) in zip(fast, slow):
            assert d_fast == pytest.approx(d_slow)

    def test_spatial_constraint_respected(self):
        points, vectors = make_dataset(n=100, seed=2)
        index = VisualRTree(dimension=8, max_entries=6)
        for i in range(100):
            index.insert(i, points[i], vectors[i])
        region = BoundingBox(33.99, -118.41, 34.01, -118.39)
        inside = {
            i for i, p in enumerate(points) if region.contains_point(p)
        }
        results = index.spatial_visual_knn(region, vectors[0], k=50)
        assert {item for item, _ in results} <= inside

    def test_empty_region_returns_nothing(self):
        points, vectors = make_dataset(20)
        index = VisualRTree(dimension=8)
        for i in range(20):
            index.insert(i, points[i], vectors[i])
        region = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert index.spatial_visual_knn(region, vectors[0], k=5) == []

    def test_distances_ascending(self):
        points, vectors = make_dataset(n=120, seed=3)
        index = VisualRTree(dimension=8)
        for i in range(120):
            index.insert(i, points[i], vectors[i])
        region = BoundingBox(33.9, -118.5, 34.1, -118.3)
        results = index.spatial_visual_knn(region, vectors[7], k=15)
        distances = [d for _, d in results]
        assert distances == sorted(distances)
        assert results[0][0] == 7

    def test_bad_k(self):
        index = VisualRTree(dimension=4)
        with pytest.raises(IndexError_):
            index.spatial_visual_knn(BoundingBox(0, 0, 1, 1), np.zeros(4), k=0)


class TestGridIndex:
    def region(self):
        return BoundingBox(33.9, -118.5, 34.1, -118.3)

    def test_range_matches_brute_force(self):
        points, _ = make_dataset(n=200, seed=4)
        grid = GridIndex(self.region(), rows=16, cols=16)
        for i, p in enumerate(points):
            grid.insert(i, p)
        query = BoundingBox(33.95, -118.45, 34.0, -118.40)
        expected = {i for i, p in enumerate(points) if query.contains_point(p)}
        assert set(grid.search_range(query)) == expected

    def test_out_of_region_points_still_found(self):
        grid = GridIndex(self.region())
        outside = GeoPoint(40.0, -100.0)
        grid.insert("far", outside)
        assert len(grid) == 1
        hits = grid.search_range(BoundingBox(39.0, -101.0, 41.0, -99.0))
        assert hits == ["far"]

    def test_cell_counts(self):
        grid = GridIndex(self.region(), rows=2, cols=2)
        grid.insert("a", GeoPoint(33.95, -118.45))
        grid.insert("b", GeoPoint(33.95, -118.45))
        counts = grid.cell_counts()
        assert sum(counts.values()) == 2
        assert max(counts.values()) == 2
