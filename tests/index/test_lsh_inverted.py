"""Tests for LSH and the inverted index."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.index import InvertedIndex, LSHIndex, tokenize


class TestLSH:
    def make_index(self, n=200, dim=16, seed=0):
        rng = np.random.default_rng(seed)
        index = LSHIndex(dimension=dim, seed=seed)
        vectors = rng.normal(0, 1, (n, dim))
        for i in range(n):
            index.insert(i, vectors[i])
        return index, vectors

    def test_insert_and_len(self):
        index, _ = self.make_index(50)
        assert len(index) == 50

    def test_duplicate_item_raises(self):
        index = LSHIndex(dimension=4)
        index.insert("a", np.zeros(4))
        with pytest.raises(IndexError_):
            index.insert("a", np.ones(4))

    def test_dimension_mismatch_raises(self):
        index = LSHIndex(dimension=4)
        with pytest.raises(IndexError_):
            index.insert("a", np.zeros(5))
        index.insert("a", np.zeros(4))
        with pytest.raises(IndexError_):
            index.query_topk(np.zeros(3), k=1)

    def test_exact_match_found_first(self):
        index, vectors = self.make_index()
        results = index.query_topk(vectors[17], k=5)
        assert results[0][0] == 17
        assert results[0][1] == pytest.approx(0.0)

    def test_topk_recall_against_linear(self):
        index, vectors = self.make_index(n=300, seed=1)
        query = vectors[42] + np.random.default_rng(9).normal(0, 0.05, 16)
        approx = {item for item, _ in index.query_topk(query, k=10)}
        exact = {item for item, _ in index.linear_topk(query, k=10)}
        # With the exhaustive fallback and 8 tables recall is high.
        assert len(approx & exact) >= 6

    def test_distances_ascending(self):
        index, vectors = self.make_index()
        results = index.query_topk(vectors[0], k=20)
        distances = [d for _, d in results]
        assert distances == sorted(distances)

    def test_radius_query(self):
        index = LSHIndex(dimension=2, bucket_width=5.0, seed=0)
        index.insert("near", np.array([0.1, 0.0]))
        index.insert("far", np.array([10.0, 10.0]))
        results = index.query_radius(np.zeros(2), radius=1.0)
        assert [item for item, _ in results] == ["near"]

    def test_fallback_guarantees_k(self):
        index, vectors = self.make_index(n=50)
        results = index.query_topk(np.full(16, 100.0), k=10)
        assert len(results) == 10

    def test_parameter_validation(self):
        with pytest.raises(IndexError_):
            LSHIndex(dimension=0)
        with pytest.raises(IndexError_):
            LSHIndex(dimension=4, bucket_width=0)
        with pytest.raises(IndexError_):
            LSHIndex(dimension=4, n_tables=0)
        index = LSHIndex(dimension=4)
        with pytest.raises(IndexError_):
            index.query_topk(np.zeros(4), k=0)
        with pytest.raises(IndexError_):
            index.query_radius(np.zeros(4), radius=-1.0)


class TestTokenize:
    def test_lowercase_and_split(self):
        assert tokenize("Illegal DUMPING on 5th") == ["illegal", "dumping", "5th"]

    def test_stopwords_removed(self):
        assert tokenize("the bags on the street") == ["bags", "street"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("the and of") == []


class TestInvertedIndex:
    def make_index(self):
        index = InvertedIndex()
        index.add(1, "illegal dumping near the river")
        index.add(2, "overgrown vegetation on sidewalk")
        index.add(3, "dumping of bulky furniture on sidewalk")
        return index

    def test_len_and_contains(self):
        index = self.make_index()
        assert len(index) == 3
        assert 1 in index and 9 not in index

    def test_search_any(self):
        index = self.make_index()
        hits = [doc for doc, _ in index.search_any("dumping sidewalk")]
        assert set(hits) == {1, 2, 3}

    def test_search_all(self):
        index = self.make_index()
        hits = [doc for doc, _ in index.search_all("dumping sidewalk")]
        assert hits == [3]

    def test_search_all_empty_query(self):
        assert self.make_index().search_all("") == []

    def test_ranking_prefers_rarer_terms(self):
        index = InvertedIndex()
        index.add(1, "graffiti")  # rare term, short doc
        index.add(2, "street street street street graffiti")
        index.add(3, "street cleaning")
        hits = index.search_any("graffiti")
        assert hits[0][0] == 1  # higher tf proportion

    def test_remove(self):
        index = self.make_index()
        index.remove(3)
        assert len(index) == 2
        assert [doc for doc, _ in index.search_all("dumping sidewalk")] == []
        with pytest.raises(IndexError_):
            index.remove(3)

    def test_add_extends_document(self):
        index = InvertedIndex()
        index.add(1, "homeless tents")
        index.add(1, "encampment")
        assert [doc for doc, _ in index.search_any("encampment")] == [1]
        assert [doc for doc, _ in index.search_any("tents")] == [1]
        assert len(index) == 1

    def test_vocabulary(self):
        index = self.make_index()
        vocab = index.vocabulary()
        assert "dumping" in vocab and "sidewalk" in vocab
        assert vocab == sorted(vocab)

    def test_no_match(self):
        assert self.make_index().search_any("wildfire") == []
