"""Tests for edge data selection, bandwidth accounting, crowd learning."""

import numpy as np
import pytest

from repro.edge import (
    DESKTOP,
    MOBILENET_V1,
    MOBILENET_V2,
    RASPBERRY_PI,
    SMARTPHONE,
    CrowdLearningFramework,
    EdgeBatch,
    compare_upload_strategies,
    feature_vector_bytes,
    prediction_entropy,
    raw_image_bytes,
    select_for_upload,
    select_random,
)
from repro.errors import EdgeError


class TestEntropy:
    def test_uniform_is_max(self):
        uniform = np.full((1, 4), 0.25)
        peaked = np.array([[0.97, 0.01, 0.01, 0.01]])
        assert prediction_entropy(uniform)[0] > prediction_entropy(peaked)[0]

    def test_certain_is_zero(self):
        certain = np.array([[1.0, 0.0, 0.0]])
        assert prediction_entropy(certain)[0] == pytest.approx(0.0, abs=1e-9)

    def test_negative_probs_raise(self):
        with pytest.raises(EdgeError):
            prediction_entropy(np.array([[-0.1, 1.1]]))

    def test_wrong_ndim_raises(self):
        with pytest.raises(EdgeError):
            prediction_entropy(np.array([0.5, 0.5]))


class TestSelection:
    def make_batch(self, n=40, seed=0):
        rng = np.random.default_rng(seed)
        features = rng.normal(0, 1, (n, 6))
        logits = rng.normal(0, 2, (n, 3))
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        return features, exp / exp.sum(axis=1, keepdims=True)

    def test_budget_respected(self):
        features, probs = self.make_batch()
        result = select_for_upload(features, probs, budget=10)
        assert len(result.indices) == 10
        assert len(set(result.indices)) == 10

    def test_budget_larger_than_n(self):
        features, probs = self.make_batch(n=5)
        result = select_for_upload(features, probs, budget=50)
        assert len(result.indices) == 5

    def test_zero_budget(self):
        features, probs = self.make_batch()
        assert select_for_upload(features, probs, budget=0).indices == []

    def test_first_pick_is_most_uncertain(self):
        features, probs = self.make_batch()
        result = select_for_upload(features, probs, budget=3, diversity_weight=0.0)
        entropy = prediction_entropy(probs)
        assert result.indices[0] == int(entropy.argmax())

    def test_diversity_spreads_selection(self):
        # Two tight clusters; with diversity on, both get picked from.
        rng = np.random.default_rng(1)
        cluster_a = rng.normal(0, 0.01, (20, 4))
        cluster_b = rng.normal(10, 0.01, (20, 4))
        features = np.vstack([cluster_a, cluster_b])
        probs = np.full((40, 2), 0.5)  # all equally uncertain
        result = select_for_upload(features, probs, budget=10, diversity_weight=1.0)
        groups = {idx // 20 for idx in result.indices}
        assert groups == {0, 1}

    def test_mismatched_shapes_raise(self):
        features, probs = self.make_batch()
        with pytest.raises(EdgeError):
            select_for_upload(features[:10], probs, budget=5)

    def test_random_selection(self):
        result = select_random(30, 10, seed=0)
        assert len(result.indices) == 10
        assert len(set(result.indices)) == 10
        with pytest.raises(EdgeError):
            select_random(10, -1)


class TestNetwork:
    def test_feature_upload_much_smaller(self):
        plans = compare_upload_strategies(
            SMARTPHONE, n_items=50, image_px=1024, feature_dim=336
        )
        assert plans["features"].total_bytes < plans["raw_images"].total_bytes / 100
        assert plans["features"].transfer_time_s < plans["raw_images"].transfer_time_s

    def test_byte_math(self):
        assert feature_vector_bytes(100) == 400
        assert raw_image_bytes(100, 100, jpeg=False) == 30_000

    def test_validation(self):
        with pytest.raises(EdgeError):
            feature_vector_bytes(0)
        with pytest.raises(EdgeError):
            raw_image_bytes(0, 10)
        with pytest.raises(EdgeError):
            compare_upload_strategies(DESKTOP, -1, 100, 10)


class TestResilientTransfers:
    """The transfer executor over the planning layer: one dead device
    must not stall — or fail — the rest of the fleet's round."""

    def _plans(self):
        return {
            device.name: plan_for_device(device)
            for device in (DESKTOP, SMARTPHONE, RASPBERRY_PI)
        }

    def test_dead_device_is_isolated(self):
        from repro.edge import upload_fleet
        from repro.resilience import FaultPlan, ManualClock, reset_breakers

        reset_breakers()
        clock = ManualClock()
        # Every transfer from the Pi dies; everyone else is healthy.
        plan = FaultPlan(seed=0, clock=clock).kill(
            "edge.transfer", rate=1.0, max_faults=50
        )
        plans = {RASPBERRY_PI.name: self._plans()[RASPBERRY_PI.name]}
        with plan.activate():
            report = upload_fleet(plans, clock=clock)
        assert RASPBERRY_PI.name in report.failed
        assert report.delivery_ratio == 0.0
        reset_breakers()

    def test_flaky_link_retried_to_success(self):
        from repro.edge import execute_upload
        from repro.resilience import FaultPlan, ManualClock, reset_breakers

        reset_breakers()
        clock = ManualClock()
        plan = FaultPlan(seed=0, clock=clock).kill("edge.transfer", at_calls={1})
        with plan.activate():
            receipt = execute_upload(plan_for_device(SMARTPHONE))
        assert receipt.attempts == 2
        assert receipt.duration_s > 0.0
        reset_breakers()


def plan_for_device(device):
    """A small feature-vector upload batch for one device."""
    return compare_upload_strategies(
        device, n_items=16, image_px=512, feature_dim=256
    )["features"]


def make_learning_problem(seed=0, n_seed=60, n_edge=120, n_test=90):
    """Three-class Gaussian problem split across server/edges/test."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0, 0, 0, 0], [3, 3, 0, 0], [0, 3, 3, 0]], dtype=float)

    def sample(n):
        labels = rng.integers(0, 3, n)
        features = centers[labels] + rng.normal(0, 1.0, (n, 4))
        return features, labels

    return sample(n_seed), sample(n_edge), sample(n_test)


class TestCrowdLearning:
    def test_accuracy_improves_with_rounds(self):
        (Xs, ys), (Xe, ye), (Xt, yt) = make_learning_problem(seed=3, n_seed=15)
        framework = CrowdLearningFramework(
            model_variants=[MOBILENET_V1, MOBILENET_V2],
            upload_budget=25,
            human_label_rate=1.0,
            seed=0,
        )
        framework.seed_pool(Xs, ys)
        base = framework.classifier.predict(Xt)
        from repro.ml import accuracy

        base_acc = accuracy(yt, base)
        for start in range(0, 120, 40):
            batch = EdgeBatch(
                device=SMARTPHONE,
                features=Xe[start : start + 40],
                true_labels=ye[start : start + 40],
            )
            stats = framework.run_round([batch], Xt, yt)
        assert stats.pool_size > 15
        assert stats.test_accuracy >= base_acc - 0.02
        assert len(framework.history) == 3

    def test_dispatch_included_per_device(self):
        (Xs, ys), (Xe, ye), (Xt, yt) = make_learning_problem()
        framework = CrowdLearningFramework(model_variants=[MOBILENET_V1])
        framework.seed_pool(Xs, ys)
        batches = [
            EdgeBatch(device=SMARTPHONE, features=Xe[:30], true_labels=ye[:30]),
            EdgeBatch(device=RASPBERRY_PI, features=Xe[30:60], true_labels=ye[30:60]),
        ]
        stats = framework.run_round(batches, Xt, yt)
        assert set(stats.dispatch) == {"smartphone", "raspberry_pi_3b+"}

    def test_upload_budget_caps_bytes(self):
        (Xs, ys), (Xe, ye), (Xt, yt) = make_learning_problem()
        framework = CrowdLearningFramework(
            model_variants=[MOBILENET_V1], upload_budget=5
        )
        framework.seed_pool(Xs, ys)
        batch = EdgeBatch(device=SMARTPHONE, features=Xe, true_labels=ye)
        stats = framework.run_round([batch], Xt, yt)
        assert stats.uploaded_samples == 5
        assert stats.uploaded_bytes == 5 * feature_vector_bytes(4)

    def test_run_before_seed_raises(self):
        framework = CrowdLearningFramework(model_variants=[MOBILENET_V1])
        with pytest.raises(EdgeError):
            framework.run_round([], np.zeros((2, 4)), np.zeros(2))

    def test_empty_batch_handled(self):
        (Xs, ys), _, (Xt, yt) = make_learning_problem()
        framework = CrowdLearningFramework(model_variants=[MOBILENET_V1])
        framework.seed_pool(Xs, ys)
        batch = EdgeBatch(
            device=SMARTPHONE,
            features=np.empty((0, 4)),
            true_labels=np.empty(0, dtype=int),
        )
        stats = framework.run_round([batch], Xt, yt)
        assert stats.uploaded_samples == 0

    def test_invalid_construction(self):
        with pytest.raises(EdgeError):
            CrowdLearningFramework(model_variants=[])
        with pytest.raises(EdgeError):
            CrowdLearningFramework(model_variants=[MOBILENET_V1], strategy="magic")
        with pytest.raises(EdgeError):
            CrowdLearningFramework(model_variants=[MOBILENET_V1], human_label_rate=2.0)
        with pytest.raises(EdgeError):
            CrowdLearningFramework(model_variants=[MOBILENET_V1], upload_budget=0)

    def test_random_strategy_runs(self):
        (Xs, ys), (Xe, ye), (Xt, yt) = make_learning_problem()
        framework = CrowdLearningFramework(
            model_variants=[MOBILENET_V1], strategy="random", upload_budget=10
        )
        framework.seed_pool(Xs, ys)
        batch = EdgeBatch(device=SMARTPHONE, features=Xe, true_labels=ye)
        stats = framework.run_round([batch], Xt, yt)
        assert stats.uploaded_samples == 10
