"""Crowd learning with a margin-only classifier (no predict_proba)."""

import numpy as np

from repro.edge import MOBILENET_V1, SMARTPHONE, CrowdLearningFramework, EdgeBatch
from repro.ml import LinearSVM
from tests.edge.test_selection_network_learning import make_learning_problem


class TestSvmFallback:
    def test_margin_softmax_fallback_runs(self):
        (Xs, ys), (Xe, ye), (Xt, yt) = make_learning_problem(seed=5)
        framework = CrowdLearningFramework(
            model_variants=[MOBILENET_V1],
            make_classifier=lambda: LinearSVM(epochs=20),
            upload_budget=10,
            human_label_rate=1.0,
        )
        framework.seed_pool(Xs, ys)
        # LinearSVM has no predict_proba; the framework converts margins
        # via softmax for the uncertainty selection.
        probs = framework._predict_proba(Xe[:7])
        assert probs.shape == (7, 3)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

        batch = EdgeBatch(device=SMARTPHONE, features=Xe, true_labels=ye)
        stats = framework.run_round([batch], Xt, yt)
        assert stats.uploaded_samples == 10
        assert stats.test_accuracy > 0.5
