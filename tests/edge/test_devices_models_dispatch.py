"""Tests for device profiles, model cost models, and dispatch."""

import math

import pytest

from repro.edge import (
    DESKTOP,
    INCEPTION_V3,
    MOBILENET_V1,
    MOBILENET_V2,
    PAPER_DEVICES,
    PAPER_MODELS,
    RASPBERRY_PI,
    SMARTPHONE,
    DeviceProfile,
    ModelVariant,
    device_by_name,
    dispatch_fleet,
    dispatch_model,
    model_by_name,
    predicted_latency_ms,
)
from repro.errors import EdgeError


class TestDevices:
    def test_rpi_is_1_5_orders_slower_than_desktop(self):
        # The paper's headline Fig. 8 observation.
        flops = MOBILENET_V2.base_flops
        desktop_ms = DESKTOP.inference_time_ms(flops) - DESKTOP.inference_overhead_ms
        rpi_ms = (
            RASPBERRY_PI.inference_time_ms(flops) - RASPBERRY_PI.inference_overhead_ms
        )
        assert math.log10(rpi_ms / desktop_ms) == pytest.approx(1.5, abs=0.05)

    def test_desktop_tens_of_ms(self):
        for model in PAPER_MODELS:
            ms = DESKTOP.inference_time_ms(model.flops_at(model.base_input_px))
            assert 1.0 < ms < 100.0

    def test_rpi_thousands_of_ms_for_inception(self):
        ms = RASPBERRY_PI.inference_time_ms(INCEPTION_V3.base_flops)
        assert ms > 500.0

    def test_smartphone_between(self):
        flops = MOBILENET_V1.base_flops
        assert (
            DESKTOP.inference_time_ms(flops)
            < SMARTPHONE.inference_time_ms(flops)
            < RASPBERRY_PI.inference_time_ms(flops)
        )

    def test_transmission_time(self):
        # 1 MB at 8 Mbps = 1 second.
        device = DeviceProfile("t", 1.0, 100.0, 8.0, None, 0.0)
        assert device.transmission_time_s(1_000_000) == pytest.approx(1.0)

    def test_lookup(self):
        assert device_by_name("desktop") is DESKTOP
        with pytest.raises(EdgeError):
            device_by_name("toaster")

    def test_validation(self):
        with pytest.raises(EdgeError):
            DeviceProfile("bad", 0.0, 1.0, 1.0, None, 0.0)
        with pytest.raises(EdgeError):
            DESKTOP.inference_time_ms(-1.0)
        with pytest.raises(EdgeError):
            DESKTOP.transmission_time_s(-1)


class TestModels:
    def test_flops_scale_quadratically(self):
        assert MOBILENET_V1.flops_at(448) == pytest.approx(4 * MOBILENET_V1.base_flops)
        assert MOBILENET_V1.flops_at(112) == pytest.approx(MOBILENET_V1.base_flops / 4)

    def test_inception_heaviest(self):
        assert INCEPTION_V3.base_flops > MOBILENET_V1.base_flops
        assert INCEPTION_V3.base_flops > MOBILENET_V2.base_flops

    def test_accuracy_ordering(self):
        # Bigger backbone, better expected accuracy.
        assert (
            INCEPTION_V3.expected_accuracy
            > MOBILENET_V2.expected_accuracy
            > MOBILENET_V1.expected_accuracy - 0.05
        )

    def test_lookup(self):
        assert model_by_name("inception_v3") is INCEPTION_V3
        with pytest.raises(EdgeError):
            model_by_name("resnet")

    def test_validation(self):
        with pytest.raises(EdgeError):
            ModelVariant("bad", 0.0, 224, 1.0, 0.5)
        with pytest.raises(EdgeError):
            ModelVariant("bad", 1.0, 224, 1.0, 1.5)
        with pytest.raises(EdgeError):
            MOBILENET_V1.flops_at(0)


class TestDispatch:
    def test_unconstrained_picks_most_accurate(self):
        decision = dispatch_model(DESKTOP, list(PAPER_MODELS))
        assert decision.model is INCEPTION_V3

    def test_tight_latency_budget_downgrades(self):
        decision = dispatch_model(
            RASPBERRY_PI, list(PAPER_MODELS), latency_budget_ms=1500.0
        )
        assert decision.model in (MOBILENET_V1, MOBILENET_V2)
        assert decision.predicted_latency_ms <= 1500.0

    def test_impossible_budget_returns_fastest(self):
        decision = dispatch_model(
            RASPBERRY_PI, list(PAPER_MODELS), latency_budget_ms=1.0
        )
        latencies = {
            m.name: predicted_latency_ms(RASPBERRY_PI, m) for m in PAPER_MODELS
        }
        assert decision.model.name == min(latencies, key=latencies.get)

    def test_memory_constraint(self):
        tiny_device = DeviceProfile("tiny", 5.0, 40.0, 10.0, 5.0, 1.0)
        decision = dispatch_model(tiny_device, list(PAPER_MODELS))
        # InceptionV3 (92 MB) cannot fit in 40 MB * 0.5.
        assert decision.model is not INCEPTION_V3

    def test_nothing_fits_raises(self):
        micro = DeviceProfile("micro", 5.0, 10.0, 10.0, 1.0, 1.0)
        with pytest.raises(EdgeError):
            dispatch_model(micro, list(PAPER_MODELS))

    def test_empty_candidates_raises(self):
        with pytest.raises(EdgeError):
            dispatch_model(DESKTOP, [])

    def test_bad_budget_raises(self):
        with pytest.raises(EdgeError):
            dispatch_model(DESKTOP, list(PAPER_MODELS), latency_budget_ms=0.0)

    def test_fleet_dispatch(self):
        decisions = dispatch_fleet(list(PAPER_DEVICES), list(PAPER_MODELS), 1000.0)
        assert set(decisions) == {d.name for d in PAPER_DEVICES}
        # Desktop can afford the big model within 2s; RPI cannot.
        assert decisions["desktop"].model is INCEPTION_V3
        assert decisions["raspberry_pi_3b+"].model is not INCEPTION_V3

    def test_download_time_positive(self):
        decision = dispatch_model(SMARTPHONE, list(PAPER_MODELS))
        assert decision.download_time_s > 0.0
