"""Tests for edge energy accounting and battery-aware dispatch."""

import math

import pytest

from repro.edge import (
    DESKTOP,
    INCEPTION_V3,
    MOBILENET_V1,
    MOBILENET_V2,
    PAPER_MODELS,
    SMARTPHONE,
    DeviceProfile,
    dispatch_model,
)
from repro.errors import EdgeError


class TestEnergy:
    def test_energy_scales_with_flops(self):
        small = SMARTPHONE.energy_per_inference_j(MOBILENET_V2.base_flops)
        large = SMARTPHONE.energy_per_inference_j(INCEPTION_V3.base_flops)
        assert large > small > 0.0

    def test_mains_devices_unbounded(self):
        assert math.isinf(DESKTOP.inferences_per_charge(INCEPTION_V3.base_flops))

    def test_smartphone_charge_budget_finite(self):
        budget = SMARTPHONE.inferences_per_charge(INCEPTION_V3.base_flops)
        assert 0.0 < budget < 1e9
        # The lighter model affords strictly more inferences.
        lighter = SMARTPHONE.inferences_per_charge(MOBILENET_V2.base_flops)
        assert lighter > budget

    def test_energy_arithmetic(self):
        device = DeviceProfile("t", 10.0, 100.0, 10.0, 10.0, 0.0, active_power_w=2.0)
        # 1e9 flops at 10 GFLOPS = 0.1 s at 2 W = 0.2 J.
        assert device.energy_per_inference_j(1e9) == pytest.approx(0.2)
        # 10 Wh = 36 kJ -> 180 000 inferences.
        assert device.inferences_per_charge(1e9) == pytest.approx(180_000)


class TestBatteryAwareDispatch:
    def test_battery_floor_downgrades_model(self):
        unconstrained = dispatch_model(SMARTPHONE, list(PAPER_MODELS))
        heavy_budget = SMARTPHONE.inferences_per_charge(INCEPTION_V3.base_flops)
        constrained = dispatch_model(
            SMARTPHONE,
            list(PAPER_MODELS),
            min_inferences_on_battery=heavy_budget * 2.0,
        )
        assert unconstrained.model is INCEPTION_V3
        assert constrained.model is not INCEPTION_V3

    def test_mains_device_ignores_battery_floor(self):
        decision = dispatch_model(
            DESKTOP, list(PAPER_MODELS), min_inferences_on_battery=1e12
        )
        assert decision.model is INCEPTION_V3

    def test_impossible_floor_raises(self):
        tiny_battery = DeviceProfile(
            "dying_phone", 12.0, 4_096.0, 50.0, 0.001, 8.0, active_power_w=4.0
        )
        with pytest.raises(EdgeError):
            dispatch_model(
                tiny_battery, list(PAPER_MODELS), min_inferences_on_battery=1e9
            )

    def test_negative_floor_raises(self):
        with pytest.raises(EdgeError):
            dispatch_model(
                SMARTPHONE, list(PAPER_MODELS), min_inferences_on_battery=-1.0
            )

    def test_floor_interacts_with_latency_budget(self):
        decision = dispatch_model(
            SMARTPHONE,
            list(PAPER_MODELS),
            latency_budget_ms=60.0,
            min_inferences_on_battery=1.0,
        )
        assert decision.model in (MOBILENET_V1, MOBILENET_V2)
