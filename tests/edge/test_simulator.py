"""Tests for the edge fleet discrete-event simulator."""

import pytest

from repro.edge import (
    DESKTOP,
    INCEPTION_V3,
    MOBILENET_V2,
    RASPBERRY_PI,
    SMARTPHONE,
    simulate_device,
    simulate_fleet,
)
from repro.errors import EdgeError


class TestSimulateDevice:
    def test_fast_device_keeps_up(self):
        stats = simulate_device(
            DESKTOP, INCEPTION_V3, duration_s=60.0, arrival_rate_hz=2.0, seed=0
        )
        # Desktop serves Inception in ~59 ms; 2 Hz is a light load.
        assert stats.drop_rate == 0.0
        assert stats.frames_processed == stats.frames_arrived
        assert stats.utilization < 0.5
        assert stats.mean_latency_ms < 200.0

    def test_slow_device_saturates_on_heavy_model(self):
        stats = simulate_device(
            RASPBERRY_PI, INCEPTION_V3, duration_s=60.0, arrival_rate_hz=2.0, seed=0
        )
        # RPI needs ~1.8 s per Inception frame; a 2 Hz stream drowns it.
        assert stats.drop_rate > 0.5
        assert stats.utilization > 0.9

    def test_lighter_model_rescues_slow_device(self):
        heavy = simulate_device(
            RASPBERRY_PI, INCEPTION_V3, duration_s=60.0, arrival_rate_hz=2.0, seed=0
        )
        light = simulate_device(
            RASPBERRY_PI, MOBILENET_V2, duration_s=60.0, arrival_rate_hz=2.0, seed=0
        )
        assert light.drop_rate < heavy.drop_rate
        assert light.effective_accuracy > heavy.effective_accuracy

    def test_latency_includes_queueing(self):
        light = simulate_device(
            SMARTPHONE, MOBILENET_V2, duration_s=30.0, arrival_rate_hz=0.5, seed=1
        )
        busy = simulate_device(
            SMARTPHONE, MOBILENET_V2, duration_s=30.0, arrival_rate_hz=25.0, seed=1
        )
        assert busy.mean_latency_ms > light.mean_latency_ms
        assert busy.p95_latency_ms >= busy.mean_latency_ms

    def test_deterministic_given_seed(self):
        a = simulate_device(SMARTPHONE, MOBILENET_V2, 30.0, 2.0, seed=7)
        b = simulate_device(SMARTPHONE, MOBILENET_V2, 30.0, 2.0, seed=7)
        assert a == b

    def test_validation(self):
        with pytest.raises(EdgeError):
            simulate_device(DESKTOP, MOBILENET_V2, duration_s=0.0, arrival_rate_hz=1.0)
        with pytest.raises(EdgeError):
            simulate_device(DESKTOP, MOBILENET_V2, 10.0, 1.0, max_queue=0)
        with pytest.raises(EdgeError):
            simulate_device(DESKTOP, MOBILENET_V2, 10.0, 1.0, jitter=1.5)


class TestSimulateFleet:
    def test_capability_aware_beats_one_size_fits_all(self):
        devices = {
            "desktop": DESKTOP,
            "raspberry_pi_3b+": RASPBERRY_PI,
            "smartphone": SMARTPHONE,
        }
        one_model = simulate_fleet(
            {name: (dev, INCEPTION_V3) for name, dev in devices.items()},
            duration_s=60.0,
            arrival_rate_hz=1.5,
            seed=0,
        )
        matched = simulate_fleet(
            {
                "desktop": (DESKTOP, INCEPTION_V3),
                "raspberry_pi_3b+": (RASPBERRY_PI, MOBILENET_V2),
                "smartphone": (SMARTPHONE, MOBILENET_V2),
            },
            duration_s=60.0,
            arrival_rate_hz=1.5,
            seed=0,
        )
        assert matched.fleet_effective_accuracy > one_model.fleet_effective_accuracy
        assert matched.total_dropped < one_model.total_dropped

    def test_report_covers_all_devices(self):
        report = simulate_fleet(
            {"a": (DESKTOP, MOBILENET_V2), "b": (SMARTPHONE, MOBILENET_V2)},
            duration_s=20.0,
            arrival_rate_hz=1.0,
        )
        assert {s.device for s in report.stats} == {"desktop", "smartphone"}
