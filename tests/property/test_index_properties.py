"""Property-based tests: index structures vs brute-force oracles."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import BoundingBox, GeoPoint
from repro.index import InvertedIndex, LSHIndex, RTree, tokenize

# -- strategies -------------------------------------------------------------

lat = st.floats(min_value=33.0, max_value=35.0, allow_nan=False)
lng = st.floats(min_value=-119.0, max_value=-117.0, allow_nan=False)


@st.composite
def boxes(draw):
    lat0 = draw(lat)
    lng0 = draw(lng)
    dlat = draw(st.floats(min_value=0.0, max_value=0.5))
    dlng = draw(st.floats(min_value=0.0, max_value=0.5))
    return BoundingBox(lat0, lng0, min(lat0 + dlat, 35.0), min(lng0 + dlng, -117.0))


entries = st.lists(boxes(), min_size=0, max_size=40)


class TestRTreeProperties:
    @settings(max_examples=50, deadline=None)
    @given(entries, boxes())
    def test_range_equals_brute_force(self, boxes_list, query):
        tree = RTree(max_entries=4)
        for i, box in enumerate(boxes_list):
            tree.insert(i, box)
        expected = {i for i, box in enumerate(boxes_list) if box.intersects(query)}
        assert set(tree.search_range(query)) == expected

    @settings(max_examples=50, deadline=None)
    @given(entries)
    def test_bulk_load_equals_incremental(self, boxes_list):
        incremental = RTree(max_entries=4)
        for i, box in enumerate(boxes_list):
            incremental.insert(i, box)
        bulk = RTree.bulk_load(list(enumerate(boxes_list)), max_entries=4)
        probe = BoundingBox(33.0, -119.0, 35.0, -117.0)
        assert set(bulk.search_range(probe)) == set(incremental.search_range(probe))
        assert len(bulk) == len(incremental)

    @settings(max_examples=30, deadline=None)
    @given(entries, st.data())
    def test_knn_returns_nearest(self, boxes_list, data):
        tree = RTree(max_entries=4)
        for i, box in enumerate(boxes_list):
            tree.insert(i, box)
        point = GeoPoint(data.draw(lat), data.draw(lng))
        k = data.draw(st.integers(min_value=1, max_value=5))
        results = tree.search_knn(point, k)
        assert len(results) == min(k, len(boxes_list))
        distances = [d for _, d in results]
        assert distances == sorted(distances)
        if boxes_list:
            from repro.index import box_point_distance_deg

            best_possible = min(
                box_point_distance_deg(box, point) for box in boxes_list
            )
            assert abs(distances[0] - best_possible) < 1e-12


class TestLSHProperties:
    vectors = st.lists(
        st.lists(st.floats(-5, 5, allow_nan=False), min_size=4, max_size=4),
        min_size=1,
        max_size=30,
    )

    @settings(max_examples=40, deadline=None)
    @given(vectors, st.integers(0, 1000))
    def test_fallback_matches_linear_for_large_k(self, rows, seed):
        index = LSHIndex(dimension=4, seed=seed)
        for i, row in enumerate(rows):
            index.insert(i, np.array(row))
        query = np.array(rows[0])
        k = len(rows) + 5  # forces the exhaustive fallback
        approx = index.query_topk(query, k)
        exact = index.linear_topk(query, k)
        assert {i for i, _ in approx} == {i for i, _ in exact}

    @settings(max_examples=40, deadline=None)
    @given(vectors, st.floats(min_value=0.0, max_value=10.0))
    def test_radius_results_within_radius(self, rows, radius):
        index = LSHIndex(dimension=4, seed=0)
        for i, row in enumerate(rows):
            index.insert(i, np.array(row))
        results = index.query_radius(np.array(rows[0]), radius)
        for item, distance in results:
            assert distance <= radius + 1e-12
            true = float(np.linalg.norm(np.array(rows[item]) - np.array(rows[0])))
            assert abs(true - distance) < 1e-9

    @settings(max_examples=40, deadline=None)
    @given(vectors)
    def test_self_is_nearest(self, rows):
        index = LSHIndex(dimension=4, seed=0)
        for i, row in enumerate(rows):
            index.insert(i, np.array(row))
        results = index.query_topk(np.array(rows[0]), k=1)
        assert results[0][1] == 0.0


words = st.lists(
    st.text(alphabet="abcdefg", min_size=2, max_size=6), min_size=0, max_size=8
)


class TestInvertedIndexProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(words, min_size=1, max_size=10), words)
    def test_all_subset_of_any(self, documents, query_words):
        index = InvertedIndex()
        for doc_id, doc_words in enumerate(documents):
            index.add(doc_id, " ".join(doc_words))
        query = " ".join(query_words)
        any_hits = {doc for doc, _ in index.search_any(query)}
        all_hits = {doc for doc, _ in index.search_all(query)}
        assert all_hits <= any_hits

    @settings(max_examples=50, deadline=None)
    @given(st.lists(words, min_size=1, max_size=10))
    def test_every_document_findable_by_own_terms(self, documents):
        index = InvertedIndex()
        for doc_id, doc_words in enumerate(documents):
            index.add(doc_id, " ".join(doc_words))
        for doc_id, doc_words in enumerate(documents):
            terms = tokenize(" ".join(doc_words))
            if terms:
                hits = {doc for doc, _ in index.search_all(" ".join(terms))}
                assert doc_id in hits

    @settings(max_examples=50, deadline=None)
    @given(st.lists(words, min_size=2, max_size=10))
    def test_remove_erases_document(self, documents):
        index = InvertedIndex()
        for doc_id, doc_words in enumerate(documents):
            index.add(doc_id, " ".join(doc_words))
        index.remove(0)
        assert 0 not in index
        for doc_words in documents:
            query = " ".join(doc_words)
            assert 0 not in {doc for doc, _ in index.search_any(query)}
