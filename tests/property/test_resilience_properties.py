"""Property tests on resilience invariants, for arbitrary seeds.

Three paper-cuts this pins down for *every* seed, not just the ones the
unit tests happen to use:

* backoff schedules are monotone non-decreasing and never overrun their
  budget;
* a circuit breaker can only reach ``closed`` from ``half_open`` — a
  recovery always passes through a successful probe;
* a :class:`FaultPlan` replays the exact same fault schedule when
  rebuilt with the same seed and rules.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultInjected
from repro.resilience import CircuitBreaker, FaultPlan, ManualClock, backoff_delays

seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestBackoffProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        seed=seeds,
        max_attempts=st.integers(1, 20),
        base=st.floats(0.001, 2.0, allow_nan=False),
        factor=st.floats(1.0, 4.0, allow_nan=False),
        cap=st.floats(0.5, 30.0, allow_nan=False),
        budget=st.floats(0.1, 120.0, allow_nan=False),
        jitter=st.floats(0.0, 0.99, allow_nan=False),
    )
    def test_monotone_and_budget_bounded(
        self, seed, max_attempts, base, factor, cap, budget, jitter
    ):
        delays = backoff_delays(
            max_attempts,
            base_delay_s=base,
            factor=factor,
            max_delay_s=cap,
            budget_s=budget,
            jitter=jitter,
            seed=seed,
        )
        assert len(delays) <= max_attempts - 1 if max_attempts > 1 else not delays
        assert all(later >= earlier for earlier, later in zip(delays, delays[1:]))
        assert sum(delays) <= budget + 1e-9
        assert all(0.0 <= d <= cap for d in delays)

    @settings(max_examples=40, deadline=None)
    @given(seed=seeds)
    def test_same_seed_same_schedule(self, seed):
        kwargs = dict(max_attempts=8, base_delay_s=0.05, budget_s=60.0)
        assert backoff_delays(seed=seed, **kwargs) == backoff_delays(
            seed=seed, **kwargs
        )


class TestBreakerProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=seeds,
        threshold=st.integers(1, 5),
        outcomes=st.lists(st.booleans(), min_size=1, max_size=60),
        gaps=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=60),
    )
    def test_closed_only_reachable_from_half_open(
        self, seed, threshold, outcomes, gaps
    ):
        clock = ManualClock()
        breaker = CircuitBreaker(
            f"prop-{seed}",
            failure_threshold=threshold,
            recovery_time_s=30.0,
            failure_on=(ConnectionError,),
            clock=clock,
        )
        for succeed, gap in zip(outcomes, gaps + gaps * 2):
            clock.advance(gap)
            try:
                if succeed:
                    breaker.call(lambda: "ok")
                else:
                    with pytest.raises(ConnectionError):
                        breaker.call(self._failing)
            except Exception:  # CircuitOpenError: rejected while open
                pass
        for frm, to, _ in breaker.transitions:
            if to == "closed":
                assert frm == "half_open"
            if frm == "open":
                assert to == "half_open"

    @staticmethod
    def _failing():
        raise ConnectionError("down")


class TestFaultPlanProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=seeds,
        rate=st.floats(0.0, 1.0, allow_nan=False),
        calls=st.integers(1, 80),
    )
    def test_schedule_exactly_reproducible(self, seed, rate, calls):
        def run():
            plan = (
                FaultPlan(seed=seed, clock=ManualClock())
                .kill("site.a", rate=rate)
                .delay("site.a", latency_s=0.1, rate=rate / 2)
                .garble("site.b", rate=rate)
            )
            with plan.activate():
                for _ in range(calls):
                    try:
                        plan.inject("site.a")
                    except FaultInjected:
                        pass
                    plan.corrupt("site.b", "payload")
            return plan.events

        first, second = run(), run()
        assert first == second

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, calls=st.integers(1, 50))
    def test_rate_one_fires_every_call_rate_zero_never(self, seed, calls):
        plan = FaultPlan(seed=seed).kill("a", rate=1.0).kill("b", rate=0.0)
        with plan.activate():
            for _ in range(calls):
                with pytest.raises(FaultInjected):
                    plan.inject("a")
                plan.inject("b")
        summary = plan.summary()
        assert summary["a"]["error"] == calls
        assert "b" not in summary
