"""Property tests on geospatial and ML invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (
    BoundingBox,
    FieldOfView,
    GeoPoint,
    destination_point,
    haversine_m,
    scene_location,
)
from repro.ml import KMeans, StandardScaler, accuracy, confusion_matrix, f1_score

camera = st.builds(
    GeoPoint,
    lat=st.floats(min_value=-60.0, max_value=60.0, allow_nan=False),
    lng=st.floats(min_value=-170.0, max_value=170.0, allow_nan=False),
)
fovs = st.builds(
    FieldOfView,
    camera=camera,
    direction_deg=st.floats(0.0, 359.9, allow_nan=False),
    angle_deg=st.floats(20.0, 120.0, allow_nan=False),
    range_m=st.floats(20.0, 1_000.0, allow_nan=False),
)


class TestGeoProperties:
    @settings(max_examples=60, deadline=None)
    @given(fovs, st.floats(0.05, 0.95), st.floats(-0.45, 0.45))
    def test_scene_location_contains_visible_points(self, fov, rfrac, afrac):
        point = destination_point(
            fov.camera, fov.direction_deg + afrac * fov.angle_deg, rfrac * fov.range_m
        )
        assert scene_location(fov).contains_point(point)

    @settings(max_examples=60, deadline=None)
    @given(fovs, camera)
    def test_contains_implies_within_range(self, fov, point):
        if fov.contains_point(point):
            assert haversine_m(fov.camera, point) <= fov.range_m + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(fovs, camera, st.floats(1.0, 500.0))
    def test_intersects_box_consistent_with_contains(self, fov, center, radius):
        box = BoundingBox.around(center, radius)
        # If the box centre is visible, the box must intersect the FOV.
        if fov.contains_point(center):
            assert fov.intersects_box(box)

    @settings(max_examples=60, deadline=None)
    @given(camera, camera, camera)
    def test_haversine_triangle_inequality(self, a, b, c):
        assert haversine_m(a, c) <= haversine_m(a, b) + haversine_m(b, c) + 1e-6


labels_st = st.lists(st.integers(0, 3), min_size=2, max_size=40)


class TestMetricProperties:
    @settings(max_examples=60, deadline=None)
    @given(labels_st, st.integers(0, 1000))
    def test_f1_invariant_under_consistent_relabeling(self, ys, seed):
        """Renaming classes (a bijection on labels) must not change
        macro F1."""
        rng = np.random.default_rng(seed)
        y_true = np.array(ys)
        y_pred = rng.permutation(y_true)
        mapping = {0: 10, 1: 11, 2: 12, 3: 13}
        remap = np.vectorize(mapping.get)
        original = f1_score(y_true, y_pred, average="macro")
        renamed = f1_score(remap(y_true), remap(y_pred), average="macro")
        assert original == pytest.approx(renamed)

    @settings(max_examples=60, deadline=None)
    @given(labels_st, st.integers(0, 1000))
    def test_confusion_matrix_row_sums_are_class_counts(self, ys, seed):
        rng = np.random.default_rng(seed)
        y_true = np.array(ys)
        y_pred = rng.permutation(y_true)
        matrix, labels = confusion_matrix(y_true, y_pred)
        for i, label in enumerate(labels):
            assert matrix[i].sum() == np.sum(y_true == label)

    @settings(max_examples=60, deadline=None)
    @given(labels_st)
    def test_accuracy_bounds_micro_f1(self, ys):
        y = np.array(ys)
        rng = np.random.default_rng(0)
        y_pred = rng.permutation(y)
        assert f1_score(y, y_pred, average="micro") == pytest.approx(
            accuracy(y, y_pred)
        )


matrix_st = st.lists(
    st.lists(st.floats(-100, 100, allow_nan=False), min_size=3, max_size=3),
    min_size=4,
    max_size=25,
)


class TestMLProperties:
    @settings(max_examples=40, deadline=None)
    @given(matrix_st)
    def test_scaler_is_idempotent_on_scaled_data(self, rows):
        X = np.array(rows)
        Z = StandardScaler().fit_transform(X)
        Z2 = StandardScaler().fit_transform(Z)
        assert np.allclose(Z, Z2, atol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(matrix_st, st.integers(1, 3))
    def test_kmeans_assignment_is_nearest_centroid(self, rows, k):
        X = np.array(rows)
        k = min(k, len({tuple(r) for r in rows}))
        if k < 1:
            return
        model = KMeans(k=k, seed=0).fit(X)
        assignment = model.predict(X)
        for i, row in enumerate(X):
            distances = np.linalg.norm(model.centroids_ - row, axis=1)
            assert distances[assignment[i]] == pytest.approx(distances.min())
