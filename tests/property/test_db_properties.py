"""Model-based property tests: the table engine vs a dict oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, ColumnType, Table, TableSchema
from repro.errors import IntegrityError, SchemaError

I, T = ColumnType.INTEGER, ColumnType.TEXT


def fresh_table():
    return Table(
        TableSchema(
            "t",
            (
                Column("id", I, primary_key=True),
                Column("name", T),
                Column("tag", T, nullable=True, unique=True),
            ),
        )
    )


# Operations: ("insert", name, tag) / ("update", idx, name) / ("delete", idx)
ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.text(alphabet="xyz", min_size=1, max_size=3),
            st.one_of(st.none(), st.text(alphabet="abc", min_size=1, max_size=3)),
        ),
        st.tuples(st.just("update"), st.integers(0, 20), st.text("xyz", min_size=1, max_size=3)),
        st.tuples(st.just("delete"), st.integers(0, 20)),
    ),
    max_size=40,
)


class TestTableModelBased:
    @settings(max_examples=60, deadline=None)
    @given(ops)
    def test_matches_dict_oracle(self, operations):
        table = fresh_table()
        oracle: dict[int, dict] = {}
        unique_tags: dict[str, int] = {}
        pks: list[int] = []

        for op in operations:
            if op[0] == "insert":
                _, name, tag = op
                if tag is not None and tag in unique_tags:
                    with pytest.raises(IntegrityError):
                        table.insert({"name": name, "tag": tag})
                    continue
                pk = table.insert({"name": name, "tag": tag})
                oracle[pk] = {"id": pk, "name": name, "tag": tag}
                if tag is not None:
                    unique_tags[tag] = pk
                pks.append(pk)
            elif op[0] == "update":
                _, idx, name = op
                if not pks:
                    continue
                pk = pks[idx % len(pks)]
                if pk not in oracle:
                    with pytest.raises(IntegrityError):
                        table.update(pk, {"name": name})
                    continue
                table.update(pk, {"name": name})
                oracle[pk]["name"] = name
            else:
                _, idx = op
                if not pks:
                    continue
                pk = pks[idx % len(pks)]
                if pk not in oracle:
                    with pytest.raises(IntegrityError):
                        table.delete(pk)
                    continue
                tag = oracle[pk]["tag"]
                if tag is not None:
                    del unique_tags[tag]
                table.delete(pk)
                del oracle[pk]

        assert len(table) == len(oracle)
        assert {row["id"]: row for row in table.all_rows()} == oracle
        # find() agrees with the oracle for every live name.
        for row in oracle.values():
            hits = table.find("name", row["name"])
            expected = [r for r in oracle.values() if r["name"] == row["name"]]
            assert sorted(h["id"] for h in hits) == sorted(e["id"] for e in expected)

    @settings(max_examples=60, deadline=None)
    @given(ops)
    def test_index_consistency_under_mutation(self, operations):
        """A hash index created up front must agree with a scan after
        any operation sequence."""
        table = fresh_table()
        table.create_index("name")
        for op in operations:
            try:
                if op[0] == "insert":
                    table.insert({"name": op[1], "tag": op[2]})
                elif op[0] == "update":
                    rows = table.all_rows()
                    if rows:
                        table.update(rows[op[1] % len(rows)]["id"], {"name": op[2]})
                else:
                    rows = table.all_rows()
                    if rows:
                        table.delete(rows[op[1] % len(rows)]["id"])
            except (IntegrityError, SchemaError):
                continue
        for name in {row["name"] for row in table.all_rows()}:
            indexed = table.find("name", name)
            scanned = [row for row in table.all_rows() if row["name"] == name]
            assert sorted(r["id"] for r in indexed) == sorted(r["id"] for r in scanned)
