"""Property tests: the Visual R*-tree against a brute-force oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import BoundingBox, GeoPoint
from repro.index import VisualRTree

DIM = 4

lat = st.floats(min_value=33.5, max_value=34.5, allow_nan=False)
lng = st.floats(min_value=-119.0, max_value=-117.5, allow_nan=False)


@st.composite
def datasets(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    points = [
        GeoPoint(float(rng.uniform(33.5, 34.5)), float(rng.uniform(-119.0, -117.5)))
        for _ in range(n)
    ]
    vectors = rng.normal(0, 1, (n, DIM))
    return points, vectors


@st.composite
def regions(draw):
    lat0 = draw(lat)
    lng0 = draw(lng)
    dlat = draw(st.floats(min_value=0.05, max_value=1.0))
    dlng = draw(st.floats(min_value=0.05, max_value=1.5))
    return BoundingBox(lat0, lng0, min(lat0 + dlat, 34.5), min(lng0 + dlng, -117.5))


class TestVisualRTreeProperties:
    @settings(max_examples=50, deadline=None)
    @given(datasets(), regions(), st.integers(1, 8))
    def test_knn_matches_brute_force(self, dataset, region, k):
        points, vectors = dataset
        index = VisualRTree(dimension=DIM, max_entries=4)
        for i, (p, v) in enumerate(zip(points, vectors)):
            index.insert(i, p, v)
        query = vectors[0] * 0.5
        fast = index.spatial_visual_knn(region, query, k)

        in_region = [
            (i, float(np.linalg.norm(vectors[i] - query)))
            for i, p in enumerate(points)
            if region.contains_point(p)
        ]
        in_region.sort(key=lambda pair: (pair[1], str(pair[0])))
        expected = in_region[:k]
        assert len(fast) == len(expected)
        # Distances must agree exactly (item order may differ on ties).
        for (_, d_fast), (_, d_expected) in zip(fast, expected):
            assert abs(d_fast - d_expected) < 1e-9
        assert {i for i, _ in fast} <= {i for i, _ in in_region}

    @settings(max_examples=50, deadline=None)
    @given(datasets(), regions())
    def test_spatial_constraint_never_violated(self, dataset, region):
        points, vectors = dataset
        index = VisualRTree(dimension=DIM, max_entries=4)
        for i, (p, v) in enumerate(zip(points, vectors)):
            index.insert(i, p, v)
        results = index.spatial_visual_knn(region, vectors[0], k=50)
        for item, _ in results:
            assert region.contains_point(points[item])

    @settings(max_examples=30, deadline=None)
    @given(datasets())
    def test_full_region_knn_is_global_knn(self, dataset):
        points, vectors = dataset
        everywhere = BoundingBox(-90, -180, 90, 180)
        index = VisualRTree(dimension=DIM, max_entries=4)
        for i, (p, v) in enumerate(zip(points, vectors)):
            index.insert(i, p, v)
        results = index.spatial_visual_knn(everywhere, vectors[0], k=len(points))
        assert len(results) == len(points)
        distances = [d for _, d in results]
        assert distances == sorted(distances)
        assert results[0][1] == 0.0  # the query vector itself is stored
