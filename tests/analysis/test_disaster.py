"""Tests for the drone wildfire disaster platform (future-work build)."""

import numpy as np
import pytest

from repro.analysis import (
    WildfireGroundTruth,
    detect_events,
    detection_quality,
    estimate_spread,
    fly_survey,
    plan_lawnmower,
    situation_report,
)
from repro.errors import ImagingError, TVDPError
from repro.geo import BoundingBox, GeoPoint, haversine_m
from repro.imaging import (
    AERIAL_CLASSES,
    fire_pixel_fraction,
    render_aerial_scene,
)

REGION = BoundingBox(34.10, -118.40, 34.14, -118.36)
IGNITION = GeoPoint(34.12, -118.38)


@pytest.fixture(scope="module")
def truth():
    return WildfireGroundTruth(
        ignitions=[IGNITION], growth_mps=0.5, initial_radius_m=300.0
    )


class TestAerialRenderer:
    def test_all_classes_render(self):
        rng = np.random.default_rng(0)
        for label in AERIAL_CLASSES:
            img = render_aerial_scene(label, rng, size=32)
            assert img.shape == (32, 32)

    def test_unknown_class_raises(self):
        with pytest.raises(ImagingError):
            render_aerial_scene("flood", np.random.default_rng(0))

    def test_too_small_raises(self):
        with pytest.raises(ImagingError):
            render_aerial_scene("fire", np.random.default_rng(0), size=8)

    def test_fire_fraction_separates_classes(self):
        rng = np.random.default_rng(1)
        fire = np.mean(
            [fire_pixel_fraction(render_aerial_scene("fire", rng, 40)) for _ in range(8)]
        )
        normal = np.mean(
            [fire_pixel_fraction(render_aerial_scene("normal", rng, 40)) for _ in range(8)]
        )
        assert fire > 0.01
        assert normal < 0.005


class TestGroundTruth:
    def test_labels_by_distance(self, truth):
        assert truth.label_at(IGNITION, 0.0) == "fire"
        near = GeoPoint(IGNITION.lat + 0.004, IGNITION.lng)  # ~440 m
        assert truth.label_at(near, 0.0) == "smoke"
        far = GeoPoint(IGNITION.lat + 0.02, IGNITION.lng)  # ~2.2 km
        assert truth.label_at(far, 0.0) == "normal"

    def test_fire_grows(self, truth):
        point = GeoPoint(IGNITION.lat + 0.004, IGNITION.lng)  # ~440 m away
        assert truth.label_at(point, 0.0) == "smoke"
        assert truth.label_at(point, 1_000.0) == "fire"  # radius now 800 m


class TestSurvey:
    def test_lawnmower_covers_rows(self):
        waypoints = plan_lawnmower(REGION, rows=4)
        lats = sorted({round(p.lat, 4) for p, _ in waypoints})
        assert len(lats) == 4
        assert all(REGION.contains_point(p) for p, _ in waypoints)

    def test_lawnmower_alternates_heading(self):
        waypoints = plan_lawnmower(REGION, rows=2)
        headings = {round(h) for _, h in waypoints}
        assert len(headings) == 2  # east on even rows, west on odd

    def test_bad_rows_raises(self):
        with pytest.raises(TVDPError):
            plan_lawnmower(REGION, rows=0)

    def test_fly_survey_labels_match_truth(self, truth):
        captures = fly_survey(REGION, truth, start_time=0.0, rows=4, seed=0)
        assert captures
        labels = {c.true_label for c in captures}
        assert "fire" in labels and "normal" in labels
        # Fire tiles are near the ignition.
        for capture in captures:
            if capture.true_label == "fire":
                assert haversine_m(capture.fov.camera, IGNITION) < 1_500.0


class TestDetection:
    def test_chromatic_screen_finds_fire(self, truth):
        captures = fly_survey(REGION, truth, start_time=0.0, rows=5, seed=0)
        events = detect_events(captures)
        assert events
        quality = detection_quality(captures, events)
        assert quality["recall"] > 0.7
        assert quality["precision"] > 0.7

    def test_no_fire_no_events(self):
        quiet = WildfireGroundTruth(
            ignitions=[GeoPoint(0.0, 0.0)], initial_radius_m=1.0
        )
        captures = fly_survey(REGION, quiet, start_time=0.0, rows=3, seed=1)
        events = detect_events(captures)
        assert events == []

    def test_classifier_refinement_path(self, truth):
        # Train a tiny fire classifier on aerial tiles and use it to refine.
        from repro.features import ColorHistogramExtractor
        from repro.ml import LogisticRegression

        rng = np.random.default_rng(2)
        extractor = ColorHistogramExtractor()
        X, y = [], []
        for label in AERIAL_CLASSES:
            for _ in range(12):
                X.append(extractor.extract(render_aerial_scene(label, rng, 40)))
                y.append(label)
        model = LogisticRegression(epochs=40).fit(np.vstack(X), np.array(y))
        captures = fly_survey(REGION, truth, start_time=0.0, rows=4, seed=3)
        events = detect_events(captures, classifier=model, extractor=extractor)
        assert events
        assert {e.label for e in events} <= {"fire", "smoke"}


class TestSituationAwareness:
    def test_report_aggregates_cells(self, truth):
        captures = fly_survey(REGION, truth, start_time=0.0, rows=5, seed=0)
        events = detect_events(captures)
        report = situation_report(REGION, events, rows=8, cols=8)
        assert report.burning_cells >= 1
        assert 0.0 < report.affected_fraction <= 1.0
        assert report.fire_front is not None
        assert report.fire_front.contains_point(IGNITION) or (
            haversine_m(report.fire_front.center, IGNITION) < 1_500.0
        )

    def test_spread_estimation(self, truth):
        first = fly_survey(REGION, truth, start_time=0.0, rows=5, seed=0)
        later = fly_survey(REGION, truth, start_time=3_600.0, rows=5, seed=0)
        report_a = situation_report(REGION, detect_events(first))
        report_b = situation_report(REGION, detect_events(later))
        spread = estimate_spread(report_a, report_b, dt_s=3_600.0)
        # The fire grows 0.5 m/s, so an hour later more cells burn.
        assert spread["burning_cells_delta"] > 0
        assert spread["affected_fraction_delta"] > 0

    def test_spread_bad_dt_raises(self, truth):
        captures = fly_survey(REGION, truth, start_time=0.0, rows=3, seed=0)
        report = situation_report(REGION, detect_events(captures))
        with pytest.raises(TVDPError):
            estimate_spread(report, report, dt_s=0.0)

    def test_detection_quality_empty_raises(self):
        with pytest.raises(TVDPError):
            detection_quality([], [])
