"""Tests for the three application studies."""

import numpy as np
import pytest

from repro.analysis import (
    best_cell,
    build_feature_suite,
    cluster_encampments,
    compare_periods,
    feature_matrices,
    per_category_f1,
    run_classifier_grid,
    run_graffiti_study,
    annotate_graffiti,
)
from repro.core import TVDP
from repro.datasets import generate_lasan_dataset
from repro.errors import TVDPError
from repro.features import ColorHistogramExtractor
from repro.imaging import CLEANLINESS_CLASSES
from repro.ml import KNeighborsClassifier


@pytest.fixture(scope="module")
def records():
    return generate_lasan_dataset(n_per_class=12, image_size=32, seed=0)


@pytest.fixture(scope="module")
def suite(records):
    return build_feature_suite(records, bow_words=16, seed=0)


@pytest.fixture(scope="module")
def matrices(records, suite):
    return feature_matrices(records, suite)


class TestCleanlinessStudy:
    def test_suite_has_paper_features(self, suite):
        assert set(suite) == {"color_histogram", "sift_bow", "cnn"}

    def test_matrices_shapes(self, records, matrices):
        for name, (X, y) in matrices.items():
            assert X.shape[0] == len(records)
            assert y.shape[0] == len(records)
        assert matrices["color_histogram"][0].shape[1] == 50
        assert matrices["sift_bow"][0].shape[1] == 16

    def test_grid_runs_and_orders_features(self, matrices):
        # Small classifier set to keep the test quick.
        classifiers = {
            "knn": lambda: KNeighborsClassifier(k=5),
        }
        results = run_classifier_grid(matrices, classifiers, seed=0)
        assert len(results) == 3
        by_feature = {r.feature: r.f1 for r in results}
        # CNN should beat the colour histogram even on a small corpus.
        assert by_feature["cnn"] > by_feature["color_histogram"]

    def test_best_cell(self, matrices):
        classifiers = {"knn": lambda: KNeighborsClassifier(k=5)}
        results = run_classifier_grid(matrices, classifiers, seed=0)
        best = best_cell(results)
        assert best.f1 == max(r.f1 for r in results)
        with pytest.raises(TVDPError):
            best_cell([])

    def test_per_category_f1_covers_all_classes(self, matrices):
        X, y = matrices["cnn"]
        scores = per_category_f1(
            X, y, lambda: KNeighborsClassifier(k=5), n_splits=4, seed=0
        )
        assert set(scores) == set(CLEANLINESS_CLASSES)
        assert all(0.0 <= v <= 1.0 for v in scores.values())

    def test_empty_records_raise(self):
        with pytest.raises(TVDPError):
            build_feature_suite([])


class TestGraffitiStudy:
    def test_study_beats_chance(self, records):
        result, model, scaler = run_graffiti_study(
            records, ColorHistogramExtractor(), seed=0
        )
        assert 0.0 < result.positive_rate < 1.0
        assert result.n_train + result.n_test == len(records)
        assert result.f1 > 0.4  # well above the ~0 of a degenerate model

    def test_annotate_writes_machine_labels(self, records):
        platform = TVDP()
        ids = []
        for record in records[:10]:
            receipt = platform.upload_image(
                record.image, record.fov, record.captured_at, record.uploaded_at
            )
            ids.append(receipt.image_id)
        result, model, scaler = run_graffiti_study(
            records, ColorHistogramExtractor(), seed=0
        )
        written = annotate_graffiti(
            platform, ids, ColorHistogramExtractor(), model, scaler
        )
        assert written == 10
        hist = platform.annotations.label_histogram("graffiti")
        assert sum(hist.values()) == 10

    def test_single_class_corpus_raises(self, records):
        no_graffiti = [r for r in records if not r.has_graffiti]
        with pytest.raises(TVDPError):
            run_graffiti_study(no_graffiti, ColorHistogramExtractor())


class TestHomelessStudy:
    def build_annotated_platform(self, records):
        platform = TVDP()
        platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
        for record in records:
            receipt = platform.upload_image(
                record.image, record.fov, record.captured_at, record.uploaded_at
            )
            platform.annotations.annotate(
                receipt.image_id,
                "street_cleanliness",
                record.label,
                confidence=0.9,
                source="machine",
            )
        return platform

    def test_clusters_found_in_hotspot_data(self, records):
        platform = self.build_annotated_platform(records)
        report = cluster_encampments(platform, eps_m=600.0, min_samples=2)
        n_encampment = sum(1 for r in records if r.label == "encampment")
        assert report.total_sightings == n_encampment
        assert report.n_clusters >= 1
        assert report.largest_cluster_size >= 2
        clustered = sum(c.size for c in report.clusters)
        assert clustered + report.noise_sightings == n_encampment

    def test_clusters_sorted_by_size(self, records):
        platform = self.build_annotated_platform(records)
        report = cluster_encampments(platform, eps_m=600.0, min_samples=2)
        sizes = [c.size for c in report.clusters]
        assert sizes == sorted(sizes, reverse=True)

    def test_no_annotations_empty_report(self):
        platform = TVDP()
        platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
        report = cluster_encampments(platform)
        assert report.total_sightings == 0
        assert report.n_clusters == 0

    def test_confidence_threshold_filters(self, records):
        platform = self.build_annotated_platform(records)
        report = cluster_encampments(platform, min_confidence=0.95)
        assert report.total_sightings == 0

    def test_bad_eps_raises(self, records):
        platform = self.build_annotated_platform(records[:5])
        with pytest.raises(TVDPError):
            cluster_encampments(platform, eps_m=0.0)

    def test_compare_periods(self, records):
        platform = self.build_annotated_platform(records)
        before = cluster_encampments(platform, eps_m=600.0, min_samples=2)
        after = cluster_encampments(platform, eps_m=600.0, min_samples=2)
        diff = compare_periods(before, after)
        # Identical reports: every cluster matches with zero movement.
        assert len(diff["matched"]) == before.n_clusters
        assert all(m["moved_m"] == 0.0 for m in diff["matched"])
        assert diff["appeared"] == [] and diff["disappeared"] == []
        assert diff["sightings_change"] == 0
        with pytest.raises(TVDPError):
            compare_periods(before, after, match_radius_m=0.0)
