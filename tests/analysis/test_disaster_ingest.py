"""Tests for ingesting drone surveys into the platform."""

import pytest

from repro.analysis import (
    WildfireGroundTruth,
    detect_events,
    fly_survey,
    ingest_survey,
)
from repro.core import CategoricalQuery, SpatialQuery, TVDP
from repro.geo import BoundingBox, GeoPoint

REGION = BoundingBox(34.10, -118.40, 34.14, -118.36)


@pytest.fixture(scope="module")
def survey():
    truth = WildfireGroundTruth(
        ignitions=[GeoPoint(34.12, -118.38)],
        growth_mps=0.5,
        initial_radius_m=400.0,
    )
    captures = fly_survey(REGION, truth, start_time=0.0, rows=5, seed=0)
    return captures, detect_events(captures)


class TestIngestSurvey:
    def test_tiles_and_annotations_stored(self, survey):
        captures, events = survey
        platform = TVDP()
        image_ids = ingest_survey(platform, captures, events)
        assert len(image_ids) == len(captures)
        counts = platform.db.row_counts()
        assert counts["images"] == len(captures)
        assert counts["image_content_annotation"] == len(captures)
        assert "aerial_condition" in platform.catalog.names()

    def test_fire_tiles_queryable_categorically(self, survey):
        captures, events = survey
        platform = TVDP()
        ingest_survey(platform, captures, events)
        hits = platform.execute(
            CategoricalQuery("aerial_condition", labels=("fire",), source="machine")
        )
        assert len(hits) == sum(1 for e in events if e.label == "fire")

    def test_spatial_query_finds_burning_area(self, survey):
        captures, events = survey
        platform = TVDP()
        ingest_survey(platform, captures, events)
        fire_hits = {
            r.image_id
            for r in platform.execute(
                CategoricalQuery("aerial_condition", labels=("fire",))
            )
        }
        near_ignition = {
            r.image_id
            for r in platform.execute(
                SpatialQuery(point=GeoPoint(34.12, -118.38), radius_m=800.0, mode="camera")
            )
        }
        # Every fire tile was captured near the ignition point.
        assert fire_hits <= near_ignition

    def test_default_events_computed(self, survey):
        captures, _ = survey
        platform = TVDP()
        ingest_survey(platform, captures)  # events=None -> detect inside
        histogram = platform.annotations.label_histogram("aerial_condition")
        assert histogram["fire"] > 0
        assert histogram["normal"] > 0
