"""Tests for encampment-cluster convex-hull footprints."""

import pytest

from repro.analysis import cluster_encampments
from repro.core import TVDP
from repro.geo import FieldOfView, GeoPoint, destination_point
from repro.imaging import CLEANLINESS_CLASSES, solid_color

CENTER = GeoPoint(34.05, -118.25)


def platform_with_tents(offsets_m):
    """Encampment annotations at given (bearing, distance) offsets."""
    platform = TVDP()
    platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
    for i, (bearing, distance) in enumerate(offsets_m):
        location = destination_point(CENTER, bearing, distance)
        shade = 0.1 + 0.8 * i / max(len(offsets_m), 1)
        fov = FieldOfView(location, 0.0, 60.0, 100.0)
        receipt = platform.upload_image(
            solid_color(24, 24, (shade, shade, shade)), fov, 0.0, 1.0
        )
        platform.annotations.annotate(
            receipt.image_id, "street_cleanliness", "encampment", 0.9, "machine"
        )
    return platform


class TestHullArea:
    def test_triangle_cluster_has_positive_area(self):
        platform = platform_with_tents([(0.0, 100.0), (120.0, 100.0), (240.0, 100.0)])
        report = cluster_encampments(platform, eps_m=400.0, min_samples=2)
        assert report.n_clusters == 1
        cluster = report.clusters[0]
        # Equilateral-ish triangle with circumradius 100 m: area
        # 3*sqrt(3)/4 * R^2 ~ 12 990 m^2.
        assert cluster.hull_area_m2 == pytest.approx(12_990, rel=0.1)

    def test_pair_cluster_has_zero_area(self):
        platform = platform_with_tents([(0.0, 50.0), (180.0, 50.0)])
        report = cluster_encampments(platform, eps_m=400.0, min_samples=2)
        assert report.n_clusters == 1
        assert report.clusters[0].hull_area_m2 == 0.0

    def test_collinear_cluster_has_zero_area(self):
        platform = platform_with_tents([(0.0, 50.0), (0.0, 100.0), (0.0, 150.0)])
        report = cluster_encampments(platform, eps_m=400.0, min_samples=2)
        assert report.n_clusters == 1
        assert report.clusters[0].hull_area_m2 == pytest.approx(0.0, abs=50.0)

    def test_wider_cluster_has_larger_area(self):
        tight = platform_with_tents([(b, 50.0) for b in (0.0, 120.0, 240.0)])
        wide = platform_with_tents([(b, 200.0) for b in (0.0, 120.0, 240.0)])
        tight_area = cluster_encampments(tight, eps_m=800.0, min_samples=2).clusters[0].hull_area_m2
        wide_area = cluster_encampments(wide, eps_m=800.0, min_samples=2).clusters[0].hull_area_m2
        assert wide_area > 10 * tight_area
