"""Tests for panorama key-frame selection (ref [6] reproduction)."""

import numpy as np
import pytest

from repro.analysis import select_panorama_frames
from repro.core import TVDP
from repro.errors import TVDPError
from repro.geo import FieldOfView, GeoPoint, destination_point
from repro.imaging import solid_color

POI = GeoPoint(34.05, -118.25)


def ring_platform(bearings, range_m=300.0, angle=60.0, distance=150.0):
    """Platform with one camera per bearing, each looking back at POI."""
    platform = TVDP()
    ids = {}
    for i, bearing in enumerate(bearings):
        camera = destination_point(POI, bearing, distance)
        fov = FieldOfView(camera, (bearing + 180.0) % 360.0, angle, range_m)
        shade = 0.2 + 0.6 * (i / max(len(bearings), 1))
        receipt = platform.upload_image(
            solid_color(24, 24, (shade, shade, shade)), fov, float(i), float(i) + 1
        )
        ids[bearing] = receipt.image_id
    return platform, ids


class TestPanoramaSelection:
    def test_full_ring_gives_full_coverage(self):
        bearings = list(range(0, 360, 30))
        platform, _ = ring_platform(bearings)
        selection = select_panorama_frames(platform, POI)
        assert selection.coverage == 1.0
        assert len(selection.image_ids) <= len(bearings)

    def test_half_ring_gives_partial_coverage(self):
        bearings = list(range(0, 180, 30))  # cameras only north-to-south-east
        platform, _ = ring_platform(bearings)
        selection = select_panorama_frames(platform, POI)
        assert 0.3 < selection.coverage < 1.0

    def test_greedy_prefers_fewer_frames(self):
        # Dense ring: greedy should not take every frame.
        bearings = list(range(0, 360, 10))
        platform, _ = ring_platform(bearings)
        selection = select_panorama_frames(platform, POI)
        assert selection.coverage == 1.0
        assert len(selection.image_ids) < len(bearings)

    def test_max_frames_cap(self):
        bearings = list(range(0, 360, 30))
        platform, _ = ring_platform(bearings)
        selection = select_panorama_frames(platform, POI, max_frames=2)
        assert len(selection.image_ids) <= 2

    def test_no_candidates_empty_selection(self):
        platform = TVDP()
        selection = select_panorama_frames(platform, POI)
        assert selection.image_ids == ()
        assert selection.coverage == 0.0

    def test_images_not_depicting_poi_excluded(self):
        platform = TVDP()
        camera = destination_point(POI, 0.0, 150.0)
        looking_away = FieldOfView(camera, 0.0, 60.0, 300.0)  # faces away
        platform.upload_image(solid_color(24, 24, (0.5,) * 3), looking_away, 0.0, 1.0)
        selection = select_panorama_frames(platform, POI)
        assert selection.image_ids == ()

    def test_bad_max_frames(self):
        platform = TVDP()
        with pytest.raises(TVDPError):
            select_panorama_frames(platform, POI, max_frames=0)
