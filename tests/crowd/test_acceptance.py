"""Tests for the worker task-acceptance model."""

import numpy as np
import pytest

from repro.crowd import Campaign, Task, Worker, WorkerPool, run_iterative_campaign
from repro.geo import BoundingBox, GeoPoint, destination_point

REGION = BoundingBox(34.00, -118.30, 34.04, -118.26)


class TestAcceptanceModel:
    def test_probability_decays_with_distance(self):
        worker = Worker(worker_id=1, location=GeoPoint(34.0, -118.3))
        near = destination_point(worker.location, 0.0, 100.0)
        far = destination_point(worker.location, 0.0, 10_000.0)
        assert worker.acceptance_probability(near) > worker.acceptance_probability(far)
        assert worker.acceptance_probability(worker.location) == pytest.approx(1.0)

    def test_zero_distance_always_accepts(self):
        rng = np.random.default_rng(0)
        worker = Worker(worker_id=1, location=GeoPoint(34.0, -118.3))
        task = Task(task_id=1, location=worker.location, direction_deg=None, campaign_id=1)
        assert all(worker.accepts(task, rng) for _ in range(20))

    def test_distant_task_mostly_declined(self):
        rng = np.random.default_rng(1)
        worker = Worker(
            worker_id=1, location=GeoPoint(34.0, -118.3), acceptance_radius_m=500.0
        )
        far = destination_point(worker.location, 0.0, 5_000.0)
        task = Task(task_id=1, location=far, direction_deg=None, campaign_id=1)
        outcomes = [worker.accepts(task, rng) for _ in range(50)]
        assert sum(outcomes) < 5
        assert worker.declined > 40

    def test_declines_counted(self):
        rng = np.random.default_rng(2)
        worker = Worker(
            worker_id=1, location=GeoPoint(34.0, -118.3), acceptance_radius_m=1.0
        )
        far = destination_point(worker.location, 0.0, 1_000.0)
        task = Task(task_id=1, location=far, direction_deg=None, campaign_id=1)
        worker.accepts(task, rng)
        assert worker.declined == 1


class TestCampaignWithDeclines:
    def test_declines_slow_but_do_not_stop_progress(self):
        campaign = Campaign(1, "lasan", REGION, target_coverage=0.7, min_directions=1)
        pool = WorkerPool.spawn(
            12, REGION, seed=0, camera_range_m=400.0, acceptance_radius_m=1_500.0
        )
        result = run_iterative_campaign(
            campaign,
            pool,
            grid_rows=5,
            grid_cols=5,
            max_rounds=10,
            seed=0,
            simulate_declines=True,
        )
        assert result.final_coverage >= 0.7
        # Some offers were declined along the way.
        assert sum(w.declined for w in pool.workers) > 0

    def test_declines_reduce_completions_per_round(self):
        def run(declines):
            campaign = Campaign(1, "x", REGION, target_coverage=0.99, min_directions=1)
            pool = WorkerPool.spawn(
                8, REGION, seed=1, camera_range_m=300.0, acceptance_radius_m=400.0
            )
            result = run_iterative_campaign(
                campaign,
                pool,
                grid_rows=6,
                grid_cols=6,
                max_rounds=1,
                seed=1,
                simulate_declines=declines,
            )
            return result.rounds[0].tasks_completed if result.rounds else 0

        assert run(True) <= run(False)
