"""Tests for spatial coverage measurement."""

import pytest

from repro.crowd import (
    DIRECTION_BUCKETS,
    direction_bucket,
    measure_coverage,
)
from repro.errors import CrowdError
from repro.geo import BoundingBox, FieldOfView, GeoPoint

REGION = BoundingBox(34.00, -118.30, 34.02, -118.28)


def wide_fov(center, direction=0.0, range_m=3000.0):
    return FieldOfView(center, direction, 360.0, range_m)


class TestDirectionBucket:
    def test_buckets(self):
        assert direction_bucket(0.0) == 0
        assert direction_bucket(44.9) == 0
        assert direction_bucket(45.0) == 1
        assert direction_bucket(359.9) == DIRECTION_BUCKETS - 1

    def test_wraps(self):
        assert direction_bucket(360.0) == 0


class TestMeasureCoverage:
    def test_empty_fovs_zero_coverage(self):
        report = measure_coverage([], REGION, rows=4, cols=4)
        assert report.coverage_ratio == 0.0
        assert len(report.uncovered_cells()) == 16

    def test_giant_fov_full_coverage(self):
        fov = wide_fov(REGION.center)
        report = measure_coverage([fov], REGION, rows=4, cols=4, min_directions=1)
        assert report.coverage_ratio == 1.0
        assert report.uncovered_cells() == []

    def test_single_direction_fails_directional_target(self):
        fov = wide_fov(REGION.center, direction=10.0)
        report = measure_coverage([fov], REGION, rows=4, cols=4, min_directions=2)
        assert report.coverage_ratio == 1.0
        assert report.directional_coverage_ratio == 0.0
        assert len(report.under_covered_cells()) == 16

    def test_two_directions_satisfy_directional_target(self):
        fovs = [
            wide_fov(REGION.center, direction=10.0),
            wide_fov(REGION.center, direction=100.0),
        ]
        report = measure_coverage(fovs, REGION, rows=4, cols=4, min_directions=2)
        assert report.directional_coverage_ratio == 1.0

    def test_partial_coverage(self):
        # A narrow sector near one corner covers only some cells.
        corner = GeoPoint(34.001, -118.299)
        fov = FieldOfView(corner, 45.0, 60.0, 300.0)
        report = measure_coverage([fov], REGION, rows=8, cols=8)
        assert 0.0 < report.coverage_ratio < 0.5

    def test_missing_directions(self):
        fov = wide_fov(REGION.center, direction=10.0)  # bucket 0
        report = measure_coverage([fov], REGION, rows=2, cols=2)
        cell = report.grid.cell(0, 0)
        missing = report.missing_directions(cell)
        assert 0 not in missing
        assert len(missing) == DIRECTION_BUCKETS - 1

    def test_bad_min_directions(self):
        with pytest.raises(CrowdError):
            measure_coverage([], REGION, min_directions=0)
        with pytest.raises(CrowdError):
            measure_coverage([], REGION, min_directions=DIRECTION_BUCKETS + 1)

    def test_cell_hits_counted(self):
        fovs = [wide_fov(REGION.center), wide_fov(REGION.center)]
        report = measure_coverage(fovs, REGION, rows=2, cols=2)
        assert all(count == 2 for count in report.cell_hits.values())
