"""Tests for campaigns, tasks, and simulated workers."""

import numpy as np
import pytest

from repro.crowd import Campaign, Task, Worker, WorkerPool, measure_coverage
from repro.errors import CrowdError
from repro.geo import BoundingBox, GeoPoint, haversine_m

REGION = BoundingBox(34.00, -118.30, 34.02, -118.28)


class TestCampaign:
    def test_bad_target_coverage(self):
        with pytest.raises(CrowdError):
            Campaign(1, "lasan", REGION, target_coverage=0.0)
        with pytest.raises(CrowdError):
            Campaign(1, "lasan", REGION, target_coverage=1.2)

    def test_generate_tasks_for_empty_coverage(self):
        campaign = Campaign(1, "lasan", REGION)
        report = measure_coverage([], REGION, rows=3, cols=3)
        tasks = campaign.generate_tasks(report)
        assert len(tasks) == 9
        assert all(t.direction_deg is None for t in tasks)
        assert all(REGION.contains_point(t.location) for t in tasks)
        assert campaign.open_tasks == tasks

    def test_max_tasks_cap(self):
        campaign = Campaign(1, "lasan", REGION)
        report = measure_coverage([], REGION, rows=4, cols=4)
        tasks = campaign.generate_tasks(report, max_tasks=5)
        assert len(tasks) == 5

    def test_directional_tasks_for_under_covered(self):
        from repro.geo import FieldOfView

        fov = FieldOfView(REGION.center, 10.0, 360.0, 3000.0)
        campaign = Campaign(1, "lasan", REGION, min_directions=2)
        report = measure_coverage([fov], REGION, rows=2, cols=2, min_directions=2)
        tasks = campaign.generate_tasks(report)
        # All cells covered once; tasks are directional fills only.
        assert tasks
        assert all(t.direction_deg is not None for t in tasks)

    def test_complete_moves_task(self):
        campaign = Campaign(1, "lasan", REGION, reward_per_task=2.0)
        report = measure_coverage([], REGION, rows=2, cols=2)
        tasks = campaign.generate_tasks(report)
        campaign.complete(tasks[0])
        assert tasks[0] in campaign.completed_tasks
        assert tasks[0] not in campaign.open_tasks
        assert campaign.total_reward_paid == 2.0

    def test_complete_unknown_task_raises(self):
        campaign = Campaign(1, "lasan", REGION)
        ghost = Task(task_id=999, location=REGION.center, direction_deg=None, campaign_id=1)
        with pytest.raises(CrowdError):
            campaign.complete(ghost)


class TestWorker:
    def test_perform_moves_and_counts(self):
        rng = np.random.default_rng(0)
        worker = Worker(worker_id=1, location=GeoPoint(34.0, -118.3))
        target = GeoPoint(34.01, -118.29)
        task = Task(task_id=1, location=target, direction_deg=90.0, campaign_id=1)
        before = haversine_m(worker.location, target)
        fov = worker.perform(task, rng)
        assert worker.location == target
        assert worker.captures == 1
        assert worker.distance_travelled_m == pytest.approx(before)
        # GPS noise keeps the camera near the task location.
        assert haversine_m(fov.camera, target) < 30.0

    def test_direction_respected_within_noise(self):
        rng = np.random.default_rng(1)
        worker = Worker(worker_id=1, location=GeoPoint(34.0, -118.3), compass_noise_deg=2.0)
        task = Task(task_id=1, location=GeoPoint(34.0, -118.3), direction_deg=180.0, campaign_id=1)
        fov = worker.perform(task, rng)
        from repro.geo import angular_difference_deg

        assert angular_difference_deg(fov.direction_deg, 180.0) < 10.0

    def test_free_direction_task(self):
        rng = np.random.default_rng(2)
        worker = Worker(worker_id=1, location=GeoPoint(34.0, -118.3))
        task = Task(task_id=1, location=GeoPoint(34.0, -118.3), direction_deg=None, campaign_id=1)
        fov = worker.perform(task, rng)
        assert 0.0 <= fov.direction_deg < 360.0

    def test_travel_time(self):
        worker = Worker(worker_id=1, location=GeoPoint(34.0, -118.3), speed_mps=2.0)
        point = GeoPoint(34.0, -118.29)
        expected = haversine_m(worker.location, point) / 2.0
        assert worker.travel_time_to(point) == pytest.approx(expected)


class TestWorkerPool:
    def test_spawn_in_region(self):
        pool = WorkerPool.spawn(20, REGION, seed=0)
        assert len(pool) == 20
        assert all(REGION.contains_point(w.location) for w in pool.workers)
        assert len({w.worker_id for w in pool.workers}) == 20

    def test_spawn_zero_raises(self):
        with pytest.raises(CrowdError):
            WorkerPool.spawn(0, REGION)

    def test_total_distance(self):
        pool = WorkerPool.spawn(2, REGION, seed=1)
        rng = np.random.default_rng(0)
        task = Task(task_id=1, location=REGION.center, direction_deg=None, campaign_id=1)
        pool.workers[0].perform(task, rng)
        assert pool.total_distance_m() > 0.0
