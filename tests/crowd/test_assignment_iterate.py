"""Tests for task assignment and the iterative campaign loop."""

import numpy as np
import pytest

from repro.crowd import (
    Campaign,
    Task,
    Worker,
    WorkerPool,
    assign_greedy,
    assign_nearest,
    assign_partitioned,
    measure_coverage,
    run_iterative_campaign,
)
from repro.errors import CrowdError
from repro.geo import BoundingBox, GeoPoint

REGION = BoundingBox(34.00, -118.30, 34.04, -118.26)


def make_instance(n_workers=6, n_tasks=15, seed=0):
    rng = np.random.default_rng(seed)
    workers = [
        Worker(
            worker_id=i + 1,
            location=GeoPoint(
                float(rng.uniform(REGION.min_lat, REGION.max_lat)),
                float(rng.uniform(REGION.min_lng, REGION.max_lng)),
            ),
        )
        for i in range(n_workers)
    ]
    tasks = [
        Task(
            task_id=i + 1,
            location=GeoPoint(
                float(rng.uniform(REGION.min_lat, REGION.max_lat)),
                float(rng.uniform(REGION.min_lng, REGION.max_lng)),
            ),
            direction_deg=None,
            campaign_id=1,
        )
        for i in range(n_tasks)
    ]
    return workers, tasks


class TestAssignment:
    def test_greedy_assigns_all_when_budget_allows(self):
        workers, tasks = make_instance()
        result = assign_greedy(workers, tasks, per_worker=5)
        assert len(result.assignments) == len(tasks)
        assert result.unassigned_tasks == []

    def test_budget_respected(self):
        workers, tasks = make_instance(n_workers=2, n_tasks=10)
        result = assign_greedy(workers, tasks, per_worker=3)
        assert len(result.assignments) == 6
        assert len(result.unassigned_tasks) == 4
        per_worker = {}
        for a in result.assignments:
            per_worker[a.worker.worker_id] = per_worker.get(a.worker.worker_id, 0) + 1
        assert all(count <= 3 for count in per_worker.values())

    def test_max_distance_constraint(self):
        workers, tasks = make_instance()
        result = assign_greedy(workers, tasks, per_worker=5, max_distance_m=1.0)
        assert result.assignments == []
        assert len(result.unassigned_tasks) == len(tasks)

    def test_no_task_double_assigned(self):
        workers, tasks = make_instance(n_tasks=20)
        for strategy in (assign_greedy, assign_nearest):
            result = strategy(workers, tasks, per_worker=10)
            ids = [a.task.task_id for a in result.assignments]
            assert len(ids) == len(set(ids))

    def test_greedy_beats_or_ties_nearest_on_travel(self):
        totals = {"greedy": 0.0, "nearest": 0.0}
        for seed in range(5):
            workers, tasks = make_instance(seed=seed)
            totals["greedy"] += assign_greedy(workers, tasks, per_worker=5).total_distance_m
            totals["nearest"] += assign_nearest(workers, tasks, per_worker=5).total_distance_m
        assert totals["greedy"] <= totals["nearest"] * 1.05

    def test_partitioned_assigns_everything_eventually(self):
        workers, tasks = make_instance(n_workers=8, n_tasks=24, seed=3)
        result = assign_partitioned(
            workers, tasks, REGION, partitions=2, per_worker=10
        )
        assert len(result.assignments) == 24
        per_worker = {}
        for a in result.assignments:
            per_worker[a.worker.worker_id] = per_worker.get(a.worker.worker_id, 0) + 1
        assert all(count <= 10 for count in per_worker.values())

    def test_partitioned_quality_close_to_greedy(self):
        workers, tasks = make_instance(n_workers=10, n_tasks=30, seed=4)
        greedy = assign_greedy(workers, tasks, per_worker=10).total_distance_m
        part = assign_partitioned(
            workers, tasks, REGION, partitions=2, per_worker=10
        ).total_distance_m
        assert part <= greedy * 3.0  # same order of magnitude

    def test_bad_parameters(self):
        workers, tasks = make_instance()
        with pytest.raises(CrowdError):
            assign_greedy(workers, tasks, per_worker=0)
        with pytest.raises(CrowdError):
            assign_partitioned(workers, tasks, REGION, partitions=0)

    def test_mean_distance_empty(self):
        workers, tasks = make_instance()
        result = assign_greedy(workers, tasks, per_worker=5, max_distance_m=0.0)
        assert result.mean_distance_m == 0.0


class TestIterativeCampaign:
    def test_reaches_coverage_target(self):
        campaign = Campaign(1, "lasan", REGION, target_coverage=0.8, min_directions=1)
        pool = WorkerPool.spawn(10, REGION, seed=0, camera_range_m=400.0)
        result = run_iterative_campaign(
            campaign, pool, grid_rows=6, grid_cols=6, max_rounds=8, seed=0
        )
        assert result.final_coverage >= 0.8
        assert result.total_tasks_completed > 0

    def test_coverage_monotone_nondecreasing(self):
        campaign = Campaign(1, "lasan", REGION, target_coverage=0.95, min_directions=1)
        pool = WorkerPool.spawn(6, REGION, seed=1, camera_range_m=300.0)
        result = run_iterative_campaign(
            campaign, pool, grid_rows=6, grid_cols=6, max_rounds=6, seed=1
        )
        ratios = [r.coverage_ratio for r in result.rounds]
        assert all(b >= a for a, b in zip(ratios, ratios[1:]))

    def test_initial_fovs_counted(self):
        from repro.geo import FieldOfView

        blanket = FieldOfView(REGION.center, 0.0, 360.0, 10_000.0)
        campaign = Campaign(1, "lasan", REGION, target_coverage=0.5, min_directions=1)
        pool = WorkerPool.spawn(3, REGION, seed=2)
        result = run_iterative_campaign(
            campaign, pool, initial_fovs=[blanket], max_rounds=3, seed=2
        )
        # Already covered: no rounds needed.
        assert result.rounds == []
        assert len(result.fovs) == 1

    def test_bad_max_rounds(self):
        campaign = Campaign(1, "lasan", REGION)
        pool = WorkerPool.spawn(2, REGION)
        with pytest.raises(CrowdError):
            run_iterative_campaign(campaign, pool, max_rounds=0)
