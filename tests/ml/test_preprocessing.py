"""Tests for scalers and label encoding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import MLError, NotFittedError
from repro.ml import LabelEncoder, MinMaxScaler, StandardScaler, l2_normalize

matrix_st = hnp.arrays(
    np.float64,
    st.tuples(st.integers(2, 20), st.integers(1, 8)),
    elements=st.floats(-100, 100, allow_nan=False),
)


class TestStandardScaler:
    @given(matrix_st)
    def test_zero_mean_unit_variance(self, X):
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        stds = Z.std(axis=0)
        originals = X.std(axis=0)
        # Non-constant features end up with unit variance.
        assert np.allclose(stds[originals > 1e-9], 1.0, atol=1e-6)

    def test_constant_feature_maps_to_zero(self):
        X = np.column_stack([np.ones(5), np.arange(5.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_feature_count_mismatch_raises(self):
        scaler = StandardScaler().fit(np.zeros((4, 3)))
        with pytest.raises(MLError):
            scaler.transform(np.zeros((4, 2)))


class TestMinMaxScaler:
    @given(matrix_st)
    def test_range(self, X):
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= -1e-12
        assert Z.max() <= 1.0 + 1e-12

    def test_constant_feature_maps_to_zero(self):
        X = np.full((4, 2), 7.0)
        Z = MinMaxScaler().fit_transform(X)
        assert np.allclose(Z, 0.0)


class TestL2Normalize:
    def test_unit_norms(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (10, 4))
        Z = l2_normalize(X)
        assert np.allclose(np.linalg.norm(Z, axis=1), 1.0)

    def test_zero_rows_untouched(self):
        X = np.zeros((3, 4))
        assert np.allclose(l2_normalize(X), 0.0)


class TestLabelEncoder:
    def test_round_trip(self):
        labels = ["cat", "dog", "cat", "bird"]
        enc = LabelEncoder()
        codes = enc.fit_transform(labels)
        assert enc.inverse_transform(codes) == labels

    def test_codes_contiguous(self):
        enc = LabelEncoder().fit(["z", "a", "m", "a"])
        codes = enc.transform(["a", "m", "z"])
        assert codes.tolist() == [0, 1, 2]

    def test_unseen_label_raises(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(MLError):
            enc.transform(["c"])

    def test_empty_fit_raises(self):
        with pytest.raises(MLError):
            LabelEncoder().fit([])

    def test_bad_inverse_index_raises(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(MLError):
            enc.inverse_transform(np.array([5]))

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LabelEncoder().transform(["a"])
