"""Tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MLError
from repro.ml import (
    accuracy,
    confusion_matrix,
    f1_score,
    macro_precision_recall,
    precision_recall_f1,
)

labels_st = st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50)


class TestAccuracy:
    def test_perfect(self):
        y = np.array([0, 1, 2])
        assert accuracy(y, y) == 1.0

    def test_none_right(self):
        assert accuracy(np.array([0, 0]), np.array([1, 1])) == 0.0

    def test_empty_raises(self):
        with pytest.raises(MLError):
            accuracy(np.array([]), np.array([]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(MLError):
            accuracy(np.array([0, 1]), np.array([0]))


class TestConfusionMatrix:
    def test_basic(self):
        y_true = np.array([0, 0, 1, 1, 2])
        y_pred = np.array([0, 1, 1, 1, 0])
        matrix, labels = confusion_matrix(y_true, y_pred)
        assert labels == [0, 1, 2]
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1
        assert matrix[1, 1] == 2
        assert matrix[2, 0] == 1
        assert matrix.sum() == 5

    def test_explicit_labels_order(self):
        matrix, labels = confusion_matrix(
            np.array([1, 0]), np.array([1, 0]), labels=[1, 0]
        )
        assert labels == [1, 0]
        assert matrix[0, 0] == 1 and matrix[1, 1] == 1

    def test_unknown_label_raises(self):
        with pytest.raises(MLError):
            confusion_matrix(np.array([0, 5]), np.array([0, 0]), labels=[0, 1])

    @given(labels_st)
    def test_diagonal_counts_match_accuracy(self, ys):
        y = np.array(ys)
        matrix, _ = confusion_matrix(y, y)
        assert np.trace(matrix) == len(ys)


class TestF1:
    def test_perfect_macro(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        assert f1_score(y, y, average="macro") == 1.0

    def test_known_binary_value(self):
        # TP=2, FP=1, FN=1 for class 1: P=2/3, R=2/3, F1=2/3.
        y_true = np.array([1, 1, 1, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0])
        per_class = precision_recall_f1(y_true, y_pred)
        p, r, f1 = per_class[1]
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(2 / 3)
        assert f1 == pytest.approx(2 / 3)

    def test_micro_equals_accuracy(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 3, 50)
        y_pred = rng.integers(0, 3, 50)
        assert f1_score(y_true, y_pred, average="micro") == pytest.approx(
            accuracy(y_true, y_pred)
        )

    def test_weighted_differs_under_imbalance(self):
        y_true = np.array([0] * 90 + [1] * 10)
        y_pred = np.array([0] * 90 + [0] * 10)  # never predicts class 1
        macro = f1_score(y_true, y_pred, average="macro")
        weighted = f1_score(y_true, y_pred, average="weighted")
        assert weighted > macro

    def test_unknown_average_raises(self):
        with pytest.raises(MLError):
            f1_score(np.array([0, 1]), np.array([0, 1]), average="harmonic")

    def test_absent_prediction_scores_zero(self):
        y_true = np.array([0, 1])
        y_pred = np.array([0, 0])
        per_class = precision_recall_f1(y_true, y_pred)
        assert per_class[1] == (0.0, 0.0, 0.0)

    @given(labels_st)
    def test_f1_bounds(self, ys):
        y = np.array(ys)
        rng = np.random.default_rng(1)
        y_pred = rng.permutation(y)
        score = f1_score(y, y_pred, average="macro")
        assert 0.0 <= score <= 1.0

    @given(labels_st)
    def test_identity_is_perfect(self, ys):
        y = np.array(ys)
        assert f1_score(y, y, average="macro") == 1.0
        assert f1_score(y, y, average="weighted") == 1.0


class TestMacroPR:
    def test_values(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        p, r = macro_precision_recall(y_true, y_pred)
        # class0: P=1, R=0.5; class1: P=2/3, R=1.
        assert p == pytest.approx((1.0 + 2 / 3) / 2)
        assert r == pytest.approx((0.5 + 1.0) / 2)
