"""Behavioural tests shared by every classifier, plus model-specific ones."""

import numpy as np
import pytest

from repro.errors import MLError, NotFittedError
from repro.ml import (
    DecisionTreeClassifier,
    GaussianNB,
    KNeighborsClassifier,
    LinearSVM,
    LogisticRegression,
    RandomForestClassifier,
    accuracy,
)
from tests.ml.conftest import make_blobs

FACTORIES = {
    "svm": lambda: LinearSVM(epochs=20),
    "logreg": lambda: LogisticRegression(epochs=30),
    "knn": lambda: KNeighborsClassifier(k=5),
    "tree": lambda: DecisionTreeClassifier(max_depth=8),
    "forest": lambda: RandomForestClassifier(n_trees=10, max_depth=8),
    "gnb": lambda: GaussianNB(),
}


@pytest.mark.parametrize("name", FACTORIES)
class TestAllClassifiers:
    def test_separable_blobs_high_accuracy(self, name, blobs):
        X, y = blobs
        model = FACTORIES[name]()
        model.fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.95

    def test_predict_before_fit_raises(self, name, blobs):
        X, _ = blobs
        with pytest.raises(NotFittedError):
            FACTORIES[name]().predict(X)

    def test_feature_mismatch_raises(self, name, blobs):
        X, y = blobs
        model = FACTORIES[name]()
        model.fit(X, y)
        with pytest.raises(MLError):
            model.predict(np.zeros((3, X.shape[1] + 2)))

    def test_single_class_raises_or_handles(self, name):
        X = np.random.default_rng(0).normal(0, 1, (10, 3))
        y = np.zeros(10, dtype=int)
        model = FACTORIES[name]()
        # Classifiers requiring >= 2 classes raise; others (knn, tree,
        # forest) legitimately learn the constant function.
        try:
            model.fit(X, y)
        except MLError:
            return
        assert (model.predict(X) == 0).all()

    def test_mismatched_lengths_raise(self, name, blobs):
        X, y = blobs
        with pytest.raises(MLError):
            FACTORIES[name]().fit(X, y[:-3])

    def test_nan_features_raise(self, name, blobs):
        X, y = blobs
        bad = X.copy()
        bad[0, 0] = np.nan
        with pytest.raises(MLError):
            FACTORIES[name]().fit(bad, y)

    def test_string_labels_supported(self, name, blobs):
        X, y = blobs
        labels = np.array(["alpha", "beta", "gamma"])[y]
        model = FACTORIES[name]()
        model.fit(X, labels)
        predictions = model.predict(X)
        assert set(predictions.tolist()) <= {"alpha", "beta", "gamma"}
        assert accuracy(labels, predictions) > 0.9

    def test_generalises_to_held_out(self, name):
        X_train, y_train = make_blobs(seed=1)
        X_test, y_test = make_blobs(seed=2)
        model = FACTORIES[name]()
        model.fit(X_train, y_train)
        assert accuracy(y_test, model.predict(X_test)) > 0.9


class TestLogisticRegression:
    def test_probabilities_sum_to_one(self, blobs):
        X, y = blobs
        model = LogisticRegression(epochs=20).fit(X, y)
        probs = model.predict_proba(X)
        assert probs.shape == (X.shape[0], 3)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_bad_hyperparameters(self):
        with pytest.raises(MLError):
            LogisticRegression(learning_rate=0)
        with pytest.raises(MLError):
            LogisticRegression(epochs=0)


class TestLinearSVM:
    def test_decision_function_shape(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=15).fit(X, y)
        assert model.decision_function(X).shape == (X.shape[0], 3)

    def test_margins_separate_binary(self, blobs_binary):
        X, y = blobs_binary
        model = LinearSVM(epochs=25).fit(X, y)
        margins = model.decision_function(X)
        # Positive class margin should dominate for its own samples.
        assert ((margins.argmax(axis=1) == y).mean()) > 0.97

    def test_bad_hyperparameters(self):
        with pytest.raises(MLError):
            LinearSVM(l2=0)


class TestKNN:
    def test_k_one_memorises(self, blobs):
        X, y = blobs
        model = KNeighborsClassifier(k=1).fit(X, y)
        assert accuracy(y, model.predict(X)) == 1.0

    def test_k_larger_than_dataset_clamped(self):
        X, y = make_blobs(n_per_class=3)
        model = KNeighborsClassifier(k=50).fit(X, y)
        model.predict(X)  # must not crash

    def test_chunked_prediction_matches_unchunked(self, blobs):
        X, y = blobs
        a = KNeighborsClassifier(k=3, chunk_size=7).fit(X, y).predict(X)
        b = KNeighborsClassifier(k=3, chunk_size=10_000).fit(X, y).predict(X)
        assert (a == b).all()

    def test_bad_k(self):
        with pytest.raises(MLError):
            KNeighborsClassifier(k=0)


class TestDecisionTree:
    def test_depth_limit_respected(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.depth() <= 3

    def test_deeper_tree_fits_better(self, blobs):
        # A depth-1 stump has two leaves and cannot separate 3 classes.
        X, y = blobs
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert accuracy(y, shallow.predict(X)) <= 2.0 / 3.0 + 0.01
        assert accuracy(y, deep.predict(X)) > 0.95

    def test_constant_features_yield_leaf(self):
        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth() == 0


class TestRandomForest:
    def test_more_trees_not_worse_on_noise(self):
        rng = np.random.default_rng(4)
        X = rng.normal(0, 1, (150, 5))
        y = (X[:, 0] + 0.3 * rng.normal(size=150) > 0).astype(int)
        small = RandomForestClassifier(n_trees=1, max_depth=4, seed=7).fit(X, y)
        big = RandomForestClassifier(n_trees=30, max_depth=4, seed=7).fit(X, y)
        assert accuracy(y, big.predict(X)) >= accuracy(y, small.predict(X)) - 0.02

    def test_bad_n_trees(self):
        with pytest.raises(MLError):
            RandomForestClassifier(n_trees=0)


class TestGaussianNB:
    def test_predict_proba_valid(self, blobs):
        X, y = blobs
        probs = GaussianNB().fit(X, y).predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_handles_zero_variance_feature(self):
        X, y = make_blobs()
        X = np.hstack([X, np.ones((X.shape[0], 1))])  # constant column
        model = GaussianNB().fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.9
