"""Tests for KMeans and DBSCAN."""

import numpy as np
import pytest

from repro.errors import MLError, NotFittedError
from repro.ml import DBSCAN, NOISE, KMeans
from tests.ml.conftest import make_blobs


class TestKMeans:
    def test_recovers_blob_structure(self):
        X, y = make_blobs(n_per_class=40, spread=0.5)
        assignment = KMeans(k=3, seed=0).fit_predict(X)
        # Each true class should map to one dominant cluster.
        for label in (0, 1, 2):
            members = assignment[y == label]
            dominant = np.bincount(members, minlength=3).max()
            assert dominant / len(members) > 0.95

    def test_inertia_decreases_with_k(self):
        X, _ = make_blobs(n_per_class=30)
        inertia = [KMeans(k=k, seed=0).fit(X).inertia_ for k in (1, 2, 3)]
        assert inertia[0] > inertia[1] > inertia[2]

    def test_k_larger_than_points_raises(self):
        X = np.zeros((3, 2))
        with pytest.raises(MLError):
            KMeans(k=5).fit(X)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KMeans(k=2).predict(np.zeros((2, 2)))

    def test_deterministic_given_seed(self):
        X, _ = make_blobs()
        a = KMeans(k=3, seed=5).fit(X).centroids_
        b = KMeans(k=3, seed=5).fit(X).centroids_
        assert np.allclose(a, b)

    def test_no_empty_clusters(self):
        # Pathological init-prone case: many duplicated points.
        X = np.vstack([np.zeros((50, 2)), np.ones((2, 2)) * 10])
        model = KMeans(k=2, seed=0).fit(X)
        assignment = model.predict(X)
        assert set(assignment.tolist()) == {0, 1}

    def test_feature_mismatch_raises(self):
        X, _ = make_blobs()
        model = KMeans(k=2, seed=0).fit(X)
        with pytest.raises(MLError):
            model.predict(np.zeros((2, 5)))

    def test_bad_k(self):
        with pytest.raises(MLError):
            KMeans(k=0)


class TestDBSCAN:
    def test_two_dense_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal((0, 0), 0.2, (30, 2))
        b = rng.normal((5, 5), 0.2, (30, 2))
        X = np.vstack([a, b])
        model = DBSCAN(eps=0.8, min_samples=4)
        labels = model.fit_predict(X)
        assert model.n_clusters_ == 2
        assert len(set(labels[:30].tolist())) == 1
        assert len(set(labels[30:].tolist())) == 1
        assert labels[0] != labels[30]

    def test_isolated_points_are_noise(self):
        rng = np.random.default_rng(1)
        cluster = rng.normal((0, 0), 0.1, (20, 2))
        outliers = np.array([[50.0, 50.0], [-40.0, 30.0]])
        labels = DBSCAN(eps=1.0, min_samples=4).fit_predict(
            np.vstack([cluster, outliers])
        )
        assert labels[-1] == NOISE
        assert labels[-2] == NOISE
        assert (labels[:20] != NOISE).all()

    def test_all_noise_when_eps_tiny(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 100, (25, 2))
        model = DBSCAN(eps=1e-6, min_samples=3)
        labels = model.fit_predict(X)
        assert (labels == NOISE).all()
        assert model.n_clusters_ == 0

    def test_single_cluster_when_eps_huge(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, (25, 2))
        model = DBSCAN(eps=10.0, min_samples=3)
        labels = model.fit_predict(X)
        assert model.n_clusters_ == 1
        assert (labels == 0).all()

    def test_bad_parameters(self):
        with pytest.raises(MLError):
            DBSCAN(eps=0.0)
        with pytest.raises(MLError):
            DBSCAN(eps=1.0, min_samples=0)

    def test_border_points_join_cluster(self):
        # A chain of points at eps spacing: all density-reachable.
        X = np.array([[float(i) * 0.9, 0.0] for i in range(10)])
        labels = DBSCAN(eps=1.0, min_samples=2).fit_predict(X)
        assert (labels == 0).all()
