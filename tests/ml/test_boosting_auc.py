"""Tests for AdaBoost and ROC-AUC."""

import numpy as np
import pytest

from repro.errors import MLError, NotFittedError
from repro.ml import AdaBoostClassifier, accuracy, roc_auc
from tests.ml.conftest import make_blobs


class TestAdaBoost:
    def test_separable_blobs(self, blobs):
        X, y = blobs
        model = AdaBoostClassifier(n_estimators=25, max_depth=2, seed=0)
        model.fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.9

    def test_boosting_beats_single_stump(self):
        # A diagonal boundary a single axis-aligned stump cannot express.
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, (300, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        stump = AdaBoostClassifier(n_estimators=1, max_depth=1, seed=0).fit(X, y)
        boosted = AdaBoostClassifier(n_estimators=40, max_depth=1, seed=0).fit(X, y)
        assert accuracy(y, boosted.predict(X)) > accuracy(y, stump.predict(X)) + 0.05

    def test_staged_errors_decrease(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, (200, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        model = AdaBoostClassifier(n_estimators=30, max_depth=1, seed=0).fit(X, y)
        errors = model.staged_errors(X, y)
        assert errors[-1] <= errors[0]

    def test_predict_before_fit_raises(self, blobs):
        X, _ = blobs
        with pytest.raises(NotFittedError):
            AdaBoostClassifier().predict(X)

    def test_string_labels(self, blobs_binary):
        X, y = blobs_binary
        labels = np.array(["neg", "pos"])[y]
        model = AdaBoostClassifier(n_estimators=10, seed=0).fit(X, labels)
        assert set(model.predict(X).tolist()) <= {"neg", "pos"}

    def test_bad_hyperparameters(self):
        with pytest.raises(MLError):
            AdaBoostClassifier(n_estimators=0)
        with pytest.raises(MLError):
            AdaBoostClassifier(learning_rate=0.0)


class TestRocAuc:
    def test_perfect_separation(self):
        y = np.array([0, 0, 0, 1, 1, 1])
        scores = np.array([0.1, 0.2, 0.3, 0.7, 0.8, 0.9])
        assert roc_auc(y, scores) == 1.0

    def test_inverted_scores(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc(y, scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 2_000)
        scores = rng.random(2_000)
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_midrank(self):
        y = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc(y, scores) == pytest.approx(0.5)

    def test_invariant_to_monotone_transform(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 200)
        y[:5] = 1
        y[5:10] = 0
        scores = rng.normal(size=200) + y
        assert roc_auc(y, scores) == pytest.approx(
            roc_auc(y, np.exp(scores)), abs=1e-12
        )

    def test_single_class_raises(self):
        with pytest.raises(MLError):
            roc_auc(np.array([1, 1]), np.array([0.1, 0.2]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(MLError):
            roc_auc(np.array([0, 1]), np.array([0.5]))

    def test_classifier_auc_on_separable_data(self, blobs_binary):
        X, y = blobs_binary
        from repro.ml import LogisticRegression

        model = LogisticRegression(epochs=30).fit(X, y)
        scores = model.predict_proba(X)[:, 1]
        assert roc_auc(y, scores) > 0.99
