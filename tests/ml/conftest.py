"""Shared fixtures for ML tests: synthetic separable datasets."""

import numpy as np
import pytest


def make_blobs(n_per_class=40, centers=((0, 0), (5, 5), (0, 6)), spread=0.8, seed=0):
    """Gaussian blobs: an easy multi-class dataset any sane classifier
    should nail."""
    rng = np.random.default_rng(seed)
    X, y = [], []
    for label, center in enumerate(centers):
        X.append(rng.normal(center, spread, (n_per_class, len(center))))
        y.extend([label] * n_per_class)
    return np.vstack(X), np.array(y)


@pytest.fixture
def blobs():
    return make_blobs()


@pytest.fixture
def blobs_binary():
    return make_blobs(centers=((0, 0), (6, 6)))
