"""Tests for splitting and cross-validation."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.ml import (
    KFold,
    KNeighborsClassifier,
    StratifiedKFold,
    cross_val_predict,
    cross_val_score,
    train_test_split,
)
from tests.ml.conftest import make_blobs


class TestTrainTestSplit:
    def test_sizes(self):
        X, y = make_blobs(n_per_class=50)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_fraction=0.2, seed=1)
        assert X_te.shape[0] == 30  # 10 per class
        assert X_tr.shape[0] + X_te.shape[0] == 150
        assert y_tr.shape[0] == X_tr.shape[0]

    def test_stratification_preserves_ratios(self):
        X, y = make_blobs(n_per_class=50)
        _, _, y_tr, y_te = train_test_split(X, y, test_fraction=0.2, seed=2)
        for label in (0, 1, 2):
            assert np.sum(y_te == label) == 10
            assert np.sum(y_tr == label) == 40

    def test_no_overlap_and_full_coverage(self):
        X, y = make_blobs(n_per_class=20)
        X_tr, X_te, _, _ = train_test_split(X, y, seed=3)
        combined = np.vstack([X_tr, X_te])
        assert combined.shape[0] == X.shape[0]
        # Every original row appears exactly once.
        original = {tuple(row) for row in X}
        assert {tuple(row) for row in combined} == original

    def test_deterministic_given_seed(self):
        X, y = make_blobs()
        a = train_test_split(X, y, seed=7)
        b = train_test_split(X, y, seed=7)
        assert np.array_equal(a[1], b[1])

    def test_bad_fraction_raises(self):
        X, y = make_blobs()
        with pytest.raises(MLError):
            train_test_split(X, y, test_fraction=0.0)
        with pytest.raises(MLError):
            train_test_split(X, y, test_fraction=1.0)


class TestKFold:
    def test_folds_partition(self):
        kf = KFold(n_splits=5, seed=0)
        seen = []
        for train, test in kf.split(23):
            assert set(train) & set(test) == set()
            assert len(train) + len(test) == 23
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(23))

    def test_too_few_samples_raises(self):
        with pytest.raises(MLError):
            list(KFold(n_splits=10).split(5))

    def test_bad_n_splits(self):
        with pytest.raises(MLError):
            KFold(n_splits=1)


class TestStratifiedKFold:
    def test_each_fold_has_all_classes(self):
        _, y = make_blobs(n_per_class=30)
        for _, test in StratifiedKFold(n_splits=5, seed=0).split(y):
            labels = set(y[test].tolist())
            assert labels == {0, 1, 2}

    def test_fold_class_balance(self):
        _, y = make_blobs(n_per_class=30)
        for _, test in StratifiedKFold(n_splits=5, seed=0).split(y):
            counts = [np.sum(y[test] == label) for label in (0, 1, 2)]
            assert max(counts) - min(counts) <= 1

    def test_partition_property(self):
        _, y = make_blobs(n_per_class=13)
        seen = []
        for train, test in StratifiedKFold(n_splits=4, seed=1).split(y):
            assert set(train) & set(test) == set()
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(len(y)))

    def test_class_smaller_than_folds_raises(self):
        y = np.array([0] * 20 + [1] * 3)
        with pytest.raises(MLError):
            list(StratifiedKFold(n_splits=5).split(y))


class TestCrossVal:
    def test_scores_near_one_on_separable(self):
        X, y = make_blobs(n_per_class=40)
        scores = cross_val_score(
            lambda: KNeighborsClassifier(k=3), X, y, n_splits=5, seed=0
        )
        assert scores.shape == (5,)
        assert scores.mean() > 0.95

    def test_custom_metric(self):
        X, y = make_blobs(n_per_class=20)
        scores = cross_val_score(
            lambda: KNeighborsClassifier(k=3),
            X,
            y,
            n_splits=4,
            metric=lambda t, p: float(np.mean(t == p)),
        )
        assert (scores <= 1.0).all() and (scores >= 0.0).all()

    def test_cross_val_predict_covers_everything(self):
        X, y = make_blobs(n_per_class=25)
        predictions = cross_val_predict(
            lambda: KNeighborsClassifier(k=3), X, y, n_splits=5
        )
        assert predictions.shape == y.shape
        assert np.mean(predictions == y) > 0.9
