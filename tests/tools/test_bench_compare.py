"""``tools/bench_compare.py``: regression gates over BENCH documents."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

spec = importlib.util.spec_from_file_location(
    "bench_compare", REPO_ROOT / "tools" / "bench_compare.py"
)
bench_compare = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_compare)


def document(benches: dict) -> dict:
    return {
        "schema_version": 1,
        "git_sha": "abc1234",
        "smoke": True,
        "python": "3.11.0",
        "benches": benches,
    }


def bench(wall_s: float, counters: dict | None = None) -> dict:
    return {
        "wall_s": wall_s,
        "mem_peak_kb": 100.0,
        "counters": counters or {},
        "results": {},
    }


BASELINE = document(
    {
        "benchmarks/bench_a.py::test_a": bench(2.0, {"index.probes": 1_000.0}),
        "benchmarks/bench_b.py::test_b": bench(1.0, {"index.visits": 400.0}),
    }
)


class TestCompare:
    def test_identical_documents_are_clean(self):
        assert bench_compare.compare(BASELINE, BASELINE) == []

    def test_flags_25_percent_wall_regression(self):
        current = document(
            {
                "benchmarks/bench_a.py::test_a": bench(2.5, {"index.probes": 1_000.0}),
                "benchmarks/bench_b.py::test_b": bench(1.0, {"index.visits": 400.0}),
            }
        )
        regressions = bench_compare.compare(BASELINE, current)
        assert len(regressions) == 1
        [r] = regressions
        assert r["kind"] == "wall"
        assert r["bench"] == "benchmarks/bench_a.py::test_a"
        assert r["ratio"] == pytest.approx(1.25)

    def test_flags_25_percent_counter_regression(self):
        current = document(
            {
                "benchmarks/bench_a.py::test_a": bench(2.0, {"index.probes": 1_250.0}),
                "benchmarks/bench_b.py::test_b": bench(1.0, {"index.visits": 400.0}),
            }
        )
        regressions = bench_compare.compare(BASELINE, current)
        assert len(regressions) == 1
        [r] = regressions
        assert r["kind"] == "counter"
        assert r["counter"] == "index.probes"
        assert r["ratio"] == pytest.approx(1.25)

    def test_within_tolerance_is_clean(self):
        current = document(
            {
                "benchmarks/bench_a.py::test_a": bench(2.3, {"index.probes": 1_150.0}),
                "benchmarks/bench_b.py::test_b": bench(1.1, {"index.visits": 440.0}),
            }
        )
        assert bench_compare.compare(BASELINE, current) == []

    def test_skip_wall_ignores_wall_regressions(self):
        current = document(
            {
                "benchmarks/bench_a.py::test_a": bench(9.0, {"index.probes": 1_000.0}),
                "benchmarks/bench_b.py::test_b": bench(9.0, {"index.visits": 400.0}),
            }
        )
        assert bench_compare.compare(BASELINE, current, skip_wall=True) == []

    def test_noise_floors_suppress_tiny_values(self):
        noisy_base = document(
            {"benchmarks/bench_c.py::test_c": bench(0.01, {"tiny.counter": 4.0})}
        )
        noisy_cur = document(
            {"benchmarks/bench_c.py::test_c": bench(0.04, {"tiny.counter": 8.0})}
        )
        # 4x growth on a 10 ms / 4-count bench is noise, not regression.
        assert bench_compare.compare(noisy_base, noisy_cur) == []

    def test_missing_bench_is_a_regression(self):
        current = document(
            {"benchmarks/bench_a.py::test_a": bench(2.0, {"index.probes": 1_000.0})}
        )
        regressions = bench_compare.compare(BASELINE, current)
        assert [r["kind"] for r in regressions] == ["missing"]
        assert regressions[0]["bench"] == "benchmarks/bench_b.py::test_b"

    def test_new_bench_is_not_a_regression(self):
        current = document(
            {
                **BASELINE["benches"],
                "benchmarks/bench_new.py::test_new": bench(5.0),
            }
        )
        assert bench_compare.compare(BASELINE, current) == []

    def test_counter_improvements_are_not_flagged(self):
        current = document(
            {
                "benchmarks/bench_a.py::test_a": bench(1.0, {"index.probes": 500.0}),
                "benchmarks/bench_b.py::test_b": bench(0.5, {"index.visits": 200.0}),
            }
        )
        assert bench_compare.compare(BASELINE, current) == []


class TestMainCli:
    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", BASELINE)
        assert bench_compare.main([base, base]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_one_on_synthetic_regression(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", BASELINE)
        worse = document(
            {
                "benchmarks/bench_a.py::test_a": bench(2.5, {"index.probes": 1_300.0}),
                "benchmarks/bench_b.py::test_b": bench(1.0, {"index.visits": 400.0}),
            }
        )
        cur = self.write(tmp_path, "cur.json", worse)
        assert bench_compare.main([base, cur]) == 1
        out = capsys.readouterr().out
        assert "WALL" in out and "COUNTER" in out

    def test_exit_two_on_bad_schema(self, tmp_path, capsys):
        bad = self.write(tmp_path, "bad.json", {"schema_version": 99, "benches": {}})
        base = self.write(tmp_path, "base.json", BASELINE)
        assert bench_compare.main([base, bad]) == 2

    def test_custom_tolerance(self, tmp_path):
        base = self.write(tmp_path, "base.json", BASELINE)
        worse = document(
            {
                "benchmarks/bench_a.py::test_a": bench(2.3, {"index.probes": 1_000.0}),
                "benchmarks/bench_b.py::test_b": bench(1.0, {"index.visits": 400.0}),
            }
        )
        cur = self.write(tmp_path, "cur.json", worse)
        assert bench_compare.main([base, cur]) == 0  # 15% < default 20%
        assert bench_compare.main([base, cur, "--wall-tolerance", "0.10"]) == 1


class TestCheckedInBaseline:
    def test_baseline_is_valid_and_covers_all_modules(self):
        baseline = bench_compare.load_document(
            REPO_ROOT / "tools" / "bench_baseline.json"
        )
        assert baseline["schema_version"] == 1
        assert baseline["smoke"] is True
        covered = {
            nodeid.split("::")[0].rsplit("/", 1)[-1] for nodeid in baseline["benches"]
        }
        expected = {p.name for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")}
        assert covered == expected
        for record in baseline["benches"].values():
            assert {"wall_s", "mem_peak_kb", "counters", "results"} <= set(record)
