"""``tools/bench_compare.py``: regression gates over BENCH documents."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

spec = importlib.util.spec_from_file_location(
    "bench_compare", REPO_ROOT / "tools" / "bench_compare.py"
)
bench_compare = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_compare)


def document(benches: dict) -> dict:
    return {
        "schema_version": 1,
        "git_sha": "abc1234",
        "smoke": True,
        "python": "3.11.0",
        "benches": benches,
    }


def bench(wall_s: float, counters: dict | None = None) -> dict:
    return {
        "wall_s": wall_s,
        "mem_peak_kb": 100.0,
        "counters": counters or {},
        "results": {},
    }


BASELINE = document(
    {
        "benchmarks/bench_a.py::test_a": bench(2.0, {"index.probes": 1_000.0}),
        "benchmarks/bench_b.py::test_b": bench(1.0, {"index.visits": 400.0}),
    }
)


class TestCompare:
    def test_identical_documents_are_clean(self):
        assert bench_compare.compare(BASELINE, BASELINE) == []

    def test_flags_25_percent_wall_regression(self):
        current = document(
            {
                "benchmarks/bench_a.py::test_a": bench(2.5, {"index.probes": 1_000.0}),
                "benchmarks/bench_b.py::test_b": bench(1.0, {"index.visits": 400.0}),
            }
        )
        regressions = bench_compare.compare(BASELINE, current)
        assert len(regressions) == 1
        [r] = regressions
        assert r["kind"] == "wall"
        assert r["bench"] == "benchmarks/bench_a.py::test_a"
        assert r["ratio"] == pytest.approx(1.25)

    def test_flags_25_percent_counter_regression(self):
        current = document(
            {
                "benchmarks/bench_a.py::test_a": bench(2.0, {"index.probes": 1_250.0}),
                "benchmarks/bench_b.py::test_b": bench(1.0, {"index.visits": 400.0}),
            }
        )
        regressions = bench_compare.compare(BASELINE, current)
        assert len(regressions) == 1
        [r] = regressions
        assert r["kind"] == "counter"
        assert r["counter"] == "index.probes"
        assert r["ratio"] == pytest.approx(1.25)

    def test_within_tolerance_is_clean(self):
        current = document(
            {
                "benchmarks/bench_a.py::test_a": bench(2.3, {"index.probes": 1_150.0}),
                "benchmarks/bench_b.py::test_b": bench(1.1, {"index.visits": 440.0}),
            }
        )
        assert bench_compare.compare(BASELINE, current) == []

    def test_skip_wall_ignores_wall_regressions(self):
        current = document(
            {
                "benchmarks/bench_a.py::test_a": bench(9.0, {"index.probes": 1_000.0}),
                "benchmarks/bench_b.py::test_b": bench(9.0, {"index.visits": 400.0}),
            }
        )
        assert bench_compare.compare(BASELINE, current, skip_wall=True) == []

    def test_noise_floors_suppress_tiny_values(self):
        noisy_base = document(
            {"benchmarks/bench_c.py::test_c": bench(0.01, {"tiny.counter": 4.0})}
        )
        noisy_cur = document(
            {"benchmarks/bench_c.py::test_c": bench(0.04, {"tiny.counter": 8.0})}
        )
        # 4x growth on a 10 ms / 4-count bench is noise, not regression.
        assert bench_compare.compare(noisy_base, noisy_cur) == []

    def test_missing_bench_is_a_regression(self):
        current = document(
            {"benchmarks/bench_a.py::test_a": bench(2.0, {"index.probes": 1_000.0})}
        )
        regressions = bench_compare.compare(BASELINE, current)
        assert [r["kind"] for r in regressions] == ["missing"]
        assert regressions[0]["bench"] == "benchmarks/bench_b.py::test_b"

    def test_new_bench_is_not_a_regression(self):
        current = document(
            {
                **BASELINE["benches"],
                "benchmarks/bench_new.py::test_new": bench(5.0),
            }
        )
        assert bench_compare.compare(BASELINE, current) == []

    def test_counter_improvements_are_not_flagged(self):
        current = document(
            {
                "benchmarks/bench_a.py::test_a": bench(1.0, {"index.probes": 500.0}),
                "benchmarks/bench_b.py::test_b": bench(0.5, {"index.visits": 200.0}),
            }
        )
        assert bench_compare.compare(BASELINE, current) == []


class TestMainCli:
    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", BASELINE)
        assert bench_compare.main([base, base]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_one_on_synthetic_regression(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", BASELINE)
        worse = document(
            {
                "benchmarks/bench_a.py::test_a": bench(2.5, {"index.probes": 1_300.0}),
                "benchmarks/bench_b.py::test_b": bench(1.0, {"index.visits": 400.0}),
            }
        )
        cur = self.write(tmp_path, "cur.json", worse)
        assert bench_compare.main([base, cur]) == 1
        out = capsys.readouterr().out
        assert "WALL" in out and "COUNTER" in out

    def test_exit_two_on_bad_schema(self, tmp_path, capsys):
        bad = self.write(tmp_path, "bad.json", {"schema_version": 99, "benches": {}})
        base = self.write(tmp_path, "base.json", BASELINE)
        assert bench_compare.main([base, bad]) == 2

    def test_custom_tolerance(self, tmp_path):
        base = self.write(tmp_path, "base.json", BASELINE)
        worse = document(
            {
                "benchmarks/bench_a.py::test_a": bench(2.3, {"index.probes": 1_000.0}),
                "benchmarks/bench_b.py::test_b": bench(1.0, {"index.visits": 400.0}),
            }
        )
        cur = self.write(tmp_path, "cur.json", worse)
        assert bench_compare.main([base, cur]) == 0  # 15% < default 20%
        assert bench_compare.main([base, cur, "--wall-tolerance", "0.10"]) == 1


class TestCheckedInBaseline:
    def test_baseline_is_valid_and_covers_all_modules(self):
        baseline = bench_compare.load_document(
            REPO_ROOT / "tools" / "bench_baseline.json"
        )
        assert baseline["schema_version"] == 1
        assert baseline["smoke"] is True
        covered = {
            nodeid.split("::")[0].rsplit("/", 1)[-1] for nodeid in baseline["benches"]
        }
        expected = {p.name for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")}
        assert covered == expected
        for record in baseline["benches"].values():
            assert {"wall_s", "mem_peak_kb", "counters", "results"} <= set(record)


def load_section(**overrides) -> dict:
    base = {
        "schema_version": 2,
        "seed": 0,
        "smoke": True,
        "zipf_s": 1.1,
        "requests_per_worker": 12,
        "principals": {"count": 2, "mix": {"key:aaaa1111": 24, "key:bbbb2222": 12}},
        "families": {"spatial": 20, "textual": 4},
        "stages": [
            {
                "concurrency": 1,
                "requests": 12,
                "errors": 0,
                "duration_s": 0.1,
                "throughput_rps": 120.0,
                "latency_ms": {"p50": 1.0, "p95": 3.0, "p99": 4.0, "mean": 1.5, "max": 5.0},
            },
            {
                "concurrency": 2,
                "requests": 24,
                "errors": 0,
                "duration_s": 0.15,
                "throughput_rps": 160.0,
                "latency_ms": {"p50": 1.2, "p95": 3.5, "p99": 4.5, "mean": 1.7, "max": 6.0},
            },
        ],
        "hot_queries": [],
        "schedule_digest": "ab" * 32,
    }
    base.update(overrides)
    return base


def with_load(doc: dict, load: dict) -> dict:
    out = dict(doc)
    out["load"] = load
    return out


class TestLoadGating:
    def test_matching_load_sections_are_clean(self):
        base = with_load(BASELINE, load_section())
        assert bench_compare.compare(base, base) == []

    def test_missing_load_section_regresses(self):
        base = with_load(BASELINE, load_section())
        kinds = [r["kind"] for r in bench_compare.compare(base, BASELINE)]
        assert kinds == ["load-missing"]

    def test_no_baseline_load_holds_nothing(self):
        current = with_load(BASELINE, load_section())
        assert bench_compare.compare(BASELINE, current) == []

    def test_digest_drift_with_same_knobs_regresses(self):
        base = with_load(BASELINE, load_section())
        current = with_load(BASELINE, load_section(schedule_digest="cd" * 32))
        kinds = [r["kind"] for r in bench_compare.compare(base, current)]
        assert kinds == ["load-schedule"]

    def test_different_knobs_are_incommensurable(self):
        base = with_load(BASELINE, load_section())
        current = with_load(
            BASELINE, load_section(seed=7, schedule_digest="cd" * 32)
        )
        assert bench_compare.compare(base, current) == []

    def test_per_stage_error_growth_regresses_even_with_skip_wall(self):
        base = with_load(BASELINE, load_section())
        bad = load_section()
        bad["stages"][1] = dict(bad["stages"][1], errors=3)
        current = with_load(BASELINE, bad)
        kinds = [
            r["kind"] for r in bench_compare.compare(base, current, skip_wall=True)
        ]
        assert kinds == ["load-errors"]

    def test_throughput_and_p95_gate_only_with_wall(self):
        base = with_load(BASELINE, load_section())
        bad = load_section()
        bad["stages"][0] = dict(bad["stages"][0], throughput_rps=10.0)
        bad["stages"][1] = dict(
            bad["stages"][1],
            latency_ms=dict(bad["stages"][1]["latency_ms"], p95=50.0),
        )
        current = with_load(BASELINE, bad)
        assert bench_compare.compare(base, current, skip_wall=True) == []
        kinds = sorted(
            r["kind"]
            for r in bench_compare.compare(base, current, skip_wall=False)
            if r["kind"].startswith("load")
        )
        assert kinds == ["load-p95", "load-throughput"]

    def test_load_regressions_format(self):
        base = with_load(BASELINE, load_section())
        bad = load_section(schedule_digest="cd" * 32)
        bad["stages"][0] = dict(bad["stages"][0], errors=2)
        current = with_load(BASELINE, bad)
        for regression in bench_compare.compare(base, current):
            line = bench_compare.format_regression(regression)
            assert regression["kind"].upper().split("-")[0] in line.upper()

    def test_invalid_load_section_fails_document_load(self, tmp_path):
        doc = with_load(BASELINE, load_section(schema_version=99))
        path = tmp_path / "bad_load.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="invalid load section"):
            bench_compare.load_document(path)

    def test_checked_in_baseline_has_valid_load_section(self):
        baseline = bench_compare.load_document(
            REPO_ROOT / "tools" / "bench_baseline.json"
        )
        assert "load" in baseline
        load = baseline["load"]
        assert load["smoke"] is True
        assert load["stages"], "baseline load section must have stages"
        assert all(stage["errors"] == 0 for stage in load["stages"])


def overhead_bench(pct: float) -> dict:
    record = bench(1.0)
    record["results"] = {"overhead_pct": pct}
    return record


class TestOverheadGate:
    NODE = "benchmarks/bench_obs_overhead.py::test_accounting_overhead"

    def test_within_ceiling_is_clean(self):
        doc = document({self.NODE: overhead_bench(4.2)})
        assert bench_compare.compare(doc, doc) == []

    def test_exactly_at_ceiling_is_clean(self):
        doc = document({self.NODE: overhead_bench(5.0)})
        assert bench_compare.compare(doc, doc) == []

    def test_over_ceiling_regresses_even_with_skip_wall(self):
        base = document({self.NODE: overhead_bench(4.0)})
        current = document({self.NODE: overhead_bench(6.8)})
        regressions = bench_compare.compare(base, current, skip_wall=True)
        assert [r["kind"] for r in regressions] == ["overhead"]
        [r] = regressions
        assert r["current"] == pytest.approx(6.8)
        line = bench_compare.format_regression(r)
        assert "OVERHEAD" in line and "6.8" in line and "5" in line

    def test_ceiling_binds_the_current_run_not_the_baseline(self):
        # A bad baseline must not excuse (or flag) anything by itself.
        base = document({self.NODE: overhead_bench(9.9)})
        current = document({self.NODE: overhead_bench(4.0)})
        assert bench_compare.compare(base, current) == []

    def test_checked_in_baseline_overhead_within_ceiling(self):
        baseline = bench_compare.load_document(
            REPO_ROOT / "tools" / "bench_baseline.json"
        )
        overheads = {
            nodeid: record["results"]["overhead_pct"]
            for nodeid, record in baseline["benches"].items()
            if "overhead_pct" in record.get("results", {})
        }
        assert overheads, "baseline must carry the accounting-overhead bench"
        assert all(
            pct <= bench_compare.OVERHEAD_LIMIT_PCT for pct in overheads.values()
        )


class TestMissingBenchesSection:
    def test_candidate_without_benches_gates_cleanly(self):
        """A load-only candidate document is a coverage failure, not a
        KeyError traceback."""
        current = {k: v for k, v in BASELINE.items() if k != "benches"}
        regressions = bench_compare.compare(BASELINE, current)
        kinds = [r["kind"] for r in regressions]
        assert kinds[0] == "section-missing"
        assert set(kinds[1:]) == {"missing"}
        line = bench_compare.format_regression(regressions[0])
        assert "SECTION-MISSING" in line
        assert "benches" in line

    def test_cli_exits_one_with_clear_message(self, tmp_path, capsys):
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        base = with_load(BASELINE, load_section())
        current = {k: v for k, v in base.items() if k not in ("benches", "load")}
        base_path.write_text(json.dumps(base))
        cur_path.write_text(json.dumps(current))
        rc = bench_compare.main([str(base_path), str(cur_path), "--skip-wall"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "SECTION-MISSING" in out
        assert "LOAD-MISSING" in out
        assert "Traceback" not in out

    def test_both_sections_missing_everywhere_is_clean(self):
        bare = {"schema_version": 1, "git_sha": "abc", "smoke": True}
        assert bench_compare.compare(bare, bare) == []


def shard_bench(speedup: float, key: str = "speedup_at_4") -> dict:
    record = bench(1.0)
    record["results"] = {key: speedup}
    return record


class TestShardSpeedupGate:
    NODE = "benchmarks/bench_shard_scaling.py::test_shard_scaling"

    def test_above_floor_is_clean(self):
        doc = document({self.NODE: shard_bench(2.1)})
        assert bench_compare.compare(doc, doc) == []

    def test_below_floor_regresses_even_with_skip_wall(self):
        base = document({self.NODE: shard_bench(2.1)})
        current = document({self.NODE: shard_bench(1.3)})
        regressions = bench_compare.compare(base, current, skip_wall=True)
        assert [r["kind"] for r in regressions] == ["shard-speedup"]
        [r] = regressions
        assert r["current"] == pytest.approx(1.3)
        line = bench_compare.format_regression(r)
        assert "SHARD-SPEEDUP" in line and "1.3" in line and "1.8" in line

    def test_floor_binds_the_current_run_not_the_baseline(self):
        base = document({self.NODE: shard_bench(1.0)})
        current = document({self.NODE: shard_bench(2.5)})
        assert bench_compare.compare(base, current) == []

    def test_smoke_key_is_exempt(self):
        # Smoke runs report speedup_at_4_smoke: measured, not gated.
        doc = document({self.NODE: shard_bench(0.9, key="speedup_at_4_smoke")})
        assert bench_compare.compare(doc, doc) == []

    def test_checked_in_baseline_carries_shard_scaling(self):
        # The checked-in baseline is a smoke run, so it reports the
        # ungated smoke key — but it must carry the bench, and any
        # full-run key it does carry must clear the floor.
        baseline = bench_compare.load_document(
            REPO_ROOT / "tools" / "bench_baseline.json"
        )
        results = {
            nodeid: record.get("results", {})
            for nodeid, record in baseline["benches"].items()
            if "bench_shard_scaling" in nodeid
        }
        assert results, "baseline must carry the shard-scaling bench"
        for nodeid, recorded in results.items():
            assert (
                "speedup_at_4" in recorded or "speedup_at_4_smoke" in recorded
            ), f"{nodeid} records no speedup curve"
            if "speedup_at_4" in recorded:
                assert recorded["speedup_at_4"] >= bench_compare.SHARD_SPEEDUP_FLOOR
        assert bench_compare.compare(baseline, baseline) == []
