"""``benchmarks/loadgen.py``: deterministic closed-loop load harness."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.load_schema import (  # noqa: E402
    LOAD_SCHEMA_VERSION,
    validate_load_section,
)
from benchmarks.loadgen import (  # noqa: E402
    FAMILY_RANKS,
    LoadConfig,
    build_corpus,
    build_schedule,
    run_load,
    schedule_digest,
)

TINY = LoadConfig(
    seed=0,
    smoke=True,
    stages=(1, 2),
    requests_per_worker=4,
    n_per_class=3,
    image_size=24,
)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(TINY)


class TestScheduleDeterminism:
    def test_same_seed_same_schedule(self, corpus):
        _, _, profile = corpus
        first = build_schedule(profile, TINY)
        second = build_schedule(profile, TINY)
        assert first == second
        assert schedule_digest(first) == schedule_digest(second)

    def test_digest_is_sha256_hex(self, corpus):
        _, _, profile = corpus
        digest = schedule_digest(build_schedule(profile, TINY))
        assert len(digest) == 64
        int(digest, 16)  # hex

    def test_different_seed_different_schedule(self, corpus):
        _, _, profile = corpus
        a = build_schedule(profile, TINY)
        b = build_schedule(profile, LoadConfig(
            seed=1,
            smoke=True,
            stages=(1, 2),
            requests_per_worker=4,
            n_per_class=3,
            image_size=24,
        ))
        assert schedule_digest(a) != schedule_digest(b)

    def test_schedule_shape_matches_config(self, corpus):
        _, _, profile = corpus
        schedule = build_schedule(profile, TINY)
        assert len(schedule) == len(TINY.stages)
        for concurrency, stage in zip(TINY.stages, schedule):
            assert len(stage) == concurrency
            for worker_plan in stage:
                assert len(worker_plan) == TINY.requests_per_worker

    def test_specs_use_known_families_only(self, corpus):
        _, _, profile = corpus
        schedule = build_schedule(profile, TINY)
        for stage in schedule:
            for worker_plan in stage:
                for spec in worker_plan:
                    assert spec["type"] in FAMILY_RANKS

    def test_zipf_mix_is_skewed_toward_rank_one(self, corpus):
        _, _, profile = corpus
        config = LoadConfig(
            seed=0,
            smoke=True,
            stages=(4,),
            requests_per_worker=50,
            n_per_class=3,
            image_size=24,
        )
        schedule = build_schedule(profile, config)
        counts: dict[str, int] = {}
        for stage in schedule:
            for worker_plan in stage:
                for spec in worker_plan:
                    counts[spec["type"]] = counts.get(spec["type"], 0) + 1
        assert max(counts, key=counts.get) == FAMILY_RANKS[0]


class TestRunLoad:
    def test_emits_valid_section_with_zero_errors(self):
        load = run_load(TINY)
        assert validate_load_section(load) == []
        assert load["schema_version"] == LOAD_SCHEMA_VERSION
        assert load["seed"] == 0
        assert load["smoke"] is True
        assert [stage["concurrency"] for stage in load["stages"]] == [1, 2]
        for stage in load["stages"]:
            assert stage["requests"] == stage["concurrency"] * TINY.requests_per_worker
            assert stage["errors"] == 0
            assert stage["throughput_rps"] > 0.0
            latency = stage["latency_ms"]
            assert latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]

    def test_principal_mix_covers_all_requests(self):
        load = run_load(TINY)
        principals = load["principals"]
        assert principals["count"] == TINY.principals
        # Worker cohorts share keys round-robin, so every planned
        # request lands on exactly one principal label.
        total = sum(stage["requests"] for stage in load["stages"])
        assert sum(principals["mix"].values()) == total
        assert all(label.startswith("key:") for label in principals["mix"])
        # Stages (1, 2) mean cohort 0 appears in both stages, cohort 1
        # only in the second -> at least two distinct labels.
        assert len(principals["mix"]) >= 2

    def test_digest_stable_across_runs(self):
        assert run_load(TINY)["schedule_digest"] == run_load(TINY)["schedule_digest"]
        digest = run_load(TINY)["schedule_digest"]
        assert len(digest) == 64

    def test_family_counts_cover_all_requests(self):
        load = run_load(TINY)
        total = sum(stage["requests"] for stage in load["stages"])
        assert sum(load["families"].values()) == total
        assert load["hot_queries"], "hot tracker should see the workload"


class TestLoadSchemaValidation:
    def base(self) -> dict:
        return run_load(TINY)

    def test_flags_missing_key(self):
        load = self.base()
        del load["schedule_digest"]
        problems = validate_load_section(load)
        assert any("schedule_digest" in p for p in problems)

    def test_flags_bad_digest(self):
        load = self.base()
        load["schedule_digest"] = "nothex"
        assert validate_load_section(load)

    def test_flags_wrong_schema_version(self):
        load = self.base()
        load["schema_version"] = LOAD_SCHEMA_VERSION + 1
        assert validate_load_section(load)

    def test_flags_errors_exceeding_requests(self):
        load = self.base()
        load["stages"][0]["errors"] = load["stages"][0]["requests"] + 1
        assert validate_load_section(load)

    def test_flags_bool_where_int_expected(self):
        load = self.base()
        load["stages"][0]["requests"] = True
        assert validate_load_section(load)
