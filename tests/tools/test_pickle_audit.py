"""``tools/pickle_audit.py``: runtime shard-boundary round trips."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

spec = importlib.util.spec_from_file_location(
    "pickle_audit", REPO_ROOT / "tools" / "pickle_audit.py"
)
pickle_audit = importlib.util.module_from_spec(spec)
spec.loader.exec_module(pickle_audit)


class TestStructurallyEqual:
    def test_arrays_compare_by_value(self):
        a = np.array([1.0, 2.0])
        assert pickle_audit.structurally_equal(a, a.copy())
        assert not pickle_audit.structurally_equal(a, np.array([1.0, 2.5]))
        assert not pickle_audit.structurally_equal(a, [1.0, 2.0])

    def test_ndarray_dataclass_fields_do_not_raise(self):
        from repro.core.queries import VisualQuery

        q1 = VisualQuery("hsv", vector=np.array([1.0, 2.0]), k=3)
        q2 = VisualQuery("hsv", vector=np.array([1.0, 2.0]), k=3)
        q3 = VisualQuery("hsv", vector=np.array([9.0, 9.0]), k=3)
        assert pickle_audit.structurally_equal(q1, q2)
        assert not pickle_audit.structurally_equal(q1, q3)

    def test_nested_containers(self):
        a = {"rows": [(1, np.array([0.5])), (2, np.array([0.7]))]}
        b = {"rows": [(1, np.array([0.5])), (2, np.array([0.7]))]}
        assert pickle_audit.structurally_equal(a, b)
        b["rows"][1] = (2, np.array([0.8]))
        assert not pickle_audit.structurally_equal(a, b)


class TestFullAudit:
    def test_every_check_passes(self, capsys):
        assert pickle_audit.main([]) == 0
        out = capsys.readouterr().out
        assert "pickle audit: OK" in out

    def test_audit_catches_broken_clone(self):
        """The harness is a real gate: a probe mismatch is a failure."""
        audit = pickle_audit.Audit(verbose=False)
        from repro.index.inverted import InvertedIndex

        index = InvertedIndex()
        index.add("img-1", "pothole sidewalk")
        # A probe that reads process-local identity diverges after the
        # round trip only if the clone is broken; simulate by comparing
        # against a probe of different data.
        audit.roundtrip_index(
            "broken", index, {"vocab": lambda ix: ix.vocabulary()}
        )
        assert audit.failures == []
        audit.check("forced", False, "structural mismatch")
        assert audit.failures == ["forced: structural mismatch"]
