"""Tests for street-route video generation over the road network."""

import pytest

from repro.datasets import generate_route_video
from repro.errors import TVDPError
from repro.geo import (
    BoundingBox,
    GeoPoint,
    RoadNetwork,
    angular_difference_deg,
    haversine_m,
    initial_bearing_deg,
)

REGION = BoundingBox(34.00, -118.30, 34.04, -118.26)


class TestRouteVideo:
    def test_straight_route(self):
        a = GeoPoint(34.00, -118.28)
        b = GeoPoint(34.02, -118.28)  # ~2.2 km due north
        video = generate_route_video(1, [a, b], speed_mps=10.0, seed=0)
        # ~222 s of driving at 10 m/s, one frame per second.
        assert 200 <= len(video.frames) <= 240
        for frame in video.frames:
            assert angular_difference_deg(frame.fov.direction_deg, 0.0) < 15.0

    def test_frames_spaced_by_speed(self):
        a = GeoPoint(34.00, -118.28)
        b = GeoPoint(34.01, -118.28)
        video = generate_route_video(1, [a, b], speed_mps=5.0, seed=0)
        cameras = [f.fov.camera for f in video.frames]
        gaps = [haversine_m(x, y) for x, y in zip(cameras, cameras[1:])]
        assert all(abs(g - 5.0) < 0.5 for g in gaps)

    def test_network_route_video_stays_on_streets(self):
        network = RoadNetwork.manhattan(REGION, rows=5, cols=5, seed=0)
        route = network.route(GeoPoint(34.00, -118.30), GeoPoint(34.04, -118.26))
        video = generate_route_video(2, route, seed=1)
        assert len(video.frames) > 10
        # Every camera lies near the route polyline (within one step).
        for frame in video.frames:
            nearest = min(haversine_m(frame.fov.camera, p) for p in route)
            assert nearest < 1_200.0  # within a block of some intersection

    def test_heading_turns_at_corners(self):
        # L-shaped route: north then east.
        a = GeoPoint(34.00, -118.28)
        b = GeoPoint(34.01, -118.28)
        c = GeoPoint(34.01, -118.27)
        video = generate_route_video(3, [a, b, c], speed_mps=10.0, seed=0)
        headings = [f.fov.direction_deg for f in video.frames]
        assert angular_difference_deg(headings[0], 0.0) < 15.0
        assert angular_difference_deg(headings[-1], 90.0) < 15.0

    def test_render_and_keyframes_work(self):
        a = GeoPoint(34.00, -118.28)
        b = GeoPoint(34.003, -118.28)
        video = generate_route_video(4, [a, b], image_size=32, seed=2)
        frame = video.key_frames(every=5)[0]
        assert video.render_frame(frame.frame_number).shape == (32, 32)

    def test_too_few_waypoints_raises(self):
        with pytest.raises(TVDPError):
            generate_route_video(1, [GeoPoint(0, 0)])
