"""Tests for the synthetic LASAN and GeoUGV-style datasets."""

import numpy as np
import pytest

from repro.datasets import (
    CLASS_KEYWORDS,
    dataset_summary,
    generate_fleet_videos,
    generate_lasan_dataset,
    generate_video,
)
from repro.errors import TVDPError
from repro.geo import DOWNTOWN_LA, GeoPoint
from repro.imaging import CLEANLINESS_CLASSES


class TestLasanDataset:
    def test_balanced_classes(self):
        records = generate_lasan_dataset(n_per_class=5, image_size=32, seed=0)
        assert len(records) == 25
        counts = {}
        for record in records:
            counts[record.label] = counts.get(record.label, 0) + 1
        assert counts == {label: 5 for label in CLEANLINESS_CLASSES}

    def test_prefix_balanced(self):
        records = generate_lasan_dataset(n_per_class=4, image_size=32, seed=0)
        prefix = records[:5]
        assert {r.label for r in prefix} == set(CLEANLINESS_CLASSES)

    def test_deterministic(self):
        a = generate_lasan_dataset(n_per_class=2, image_size=32, seed=7)
        b = generate_lasan_dataset(n_per_class=2, image_size=32, seed=7)
        assert all(x.image == y.image for x, y in zip(a, b))
        assert all(x.fov == y.fov for x, y in zip(a, b))

    def test_locations_in_region(self):
        records = generate_lasan_dataset(n_per_class=4, image_size=32, seed=1)
        assert all(DOWNTOWN_LA.contains_point(r.fov.camera) for r in records)

    def test_encampments_cluster(self):
        records = generate_lasan_dataset(
            n_per_class=30, image_size=32, seed=2, encampment_hotspots=2
        )
        tents = np.array(
            [
                (r.fov.camera.lat, r.fov.camera.lng)
                for r in records
                if r.label == "encampment"
            ]
        )
        cleans = np.array(
            [
                (r.fov.camera.lat, r.fov.camera.lng)
                for r in records
                if r.label == "clean"
            ]
        )
        # Encampment locations have visibly lower spread than uniform.
        assert tents.std(axis=0).mean() < cleans.std(axis=0).mean() * 0.8

    def test_keywords_match_class(self):
        records = generate_lasan_dataset(n_per_class=3, image_size=32, seed=3)
        for record in records:
            assert set(record.keywords) <= set(CLASS_KEYWORDS[record.label])
            assert record.keywords

    def test_upload_after_capture(self):
        records = generate_lasan_dataset(n_per_class=3, image_size=32, seed=4)
        assert all(r.uploaded_at > r.captured_at for r in records)

    def test_summary(self):
        records = generate_lasan_dataset(n_per_class=3, image_size=32, seed=5)
        summary = dataset_summary(records)
        assert summary["total"] == 15
        assert summary["per_class"]["clean"] == 3
        assert summary["image_size"] == (32, 32)
        assert summary["capture_span_s"] > 0

    def test_invalid_inputs(self):
        with pytest.raises(TVDPError):
            generate_lasan_dataset(n_per_class=0)
        with pytest.raises(TVDPError):
            dataset_summary([])


class TestGeoUGV:
    def test_video_structure(self):
        video = generate_video(
            1, GeoPoint(34.04, -118.25), initial_bearing=90.0, n_frames=20, seed=0
        )
        assert len(video.frames) == 20
        assert [f.frame_number for f in video.frames] == list(range(20))
        timestamps = [f.timestamp for f in video.frames]
        assert timestamps == sorted(timestamps)

    def test_camera_moves_along_heading(self):
        video = generate_video(
            1,
            GeoPoint(34.04, -118.25),
            initial_bearing=0.0,
            n_frames=10,
            turn_prob=0.0,
            seed=0,
        )
        lats = [f.fov.camera.lat for f in video.frames]
        assert lats == sorted(lats)  # heading north: latitude increases

    def test_direction_follows_travel(self):
        video = generate_video(
            1,
            GeoPoint(34.04, -118.25),
            initial_bearing=90.0,
            n_frames=10,
            turn_prob=0.0,
            seed=0,
        )
        from repro.geo import angular_difference_deg

        for frame in video.frames:
            assert angular_difference_deg(frame.fov.direction_deg, 90.0) < 15.0

    def test_render_frame_deterministic(self):
        video = generate_video(
            2, GeoPoint(34.04, -118.25), initial_bearing=0.0, n_frames=5, seed=1
        )
        assert video.render_frame(3) == video.render_frame(3)

    def test_render_unknown_frame_raises(self):
        video = generate_video(
            1, GeoPoint(34.04, -118.25), initial_bearing=0.0, n_frames=5, seed=0
        )
        with pytest.raises(TVDPError):
            video.render_frame(99)

    def test_key_frames(self):
        video = generate_video(
            1, GeoPoint(34.04, -118.25), initial_bearing=0.0, n_frames=20, seed=0
        )
        keys = video.key_frames(every=5)
        assert [f.frame_number for f in keys] == [0, 5, 10, 15]
        with pytest.raises(TVDPError):
            video.key_frames(every=0)

    def test_mostly_clean_labels(self):
        video = generate_video(
            1, GeoPoint(34.04, -118.25), initial_bearing=0.0, n_frames=200, seed=3
        )
        clean = sum(1 for f in video.frames if f.label == "clean")
        assert clean > 80

    def test_fleet(self):
        videos = generate_fleet_videos(n_videos=3, n_frames=5, seed=0)
        assert len(videos) == 3
        assert {v.video_id for v in videos} == {1, 2, 3}
        with pytest.raises(TVDPError):
            generate_fleet_videos(n_videos=0)

    def test_stays_near_region(self):
        video = generate_video(
            1,
            GeoPoint(34.04, -118.25),
            initial_bearing=270.0,
            n_frames=300,
            turn_prob=0.0,
            seed=0,
        )
        # U-turns at the boundary keep the truck near downtown.
        expanded = DOWNTOWN_LA.expand(0.02)
        assert all(expanded.contains_point(f.fov.camera) for f in video.frames)
