"""Integration: a full campaign cycle under scripted chaos.

The paper's scenario — city uploads through the API, edge fleet rounds,
a persistence snapshot — driven with a :class:`FaultPlan` that kills
30% of edge transfers, the first database save, and a couple of API
requests.  The platform must ride it out: the campaign converges,
retried uploads stay idempotent (content-hash dedup means no duplicate
rows), ``/health`` degrades while the chaos runs and recovers once
clean traffic resumes — all in virtual time, with zero real sleeps.

``$REPRO_FAULT_SEED`` shifts the whole schedule (the CI chaos job runs
a three-seed matrix); each run is exactly reproducible for its seed.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.api import TVDPClient, TVDPService
from repro.core import TVDP
from repro.datasets import generate_lasan_dataset
from repro.db.persistence import dump_database, load_database
from repro.edge import (
    PAPER_DEVICES,
    PAPER_MODELS,
    UploadPlan,
    dispatch_fleet_resilient,
    feature_vector_bytes,
    upload_fleet,
)
from repro.resilience import FaultPlan, ManualClock, reset_breakers, seed_from_env

#: Three distinct seeds derived from the environment's base seed.
SEEDS = [seed_from_env(default=0) + offset for offset in range(3)]

CHAOS_ROUNDS = 8
MAX_CLEAN_ROUNDS = 120


@pytest.fixture(autouse=True)
def _isolated_and_sleepless(monkeypatch):
    obs.reset()
    reset_breakers()

    def forbidden_sleep(seconds: float) -> None:
        raise AssertionError(f"real time.sleep({seconds!r}) during the chaos cycle")

    monkeypatch.setattr(time, "sleep", forbidden_sleep)
    yield
    reset_breakers()


def _fleet_round(clock, seed):
    """One dispatch + transfer round for the whole paper fleet."""
    dispatch = dispatch_fleet_resilient(
        list(PAPER_DEVICES), list(PAPER_MODELS), 1_000.0, clock=clock, seed=seed
    )
    plans = {
        name: UploadPlan(
            n_items=32,
            bytes_per_item=feature_vector_bytes(512),
            device=decision.device,
        )
        for name, decision in dispatch.decisions.items()
    }
    return upload_fleet(plans, clock=clock, seed=seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_campaign_cycle_survives_chaos(seed, tmp_path):
    clock = ManualClock()
    plan = (
        FaultPlan(seed=seed, clock=clock)
        .kill("edge.transfer", rate=0.3)
        .kill("db.save", at_calls={1})
        .kill("api.request", rate=0.2, max_faults=2)
    )
    platform = TVDP()
    service = TVDPService(platform, deterministic_keys=True)
    client = TVDPClient(service, seed=seed)
    records = generate_lasan_dataset(n_per_class=2, image_size=24, seed=0)

    with plan.activate():
        # -- acquisition through the flaky API --------------------------------
        user_id = client.register_user("ops", role="government")
        client.create_key(user_id)
        ids = [
            client.add_image(
                r.image, r.fov, r.captured_at, r.uploaded_at, keywords=r.keywords
            )["image_id"]
            for r in records
        ]
        assert len(set(ids)) == len(records)

        # Retried/replayed uploads are idempotent: identical content
        # dedups to the same row, so chaos cannot inflate the table.
        first = records[0]
        replay = client.add_image(
            first.image, first.fov, first.captured_at, first.uploaded_at,
            keywords=first.keywords,
        )
        assert replay["image_id"] == ids[0]
        assert platform.db.row_counts()["images"] == len(records)

        # -- edge campaign rounds under 30% transfer loss ----------------------
        delivered = 0
        attempted = 0
        for round_no in range(CHAOS_ROUNDS):
            report = _fleet_round(clock, seed=seed * 1_000 + round_no)
            delivered += len(report.delivered)
            attempted += len(report.delivered) + len(report.failed)
            # Between campaign rounds real time passes; open breakers
            # get their recovery window.
            clock.advance(61.0)
        assert attempted == CHAOS_ROUNDS * len(PAPER_DEVICES)
        # Retries + per-device breakers keep the campaign converging
        # despite 30% attempt loss.
        assert delivered >= 0.7 * attempted

        # -- persistence with the first save killed ----------------------------
        snapshot = tmp_path / "tvdp.json"
        dump_database(platform.db, snapshot, seed=seed)
        restored = load_database(snapshot, seed=seed)
        assert restored.row_counts() == platform.db.row_counts()
        assert plan.summary()["db.save"]["error"] == 1

        # -- health degrades while the chaos is live ---------------------------
        degraded = client.health()
        edge_slo = next(
            o
            for o in degraded["objectives"]
            if o["objective"] == "edge.transfer.availability"
        )
        assert edge_slo["samples"] >= 20
        assert edge_slo["status"] in ("degraded", "failing")
        assert degraded["status"] in ("degraded", "failing")

    # -- chaos over: clean traffic refills the error budget --------------------
    def _edge_burn() -> float:
        report = obs.health()
        slo = next(
            o
            for o in report["objectives"]
            if o["objective"] == "edge.transfer.availability"
        )
        return slo["burn_ratio"]

    clock.advance(61.0)
    for round_no in range(MAX_CLEAN_ROUNDS):
        report = _fleet_round(clock, seed=round_no)
        assert report.delivery_ratio == 1.0
        clock.advance(61.0)
        if _edge_burn() <= 1.0:
            break
    else:
        pytest.fail("edge transfer SLO never recovered from the chaos window")

    recovered = client.health()
    edge_slo = next(
        o
        for o in recovered["objectives"]
        if o["objective"] == "edge.transfer.availability"
    )
    assert edge_slo["status"] == "ok"
    assert all(b["state"] == "closed" for b in recovered["breakers"].values())
    assert recovered["status"] == "ok"

    # The whole drill — backoff storms, breaker recovery windows,
    # simulated transfer time — happened on the virtual clock.
    assert clock.now() > 60.0


@pytest.mark.parametrize("seed", SEEDS)
def test_fault_schedule_reproducible_per_seed(seed):
    def run():
        reset_breakers()  # same starting state both times
        clock = ManualClock()
        plan = FaultPlan(seed=seed, clock=clock).kill("edge.transfer", rate=0.3)
        with plan.activate():
            for round_no in range(3):
                _fleet_round(clock, seed=seed * 1_000 + round_no)
        return plan.events

    assert run() == run()
