"""Smoke tests: the fast examples run to completion as scripts.

The heavyweight studies (street_cleanliness_study, homeless_tracking,
edge_deployment, disaster_monitoring, city_video_pipeline) are covered
functionally by the benchmarks; here we run the quick ones end to end
the way a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = ["quickstart.py", "api_collaboration.py", "crowdsourcing_campaign.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_guided_tour_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "guided tour" in result.stdout
    assert "done" in result.stdout
