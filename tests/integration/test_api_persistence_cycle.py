"""Integration: API-driven workflow survives a platform restart."""

import numpy as np
import pytest

from repro.api import TVDPClient, TVDPService
from repro.core import TVDP, load_platform, save_platform
from repro.datasets import generate_lasan_dataset
from repro.features import ColorHistogramExtractor
from repro.imaging import CLEANLINESS_CLASSES


class TestApiPersistenceCycle:
    def test_full_cycle_across_restart(self, tmp_path):
        # --- Session 1: build everything through the API.
        platform = TVDP()
        platform.register_extractor(ColorHistogramExtractor())
        service = TVDPService(platform, deterministic_keys=True)
        client = TVDPClient(service)
        user_id = client.register_user("lasan", role="government")
        client.create_key(user_id)
        client.define_classification("street_cleanliness", list(CLEANLINESS_CLASSES))

        records = generate_lasan_dataset(n_per_class=5, image_size=32, seed=0)
        ids = []
        for record in records:
            body = client.add_image(
                record.image, record.fov, record.captured_at, record.uploaded_at,
                keywords=record.keywords,
            )
            ids.append(body["image_id"])
            client.annotate(body["image_id"], "street_cleanliness", record.label)
        client.devise_model(
            "m1", "color_hsv_20_20_10", "street_cleanliness",
            classifier="logistic_regression",
        )
        trained_on = client.train_model("m1")
        assert trained_on == len(ids)
        before = client.predict("m1", image=records[0].image)

        save_platform(platform, tmp_path / "snap")

        # --- Session 2: reload, rebuild the service, keep working.
        restored = load_platform(tmp_path / "snap")
        restored.register_extractor(ColorHistogramExtractor())
        service2 = TVDPService(restored, deterministic_keys=True)
        client2 = TVDPClient(service2)
        # API keys persist in the database, so the old key still works.
        client2.api_key = client.api_key
        stats = client2.stats()
        assert stats["rows"]["images"] == len(ids)
        assert stats["rows"]["image_content_annotation"] == len(ids)

        # Annotations and features survive; a new model trains on them.
        client2.devise_model(
            "m2", "color_hsv_20_20_10", "street_cleanliness",
            classifier="logistic_regression",
        )
        assert client2.train_model("m2") == len(ids)
        after = client2.predict("m2", image=records[0].image)
        assert after["label"] in CLEANLINESS_CLASSES
        # Same data, same classifier family: same verdict as session 1.
        assert after["label"] == before["label"]

    def test_keys_persist_and_revocation_survives(self, tmp_path):
        platform = TVDP()
        service = TVDPService(platform, deterministic_keys=True)
        client = TVDPClient(service)
        user_id = client.register_user("x", role="citizen")
        key = client.create_key(user_id)
        service.keys.revoke(key)
        save_platform(platform, tmp_path / "snap")
        restored = load_platform(tmp_path / "snap")
        service2 = TVDPService(restored, deterministic_keys=True)
        from repro.errors import AuthenticationError

        with pytest.raises(AuthenticationError):
            service2.keys.validate(key)
