"""One API round trip produces the expected span tree and counters.

This is the observability layer's end-to-end contract: a ``POST
/images`` + ``POST /search`` cycle through the service must yield (a) a
trace per request rooted at ``http.request`` with the platform and
upload child spans beneath it, and (b) the matching counter deltas —
without the caller wiring anything up.
"""

import pytest

from repro import obs
from repro.api import TVDPClient, TVDPService
from repro.core import TVDP
from repro.datasets import generate_lasan_dataset
from repro.features import ColorHistogramExtractor
from repro.obs import counters_delta


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture()
def client():
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    service = TVDPService(platform, deterministic_keys=True)
    client = TVDPClient(service)
    user_id = client.register_user("cycle", role="researcher")
    client.create_key(user_id)
    return client


def _tree_names(node):
    return {node["name"]} | {n for c in node["children"] for n in _tree_names(c)}


def test_upload_and_search_trace_and_counters(client):
    record = generate_lasan_dataset(n_per_class=1, image_size=32, seed=0)[0]
    before = obs.snapshot()

    body = client.add_image(
        record.image, record.fov, record.captured_at, record.uploaded_at,
        keywords=record.keywords,
    )
    assert not body["deduplicated"]
    results = client.search(
        {
            "type": "spatial",
            "region": {
                "min_lat": record.fov.camera.lat - 0.05,
                "min_lng": record.fov.camera.lng - 0.05,
                "max_lat": record.fov.camera.lat + 0.05,
                "max_lng": record.fov.camera.lng + 0.05,
            },
        }
    )
    assert [r["image_id"] for r in results] == [body["image_id"]]

    # -- span trees: one trace per request, rooted at the middleware ----
    ring = obs.ring_buffer()
    upload_span = ring.spans("platform.upload_image")[-1]
    [upload_root] = ring.span_tree(trace_id=upload_span.trace_id)
    # The client library opens a client.request span per attempt, so an
    # in-process round trip roots at the client with the middleware as
    # its only child.
    assert upload_root["name"] == "client.request"
    [http_node] = upload_root["children"]
    assert http_node["name"] == "http.request"
    assert http_node["attrs"]["route"] == "/images"
    [platform_node] = http_node["children"]
    assert platform_node["name"] == "platform.upload_image"
    child_names = [c["name"] for c in platform_node["children"]]
    assert child_names[0] == "upload.dedup"
    assert child_names[-1] == "upload.index_insert"
    assert all(name.startswith("upload.") for name in child_names)

    query_span = ring.spans("query.spatial")[-1]
    [search_root] = ring.span_tree(trace_id=query_span.trace_id)
    assert search_root["name"] == "client.request"
    [search_http] = search_root["children"]
    assert search_http["attrs"]["route"] == "/search"
    assert "query.spatial" in _tree_names(search_root)
    assert search_root["trace_id"] != upload_root["trace_id"]

    # -- counter deltas for exactly this round trip ---------------------
    delta = counters_delta(before, obs.snapshot())
    assert delta['platform.uploads{outcome="stored"}'] == 1.0
    assert delta['platform.queries{family="spatial"}'] == 1.0
    assert delta['api.requests{method="POST",route="/images",status="201"}'] == 1.0
    assert delta['api.requests{method="POST",route="/search",status="200"}'] == 1.0
    assert delta['spans.total{span="http.request"}'] == 2.0
    # The spatial search actually probed the R-tree.
    assert delta.get("index.rtree.queries", 0) + delta.get(
        "index.oriented.queries", 0
    ) >= 1.0

    # -- latency summaries surface through /stats -----------------------
    latency = client.stats()["latency_ms"]
    assert latency["platform.upload_image"]["count"] == 1
    assert latency["query.spatial"]["count"] == 1
    assert latency["http.request"]["count"] >= 2


def test_resource_attribution_and_trace_join_across_principals(client):
    """The accounting acceptance path: two API keys drive different
    work through one service; ``/debug/resources`` must bill rows,
    probes, and feature bytes to the right principal and query shape,
    and the usage exemplar must resolve to ONE span tree in which the
    client and server spans share a trace id."""
    from repro.api import TVDPClient
    from repro.api.auth import principal_label

    # A second principal on the same service.
    other = TVDPClient(client._service)
    other_user = other.register_user("other-tenant", role="engineer")
    other.create_key(other_user)
    assert principal_label(other.api_key) != principal_label(client.api_key)

    record = generate_lasan_dataset(n_per_class=1, image_size=32, seed=0)[0]
    body = client.add_image(
        record.image, record.fov, record.captured_at, record.uploaded_at,
        keywords=record.keywords,
    )
    client.search(
        {
            "type": "spatial",
            "region": {
                "min_lat": record.fov.camera.lat - 0.05,
                "min_lng": record.fov.camera.lng - 0.05,
                "max_lat": record.fov.camera.lat + 0.05,
                "max_lng": record.fov.camera.lng + 0.05,
            },
        }
    )
    # The other principal only touches features (feature_bytes, no probes).
    other.get_features("color_hsv_20_20_10", image_id=body["image_id"])

    report = client.resources()
    rows = {row["key"]: row for row in report["by_principal"]}
    mine = rows[principal_label(client.api_key)]
    theirs = rows[principal_label(other.api_key)]

    # Spatial search work bills to the searching key...
    assert mine["charges"].get("probes.rtree", 0) > 0
    assert mine["cost"] > 0
    # ...feature-vector bytes bill to the key that pulled them...
    assert theirs["charges"].get("feature_bytes", 0) > 0
    assert "probes.rtree" not in theirs["charges"]
    # ...and the query shape aggregation names the access path.
    shape_keys = {row["key"] for row in report["by_shape"]}
    assert "spatial(mode=scene,region)" in shape_keys
    operations = {row["key"]: row for row in report["by_operation"]}
    assert operations["POST /search"]["count"] == 1
    assert operations["POST /images"]["count"] == 1

    # The worst-request exemplar links the report to one trace tree in
    # which the client span and the server middleware span are joined.
    exemplar = mine["exemplar"]
    assert exemplar is not None
    tree = client.trace(exemplar["trace_id"])
    [root] = tree["roots"]
    assert root["name"] == "client.request"
    assert root["trace_id"] == exemplar["trace_id"]
    [http_node] = root["children"]
    assert http_node["name"] == "http.request"
    assert http_node["trace_id"] == root["trace_id"]
    assert http_node["children"]  # the platform work hangs beneath it
