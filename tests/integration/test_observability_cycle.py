"""One API round trip produces the expected span tree and counters.

This is the observability layer's end-to-end contract: a ``POST
/images`` + ``POST /search`` cycle through the service must yield (a) a
trace per request rooted at ``http.request`` with the platform and
upload child spans beneath it, and (b) the matching counter deltas —
without the caller wiring anything up.
"""

import pytest

from repro import obs
from repro.api import TVDPClient, TVDPService
from repro.core import TVDP
from repro.datasets import generate_lasan_dataset
from repro.features import ColorHistogramExtractor
from repro.obs import counters_delta


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture()
def client():
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    service = TVDPService(platform, deterministic_keys=True)
    client = TVDPClient(service)
    user_id = client.register_user("cycle", role="researcher")
    client.create_key(user_id)
    return client


def _tree_names(node):
    return {node["name"]} | {n for c in node["children"] for n in _tree_names(c)}


def test_upload_and_search_trace_and_counters(client):
    record = generate_lasan_dataset(n_per_class=1, image_size=32, seed=0)[0]
    before = obs.snapshot()

    body = client.add_image(
        record.image, record.fov, record.captured_at, record.uploaded_at,
        keywords=record.keywords,
    )
    assert not body["deduplicated"]
    results = client.search(
        {
            "type": "spatial",
            "region": {
                "min_lat": record.fov.camera.lat - 0.05,
                "min_lng": record.fov.camera.lng - 0.05,
                "max_lat": record.fov.camera.lat + 0.05,
                "max_lng": record.fov.camera.lng + 0.05,
            },
        }
    )
    assert [r["image_id"] for r in results] == [body["image_id"]]

    # -- span trees: one trace per request, rooted at the middleware ----
    ring = obs.ring_buffer()
    upload_span = ring.spans("platform.upload_image")[-1]
    [upload_root] = ring.span_tree(trace_id=upload_span.trace_id)
    assert upload_root["name"] == "http.request"
    assert upload_root["attrs"]["route"] == "/images"
    [platform_node] = upload_root["children"]
    assert platform_node["name"] == "platform.upload_image"
    child_names = [c["name"] for c in platform_node["children"]]
    assert child_names[0] == "upload.dedup"
    assert child_names[-1] == "upload.index_insert"
    assert all(name.startswith("upload.") for name in child_names)

    query_span = ring.spans("query.spatial")[-1]
    [search_root] = ring.span_tree(trace_id=query_span.trace_id)
    assert search_root["attrs"]["route"] == "/search"
    assert "query.spatial" in _tree_names(search_root)
    assert search_root["trace_id"] != upload_root["trace_id"]

    # -- counter deltas for exactly this round trip ---------------------
    delta = counters_delta(before, obs.snapshot())
    assert delta['platform.uploads{outcome="stored"}'] == 1.0
    assert delta['platform.queries{family="spatial"}'] == 1.0
    assert delta['api.requests{method="POST",route="/images",status="201"}'] == 1.0
    assert delta['api.requests{method="POST",route="/search",status="200"}'] == 1.0
    assert delta['spans.total{span="http.request"}'] == 2.0
    # The spatial search actually probed the R-tree.
    assert delta.get("index.rtree.queries", 0) + delta.get(
        "index.oriented.queries", 0
    ) >= 1.0

    # -- latency summaries surface through /stats -----------------------
    latency = client.stats()["latency_ms"]
    assert latency["platform.upload_image"]["count"] == 1
    assert latency["query.spatial"]["count"] == 1
    assert latency["http.request"]["count"] >= 2
