"""Integration: the paper's five-step collaborative scenario, verbatim.

Section II's example: (1) LASAN trucks collect street videos, (2) USC
researchers classify street cleanliness on the shared data, (3) results
are reported back and stored as augmented knowledge, (4) the Homeless
Coordinator reuses the encampment results, (5) another department runs
a different analysis (graffiti) on the same data.
"""

import numpy as np
import pytest

from repro.analysis import cluster_encampments, run_graffiti_study, annotate_graffiti
from repro.core import CategoricalQuery, TVDP, ingest_video
from repro.datasets import generate_fleet_videos, generate_lasan_dataset
from repro.features import ColorHistogramExtractor
from repro.imaging import CLEANLINESS_CLASSES
from repro.ml import LinearSVM, StandardScaler, accuracy


@pytest.fixture(scope="module")
def scenario():
    """Run the whole scenario once; individual tests assert each step."""
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
    lasan = platform.add_user("LASAN", role="government")
    usc = platform.add_user("USC", role="researcher")

    # Step 1: LASAN garbage trucks upload videos (stored as key frames).
    videos = generate_fleet_videos(n_videos=3, n_frames=20, image_size=32, seed=0)
    video_frames: dict[int, str] = {}
    for video in videos:
        _, image_ids = ingest_video(platform, video, uploader_id=lasan, every=4)
        for image_id, frame in zip(image_ids, video.key_frames(every=4)):
            video_frames[image_id] = frame.label

    # Also a labelled training corpus from past manual triage.
    train = generate_lasan_dataset(n_per_class=12, image_size=32, seed=1)
    train_ids = []
    for record in train:
        receipt = platform.upload_image(
            record.image, record.fov, record.captured_at, record.uploaded_at,
            keywords=record.keywords, uploader_id=lasan,
        )
        train_ids.append(receipt.image_id)
        platform.annotations.annotate(
            receipt.image_id, "street_cleanliness", record.label, 1.0, "human",
            annotator="lasan_staff",
        )

    # Step 2: USC trains on the shared dataset...
    extractor = platform.features.get("color_hsv_20_20_10")
    X = np.vstack([extractor.extract(platform.image(i)) for i in train_ids])
    y = np.array([r.label for r in train])
    scaler = StandardScaler()
    model = LinearSVM(epochs=30).fit(scaler.fit_transform(X), y)

    # Step 3: ...and machine-annotates the truck footage (knowledge
    # stored back into the platform).
    for image_id in video_frames:
        vector = scaler.transform(
            extractor.extract(platform.image(image_id))[np.newaxis, :]
        )
        label = str(model.predict(vector)[0])
        platform.annotations.annotate(
            image_id, "street_cleanliness", label, 0.85, "machine", annotator="usc_svm"
        )

    return platform, video_frames, train, train_ids, model, scaler


class TestScenario:
    def test_step1_videos_stored_as_keyframes(self, scenario):
        platform, video_frames, *_ = scenario
        assert platform.db.row_counts()["videos"] == 3
        assert len(video_frames) == 15  # 3 videos x 5 key frames
        # Every key frame keeps per-frame FOV metadata.
        for image_id in video_frames:
            assert platform.fov(image_id).angle_deg > 0

    def test_step2_model_beats_chance_on_truck_footage(self, scenario):
        platform, video_frames, _, _, model, scaler = scenario
        extractor = platform.features.get("color_hsv_20_20_10")
        X = np.vstack(
            [extractor.extract(platform.image(i)) for i in video_frames]
        )
        predictions = model.predict(scaler.transform(X))
        truth = np.array(list(video_frames.values()))
        assert accuracy(truth, predictions) > 1.0 / 5.0

    def test_step3_machine_annotations_stored(self, scenario):
        platform, video_frames, *_ = scenario
        for image_id in video_frames:
            sources = {a.source for a in platform.annotations.annotations_of(image_id)}
            assert "machine" in sources

    def test_step4_homeless_coordinator_reuses_annotations(self, scenario):
        platform, *_ = scenario
        hits = platform.execute(
            CategoricalQuery(
                "street_cleanliness", labels=("encampment",), source="machine"
            )
        )
        report = cluster_encampments(
            platform, min_confidence=0.5, eps_m=800.0, min_samples=2
        )
        # The coordinator sees every encampment annotation (human
        # training labels + USC's machine labels) without training
        # anything itself; hotspot structure yields clusters.
        assert report.total_sightings >= 12 + len(hits) - 1
        assert report.n_clusters >= 1
        assert (
            sum(c.size for c in report.clusters) + report.noise_sightings
            == report.total_sightings
        )

    def test_step5_second_analysis_same_dataset(self, scenario):
        platform, _, train, train_ids, *_ = scenario
        result, model, scaler = run_graffiti_study(
            train, ColorHistogramExtractor(), seed=0
        )
        written = annotate_graffiti(
            platform, train_ids[:20], ColorHistogramExtractor(), model, scaler
        )
        assert written == 20
        assert "graffiti" in platform.catalog.names()
        # Both classifications now coexist on the same images.
        multi = platform.annotations.annotations_of(train_ids[0])
        assert {a.classification for a in multi} == {
            "street_cleanliness",
            "graffiti",
        }

    def test_platform_stats_reflect_everything(self, scenario):
        platform, video_frames, train, *_ = scenario
        stats = platform.stats()
        assert stats["rows"]["images"] == len(video_frames) + len(train)
        assert stats["rows"]["users"] == 2
        assert stats["indexed_fovs"] == stats["rows"]["image_fov"]
