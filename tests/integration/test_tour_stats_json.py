"""``python -m repro --stats --json`` emits one machine-readable document.

The JSON mode is the collector-facing contract: no narration lines, a
single parseable object on stdout carrying the metrics snapshot, SLO
health, breaker states, the hot-query table, and the rolling latency
windows the tour produced.
"""

import json

import pytest

from repro import obs
from repro.__main__ import main


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


def test_stats_json_is_single_document(capsys):
    assert main(["--stats", "--json"]) == 0
    out = capsys.readouterr().out
    document = json.loads(out)  # the whole stream is one JSON value
    assert set(document) >= {
        "version", "metrics", "health", "breakers", "hot_queries",
        "latency_ms_window",
    }
    assert document["metrics"]["counters"], "tour must have produced counters"
    assert document["health"]["objectives"]
    assert document["hot_queries"], "tour queries must feed the hot tracker"
    shapes = {entry["shape"] for entry in document["hot_queries"]}
    assert any(shape.startswith("spatial(") for shape in shapes)
    # Windowed latency carries per-span summaries for the recent past.
    for summary in document["latency_ms_window"].values():
        assert summary["count"] >= 0


def test_stats_json_has_no_narration(capsys):
    main(["--stats", "--json"])
    out = capsys.readouterr().out
    assert out.lstrip().startswith("{")
    json.loads(out)


def test_stats_without_json_still_narrates(capsys):
    assert main(["--stats"]) == 0
    out = capsys.readouterr().out
    with pytest.raises(json.JSONDecodeError):
        json.loads(out)
