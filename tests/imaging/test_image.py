"""Tests for the Image container."""

import numpy as np
import pytest

from repro.errors import ImagingError
from repro.imaging import Image, solid_color


class TestConstruction:
    def test_valid(self):
        img = Image(np.zeros((4, 6, 3)))
        assert img.shape == (4, 6)
        assert img.height == 4
        assert img.width == 6

    def test_wrong_ndim_raises(self):
        with pytest.raises(ImagingError):
            Image(np.zeros((4, 6)))

    def test_wrong_channels_raises(self):
        with pytest.raises(ImagingError):
            Image(np.zeros((4, 6, 4)))

    def test_empty_raises(self):
        with pytest.raises(ImagingError):
            Image(np.zeros((0, 6, 3)))

    def test_nan_raises(self):
        px = np.zeros((2, 2, 3))
        px[0, 0, 0] = np.nan
        with pytest.raises(ImagingError):
            Image(px)

    def test_clipping(self):
        img = Image(np.full((2, 2, 3), 2.0))
        assert img.pixels.max() == 1.0
        img = Image(np.full((2, 2, 3), -1.0))
        assert img.pixels.min() == 0.0

    def test_pixels_read_only(self):
        img = solid_color(2, 2, (0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            img.pixels[0, 0, 0] = 0.9


class TestConversions:
    def test_grayscale_weights(self):
        red = solid_color(2, 2, (1.0, 0.0, 0.0))
        assert red.grayscale()[0, 0] == pytest.approx(0.299)
        white = solid_color(2, 2, (1.0, 1.0, 1.0))
        assert white.grayscale()[0, 0] == pytest.approx(1.0)

    def test_uint8_round_trip(self):
        rng = np.random.default_rng(0)
        img = Image(rng.random((5, 5, 3)))
        restored = Image.from_uint8(img.to_uint8())
        assert np.allclose(restored.pixels, img.pixels, atol=1 / 255.0)


class TestIdentity:
    def test_hash_deterministic(self):
        a = solid_color(3, 3, (0.2, 0.4, 0.6))
        b = solid_color(3, 3, (0.2, 0.4, 0.6))
        assert a.content_hash() == b.content_hash()
        assert a == b
        assert hash(a) == hash(b)

    def test_different_content_different_hash(self):
        a = solid_color(3, 3, (0.2, 0.4, 0.6))
        b = solid_color(3, 3, (0.6, 0.4, 0.2))
        assert a.content_hash() != b.content_hash()
        assert a != b

    def test_different_shape_not_equal(self):
        a = solid_color(3, 3, (0.5, 0.5, 0.5))
        b = solid_color(3, 4, (0.5, 0.5, 0.5))
        assert a != b

    def test_not_equal_to_other_types(self):
        assert solid_color(2, 2, (0, 0, 0)) != "image"
