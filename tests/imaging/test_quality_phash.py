"""Tests for quality gating and perceptual near-duplicate hashing."""

import numpy as np
import pytest

from repro.errors import ImagingError
from repro.imaging import (
    HASH_BITS,
    Image,
    NearDuplicateIndex,
    add_noise,
    adjust_brightness,
    assess_quality,
    blur,
    dhash,
    exposure_clipping,
    flip_horizontal,
    hamming_distance,
    render_street_scene,
    sharpness,
    solid_color,
)


@pytest.fixture(scope="module")
def scene():
    return render_street_scene("bulky_item", np.random.default_rng(0), size=48)


class TestSharpness:
    def test_blur_reduces_sharpness(self, scene):
        assert sharpness(blur(scene, 2.0)) < sharpness(scene) * 0.5

    def test_flat_image_zero(self):
        assert sharpness(solid_color(16, 16, (0.5,) * 3)) == pytest.approx(0.0)

    def test_noise_increases_sharpness(self, scene):
        rng = np.random.default_rng(1)
        assert sharpness(add_noise(scene, 0.1, rng)) > sharpness(scene)


class TestExposure:
    def test_black_frame_fully_clipped(self):
        assert exposure_clipping(solid_color(8, 8, (0.0, 0.0, 0.0))) == 1.0

    def test_normal_scene_low_clipping(self, scene):
        assert exposure_clipping(scene) < 0.2

    def test_bad_thresholds_raise(self, scene):
        with pytest.raises(ImagingError):
            exposure_clipping(scene, low=0.9, high=0.1)


class TestAssessQuality:
    def test_good_scene_accepted(self, scene):
        report = assess_quality(scene)
        assert report.accepted
        assert report.reasons == ()

    def test_blurry_rejected(self, scene):
        very_blurry = blur(blur(scene, 3.0), 3.0)
        report = assess_quality(very_blurry, min_sharpness=sharpness(scene) / 2.0)
        assert not report.accepted
        assert "blurry" in report.reasons

    def test_overexposed_rejected(self):
        white = solid_color(24, 24, (1.0, 1.0, 1.0))
        report = assess_quality(white, min_sharpness=0.0)
        assert not report.accepted
        assert "badly_exposed" in report.reasons

    def test_invalid_thresholds(self, scene):
        with pytest.raises(ImagingError):
            assess_quality(scene, min_sharpness=-1.0)
        with pytest.raises(ImagingError):
            assess_quality(scene, max_clipping=0.0)


class TestDHash:
    def test_identical_images_same_hash(self, scene):
        assert dhash(scene) == dhash(Image(scene.pixels.copy()))

    def test_brightness_shift_small_distance(self, scene):
        shifted = adjust_brightness(scene, 0.05)
        assert hamming_distance(dhash(scene), dhash(shifted)) <= 3

    def test_mild_noise_small_distance(self, scene):
        noisy = add_noise(scene, 0.01, np.random.default_rng(2))
        assert hamming_distance(dhash(scene), dhash(noisy)) <= 10

    def test_different_scenes_large_distance(self):
        rng = np.random.default_rng(3)
        a = render_street_scene("clean", rng, size=48)
        b = render_street_scene("overgrown_vegetation", rng, size=48)
        assert hamming_distance(dhash(a), dhash(b)) > 10

    def test_flip_changes_hash(self, scene):
        assert hamming_distance(dhash(scene), dhash(flip_horizontal(scene))) > 8

    def test_hash_range(self, scene):
        value = dhash(scene)
        assert 0 <= value < 2**HASH_BITS

    def test_negative_hash_rejected(self):
        with pytest.raises(ImagingError):
            hamming_distance(-1, 0)


class TestNearDuplicateIndex:
    def test_exact_duplicate_found(self, scene):
        index = NearDuplicateIndex()
        index.add("original", scene)
        matches = index.find_similar(Image(scene.pixels.copy()))
        assert matches[0] == ("original", 0)
        assert index.is_near_duplicate(scene)

    def test_brightness_variant_found(self, scene):
        index = NearDuplicateIndex(max_distance=3)
        index.add("original", scene)
        assert index.is_near_duplicate(adjust_brightness(scene, 0.04))

    def test_distinct_scene_not_flagged(self, scene):
        index = NearDuplicateIndex()
        index.add("original", scene)
        other = render_street_scene("clean", np.random.default_rng(9), size=48)
        assert not index.is_near_duplicate(other)

    def test_duplicate_id_rejected(self, scene):
        index = NearDuplicateIndex()
        index.add("a", scene)
        with pytest.raises(ImagingError):
            index.add("a", scene)

    def test_results_sorted_by_distance(self):
        rng = np.random.default_rng(4)
        base = render_street_scene("encampment", rng, size=48)
        index = NearDuplicateIndex(max_distance=16)
        index.add("exact", base)
        index.add("noisy", add_noise(base, 0.015, np.random.default_rng(5)))
        matches = index.find_similar(base)
        distances = [d for _, d in matches]
        assert distances == sorted(distances)
        assert matches[0] == ("exact", 0)

    def test_brightness_invariance(self):
        # dHash keys on gradients, so a global brightness shift that
        # does not clip leaves the hash unchanged — ideal for catching
        # re-exposed duplicates.
        rng = np.random.default_rng(6)
        base = render_street_scene("encampment", rng, size=48)
        assert dhash(base) == dhash(adjust_brightness(base, 0.05))

    def test_bad_radius(self):
        with pytest.raises(ImagingError):
            NearDuplicateIndex(max_distance=-1)
        with pytest.raises(ImagingError):
            NearDuplicateIndex(max_distance=65)
