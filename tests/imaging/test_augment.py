"""Tests for augmentation operations."""

import numpy as np
import pytest

from repro.errors import ImagingError
from repro.imaging import (
    Image,
    add_noise,
    adjust_brightness,
    adjust_contrast,
    augment_image,
    blur,
    center_crop,
    crop,
    default_pipeline,
    flip_horizontal,
    flip_vertical,
    resize,
    rotate,
    rotate90,
    solid_color,
)


def gradient_image(size=12):
    px = np.zeros((size, size, 3))
    px[..., 0] = np.linspace(0, 1, size)[None, :]
    px[..., 1] = np.linspace(0, 1, size)[:, None]
    return Image(px)


class TestCrop:
    def test_basic(self):
        img = gradient_image()
        out = crop(img, 2, 3, 4, 5)
        assert out.shape == (4, 5)
        assert np.allclose(out.pixels, img.pixels[2:6, 3:8])

    def test_out_of_bounds_raises(self):
        with pytest.raises(ImagingError):
            crop(gradient_image(), 10, 10, 5, 5)

    def test_zero_size_raises(self):
        with pytest.raises(ImagingError):
            crop(gradient_image(), 0, 0, 0, 5)

    def test_center_crop_fraction(self):
        out = center_crop(gradient_image(12), 0.5)
        assert out.shape == (6, 6)

    def test_center_crop_bad_fraction(self):
        with pytest.raises(ImagingError):
            center_crop(gradient_image(), 1.5)


class TestFlipsRotations:
    def test_flip_h_involution(self):
        img = gradient_image()
        assert flip_horizontal(flip_horizontal(img)) == img

    def test_flip_v_involution(self):
        img = gradient_image()
        assert flip_vertical(flip_vertical(img)) == img

    def test_rotate90_four_times_identity(self):
        img = gradient_image()
        assert rotate90(img, 4) == img

    def test_rotate90_shape_swap(self):
        img = Image(np.zeros((4, 8, 3)))
        assert rotate90(img).shape == (8, 4)

    def test_rotate_zero_near_identity(self):
        img = gradient_image()
        out = rotate(img, 0.0)
        assert np.allclose(out.pixels, img.pixels)

    def test_rotate_preserves_shape(self):
        assert rotate(gradient_image(), 17.0).shape == (12, 12)


class TestPhotometric:
    def test_brightness(self):
        img = solid_color(4, 4, (0.5, 0.5, 0.5))
        assert np.allclose(adjust_brightness(img, 0.2).pixels, 0.7)

    def test_brightness_clips(self):
        img = solid_color(4, 4, (0.9, 0.9, 0.9))
        assert adjust_brightness(img, 0.5).pixels.max() == 1.0

    def test_contrast_identity(self):
        img = gradient_image()
        assert np.allclose(adjust_contrast(img, 1.0).pixels, img.pixels)

    def test_contrast_zero_flattens(self):
        img = gradient_image()
        out = adjust_contrast(img, 0.0)
        assert out.pixels.std() == pytest.approx(0.0, abs=1e-12)

    def test_negative_contrast_raises(self):
        with pytest.raises(ImagingError):
            adjust_contrast(gradient_image(), -1.0)

    def test_blur_smooths(self):
        rng = np.random.default_rng(6)
        img = Image(rng.random((16, 16, 3)))
        assert blur(img, 1.5).pixels.var() < img.pixels.var()

    def test_noise_changes_pixels(self):
        rng = np.random.default_rng(7)
        img = solid_color(8, 8, (0.5, 0.5, 0.5))
        out = add_noise(img, 0.05, rng)
        assert not np.allclose(out.pixels, img.pixels)

    def test_noise_zero_sigma_identity(self):
        rng = np.random.default_rng(8)
        img = gradient_image()
        assert np.allclose(add_noise(img, 0.0, rng).pixels, img.pixels)


class TestPipeline:
    def test_default_pipeline_runs(self):
        rng = np.random.default_rng(9)
        img = gradient_image(20)
        results = augment_image(img, default_pipeline(rng))
        assert len(results) == 6
        names = [name for name, _ in results]
        assert "flip_h" in names
        assert all(isinstance(im, Image) for _, im in results)

    def test_resize(self):
        out = resize(gradient_image(12), 6, 18)
        assert out.shape == (6, 18)
