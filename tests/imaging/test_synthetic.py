"""Tests for the synthetic streetscape renderer."""

import numpy as np
import pytest

from repro.errors import ImagingError
from repro.imaging import CLEANLINESS_CLASSES, Image, render_street_scene, rgb_to_hsv


class TestRenderer:
    def test_all_classes_render(self):
        rng = np.random.default_rng(0)
        for label in CLEANLINESS_CLASSES:
            img = render_street_scene(label, rng, size=32)
            assert isinstance(img, Image)
            assert img.shape == (32, 32)

    def test_unknown_class_raises(self):
        with pytest.raises(ImagingError):
            render_street_scene("potholes", np.random.default_rng(0))

    def test_too_small_raises(self):
        with pytest.raises(ImagingError):
            render_street_scene("clean", np.random.default_rng(0), size=8)

    def test_deterministic_given_seed(self):
        a = render_street_scene("encampment", np.random.default_rng(42), size=32)
        b = render_street_scene("encampment", np.random.default_rng(42), size=32)
        assert a == b

    def test_different_seeds_differ(self):
        a = render_street_scene("clean", np.random.default_rng(1), size=32)
        b = render_street_scene("clean", np.random.default_rng(2), size=32)
        assert a != b

    def test_vegetation_is_greener_than_clean(self):
        rng = np.random.default_rng(3)
        greens, cleans = [], []
        for _ in range(10):
            veg = render_street_scene("overgrown_vegetation", rng, size=32)
            cln = render_street_scene("clean", rng, size=32)
            greens.append(veg.pixels[..., 1].mean() - veg.pixels[..., 0].mean())
            cleans.append(cln.pixels[..., 1].mean() - cln.pixels[..., 0].mean())
        assert np.mean(greens) > np.mean(cleans) + 0.02

    def test_object_classes_add_lower_half_edges(self):
        # Object classes place silhouettes on the sidewalk band, so the
        # lower half has more strong edges than a clean scene.
        from repro.imaging import sobel_gradients

        rng = np.random.default_rng(4)

        def edge_density(label):
            vals = []
            for _ in range(20):
                img = render_street_scene(
                    label, rng, size=48, noise_sigma=0.0, distractor_prob=0.0
                )
                gx, gy = sobel_gradients(img.grayscale()[24:])
                vals.append((np.hypot(gx, gy) > 0.5).mean())
            return np.mean(vals)

        clean_edges = edge_density("clean")
        for label in ("bulky_item", "illegal_dumping", "encampment"):
            assert edge_density(label) > clean_edges + 0.02

    def test_noise_parameter(self):
        quiet = render_street_scene("clean", np.random.default_rng(5), noise_sigma=0.0)
        noisy = render_street_scene("clean", np.random.default_rng(5), noise_sigma=0.1)
        assert noisy.pixels.std() > quiet.pixels.std()
