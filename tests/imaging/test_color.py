"""Tests for colour conversion and HSV histograms."""

import colorsys

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ImagingError
from repro.imaging import (
    PAPER_HSV_BINS,
    Image,
    hsv_histogram,
    hsv_to_rgb,
    joint_hsv_histogram,
    rgb_to_hsv,
    solid_color,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestRgbHsv:
    @given(unit, unit, unit)
    def test_matches_colorsys(self, r, g, b):
        ours = rgb_to_hsv(np.array([[[r, g, b]]]))[0, 0]
        expected = colorsys.rgb_to_hsv(r, g, b)
        assert ours[0] == pytest.approx(expected[0], abs=1e-9)
        assert ours[1] == pytest.approx(expected[1], abs=1e-9)
        assert ours[2] == pytest.approx(expected[2], abs=1e-9)

    @given(unit, unit, unit)
    def test_round_trip(self, r, g, b):
        rgb = np.array([[[r, g, b]]])
        back = hsv_to_rgb(rgb_to_hsv(rgb))
        assert np.allclose(back, rgb, atol=1e-9)

    def test_pure_colors(self):
        red = rgb_to_hsv(np.array([1.0, 0.0, 0.0]))
        assert red[0] == pytest.approx(0.0)
        green = rgb_to_hsv(np.array([0.0, 1.0, 0.0]))
        assert green[0] == pytest.approx(1.0 / 3.0)
        blue = rgb_to_hsv(np.array([0.0, 0.0, 1.0]))
        assert blue[0] == pytest.approx(2.0 / 3.0)

    def test_black_has_zero_saturation(self):
        black = rgb_to_hsv(np.array([0.0, 0.0, 0.0]))
        assert black[1] == 0.0 and black[2] == 0.0

    def test_bad_shape_raises(self):
        with pytest.raises(ImagingError):
            rgb_to_hsv(np.zeros((2, 2)))
        with pytest.raises(ImagingError):
            hsv_to_rgb(np.zeros((2, 4)))


class TestHsvHistogram:
    def test_paper_dimensions(self):
        img = solid_color(8, 8, (0.3, 0.6, 0.9))
        vec = hsv_histogram(img)
        assert vec.shape == (sum(PAPER_HSV_BINS),)
        assert vec.shape == (50,)

    def test_normalised_sums_to_channels(self):
        img = solid_color(8, 8, (0.3, 0.6, 0.9))
        vec = hsv_histogram(img, normalize=True)
        # Each of the three channel histograms sums to 1.
        assert vec.sum() == pytest.approx(3.0)

    def test_unnormalised_counts_pixels(self):
        img = solid_color(4, 4, (0.3, 0.6, 0.9))
        vec = hsv_histogram(img, normalize=False)
        assert vec.sum() == pytest.approx(3 * 16)

    def test_solid_color_single_bins(self):
        img = solid_color(4, 4, (1.0, 0.0, 0.0))  # H=0, S=1, V=1
        vec = hsv_histogram(img, normalize=False)
        h_bins, s_bins, v_bins = PAPER_HSV_BINS
        assert vec[0] == 16  # hue 0 -> first H bin
        assert vec[h_bins + s_bins - 1] == 16  # sat 1 -> last S bin
        assert vec[h_bins + s_bins + v_bins - 1] == 16  # val 1 -> last V bin

    def test_invalid_bins_raise(self):
        img = solid_color(4, 4, (0.5, 0.5, 0.5))
        with pytest.raises(ImagingError):
            hsv_histogram(img, bins=(0, 20, 10))

    def test_distinguishes_hues(self):
        red = solid_color(8, 8, (1.0, 0.1, 0.1))
        green = solid_color(8, 8, (0.1, 1.0, 0.1))
        assert not np.allclose(hsv_histogram(red), hsv_histogram(green))

    def test_size_invariance_when_normalised(self):
        small = solid_color(4, 4, (0.2, 0.5, 0.8))
        large = solid_color(32, 32, (0.2, 0.5, 0.8))
        assert np.allclose(hsv_histogram(small), hsv_histogram(large))


class TestJointHistogram:
    def test_dimensions(self):
        img = solid_color(8, 8, (0.3, 0.6, 0.9))
        vec = joint_hsv_histogram(img, bins=(8, 4, 4))
        assert vec.shape == (8 * 4 * 4,)

    def test_normalised_sums_to_one(self):
        img = solid_color(8, 8, (0.3, 0.6, 0.9))
        assert joint_hsv_histogram(img).sum() == pytest.approx(1.0)
