"""Tests for DoG keypoints and SIFT-style descriptors."""

import numpy as np
import pytest

from repro.errors import ImagingError
from repro.imaging import (
    DESCRIPTOR_DIM,
    Image,
    dense_keypoints,
    detect_keypoints,
    extract_descriptors,
    solid_color,
)


def blob_image(size=48, centers=((24, 24),), radius=4):
    """Dark background with bright Gaussian-ish blobs: ideal DoG bait."""
    px = np.full((size, size, 3), 0.1)
    rr, cc = np.mgrid[0:size, 0:size]
    for r0, c0 in centers:
        mask = np.exp(-(((rr - r0) ** 2 + (cc - c0) ** 2) / (2.0 * radius**2)))
        px += mask[..., None] * 0.8
    return Image(px)


class TestDetect:
    def test_flat_image_no_keypoints(self):
        assert detect_keypoints(solid_color(48, 48, (0.5, 0.5, 0.5))) == []

    def test_blob_detected_near_center(self):
        kps = detect_keypoints(blob_image())
        assert kps, "expected at least one keypoint on a bright blob"
        best = kps[0]
        assert abs(best.row - 24) <= 4 and abs(best.col - 24) <= 4

    def test_multiple_blobs(self):
        kps = detect_keypoints(blob_image(centers=((14, 14), (34, 34))))
        rows = {round(kp.row / 10) for kp in kps[:10]}
        assert len(rows) >= 2

    def test_sorted_by_response(self):
        kps = detect_keypoints(blob_image(centers=((14, 14), (34, 34))))
        responses = [abs(kp.response) for kp in kps]
        assert responses == sorted(responses, reverse=True)

    def test_max_keypoints_respected(self):
        rng = np.random.default_rng(5)
        noisy = Image(rng.random((64, 64, 3)))
        kps = detect_keypoints(noisy, max_keypoints=7, contrast_threshold=0.001)
        assert len(kps) <= 7

    def test_tiny_image_returns_empty(self):
        assert detect_keypoints(solid_color(8, 8, (0.5, 0.5, 0.5))) == []

    def test_too_few_scales_raises(self):
        with pytest.raises(ImagingError):
            detect_keypoints(blob_image(), num_scales=2)


class TestDense:
    def test_lattice_spacing(self):
        img = solid_color(48, 48, (0.5, 0.5, 0.5))
        kps = dense_keypoints(img, stride=8)
        assert len(kps) == 5 * 5
        assert all(kp.row % 8 == 0 and kp.col % 8 == 0 for kp in kps)

    def test_bad_stride_raises(self):
        with pytest.raises(ImagingError):
            dense_keypoints(solid_color(48, 48, (0.5,) * 3), stride=0)


class TestDescriptors:
    def test_shape_and_dim(self):
        img = blob_image()
        kps = dense_keypoints(img, stride=12)
        desc = extract_descriptors(img, kps)
        assert desc.shape[1] == DESCRIPTOR_DIM
        assert desc.shape[0] > 0

    def test_normalised(self):
        img = blob_image()
        desc = extract_descriptors(img, dense_keypoints(img, stride=12))
        norms = np.linalg.norm(desc, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-9)

    def test_clamped(self):
        img = blob_image()
        desc = extract_descriptors(img, dense_keypoints(img, stride=12))
        # After the 0.2 clamp + renorm, entries stay comfortably small.
        assert desc.max() <= 0.2 / np.sqrt(desc.shape[1] > 0) + 1.0  # sanity
        assert desc.max() < 0.75

    def test_flat_region_yields_nothing(self):
        img = solid_color(48, 48, (0.5, 0.5, 0.5))
        desc = extract_descriptors(img, dense_keypoints(img, stride=12))
        assert desc.shape == (0, DESCRIPTOR_DIM)

    def test_edge_keypoints_skipped(self):
        img = blob_image()
        from repro.imaging import Keypoint

        desc = extract_descriptors(img, [Keypoint(0, 0, 1.0, 0.0)])
        assert desc.shape == (0, DESCRIPTOR_DIM)

    def test_small_patch_radius_raises(self):
        img = blob_image()
        with pytest.raises(ImagingError):
            extract_descriptors(img, dense_keypoints(img), patch_radius=2)

    def test_descriptor_distinguishes_textures(self):
        # Horizontal vs vertical stripe patches produce different codes.
        stripes_h = Image(np.tile(np.sin(np.arange(48) * 0.8)[:, None, None] * 0.4 + 0.5, (1, 48, 3)))
        stripes_v = Image(np.tile(np.sin(np.arange(48) * 0.8)[None, :, None] * 0.4 + 0.5, (48, 1, 3)))
        d_h = extract_descriptors(stripes_h, dense_keypoints(stripes_h, stride=16))
        d_v = extract_descriptors(stripes_v, dense_keypoints(stripes_v, stride=16))
        assert d_h.shape[0] and d_v.shape[0]
        assert not np.allclose(d_h.mean(axis=0), d_v.mean(axis=0), atol=0.05)
