"""Tests for convolution, blur, gradients, Gabor, pooling, resize."""

import numpy as np
import pytest

from repro.errors import ImagingError
from repro.imaging import (
    avg_pool2d,
    convolve2d,
    gabor_bank,
    gabor_kernel,
    gaussian_blur,
    gaussian_kernel1d,
    gradient_magnitude_orientation,
    max_pool2d,
    resize_bilinear,
    resize_nearest,
    sobel_gradients,
)


class TestConvolve:
    def test_identity_kernel(self):
        rng = np.random.default_rng(1)
        img = rng.random((8, 8))
        kernel = np.zeros((3, 3))
        kernel[1, 1] = 1.0
        assert np.allclose(convolve2d(img, kernel, "same"), img)

    def test_valid_mode_shape(self):
        out = convolve2d(np.zeros((10, 12)), np.ones((3, 5)), "valid")
        assert out.shape == (8, 8)

    def test_same_mode_shape(self):
        out = convolve2d(np.zeros((10, 12)), np.ones((3, 5)), "same")
        assert out.shape == (10, 12)

    def test_box_kernel_averages(self):
        img = np.ones((6, 6))
        out = convolve2d(img, np.full((3, 3), 1.0 / 9.0), "valid")
        assert np.allclose(out, 1.0)

    def test_bad_mode_raises(self):
        with pytest.raises(ImagingError):
            convolve2d(np.zeros((4, 4)), np.ones((3, 3)), "wrap")

    def test_kernel_too_large_raises(self):
        with pytest.raises(ImagingError):
            convolve2d(np.zeros((2, 2)), np.ones((5, 5)), "valid")

    def test_correlation_not_flipped(self):
        # An asymmetric kernel distinguishes correlation from convolution.
        img = np.zeros((5, 5))
        img[2, 3] = 1.0
        kernel = np.zeros((3, 3))
        kernel[1, 2] = 1.0  # picks up the pixel to the right
        out = convolve2d(img, kernel, "same")
        assert out[2, 2] == 1.0


class TestGaussian:
    def test_kernel_normalised(self):
        k = gaussian_kernel1d(2.0)
        assert k.sum() == pytest.approx(1.0)
        assert k.shape[0] == 2 * 6 + 1

    def test_kernel_symmetric(self):
        k = gaussian_kernel1d(1.5)
        assert np.allclose(k, k[::-1])

    def test_invalid_sigma(self):
        with pytest.raises(ImagingError):
            gaussian_kernel1d(0.0)

    def test_blur_preserves_constant(self):
        img = np.full((12, 12), 0.7)
        assert np.allclose(gaussian_blur(img, 1.5), 0.7)

    def test_blur_reduces_variance(self):
        rng = np.random.default_rng(2)
        img = rng.random((24, 24))
        assert gaussian_blur(img, 2.0).var() < img.var()


class TestGradients:
    def test_vertical_edge(self):
        img = np.zeros((8, 8))
        img[:, 4:] = 1.0
        gx, gy = sobel_gradients(img)
        assert abs(gx[4, 4]) > 1.0
        assert np.allclose(gy[:, 3:5][1:-1], 0.0, atol=1e-9)

    def test_orientation_range(self):
        rng = np.random.default_rng(3)
        _, ori = gradient_magnitude_orientation(rng.random((10, 10)))
        assert ori.min() >= 0.0
        assert ori.max() < 2 * np.pi + 1e-9

    def test_flat_image_zero_magnitude(self):
        mag, _ = gradient_magnitude_orientation(np.full((8, 8), 0.5))
        assert np.allclose(mag, 0.0, atol=1e-9)


class TestGabor:
    def test_zero_mean(self):
        k = gabor_kernel(7, 4.0, 0.0)
        assert abs(k.mean()) < 1e-12

    def test_bank_size(self):
        bank = gabor_bank(size=7, orientations=4, wavelengths=(3.0, 6.0))
        assert len(bank) == 8
        assert all(k.shape == (7, 7) for k in bank)

    def test_even_size_raises(self):
        with pytest.raises(ImagingError):
            gabor_kernel(6, 4.0, 0.0)

    def test_responds_to_matching_orientation(self):
        # Vertical stripes excite the 0-orientation (x-direction) filter
        # more than the perpendicular one.
        img = np.tile(np.sin(np.arange(32) * 2 * np.pi / 4.0), (32, 1))
        k0 = gabor_kernel(7, 4.0, 0.0)
        k90 = gabor_kernel(7, 4.0, np.pi / 2)
        r0 = np.abs(convolve2d(img, k0, "valid")).mean()
        r90 = np.abs(convolve2d(img, k90, "valid")).mean()
        assert r0 > 3 * r90


class TestPooling:
    def test_max_pool(self):
        img = np.arange(16, dtype=float).reshape(4, 4)
        out = max_pool2d(img, 2)
        assert out.shape == (2, 2)
        assert out[0, 0] == 5.0
        assert out[1, 1] == 15.0

    def test_avg_pool(self):
        img = np.arange(16, dtype=float).reshape(4, 4)
        out = avg_pool2d(img, 2)
        assert out[0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4.0)

    def test_pool_crops_remainder(self):
        out = max_pool2d(np.zeros((5, 7)), 2)
        assert out.shape == (2, 3)

    def test_pool_too_large_raises(self):
        with pytest.raises(ImagingError):
            max_pool2d(np.zeros((3, 3)), 4)


class TestResize:
    def test_nearest_shape(self):
        out = resize_nearest(np.zeros((4, 6)), 8, 3)
        assert out.shape == (8, 3)

    def test_bilinear_shape_with_channels(self):
        out = resize_bilinear(np.zeros((4, 6, 3)), 9, 9)
        assert out.shape == (9, 9, 3)

    def test_bilinear_preserves_constant(self):
        out = resize_bilinear(np.full((4, 4), 0.3), 11, 7)
        assert np.allclose(out, 0.3)

    def test_bilinear_identity(self):
        rng = np.random.default_rng(4)
        img = rng.random((6, 6))
        assert np.allclose(resize_bilinear(img, 6, 6), img)

    def test_upscale_interpolates(self):
        img = np.array([[0.0, 1.0]])
        out = resize_bilinear(img, 1, 3)
        assert out[0, 1] == pytest.approx(0.5)

    def test_invalid_target_raises(self):
        with pytest.raises(ImagingError):
            resize_bilinear(np.zeros((4, 4)), 0, 5)
        with pytest.raises(ImagingError):
            resize_nearest(np.zeros((4, 4)), 5, 0)

    def test_one_pixel_source(self):
        out = resize_bilinear(np.full((1, 1), 0.6), 4, 4)
        assert out.shape == (4, 4)
        assert np.allclose(out, 0.6)
