"""Chaos: scatter-gather under scripted worker death and slow shards.

The degradation contract under fault injection, in order of severity:

* a transient dispatch fault is retried away — results are full and
  byte-identical to serial, ``partial`` stays ``False``;
* a shard that exhausts every attempt is *dropped*, never fabricated:
  the batch completes, ``partial`` flips ``True``, ``failed_shards``
  names the loss, and what remains is a subset of the serial answer;
* a slow shard costs virtual time only — the coordinator never takes a
  real ``time.sleep`` (the autouse fixture turns one into a failure);
* a real worker-process death (``os._exit`` mid-task) breaks the
  ``ProcessPoolExecutor``; the pool is torn down, lazily rebuilt, and
  the dispatch retried to success.

The seeded scenario at the bottom is the CI chaos-matrix hook: under
``$REPRO_FAULT_SEED``-shifted random kills, every answer is either
exactly serial or explicitly flagged partial — never silently wrong.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.core import TemporalQuery, TextualQuery, TVDP
from repro.errors import FaultInjected
from repro.geo import FieldOfView, GeoPoint
from repro.imaging import solid_color
from repro.resilience import FaultPlan, ManualClock, reset_breakers, seed_from_env
from repro.shard import (
    InlineShardPool,
    ProcessShardPool,
    ScatterGatherExecutor,
    ShardRouter,
    ShardTask,
    partition_catalog,
)

#: Three distinct seeds derived from the environment's base seed.
SEEDS = [seed_from_env(default=0) + offset for offset in range(3)]

N_IMAGES = 18
N_SHARDS = 3


@pytest.fixture(autouse=True)
def _isolated_and_sleepless(monkeypatch):
    obs.reset()
    reset_breakers()

    def forbidden_sleep(seconds: float) -> None:
        raise AssertionError(f"real time.sleep({seconds!r}) during shard chaos")

    monkeypatch.setattr(time, "sleep", forbidden_sleep)
    yield
    reset_breakers()


@pytest.fixture()
def platform():
    p = TVDP()
    for i in range(N_IMAGES):
        p.upload_image(
            image=solid_color(4, 4, ((i + 1) / (N_IMAGES + 1), 0.2, 0.7)),
            fov=FieldOfView(
                GeoPoint(34.0 + 0.01 * i, -118.3 + 0.01 * (i % 5)),
                float(i * 40 % 360),
                60.0,
                300.0,
            ),
            captured_at=float(i * 100),
            uploaded_at=float(i * 100 + 1),
            keywords=("survey", f"block{i % 4}"),
        )
    return p


@pytest.fixture()
def router(platform):
    clock = ManualClock()
    r = ShardRouter(
        platform, N_SHARDS, pool_kind="inline", grid=(4, 4), clock=clock
    )
    yield r
    r.close()


QUERIES = [
    TemporalQuery(start=0.0, end=900.0),
    TextualQuery(text="survey", match="any"),
    TemporalQuery(start=500.0, end=None),
]


def serial_answers(platform):
    return [platform.execute(q) for q in QUERIES]


class TestDispatchFaults:
    def test_transient_kill_is_retried_to_full_results(self, platform, router):
        plan = FaultPlan(seed=1)
        plan.kill("shard.dispatch", at_calls={1})
        with plan.activate():
            out = router.execute_many(QUERIES)
        assert plan.summary()["shard.dispatch"]["error"] == 1
        for (results, info), serial in zip(out, serial_answers(platform)):
            assert results == serial
            assert info["partial"] is False
            assert info["failed_shards"] == []

    def test_exhausted_shard_degrades_to_flagged_partial(self, platform, router):
        # max_attempts faults back-to-back sink exactly the first shard
        # dispatched (ascending order); the rest of the batch survives.
        plan = FaultPlan(seed=1)
        plan.kill("shard.dispatch", max_faults=router.max_attempts)
        with plan.activate():
            out = router.execute_many(QUERIES)
        serial = serial_answers(platform)
        partial_flags = [info["partial"] for _, info in out]
        assert any(partial_flags), "a lost shard must be surfaced"
        for (results, info), full in zip(out, serial):
            if info["partial"]:
                assert len(info["failed_shards"]) == 1
                got = {r.image_id for r in results}
                want = {r.image_id for r in full}
                assert got <= want, "degraded answers must never invent rows"
            else:
                assert results == full

    def test_partial_counter_and_metric_increment(self, platform, router):
        before = obs.metrics().counter("shard.partial_results").value
        plan = FaultPlan(seed=1)
        plan.kill("shard.dispatch", max_faults=router.max_attempts)
        with plan.activate():
            router.execute(QUERIES[0])
        assert obs.metrics().counter("shard.partial_results").value > before

    def test_slow_shard_costs_virtual_time_only(self, platform, router):
        plan = FaultPlan(seed=1)
        plan.delay("shard.dispatch", latency_s=7.5, max_faults=2)
        t0 = time.perf_counter()
        with plan.activate():
            out = router.execute_many(QUERIES)
        wall = time.perf_counter() - t0
        assert router.clock.now() >= 7.5, "latency must land on the manual clock"
        assert wall < 2.0, "injected latency leaked into real time"
        for (results, info), serial in zip(out, serial_answers(platform)):
            assert results == serial
            assert info["partial"] is False


class TestWorkerFaults:
    def test_worker_kill_on_every_attempt_fails_all_shards(self, platform, router):
        plan = FaultPlan(seed=1)
        plan.kill("shard.worker")  # rate 1.0, unbounded: nothing survives
        with plan.activate():
            results, info = router.execute(QUERIES[0])
        assert info["partial"] is True
        assert results == []
        assert len(info["failed_shards"]) == info["shards_considered"]

    def test_worker_kill_recovers_when_faults_run_out(self, platform, router):
        plan = FaultPlan(seed=1)
        plan.kill("shard.worker", max_faults=1)
        with plan.activate():
            results, info = router.execute(QUERIES[0])
        assert info["partial"] is False
        assert results == platform.execute(QUERIES[0])


class TestProcessPoolDeath:
    def test_worker_process_death_is_rebuilt_and_retried(self, platform, tmp_path):
        shards = partition_catalog(platform, N_SHARDS, grid=(4, 4))
        pool = ProcessShardPool(shards)
        executor = ScatterGatherExecutor(pool, max_attempts=3, clock=ManualClock())
        flag = tmp_path / "died-once"
        try:
            gathered = executor.scatter(
                {0: [ShardTask("probe", {"exit_unless": str(flag)})]}
            )
            # First attempt os._exit()s the worker (breaking the pool);
            # the probe leaves the flag behind so the retried dispatch —
            # on a freshly rebuilt pool — returns cleanly.
            assert gathered.failed == ()
            assert gathered.results[0].payloads == ["ok"]
            assert flag.exists(), "the probe must have died exactly once"
        finally:
            executor.close()

    def test_probe_without_fault_returns_ok_first_try(self, platform, tmp_path):
        shards = partition_catalog(platform, N_SHARDS, grid=(4, 4))
        pool = InlineShardPool(shards)
        executor = ScatterGatherExecutor(pool, clock=ManualClock())
        flag = tmp_path / "already-there"
        flag.write_text("noop", encoding="utf-8")
        try:
            gathered = executor.scatter(
                {1: [ShardTask("probe", {"exit_unless": str(flag)})]}
            )
            assert gathered.results[1].payloads == ["ok"]
        finally:
            executor.close()


class TestSeededChaosMatrix:
    """CI hook: ``$REPRO_FAULT_SEED`` shifts the kill schedule; for any
    schedule, answers are exactly serial or explicitly partial."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_kills_never_corrupt_silently(self, platform, seed):
        clock = ManualClock()
        router = ShardRouter(
            platform, N_SHARDS, pool_kind="inline", grid=(4, 4), clock=clock
        )
        serial = serial_answers(platform)
        plan = FaultPlan(seed=seed)
        plan.kill("shard.dispatch", rate=0.4, max_faults=4)
        plan.kill("shard.worker", rate=0.2, max_faults=2)
        plan.delay("shard.dispatch", latency_s=1.5, rate=0.3, max_faults=3)
        try:
            with plan.activate():
                for _ in range(3):  # several rounds drain the schedule
                    out = router.execute_many(QUERIES)
                    for (results, info), full in zip(out, serial):
                        if info["partial"]:
                            got = {r.image_id for r in results}
                            assert got <= {r.image_id for r in full}
                        else:
                            assert results == full
        finally:
            router.close()

    def test_injected_faults_raise_nothing_past_the_router(self, platform):
        plan = FaultPlan(seed=SEEDS[0])
        plan.kill("shard.dispatch", error=lambda site, n: FaultInjected(site, n))
        router = ShardRouter(
            platform, N_SHARDS, pool_kind="inline", grid=(4, 4), clock=ManualClock()
        )
        try:
            with plan.activate():
                results, info = router.execute(QUERIES[1])
            assert info["partial"] is True or results  # no exception escaped
        finally:
            router.close()
