"""Property harness: sharded execution is *exactly* serial execution.

Hypothesis draws whole catalogs (geo positions, timestamps, keywords,
annotations, deliberately tie-prone feature vectors) plus query
parameters, and the property is the engine's core invariant: for every
shard count and every query family, ``TVDP.execute`` under sharding
returns the identical ``QueryResult`` list — same ids, same order,
bit-identical scores — as ``TVDP.execute_serial``.

Vectors are means over mean-preserving pixel permutations, so distinct
images collide onto identical feature vectors: top-k merges then stand
or fall on the canonical ``(distance, tie_key)`` order, which is the
regression this harness pins down (a coordinator that re-sorted by
float score would pass on generic corpora and fail here).

The drawn-catalog sweep runs on the inline pool (deterministic,
cheap); a fixed-corpus test repeats all six families through a real
``multiprocessing`` pool so the pickled-handle path is proven on every
run too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CategoricalQuery,
    HybridQuery,
    SpatialQuery,
    TemporalQuery,
    TextualQuery,
    TVDP,
    VisualQuery,
)
from repro.core.planner import explain
from repro.geo import BoundingBox, FieldOfView, GeoPoint
from repro.imaging import Image

REGION = BoundingBox(34.00, -118.40, 34.20, -118.20)
#: Discrete camera positions — few enough that images co-locate.
LATS = [34.02, 34.06, 34.10, 34.14, 34.18]
LNGS = [-118.38, -118.32, -118.26, -118.22]
#: Channel means for the tie-prone vectors.
LEVELS = [0.25, 0.5, 0.75]
#: Mean-preserving perturbations (level +/- delta stays in [0, 1]).
DELTAS = [0.0, 0.05, 0.1, 0.2]
VOCAB = ["pothole", "graffiti", "lamp", "tree"]
LABELS = ["clean", "dirty"]
SHARD_COUNTS = (2, 3, 5, 8)


class PixelProbeExtractor:
    """Per-channel mean: distinct pixel layouts with the same channel
    means extract *identical* vectors — the tie generator."""

    name = "pixel_probe"

    def extract(self, image: Image) -> np.ndarray:
        return image.pixels.mean(axis=(0, 1))

    def dimension(self) -> int:
        return 3


def tie_prone_image(levels: tuple[float, float, float], delta: float) -> Image:
    """A 2x2 image whose channel means are exactly ``levels`` but whose
    content hash varies with ``delta``."""
    pixels = np.tile(np.asarray(levels), (2, 2, 1))
    pixels[0, 0, :] += delta
    pixels[1, 1, :] -= delta
    return Image(pixels)


image_specs = st.lists(
    st.fixed_dictionaries(
        {
            "lat": st.sampled_from(LATS),
            "lng": st.sampled_from(LNGS),
            "t": st.integers(0, 20),
            "direction": st.sampled_from([0.0, 90.0, 180.0, 270.0]),
            "levels": st.tuples(
                st.sampled_from(LEVELS), st.sampled_from(LEVELS), st.sampled_from(LEVELS)
            ),
            "delta": st.sampled_from(DELTAS),
            "keywords": st.lists(st.sampled_from(VOCAB), max_size=2, unique=True),
            "annotation": st.one_of(
                st.none(),
                st.tuples(
                    st.sampled_from(LABELS),
                    st.sampled_from([0.3, 0.6, 0.9]),
                    st.sampled_from(["human", "machine"]),
                ),
            ),
        }
    ),
    min_size=4,
    max_size=16,
)

query_params = st.fixed_dictionaries(
    {
        "lat_pair": st.tuples(st.sampled_from(LATS), st.sampled_from(LATS)),
        "lng_pair": st.tuples(st.sampled_from(LNGS), st.sampled_from(LNGS)),
        "t_window": st.tuples(st.integers(0, 20), st.integers(0, 20)),
        "radius_m": st.sampled_from([0.0, 2000.0, 8000.0]),
        "mode": st.sampled_from(["scene", "camera"]),
        "min_confidence": st.sampled_from([0.0, 0.5, 0.8]),
        "source": st.sampled_from([None, "human", "machine"]),
        "text": st.lists(st.sampled_from(VOCAB), min_size=1, max_size=2, unique=True),
        "match": st.sampled_from(["any", "all"]),
        "probe_levels": st.tuples(
            st.sampled_from(LEVELS), st.sampled_from(LEVELS), st.sampled_from(LEVELS)
        ),
        "k": st.integers(1, 5),
        "max_distance": st.sampled_from([None, 0.0, 0.4, 2.0]),
    }
)


def build_platform(specs: list[dict]) -> TVDP:
    platform = TVDP(shard_grid=(3, 3), shard_pool="inline")
    platform.catalog.define("condition", LABELS)
    platform.register_extractor(PixelProbeExtractor())
    for spec in specs:
        receipt = platform.upload_image(
            image=tie_prone_image(spec["levels"], spec["delta"]),
            fov=FieldOfView(
                GeoPoint(spec["lat"], spec["lng"]), spec["direction"], 60.0, 500.0
            ),
            captured_at=float(spec["t"]),
            uploaded_at=float(spec["t"]) + 1.0,
            keywords=tuple(spec["keywords"]),
        )
        if spec["annotation"] is not None:
            label, confidence, source = spec["annotation"]
            platform.annotations.annotate(
                receipt.image_id, "condition", label, confidence, source=source
            )
    platform.extract_features("pixel_probe")
    return platform


def make_queries(params: dict) -> list:
    lat_lo, lat_hi = sorted(params["lat_pair"])
    lng_lo, lng_hi = sorted(params["lng_pair"])
    box = BoundingBox(lat_lo, lng_lo, lat_hi + 0.01, lng_hi + 0.01)
    t_lo, t_hi = sorted(params["t_window"])
    vector = np.asarray(params["probe_levels"], dtype=np.float64)
    spatial = SpatialQuery(region=box, mode=params["mode"])
    visual = VisualQuery(
        extractor_name="pixel_probe",
        vector=vector,
        k=params["k"],
        max_distance=params["max_distance"],
    )
    return [
        spatial,
        SpatialQuery(
            point=GeoPoint(lat_lo, lng_lo),
            radius_m=params["radius_m"],
            mode=params["mode"],
        ),
        TemporalQuery(start=float(t_lo), end=float(t_hi)),
        TemporalQuery(start=None, end=float(t_hi), field="timestamp_uploading"),
        CategoricalQuery(
            classification="condition",
            labels=("clean", "dirty"),
            min_confidence=params["min_confidence"],
            source=params["source"],
        ),
        TextualQuery(text=" ".join(params["text"]), match=params["match"]),
        visual,
        VisualQuery(extractor_name="pixel_probe", vector=vector, k=params["k"]),
        HybridQuery(queries=(spatial, VisualQuery("pixel_probe", vector=vector, k=3))),
        HybridQuery(
            queries=(
                TemporalQuery(start=float(t_lo), end=float(t_hi)),
                TextualQuery(text=params["text"][0], match="any"),
            )
        ),
    ]


def assert_equivalent(platform: TVDP, queries: list, n_shards: int) -> None:
    for query in queries:
        sharded = platform.execute(query)
        serial = platform.execute_serial(query)
        assert sharded == serial, (
            f"shards={n_shards} {type(query).__name__}: {sharded} != {serial}"
        )
        for got, want in zip(sharded, serial):
            # Dataclass == compares floats by value; pin bit-identity.
            assert repr(got.score) == repr(want.score), (
                f"shards={n_shards}: score drifted {got.score!r} vs {want.score!r}"
            )


class TestDrawnCatalogs:
    @settings(max_examples=25, deadline=None)
    @given(specs=image_specs, params=query_params)
    def test_sharded_equals_serial_on_inline_pool(self, specs, params):
        platform = build_platform(specs)
        queries = make_queries(params)
        try:
            for n_shards in SHARD_COUNTS:
                platform.set_shards(n_shards, pool="inline")
                assert_equivalent(platform, queries, n_shards)
            batch = platform.execute_many(queries)
            serial = [platform.execute_serial(q) for q in queries]
            assert batch == serial
        finally:
            platform.close()


@pytest.fixture(scope="module")
def fixed_platform():
    rng = np.random.default_rng(42)
    specs = [
        {
            "lat": LATS[int(rng.integers(len(LATS)))],
            "lng": LNGS[int(rng.integers(len(LNGS)))],
            "t": int(rng.integers(0, 21)),
            "direction": float(rng.integers(0, 4) * 90),
            "levels": tuple(
                LEVELS[int(rng.integers(len(LEVELS)))] for _ in range(3)
            ),
            "delta": DELTAS[int(rng.integers(len(DELTAS)))],
            "keywords": list(
                rng.choice(VOCAB, size=int(rng.integers(0, 3)), replace=False)
            ),
            "annotation": (
                None
                if rng.random() < 0.3
                else (
                    LABELS[int(rng.integers(2))],
                    [0.3, 0.6, 0.9][int(rng.integers(3))],
                    ["human", "machine"][int(rng.integers(2))],
                )
            ),
        }
        for _ in range(24)
    ]
    platform = build_platform(specs)
    yield platform
    platform.close()


FIXED_PARAMS = {
    "lat_pair": (34.02, 34.14),
    "lng_pair": (-118.38, -118.22),
    "t_window": (3, 15),
    "radius_m": 8000.0,
    "mode": "scene",
    "min_confidence": 0.5,
    "source": None,
    "text": ["pothole", "lamp"],
    "match": "any",
    "probe_levels": (0.5, 0.5, 0.25),
    "k": 4,
    "max_distance": 0.4,
}


class TestRealPool:
    @pytest.mark.parametrize("n_shards", [2, 5])
    def test_all_families_through_process_pool(self, fixed_platform, n_shards):
        fixed_platform.set_shards(n_shards, pool="process")
        queries = make_queries(FIXED_PARAMS)
        assert_equivalent(fixed_platform, queries, n_shards)
        batch = fixed_platform.execute_many(queries)
        serial = [fixed_platform.execute_serial(q) for q in queries]
        assert batch == serial

    def test_example_based_visual_extracts_at_coordinator(self, fixed_platform):
        fixed_platform.set_shards(2, pool="process")
        query = VisualQuery(
            extractor_name="pixel_probe",
            example=tie_prone_image((0.5, 0.25, 0.75), 0.1),
            k=3,
        )
        assert fixed_platform.execute(query) == fixed_platform.execute_serial(query)


class TestTieBreaks:
    def test_topk_cut_inside_a_tie_group_is_deterministic(self):
        """Images in different shards with identical vectors, k smaller
        than the tie group: the cut must fall on ascending image id."""
        platform = TVDP(shard_grid=(3, 3))
        platform.register_extractor(PixelProbeExtractor())
        # Spread one tie group across the whole region so every shard
        # holds members of it.
        for i, (lat, lng) in enumerate(
            (lat, lng) for lat in LATS for lng in LNGS
        ):
            platform.upload_image(
                image=tie_prone_image((0.5, 0.5, 0.5), DELTAS[i % len(DELTAS)] + i * 1e-3),
                fov=FieldOfView(GeoPoint(lat, lng), 0.0, 60.0, 500.0),
                captured_at=float(i),
                uploaded_at=float(i),
            )
        platform.extract_features("pixel_probe")
        query = VisualQuery(
            extractor_name="pixel_probe",
            vector=np.array([0.5, 0.5, 0.5]),
            k=5,
        )
        serial = platform.execute_serial(query)
        try:
            for n_shards in SHARD_COUNTS:
                platform.set_shards(n_shards, pool="inline")
                assert platform.execute(query) == serial
        finally:
            platform.close()


class TestPlanAnnotations:
    def test_explain_surfaces_pruning(self, fixed_platform):
        fixed_platform.set_shards(5, pool="inline")
        query = TemporalQuery(start=3.0, end=6.0)
        plan = explain(fixed_platform, query)
        assert plan.query_type == "scatter_gather"
        details = plan.details
        assert details["shards"] == 5
        assert details["shards_considered"] + details["shards_pruned"] == 5
        assert plan.children, "the serial plan must nest under the scatter node"

    def test_serial_platform_has_no_scatter_node(self, fixed_platform):
        fixed_platform.set_shards(1)
        plan = explain(fixed_platform, TemporalQuery(start=3.0, end=6.0))
        assert plan.query_type != "scatter_gather"
