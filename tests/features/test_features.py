"""Tests for the three visual feature extractors and the registry."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features import (
    BowExtractor,
    BowVocabulary,
    CnnConfig,
    CnnFeatureExtractor,
    ColorHistogramExtractor,
    FeatureRegistry,
    extract_batch,
    image_descriptors,
)
from repro.imaging import Image, render_street_scene, solid_color


@pytest.fixture(scope="module")
def scenes():
    rng = np.random.default_rng(0)
    return [
        render_street_scene(label, rng, size=40)
        for label in ("clean", "encampment", "bulky_item", "overgrown_vegetation")
        for _ in range(3)
    ]


class TestColorHistogram:
    def test_dimension_matches_extract(self):
        ext = ColorHistogramExtractor()
        vec = ext.extract(solid_color(8, 8, (0.2, 0.5, 0.8)))
        assert vec.shape == (ext.dimension(),)
        assert ext.dimension() == 50

    def test_name_encodes_bins(self):
        assert ColorHistogramExtractor().name == "color_hsv_20_20_10"
        assert ColorHistogramExtractor(bins=(4, 4, 4)).dimension() == 12

    def test_distinguishes_green_from_gray(self):
        ext = ColorHistogramExtractor()
        green = ext.extract(solid_color(8, 8, (0.2, 0.8, 0.2)))
        gray = ext.extract(solid_color(8, 8, (0.5, 0.5, 0.5)))
        assert np.linalg.norm(green - gray) > 0.1


class TestBow:
    def test_vocabulary_requires_images(self):
        with pytest.raises(FeatureError):
            BowVocabulary(n_words=4).fit([])

    def test_vocabulary_too_many_words_raises(self):
        flat = [solid_color(32, 32, (0.5, 0.5, 0.5))]
        with pytest.raises(FeatureError):
            BowVocabulary(n_words=100).fit(flat)

    def test_small_vocab_raises(self):
        with pytest.raises(FeatureError):
            BowVocabulary(n_words=1)

    def test_unfitted_vocab_rejected_by_extractor(self):
        with pytest.raises(FeatureError):
            BowExtractor(BowVocabulary(n_words=4))

    def test_histogram_properties(self, scenes):
        vocab = BowVocabulary(n_words=8, seed=0).fit(scenes)
        ext = BowExtractor(vocab)
        vec = ext.extract(scenes[0])
        assert vec.shape == (8,)
        assert vec.sum() == pytest.approx(1.0)
        assert (vec >= 0).all()
        assert ext.dimension() == 8

    def test_flat_image_zero_histogram(self, scenes):
        vocab = BowVocabulary(n_words=8, seed=0).fit(scenes)
        ext = BowExtractor(vocab)
        vec = ext.extract(solid_color(40, 40, (0.5, 0.5, 0.5)))
        assert np.allclose(vec, 0.0)

    def test_image_descriptors_densify_low_texture(self):
        # A nearly flat image still yields some descriptors via the
        # dense lattice fallback (or an empty array, never a crash).
        rng = np.random.default_rng(1)
        almost_flat = Image(np.full((40, 40, 3), 0.5) + rng.normal(0, 0.01, (40, 40, 3)))
        descriptors = image_descriptors(almost_flat)
        assert descriptors.ndim == 2 and descriptors.shape[1] == 128

    def test_assign_validates_dimension(self, scenes):
        vocab = BowVocabulary(n_words=8, seed=0).fit(scenes)
        with pytest.raises(FeatureError):
            vocab.assign(np.zeros((3, 64)))


class TestCnn:
    def test_dimension_matches_extract(self, scenes):
        ext = CnnFeatureExtractor()
        vec = ext.extract(scenes[0])
        assert vec.shape == (ext.dimension(),)

    def test_l2_normalised(self, scenes):
        vec = CnnFeatureExtractor().extract(scenes[0])
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_deterministic(self, scenes):
        a = CnnFeatureExtractor().extract(scenes[0])
        b = CnnFeatureExtractor().extract(scenes[0])
        assert np.allclose(a, b)

    def test_config_validation(self):
        with pytest.raises(FeatureError):
            CnnConfig(input_size=8)
        with pytest.raises(FeatureError):
            CnnConfig(kernel_size=4)
        with pytest.raises(FeatureError):
            CnnConfig(stage1_filters=0)

    def test_size_invariance_via_resize(self, scenes):
        ext = CnnFeatureExtractor()
        from repro.imaging import resize

        small = resize(scenes[0], 24, 24)
        # Different input sizes produce same-dimension vectors.
        assert ext.extract(small).shape == ext.extract(scenes[0]).shape

    def test_flops_estimate_scales_with_architecture(self):
        small = CnnFeatureExtractor(CnnConfig(input_size=32, stage1_filters=4, stage2_filters=8))
        big = CnnFeatureExtractor(CnnConfig(input_size=48, stage1_filters=8, stage2_filters=24))
        assert big.flops_estimate() > 2 * small.flops_estimate()

    def test_separates_classes_better_than_chance(self, scenes):
        # Within-class distance should be smaller than between-class.
        ext = CnnFeatureExtractor()
        X = np.vstack([ext.extract(im) for im in scenes])
        labels = np.repeat(np.arange(4), 3)
        within, between = [], []
        for i in range(len(scenes)):
            for j in range(i + 1, len(scenes)):
                d = np.linalg.norm(X[i] - X[j])
                (within if labels[i] == labels[j] else between).append(d)
        assert np.mean(within) < np.mean(between)


class TestBatchAndRegistry:
    def test_extract_batch_shape(self, scenes):
        ext = ColorHistogramExtractor()
        X = extract_batch(ext, scenes)
        assert X.shape == (len(scenes), 50)

    def test_extract_batch_empty_raises(self):
        with pytest.raises(FeatureError):
            extract_batch(ColorHistogramExtractor(), [])

    def test_registry_round_trip(self):
        reg = FeatureRegistry()
        ext = ColorHistogramExtractor()
        reg.register(ext)
        assert reg.get(ext.name) is ext
        assert ext.name in reg
        assert len(reg) == 1
        assert reg.names() == [ext.name]

    def test_registry_duplicate_raises(self):
        reg = FeatureRegistry()
        reg.register(ColorHistogramExtractor())
        with pytest.raises(FeatureError):
            reg.register(ColorHistogramExtractor())

    def test_registry_unknown_raises(self):
        with pytest.raises(FeatureError):
            FeatureRegistry().get("nope")
