"""Package-level integrity: exports resolve, utilities behave."""

import importlib

import numpy as np
import pytest

from repro.errors import GeoError, MLError
from repro.geo import BoundingBox, FieldOfView, GeoPoint
from repro.ml.base import check_fitted, check_X, check_X_y, unique_labels
from repro.ml.knn import pairwise_sq_distances

SUBPACKAGES = [
    "repro",
    "repro.geo",
    "repro.imaging",
    "repro.features",
    "repro.ml",
    "repro.db",
    "repro.index",
    "repro.crowd",
    "repro.edge",
    "repro.api",
    "repro.core",
    "repro.datasets",
    "repro.analysis",
]


class TestExports:
    @pytest.mark.parametrize("package", SUBPACKAGES)
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} in __all__ but missing"

    @pytest.mark.parametrize("package", SUBPACKAGES)
    def test_module_has_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and module.__doc__.strip()


class TestValidationHelpers:
    def test_check_X_rejects_bad_shapes(self):
        with pytest.raises(MLError):
            check_X(np.zeros(5))
        with pytest.raises(MLError):
            check_X(np.zeros((0, 3)))
        with pytest.raises(MLError):
            check_X(np.array([[np.inf, 1.0]]))

    def test_check_X_y_rejects_mismatch(self):
        with pytest.raises(MLError):
            check_X_y(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(MLError):
            check_X_y(np.zeros((3, 2)), np.zeros((3, 1)))

    def test_check_fitted(self):
        class Thing:
            attr = None

        from repro.errors import NotFittedError

        with pytest.raises(NotFittedError):
            check_fitted(Thing(), "attr")

    def test_unique_labels_needs_two_classes(self):
        with pytest.raises(MLError):
            unique_labels(np.zeros(5))
        assert unique_labels(np.array([1, 2, 1])).tolist() == [1, 2]


class TestPairwiseDistances:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        A, B = rng.normal(0, 1, (6, 3)), rng.normal(0, 1, (4, 3))
        d2 = pairwise_sq_distances(A, B)
        for i in range(6):
            for j in range(4):
                assert d2[i, j] == pytest.approx(np.sum((A[i] - B[j]) ** 2))

    def test_never_negative(self):
        # The expansion trick can go slightly negative; must be clipped.
        A = np.full((3, 4), 1e8)
        d2 = pairwise_sq_distances(A, A)
        assert (d2 >= 0).all()


class TestGeoUtilities:
    def test_interior_points_inside_sector(self):
        fov = FieldOfView(GeoPoint(34.0, -118.0), 45.0, 80.0, 300.0)
        points = fov.interior_points(samples=6)
        assert len(points) == 18  # 3 rings x 6 samples
        assert all(fov.contains_point(p) for p in points)

    def test_interior_points_validation(self):
        fov = FieldOfView(GeoPoint(34.0, -118.0), 0.0, 60.0, 100.0)
        with pytest.raises(GeoError):
            fov.interior_points(samples=1)

    def test_bounding_region_for_point_query(self):
        from repro.core import SpatialQuery

        query = SpatialQuery(point=GeoPoint(34.0, -118.0), radius_m=500.0)
        region = query.bounding_region()
        assert region.contains_point(GeoPoint(34.0, -118.0))
        explicit = SpatialQuery(region=BoundingBox(0, 0, 1, 1))
        assert explicit.bounding_region() == BoundingBox(0, 0, 1, 1)
