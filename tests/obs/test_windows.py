"""Rolling latency windows: bucketing, expiry, percentiles, threads."""

from __future__ import annotations

import threading

import pytest

from repro.obs.windows import RollingWindows


class FakeClock:
    """Manual ``now()`` for driving window expiry without sleeping."""

    def __init__(self, start: float = 0.0) -> None:
        self.t = start

    def now(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def windows(clock):
    return RollingWindows(window_s=60.0, bucket_s=5.0, clock=clock)


class TestConstruction:
    def test_rejects_bad_geometry(self, clock):
        with pytest.raises(ValueError):
            RollingWindows(window_s=0.0, clock=clock)
        with pytest.raises(ValueError):
            RollingWindows(window_s=10.0, bucket_s=20.0, clock=clock)

    def test_rejects_unsorted_bounds(self, clock):
        with pytest.raises(ValueError):
            RollingWindows(clock=clock, bounds=(10.0, 5.0))

    def test_accepts_bare_callable_clock(self):
        w = RollingWindows(clock=lambda: 42.0)
        w.observe("k", 1.0)
        assert w.count("k") == 1

    def test_rejects_clockless_object(self):
        with pytest.raises(TypeError):
            RollingWindows(clock=object())


class TestObserveAndExpiry:
    def test_empty_window_reports_nothing(self, windows):
        assert windows.count("query.spatial") == 0
        assert windows.percentile("query.spatial", 0.95) is None
        assert windows.summary("query.spatial") is None
        assert windows.summaries() == {}

    def test_observations_accumulate_within_window(self, windows, clock):
        for i in range(10):
            windows.observe("op", float(i + 1))
            clock.advance(1.0)
        assert windows.count("op") == 10
        summary = windows.summary("op")
        assert summary["count"] == 10
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        assert summary["sum"] == pytest.approx(55.0)
        assert summary["window_s"] == 60.0

    def test_old_samples_age_out(self, windows, clock):
        windows.observe("op", 100.0)
        clock.advance(30.0)
        windows.observe("op", 200.0)
        assert windows.count("op") == 2
        # First sample's bucket falls outside the 60 s window...
        clock.advance(35.0)
        assert windows.count("op") == 1
        assert windows.summary("op")["max"] == 200.0
        # ...and eventually the second does too.
        clock.advance(60.0)
        assert windows.count("op") == 0
        assert windows.summary("op") is None

    def test_ring_slot_recycled_after_full_wrap(self, windows, clock):
        windows.observe("op", 50.0)
        clock.advance(60.0)  # exactly one full window: same slot index
        windows.observe("op", 70.0)
        assert windows.count("op") == 1
        assert windows.summary("op")["min"] == 70.0

    def test_keys_are_independent(self, windows):
        windows.observe("a", 10.0)
        windows.observe("b", 20.0)
        assert windows.count("a") == 1
        assert windows.count("b") == 1
        assert set(windows.summaries()) == {"a", "b"}

    def test_reset_drops_everything(self, windows):
        windows.observe("op", 5.0)
        windows.reset()
        assert windows.count("op") == 0
        assert windows.summaries() == {}


class TestPercentiles:
    def test_q_zero_is_min_and_q_one_within_range(self, windows):
        for value in (10.0, 20.0, 30.0, 40.0):
            windows.observe("op", value)
        assert windows.percentile("op", 0.0) == 10.0
        p100 = windows.percentile("op", 1.0)
        assert 10.0 <= p100 <= 40.0

    def test_overflow_bucket_reports_observed_max(self, windows):
        windows.observe("op", 99_999.0)  # beyond the largest bound
        assert windows.percentile("op", 0.95) == 99_999.0

    def test_percentile_is_monotone_in_q(self, windows):
        for value in (1.0, 5.0, 9.0, 48.0, 120.0, 500.0):
            windows.observe("op", value)
        quantiles = [windows.percentile("op", q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert quantiles == sorted(quantiles)

    def test_rejects_out_of_range_q(self, windows):
        windows.observe("op", 1.0)
        with pytest.raises(ValueError):
            windows.percentile("op", 1.5)

    def test_window_percentile_tracks_recent_not_historic(self, windows, clock):
        # Old regime: fast. New regime: slow. The window must forget.
        for _ in range(50):
            windows.observe("op", 5.0)
        clock.advance(70.0)
        for _ in range(50):
            windows.observe("op", 400.0)
        assert windows.percentile("op", 0.5) > 100.0


class TestThreadSafety:
    def test_concurrent_observers_lose_nothing(self, windows):
        n_threads, per_thread = 8, 200
        barrier = threading.Barrier(n_threads)

        def hammer(offset: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                windows.observe("op", float(offset + i % 50))

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert windows.count("op") == n_threads * per_thread
