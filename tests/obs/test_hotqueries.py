"""Hot-query tracker: ranking, bounded memory, determinism, threads."""

from __future__ import annotations

import threading

import pytest

from repro.obs.hotqueries import HotQueryTracker


class TestRecordAndTop:
    def test_rejects_bad_capacity_and_k(self):
        with pytest.raises(ValueError):
            HotQueryTracker(capacity=0)
        with pytest.raises(ValueError):
            HotQueryTracker().top(0)

    def test_aggregates_per_shape(self):
        tracker = HotQueryTracker()
        tracker.record("spatial(mode=scene,region)", 10.0)
        tracker.record("spatial(mode=scene,region)", 30.0)
        (entry,) = tracker.top(1)
        assert entry["shape"] == "spatial(mode=scene,region)"
        assert entry["count"] == 2
        assert entry["total_ms"] == 40.0
        assert entry["mean_ms"] == 20.0
        assert entry["max_ms"] == 30.0
        assert entry["last_ms"] == 30.0

    def test_ranked_by_count_then_shape(self):
        tracker = HotQueryTracker()
        for _ in range(5):
            tracker.record("frequent", 1.0)
        for _ in range(3):
            tracker.record("slow", 100.0)
        for _ in range(3):
            tracker.record("fast", 1.0)
        # Equal counts order by shape string, never by measured latency.
        shapes = [e["shape"] for e in tracker.top(3)]
        assert shapes == ["frequent", "fast", "slow"]

    def test_tie_break_is_deterministic_on_shape(self):
        tracker = HotQueryTracker()
        tracker.record("b", 5.0)
        tracker.record("a", 5.0)
        assert [e["shape"] for e in tracker.top(2)] == ["a", "b"]

    def test_top_k_truncates(self):
        tracker = HotQueryTracker()
        for i in range(20):
            tracker.record(f"shape-{i:02d}", 1.0)
        assert len(tracker.top(5)) == 5
        assert len(tracker) == 20

    def test_clear(self):
        tracker = HotQueryTracker()
        tracker.record("x", 1.0)
        tracker.clear()
        assert len(tracker) == 0
        assert tracker.top() == []
        assert tracker.evicted() == 0


class TestEviction:
    def test_cold_shapes_pruned_hot_shapes_survive(self):
        tracker = HotQueryTracker(capacity=4)
        for _ in range(50):
            tracker.record("hot", 2.0)
        # A long tail of one-off shapes overflows 2x capacity.
        for i in range(20):
            tracker.record(f"tail-{i:02d}", 1.0)
        assert len(tracker) <= tracker.capacity * 2
        assert tracker.evicted() > 0
        assert tracker.top(1)[0]["shape"] == "hot"

    def test_eviction_is_deterministic(self):
        def run() -> list[str]:
            tracker = HotQueryTracker(capacity=3)
            for i in range(30):
                tracker.record(f"shape-{i % 10}", float(i % 7))
            return [e["shape"] for e in tracker.top(10)]

        assert run() == run()


class TestThreadSafety:
    def test_concurrent_records_lose_nothing(self):
        tracker = HotQueryTracker(capacity=128)
        n_threads, per_thread = 8, 250
        barrier = threading.Barrier(n_threads)

        def hammer(worker: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                tracker.record(f"shape-{(worker + i) % 4}", float(i % 10))

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(e["count"] for e in tracker.top(10)) == n_threads * per_thread


class TestDeterministicRanking:
    def test_equal_counts_rank_by_shape_not_latency(self):
        """total_ms is wall-clock noise; two shapes with the same count
        must order by shape string no matter which was slower."""
        tracker = HotQueryTracker(capacity=8)
        tracker.record("zeta(k=1)", 500.0)   # slow
        tracker.record("alpha(k=1)", 0.1)    # fast
        tracker.record("mid(k=1)", 100.0)
        shapes = [e["shape"] for e in tracker.top(3)]
        assert shapes == ["alpha(k=1)", "mid(k=1)", "zeta(k=1)"]

    def test_ranking_invariant_under_latency_jitter(self):
        def run(jitter: float) -> list[str]:
            tracker = HotQueryTracker(capacity=8)
            for shape in ("b(k=1)", "a(k=1)", "c(k=1)"):
                tracker.record(shape, jitter)
                tracker.record(shape, jitter * 2)
            tracker.record("a(k=1)", jitter)  # a is genuinely hotter
            return [e["shape"] for e in tracker.top(3)]

        assert run(1.0) == run(997.0) == ["a(k=1)", "b(k=1)", "c(k=1)"]
