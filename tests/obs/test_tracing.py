"""Unit tests for spans, propagation, and exporters."""

import json

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    JsonlExporter,
    RingBufferExporter,
    Tracer,
    current_span,
    span_tree,
)


@pytest.fixture()
def tracer():
    ring = RingBufferExporter()
    return Tracer(registry=MetricsRegistry(), exporters=[ring]), ring


class TestSpanLifecycle:
    def test_times_and_exports(self, tracer):
        t, ring = tracer
        with t.span("query.spatial", k=5) as sp:
            assert current_span() is sp
            assert sp.attrs == {"k": 5}
        assert current_span() is None
        [finished] = ring.spans()
        assert finished.name == "query.spatial"
        assert finished.duration_ms >= 0.0
        assert finished.status == "ok"

    def test_parent_child_propagation(self, tracer):
        t, ring = tracer
        with t.span("parent") as p:
            with t.span("child") as c:
                assert c.trace_id == p.trace_id
                assert c.parent_id == p.span_id
            # Back to the parent after the child closes.
            assert current_span() is p
        assert ring.spans("child")[0].parent_id == p.span_id

    def test_siblings_share_trace_not_parenthood(self, tracer):
        t, _ = tracer
        with t.span("root") as root:
            with t.span("a") as a:
                pass
            with t.span("b") as b:
                pass
        assert a.trace_id == b.trace_id == root.trace_id
        assert a.parent_id == b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_separate_roots_get_separate_traces(self, tracer):
        t, _ = tracer
        with t.span("one") as s1:
            pass
        with t.span("two") as s2:
            pass
        assert s1.trace_id != s2.trace_id

    def test_error_marks_span_and_reraises(self, tracer):
        t, ring = tracer
        with pytest.raises(ValueError, match="boom"):
            with t.span("fails"):
                raise ValueError("boom")
        [finished] = ring.spans()
        assert finished.status == "error"
        assert finished.error == "ValueError: boom"
        # The context is clean even after the failure.
        assert current_span() is None

    def test_registry_wiring(self, tracer):
        t, _ = tracer
        with pytest.raises(RuntimeError):
            with t.span("op"):
                raise RuntimeError
        with t.span("op"):
            pass
        snap = t.registry.snapshot()
        assert snap["counters"]['spans.total{span="op"}'] == 2.0
        assert snap["counters"]['spans.errors{span="op"}'] == 1.0
        assert snap["histograms"]['span.duration_ms{span="op"}']["count"] == 2


class TestSpanTree:
    def test_nested_tree_reassembly(self, tracer):
        t, ring = tracer
        with t.span("request"):
            with t.span("platform"):
                with t.span("index"):
                    pass
            with t.span("render"):
                pass
        [root] = ring.span_tree()
        assert root["name"] == "request"
        names = [child["name"] for child in root["children"]]
        assert names == ["platform", "render"]
        assert root["children"][0]["children"][0]["name"] == "index"

    def test_tree_filtered_by_trace(self, tracer):
        t, ring = tracer
        with t.span("first") as s1:
            pass
        with t.span("second"):
            pass
        roots = ring.span_tree(trace_id=s1.trace_id)
        assert [r["name"] for r in roots] == ["first"]

    def test_orphan_spans_become_roots(self, tracer):
        t, ring = tracer
        with t.span("parent"):
            with t.span("child"):
                pass
        # Reassembling with the parent missing promotes the child to a root.
        child = ring.spans("child")[0]
        [root] = span_tree([child])
        assert root["name"] == "child" and root["children"] == []


class TestRingBuffer:
    def test_capacity_evicts_oldest(self, tracer):
        t, _ = tracer
        ring = RingBufferExporter(capacity=2)
        t.exporters = [ring]
        for name in ("a", "b", "c"):
            with t.span(name):
                pass
        assert [s.name for s in ring.spans()] == ["b", "c"]

    def test_name_filter_and_clear(self, tracer):
        t, ring = tracer
        with t.span("x"):
            pass
        with t.span("y"):
            pass
        assert len(ring.spans("x")) == 1
        ring.clear()
        assert ring.spans() == []


class TestJsonlExporter:
    def test_writes_one_json_object_per_span(self, tmp_path, tracer):
        t, _ = tracer
        path = tmp_path / "spans.jsonl"
        exporter = JsonlExporter(str(path))
        t.add_exporter(exporter)
        with t.span("a", size=3):
            with t.span("b"):
                pass
        exporter.close()
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        # Children close (and export) before parents.
        assert [r["name"] for r in records] == ["b", "a"]
        assert records[1]["attrs"] == {"size": 3}
        assert records[0]["parent_id"] == records[1]["span_id"]
        assert {"trace_id", "span_id", "duration_ms", "status"} <= set(records[0])


class TestDefaultTracerFacade:
    def test_enable_disable_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        exporter = obs.enable_jsonl(str(path))
        assert obs.enable_jsonl(str(path)) is exporter  # idempotent per path
        try:
            with obs.span("facade.test"):
                pass
        finally:
            obs.disable_jsonl()
        assert json.loads(path.read_text().splitlines()[-1])["name"] == "facade.test"
        # Detached: new spans no longer stream to the file.
        n_lines = len(path.read_text().splitlines())
        with obs.span("facade.after"):
            pass
        assert len(path.read_text().splitlines()) == n_lines

    def test_reset_clears_values_and_buffer(self):
        with obs.span("reset.me"):
            obs.metrics().counter("reset.counter").inc()
        obs.reset()
        assert obs.snapshot()["counters"]["reset.counter"] == 0.0
        assert obs.ring_buffer().spans("reset.me") == []
