"""Resource accounting: ledgers, charge helpers, and the usage table.

The concurrency tests here are exactness proofs, not smoke: N threads
charging under M principals must produce *bit-exact* integer totals in
the table (the ledger is contextvar-scoped so threads never share one,
and ``UsageTable.absorb`` is the single locked boundary).  The CI
sanitize job reruns this file under ``REPRO_SANITIZE=1`` so the same
schedule also proves lock-order cleanliness.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro import obs
from repro.obs.accounting import (
    COST_WEIGHTS,
    LOCAL_PRINCIPAL,
    Budget,
    ResourceLedger,
    UsageTable,
    active_ledger,
    charge,
    charge_probes,
    cost_of,
    ledger_scope,
    maybe_ledger_scope,
)


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.reset()
    yield
    obs.reset()


class TestResourceLedger:
    def test_charges_accumulate_by_kind(self):
        ledger = ResourceLedger()
        ledger.add("rows_scanned", 3)
        ledger.add("rows_scanned", 2)
        ledger.add("probes.rtree", 7)
        assert ledger.charges == {"rows_scanned": 5.0, "probes.rtree": 7.0}

    def test_cost_uses_weights_with_probe_prefix(self):
        ledger = ResourceLedger()
        ledger.add("rows_scanned", 10)
        ledger.add("probes.lsh", 4)
        ledger.add("probes.rtree", 6)
        ledger.add("feature_bytes", 2048)
        expected = (
            10 * COST_WEIGHTS["rows_scanned"]
            + 10 * COST_WEIGHTS["probes"]
            + 2048 * COST_WEIGHTS["feature_bytes"]
        )
        assert ledger.cost() == pytest.approx(expected)
        assert cost_of(ledger.charges) == pytest.approx(expected)

    def test_unknown_kinds_cost_nothing(self):
        assert cost_of({"martian_units": 1e9}) == 0.0

    def test_annotate_fills_keys_as_they_become_known(self):
        ledger = ResourceLedger()
        assert ledger.principal == LOCAL_PRINCIPAL
        ledger.annotate(principal="key:abcd", shape="spatial(region)")
        ledger.annotate(operation="POST /search", trace_id="t1")
        snap = ledger.snapshot()
        assert snap["principal"] == "key:abcd"
        assert snap["shape"] == "spatial(region)"
        assert snap["operation"] == "POST /search"
        assert snap["trace_id"] == "t1"

    def test_pickle_round_trip(self):
        ledger = ResourceLedger(principal="key:abcd", operation="POST /search")
        ledger.add("probes.oriented", 9)
        clone = pickle.loads(pickle.dumps(ledger))
        assert clone.snapshot() == ledger.snapshot()


class TestChargeHelpers:
    def test_no_ledger_is_a_noop(self):
        assert active_ledger() is None
        charge("rows_scanned", 5)  # must not raise or leak anywhere
        charge_probes("rtree", 5)

    def test_charges_land_on_the_active_ledger(self):
        with ledger_scope() as ledger:
            assert active_ledger() is ledger
            charge("rows_scanned", 5)
            charge_probes("lsh", 3)
        assert active_ledger() is None
        assert ledger.charges == {"rows_scanned": 5.0, "probes.lsh": 3.0}

    def test_zero_amounts_never_materialise(self):
        with ledger_scope() as ledger:
            charge("rows_scanned", 0)
            charge_probes("rtree", 0)
        assert ledger.charges == {}

    def test_scope_absorbs_into_table_even_on_error(self):
        table = UsageTable()
        with pytest.raises(RuntimeError):
            with ledger_scope(table=table, principal="key:abcd"):
                charge("rows_scanned", 4)
                raise RuntimeError("failed work still cost something")
        [row] = table.report()["by_principal"]
        assert row["key"] == "key:abcd"
        assert row["charges"] == {"rows_scanned": 4.0}

    def test_maybe_scope_reuses_the_enclosing_ledger(self):
        table = UsageTable()
        with ledger_scope(table=table, principal="key:abcd") as outer:
            with maybe_ledger_scope(table, principal="other") as inner:
                assert inner is outer
                charge("rows_scanned", 2)
        [row] = table.report()["by_principal"]
        assert row["key"] == "key:abcd"  # no bill fragmentation

    def test_maybe_scope_opens_one_when_none_active(self):
        table = UsageTable()
        with maybe_ledger_scope(table, principal="local", operation="execute.x"):
            charge("rows_scanned", 1)
        [row] = table.report()["by_operation"]
        assert row["key"] == "execute.x"


class TestUsageTable:
    def test_aggregates_by_principal_shape_operation(self):
        table = UsageTable()
        for principal, shape in (("a", "s1"), ("a", "s2"), ("b", "s1")):
            with ledger_scope(
                table=table, principal=principal, operation="op", shape=shape
            ):
                charge("rows_scanned", 10)
        report = table.report()
        assert {r["key"]: r["count"] for r in report["by_principal"]} == {
            "a": 2,
            "b": 1,
        }
        assert {r["key"]: r["count"] for r in report["by_shape"]} == {"s1": 2, "s2": 1}
        [op_row] = report["by_operation"]
        assert op_row["count"] == 3 and op_row["charges"] == {"rows_scanned": 30.0}

    def test_rows_ranked_by_cost_and_top_bounds(self):
        table = UsageTable()
        for principal, rows in (("cheap", 1), ("costly", 100), ("mid", 10)):
            with ledger_scope(table=table, principal=principal):
                charge("rows_scanned", rows)
        ranked = [r["key"] for r in table.report()["by_principal"]]
        assert ranked == ["costly", "mid", "cheap"]
        assert len(table.report(top=2)["by_principal"]) == 2

    def test_exemplar_keeps_the_worst_trace(self):
        table = UsageTable()
        for trace_id, rows in (("t-small", 1), ("t-big", 50), ("t-mid", 10)):
            with ledger_scope(table=table, principal="a") as ledger:
                ledger.annotate(trace_id=trace_id)
                charge("rows_scanned", rows)
        [row] = table.report()["by_principal"]
        assert row["exemplar"]["trace_id"] == "t-big"

    def test_usage_metrics_emitted_per_principal(self):
        table = UsageTable(registry=obs.metrics())
        with ledger_scope(table=table, principal="key:abcd"):
            charge("rows_scanned", 5)
            charge_probes("rtree", 3)
        counters = obs.snapshot()["counters"]
        assert counters['usage.requests{principal="key:abcd"}'] == 1.0
        assert counters['usage.rows_scanned{principal="key:abcd"}'] == 5.0
        assert counters['usage.index_probes{principal="key:abcd"}'] == 3.0
        assert counters['usage.cost{principal="key:abcd"}'] == 8.0

    def test_pickle_round_trip_recreates_lock_and_clock(self):
        table = UsageTable(registry=obs.metrics())
        with ledger_scope(table=table, principal="a", shape="s"):
            charge("rows_scanned", 3)
        clone = pickle.loads(pickle.dumps(table))
        assert clone._lock is not table._lock
        assert clone._lock.acquire(blocking=False)
        clone._lock.release()
        assert clone._registry is None  # handles don't cross processes
        before, after = table.report(), clone.report()
        for section in ("by_principal", "by_shape", "by_operation"):
            assert before[section] == after[section]
        # The clone keeps working as a table (absorb + report).
        with ledger_scope(table=clone, principal="a"):
            charge("rows_scanned", 1)
        [row] = clone.report()["by_principal"]
        assert row["count"] == 2

    def test_merge_is_charge_sum(self):
        coordinator, worker = UsageTable(), UsageTable()
        for table, rows in ((coordinator, 5), (worker, 7)):
            with ledger_scope(table=table, principal="a", shape="s"):
                charge("rows_scanned", rows)
        with ledger_scope(table=worker, principal="b"):
            charge("rows_scanned", 1)
        coordinator.merge(worker)
        report = coordinator.report()
        by_principal = {r["key"]: r for r in report["by_principal"]}
        assert by_principal["a"]["count"] == 2
        assert by_principal["a"]["charges"] == {"rows_scanned": 12.0}
        assert by_principal["b"]["count"] == 1
        [shape_row] = report["by_shape"]
        assert shape_row["charges"] == {"rows_scanned": 12.0}

    def test_reset_drops_aggregates_but_keeps_budget(self):
        budget = Budget(cost_per_window=10.0)
        table = UsageTable(budget=budget)
        with ledger_scope(table=table, principal="a"):
            charge("rows_scanned", 3)
        table.reset()
        assert table.report()["by_principal"] == []
        assert table.budget() == budget


class FakeClock:
    def __init__(self) -> None:
        self.now = 1_000.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class TestBudgetAndShed:
    def _spend(self, table: UsageTable, principal: str, rows: int) -> None:
        with ledger_scope(table=table, principal=principal):
            charge("rows_scanned", rows)

    def test_rolling_window_expires_old_spend(self):
        clock = FakeClock()
        table = UsageTable(clock=clock)
        self._spend(table, "a", 50)
        assert table.rolling_cost("a") == pytest.approx(50.0)
        clock.advance(30.0)
        self._spend(table, "a", 20)
        assert table.rolling_cost("a") == pytest.approx(70.0)
        clock.advance(45.0)  # first charge now outside the 60 s window
        assert table.rolling_cost("a") == pytest.approx(20.0)
        clock.advance(60.0)
        assert table.rolling_cost("a") == pytest.approx(0.0)

    def test_would_shed_flags_only_over_budget_principals(self):
        clock = FakeClock()
        table = UsageTable(budget=Budget(cost_per_window=100.0), clock=clock)
        self._spend(table, "hog", 500)
        self._spend(table, "modest", 10)
        assert table.would_shed() == ["hog"]  # dry run: reported, not enforced

    def test_what_if_budget_without_configured_one(self):
        clock = FakeClock()
        table = UsageTable(clock=clock)  # no budget configured
        self._spend(table, "a", 80)
        assert table.would_shed() == []  # nothing configured, nothing shed
        report = table.report(budget=Budget(cost_per_window=50.0))
        assert report["would_shed"] == ["a"]
        assert report["budget"]["overridden"] is True
        assert report["rolling_cost"]["a"] == pytest.approx(80.0)

    def test_shed_metrics_emitted_when_over(self):
        clock = FakeClock()
        table = UsageTable(
            registry=obs.metrics(),
            budget=Budget(cost_per_window=10.0),
            clock=clock,
        )
        self._spend(table, "hog", 50)
        counters = obs.snapshot()["counters"]
        assert counters['usage.would_shed{principal="hog"}'] == 1.0
        gauges = obs.snapshot()["gauges"]
        assert gauges['usage.rolling_cost{principal="hog"}'] == 50.0


class TestConcurrencyExactness:
    """N threads x M principals: the table's totals must be exact."""

    THREADS = 8
    PRINCIPALS = 4
    REQUESTS = 50
    ROWS_PER_REQUEST = 3
    PROBES_PER_REQUEST = 2

    def test_exact_totals_under_contention(self):
        table = UsageTable(registry=obs.metrics())
        barrier = threading.Barrier(self.THREADS)

        def worker(index: int) -> None:
            principal = f"key:{index % self.PRINCIPALS}"
            barrier.wait()
            for _ in range(self.REQUESTS):
                with ledger_scope(
                    table=table, principal=principal, operation="op", shape="s"
                ):
                    charge("rows_scanned", self.ROWS_PER_REQUEST)
                    charge_probes("rtree", self.PROBES_PER_REQUEST)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        report = table.report()
        per_principal = self.THREADS // self.PRINCIPALS * self.REQUESTS
        assert len(report["by_principal"]) == self.PRINCIPALS
        for row in report["by_principal"]:
            assert row["count"] == per_principal
            assert row["charges"] == {
                "rows_scanned": float(per_principal * self.ROWS_PER_REQUEST),
                "probes.rtree": float(per_principal * self.PROBES_PER_REQUEST),
            }
        total = self.THREADS * self.REQUESTS
        [op_row] = report["by_operation"]
        assert op_row["count"] == total
        counters = obs.snapshot()["counters"]
        for index in range(self.PRINCIPALS):
            label = f'{{principal="key:{index}"}}'
            assert counters[f"usage.requests{label}"] == float(per_principal)
            assert counters[f"usage.rows_scanned{label}"] == float(
                per_principal * self.ROWS_PER_REQUEST
            )

    def test_threads_never_share_a_ledger(self):
        seen: dict[int, ResourceLedger] = {}
        barrier = threading.Barrier(4)

        def worker(index: int) -> None:
            barrier.wait()
            with ledger_scope() as ledger:
                seen[index] = ledger  # devtools: allow[unlocked-mutation]
                charge("rows_scanned", index + 1)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ledgers = list(seen.values())
        assert len({id(ledger) for ledger in ledgers}) == 4
        amounts = sorted(
            ledger.charges["rows_scanned"] for ledger in ledgers
        )
        assert amounts == [1.0, 2.0, 3.0, 4.0]

    def test_concurrent_merge_and_absorb(self):
        coordinator = UsageTable()
        workers = [UsageTable() for _ in range(4)]
        for index, table in enumerate(workers):
            for _ in range(10):
                with ledger_scope(table=table, principal=f"key:{index}"):
                    charge("rows_scanned", 1)
        threads = [
            threading.Thread(target=coordinator.merge, args=(table,))
            for table in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report = coordinator.report()
        assert sum(r["count"] for r in report["by_principal"]) == 40
