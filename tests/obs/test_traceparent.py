"""W3C-style traceparent propagation: format, parse, and remote join.

The header carries a trace across process boundaries (client -> HTTP
router -> edge device transfer).  These tests pin the wire format and
the join semantics; the end-to-end client/server join lives in
``tests/integration/test_observability_cycle.py``.
"""

import contextvars

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    RingBufferExporter,
    TraceContext,
    Tracer,
    current_traceparent,
    format_traceparent,
    parse_traceparent,
)

TRACE_ID = "ab" * 16
SPAN_ID = "cd" * 8


@pytest.fixture()
def tracer():
    ring = RingBufferExporter()
    return Tracer(registry=MetricsRegistry(), exporters=[ring]), ring


class TestWireFormat:
    def test_format_is_versioned_and_sampled(self):
        context = TraceContext(trace_id=TRACE_ID, span_id=SPAN_ID)
        assert format_traceparent(context) == f"00-{TRACE_ID}-{SPAN_ID}-01"

    def test_round_trip(self):
        context = TraceContext(trace_id=TRACE_ID, span_id=SPAN_ID)
        assert parse_traceparent(format_traceparent(context)) == context

    @pytest.mark.parametrize(
        "header",
        [
            None,
            42,
            "",
            "not-a-header",
            f"00-{TRACE_ID}-{SPAN_ID}",  # missing flags part
            f"00-{TRACE_ID}-{SPAN_ID}-01-extra",
            f"01-{TRACE_ID}-{SPAN_ID}-01",  # unknown version
            f"00--{SPAN_ID}-01",  # empty trace id
            f"00-{TRACE_ID}--01",  # empty span id
        ],
    )
    def test_malformed_headers_parse_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_current_traceparent_reflects_the_open_span(self, tracer):
        t, _ = tracer
        assert current_traceparent() is None
        with t.span("work") as sp:
            header = current_traceparent()
            parsed = parse_traceparent(header)
            assert parsed == TraceContext(trace_id=sp.trace_id, span_id=sp.span_id)
        assert current_traceparent() is None


class TestRemoteJoin:
    def test_remote_parent_joins_the_callers_trace(self, tracer):
        t, ring = tracer
        remote = TraceContext(trace_id=TRACE_ID, span_id=SPAN_ID)
        with t.span("server.handle", remote_parent=remote) as sp:
            assert sp.trace_id == TRACE_ID
            assert sp.parent_id == SPAN_ID
        [finished] = ring.spans()
        assert finished.trace_id == TRACE_ID

    def test_local_parent_wins_over_remote(self, tracer):
        t, _ = tracer
        remote = TraceContext(trace_id=TRACE_ID, span_id=SPAN_ID)
        with t.span("outer") as outer:
            with t.span("inner", remote_parent=remote) as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id

    def test_cross_context_join_builds_one_tree(self, tracer):
        """Simulate client and server processes with separate
        contextvars contexts: the server joins via the header and the
        ring buffer reassembles one tree under the client's trace id."""
        t, ring = tracer
        header_box: list[str] = []

        def client() -> None:
            with t.span("client.request"):
                header_box.append(current_traceparent())

        def server() -> None:
            remote = parse_traceparent(header_box[0])
            with t.span("server.handle", remote_parent=remote):
                with t.span("server.query"):
                    pass

        contextvars.Context().run(client)
        contextvars.Context().run(server)

        client_span = ring.spans("client.request")[0]
        [root] = ring.span_tree(client_span.trace_id)
        assert root["name"] == "client.request"
        [child] = root["children"]
        assert child["name"] == "server.handle"
        assert [g["name"] for g in child["children"]] == ["server.query"]


class TestDefaultTracerExports:
    def test_obs_span_accepts_remote_parent(self):
        obs.reset()
        remote = TraceContext(trace_id=TRACE_ID, span_id=SPAN_ID)
        with obs.span("joined.work", remote_parent=remote) as sp:
            assert sp.trace_id == TRACE_ID
        assert obs.ring_buffer().spans("joined.work")[0].trace_id == TRACE_ID
        obs.reset()
