"""Unit tests for the declarative SLO layer (``repro.obs.slo``)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SLOS,
    FAILING_BURN,
    SLO,
    evaluate,
    evaluate_slo,
)


def latency_slo(**overrides):
    base = dict(
        objective="q.p95",
        kind="latency",
        span="query.spatial",
        target=100.0,
        percentile=0.95,
        min_samples=5,
    )
    base.update(overrides)
    return SLO(**base)


def availability_slo(**overrides):
    base = dict(
        objective="q.avail",
        kind="availability",
        span="query.spatial",
        target=0.99,
        min_samples=5,
    )
    base.update(overrides)
    return SLO(**base)


def observe_latencies(registry, span, values):
    histogram = registry.histogram("span.duration_ms", {"span": span})
    for value in values:
        histogram.observe(value)


def record_outcomes(registry, span, total, errors):
    registry.counter("spans.total", {"span": span}).inc(total)
    if errors:
        registry.counter("spans.errors", {"span": span}).inc(errors)


class TestSLOValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            latency_slo(kind="throughput")

    def test_rejects_nonpositive_latency_target(self):
        with pytest.raises(ValueError, match="positive"):
            latency_slo(target=0.0)

    def test_rejects_out_of_range_availability(self):
        with pytest.raises(ValueError, match="in \\(0, 1\\)"):
            availability_slo(target=1.0)


class TestLatencyObjective:
    def test_cold_registry_is_ok_with_insufficient_data(self):
        result = evaluate_slo(latency_slo(), MetricsRegistry())
        assert result["status"] == "ok"
        assert result["insufficient_data"] is True
        assert result["samples"] == 0

    def test_below_threshold_is_ok(self):
        registry = MetricsRegistry()
        observe_latencies(registry, "query.spatial", [10.0] * 50)
        result = evaluate_slo(latency_slo(), registry)
        assert result["status"] == "ok"
        assert result["burn_ratio"] <= 1.0
        assert result["insufficient_data"] is False

    def test_latency_spike_degrades_then_fails(self):
        registry = MetricsRegistry()
        # p95 around 150 ms: burn 1.5 -> degraded.
        observe_latencies(registry, "query.spatial", [150.0] * 50)
        degraded = evaluate_slo(latency_slo(), registry)
        assert degraded["status"] == "degraded"
        assert 1.0 < degraded["burn_ratio"] <= FAILING_BURN

        registry.reset()
        observe_latencies(registry, "query.spatial", [500.0] * 50)
        failing = evaluate_slo(latency_slo(), registry)
        assert failing["status"] == "failing"
        assert failing["burn_ratio"] > FAILING_BURN

    def test_min_samples_gates_judgement(self):
        registry = MetricsRegistry()
        observe_latencies(registry, "query.spatial", [900.0] * 3)  # < min_samples
        result = evaluate_slo(latency_slo(), registry)
        assert result["status"] == "ok"
        assert result["insufficient_data"] is True
        # The observed numbers are still surfaced for operators.
        assert result["observed"] is not None


class TestAvailabilityObjective:
    def test_no_errors_is_ok_with_zero_burn(self):
        registry = MetricsRegistry()
        record_outcomes(registry, "query.spatial", total=100, errors=0)
        result = evaluate_slo(availability_slo(), registry)
        assert result["status"] == "ok"
        assert result["burn_ratio"] == 0.0
        assert result["observed"] == 1.0

    def test_error_budget_burn(self):
        registry = MetricsRegistry()
        # 1.5% errors against a 1% budget: burn 1.5 -> degraded.
        record_outcomes(registry, "query.spatial", total=1000, errors=15)
        result = evaluate_slo(availability_slo(), registry)
        assert result["status"] == "degraded"
        assert result["burn_ratio"] == pytest.approx(1.5)

        registry.reset()
        record_outcomes(registry, "query.spatial", total=1000, errors=50)
        result = evaluate_slo(availability_slo(), registry)
        assert result["status"] == "failing"


class TestEvaluate:
    def test_cold_report_is_ok_for_all_defaults(self):
        report = evaluate(MetricsRegistry())
        assert report["status"] == "ok"
        assert len(report["objectives"]) == len(DEFAULT_SLOS)
        assert all(r["insufficient_data"] for r in report["objectives"])

    def test_rollup_is_worst_objective_and_sorted_worst_first(self):
        registry = MetricsRegistry()
        observe_latencies(registry, "query.spatial", [500.0] * 50)  # failing
        record_outcomes(registry, "query.visual", total=1000, errors=15)  # degraded
        report = evaluate(
            registry,
            slos=[
                availability_slo(objective="v.avail", span="query.visual"),
                latency_slo(objective="s.p95", span="query.spatial"),
            ],
        )
        assert report["status"] == "failing"
        statuses = [r["status"] for r in report["objectives"]]
        assert statuses == ["failing", "degraded"]

    def test_default_slos_cover_queries_uploads_and_api(self):
        objectives = {slo.objective for slo in DEFAULT_SLOS}
        assert "query.spatial.p95" in objectives
        assert "query.hybrid.availability" in objectives
        assert "upload.p95" in objectives
        assert "api.request.p99" in objectives
        # Each objective id is unique.
        assert len(objectives) == len(DEFAULT_SLOS)


class TestWindowedEvaluation:
    """Latency objectives judged on rolling windows when provided."""

    def _windows(self, clock_value):
        from repro.obs.windows import RollingWindows

        class _Clock:
            def __init__(self):
                self.t = 0.0

            def now(self):
                return self.t

        clock = _Clock()
        clock.t = clock_value
        return RollingWindows(window_s=60.0, bucket_s=5.0, clock=clock), clock

    def test_window_samples_override_cumulative_histogram(self):
        registry = MetricsRegistry()
        # Cumulative history says slow; the live window says fast.
        observe_latencies(registry, "query.spatial", [500.0] * 50)
        windows, _ = self._windows(0.0)
        for _ in range(30):
            windows.observe("query.spatial", 10.0)
        result = evaluate_slo(latency_slo(), registry, windows=windows)
        assert result["status"] == "ok"
        assert result["samples"] == 30
        assert result["window_s"] == 60.0
        assert result["observed"] < 100.0

    def test_drained_window_falls_back_to_cumulative(self):
        registry = MetricsRegistry()
        observe_latencies(registry, "query.spatial", [500.0] * 50)
        windows, clock = self._windows(0.0)
        windows.observe("query.spatial", 10.0)
        clock.t = 120.0  # the window sample ages out
        result = evaluate_slo(latency_slo(), registry, windows=windows)
        assert result["samples"] == 50
        assert "window_s" not in result
        assert result["status"] == "failing"

    def test_recovery_inside_window_clears_failing_status(self):
        registry = MetricsRegistry()
        windows, clock = self._windows(0.0)
        # A slow burst, then a fast minute: cumulative stays scarred,
        # the windowed evaluation forgives.
        for _ in range(30):
            registry.histogram("span.duration_ms", {"span": "query.spatial"}).observe(400.0)
            windows.observe("query.spatial", 400.0)
        cumulative = evaluate_slo(latency_slo(), registry)
        assert cumulative["status"] == "failing"
        clock.t = 90.0
        for _ in range(30):
            registry.histogram("span.duration_ms", {"span": "query.spatial"}).observe(8.0)
            windows.observe("query.spatial", 8.0)
        rolled = evaluate_slo(latency_slo(), registry, windows=windows)
        assert rolled["status"] == "ok"

    def test_availability_ignores_windows(self):
        registry = MetricsRegistry()
        record_outcomes(registry, "query.spatial", total=100, errors=50)
        windows, _ = self._windows(0.0)
        result = evaluate_slo(availability_slo(), registry, windows=windows)
        assert result["status"] == "failing"
        assert "window_s" not in result

    def test_evaluate_passes_windows_through(self):
        registry = MetricsRegistry()
        observe_latencies(registry, "query.spatial", [500.0] * 50)
        windows, _ = self._windows(0.0)
        for _ in range(30):
            windows.observe("query.spatial", 10.0)
        report = evaluate(registry, slos=[latency_slo()], windows=windows)
        assert report["status"] == "ok"
        assert report["objectives"][0]["window_s"] == 60.0
