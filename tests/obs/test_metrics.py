"""Unit tests for the metrics primitives and registry."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counters_delta,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 50.0, 500.0):
            h.observe(v)
        # <=1: {0.5, 1.0}; <=10: {5.0}; <=100: {50.0}; overflow: {500.0}
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(556.5)
        assert h.min == 0.5 and h.max == 500.0

    def test_rejects_unsorted_or_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(10.0, 1.0))

    def test_percentile_interpolates_within_bucket(self):
        h = Histogram("h", buckets=(0.0, 100.0))
        for v in range(1, 101):  # uniform 1..100, all in the (0, 100] bucket
            h.observe(float(v))
        # Interpolation across the bucket tracks the true quantile within
        # a bucket-width tolerance.
        assert h.percentile(0.5) == pytest.approx(50.0, abs=2.0)
        assert h.percentile(0.95) == pytest.approx(95.0, abs=2.0)
        assert h.percentile(0.0) >= h.min
        assert h.percentile(1.0) <= h.max

    def test_percentile_clamped_to_observed_range(self):
        h = Histogram("h", buckets=(100.0,))
        h.observe(40.0)
        h.observe(60.0)
        assert h.min <= h.percentile(0.5) <= h.max

    def test_overflow_bucket_percentile_is_max(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(50.0)
        h.observe(70.0)
        assert h.percentile(0.99) == 70.0

    def test_empty_summary(self):
        summary = Histogram("h").summary()
        assert summary == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_summary_keys(self):
        h = Histogram("h")
        h.observe(3.0)
        summary = h.summary()
        assert summary["count"] == 1
        assert summary["sum"] == 3.0
        assert summary["p50"] == summary["p99"] == 3.0

    def test_percentile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(1.5)

    # -- pinned interpolation contract (see Histogram.percentile) -------

    def test_empty_histogram_percentile_is_zero(self):
        h = Histogram("h")
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.percentile(q) == 0.0

    def test_q0_and_q1_are_exact_observed_extremes(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (2.7, 41.3, 99.0):
            h.observe(v)
        assert h.percentile(0.0) == 2.7
        assert h.percentile(1.0) == 99.0

    def test_all_overflow_percentiles_are_max(self):
        # Every observation above the last bucket boundary: any quantile
        # lands in the overflow bucket and reports the observed maximum
        # (including q=0, which still reports the minimum exactly).
        h = Histogram("h", buckets=(1.0,))
        h.observe(500.0)
        h.observe(900.0)
        assert h.percentile(0.0) == 500.0
        for q in (0.25, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 900.0

    def test_single_observation_any_quantile(self):
        h = Histogram("h", buckets=(10.0, 100.0))
        h.observe(42.0)
        for q in (0.0, 0.5, 1.0):
            assert h.percentile(q) == 42.0


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", {"k": "v"}) is not reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        c1 = reg.counter("a", {"x": "1", "y": "2"})
        c2 = reg.counter("a", {"y": "2", "x": "1"})
        assert c1 is c2

    def test_reset_zeroes_in_place(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        h = reg.histogram("h")
        c.inc(3)
        h.observe(1.0)
        reg.reset()
        assert c.value == 0.0
        assert h.count == 0 and h.min == math.inf
        # Cached handle still feeds the registry after reset.
        c.inc()
        assert reg.snapshot()["counters"]["a"] == 1.0

    def test_snapshot_flattens_labels(self):
        reg = MetricsRegistry()
        reg.counter("hits", {"route": "/x", "method": "GET"}).inc()
        reg.gauge("depth").set(2)
        reg.histogram("lat", {"op": "q"}).observe(5.0)
        snap = reg.snapshot()
        assert snap["counters"]['hits{method="GET",route="/x"}'] == 1.0
        assert snap["gauges"]["depth"] == 2.0
        assert snap["histograms"]['lat{op="q"}']["count"] == 1

    def test_render_prometheus(self):
        reg = MetricsRegistry()
        reg.counter("api.requests", {"route": "/x"}).inc(2)
        reg.gauge("queue.depth").set(3)
        reg.histogram("span.duration_ms", {"span": "q"}, buckets=(1.0, 10.0)).observe(
            0.5
        )
        text = reg.render_prometheus()
        assert '# TYPE tvdp_api_requests counter' in text
        assert 'tvdp_api_requests{route="/x"} 2' in text
        assert "tvdp_queue_depth 3" in text
        # Cumulative buckets + the +Inf bucket + sum/count triplet.
        assert 'tvdp_span_duration_ms_bucket{span="q",le="1"} 1' in text
        assert 'tvdp_span_duration_ms_bucket{span="q",le="+Inf"} 1' in text
        assert 'tvdp_span_duration_ms_count{span="q"} 1' in text
        assert text.endswith("\n")

    def test_render_prometheus_escapes_label_values(self):
        # Exposition format: backslash, double quote, and newline in a
        # label value must be escaped or the scrape output is corrupt.
        reg = MetricsRegistry()
        reg.counter(
            "api.errors", {"route": '/x"y\\z', "detail": "line1\nline2"}
        ).inc()
        text = reg.render_prometheus()
        assert "\nline2" not in text.replace("\\nline2", "")
        assert 'route="/x\\"y\\\\z"' in text
        assert 'detail="line1\\nline2"' in text
        # Every exposition line stays single-line and parseable.
        for line in text.splitlines():
            assert line.startswith("#") or " " in line

    def test_histograms_filter(self):
        reg = MetricsRegistry()
        reg.histogram("a")
        reg.histogram("a", {"k": "v"})
        reg.histogram("b")
        assert len(reg.histograms("a")) == 2
        assert len(reg.histograms()) == 3

    def test_counter_values_is_counters_only(self):
        reg = MetricsRegistry()
        reg.counter("hits", {"route": "/x"}).inc(2)
        reg.gauge("depth").set(5)
        reg.histogram("lat").observe(1.0)
        values = reg.counter_values()
        assert values == {'hits{route="/x"}': 2.0}

    def test_default_buckets_cover_training_scale(self):
        assert DEFAULT_LATENCY_BUCKETS_MS[0] < 0.1
        assert DEFAULT_LATENCY_BUCKETS_MS[-1] >= 5_000.0


class TestCountersDelta:
    def test_reports_only_increments(self):
        reg = MetricsRegistry()
        a = reg.counter("a")
        reg.counter("b")
        before = reg.snapshot()
        a.inc(3)
        reg.counter("c").inc()
        after = reg.snapshot()
        assert counters_delta(before, after) == {"a": 3.0, "c": 1.0}
