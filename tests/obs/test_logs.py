"""Structured logging carries the active span context."""

import io
import logging

from repro import obs
from repro.obs.logs import SpanContextFilter, configure_logging, get_logger


class TestSpanContext:
    def test_records_get_trace_ids_inside_span(self):
        logger = get_logger("test.logs")
        captured: list[logging.LogRecord] = []

        class Capture(logging.Handler):
            def emit(self, record):
                captured.append(record)

        handler = Capture()
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            with obs.span("logging.op") as sp:
                logger.info("inside")
            logger.info("outside")
        finally:
            logger.removeHandler(handler)
        inside, outside = captured
        assert inside.trace_id == sp.trace_id
        assert inside.span_id == sp.span_id
        assert outside.trace_id == "-" and outside.span_id == "-"

    def test_filter_defaults_without_span(self):
        record = logging.LogRecord("n", logging.INFO, "p", 1, "m", (), None)
        assert SpanContextFilter().filter(record) is True
        assert record.trace_id == "-"

    def test_logger_names_are_rooted(self):
        assert get_logger("core.platform").name == "tvdp.core.platform"


class TestConfigureLogging:
    def test_formats_trace_fields(self):
        stream = io.StringIO()
        handler = configure_logging(logging.INFO, stream=stream)
        logger = get_logger("test.configure")
        try:
            with obs.span("cfg.op") as sp:
                logger.info("hello")
        finally:
            logging.getLogger("tvdp").removeHandler(handler)
        line = stream.getvalue()
        assert "hello" in line
        assert f"trace={sp.trace_id}" in line
        assert f"span={sp.span_id}" in line

    def test_idempotent_per_stream(self):
        stream = io.StringIO()
        handler = configure_logging(stream=stream)
        try:
            assert configure_logging(stream=stream) is handler
        finally:
            logging.getLogger("tvdp").removeHandler(handler)
