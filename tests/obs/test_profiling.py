"""Unit tests for span-attached profiling and the slow-span log."""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import (
    DEFAULT_SLOW_SPANS_PER_OP,
    SlowSpanLog,
    memory_scope,
    profile_scope,
)
from repro.obs.tracing import Span, Tracer


def make_span(name, span_id, duration_ms, ancestry=()):
    span = Span(
        name=name,
        trace_id="t1",
        span_id=span_id,
        parent_id=None,
        ancestry=tuple(ancestry),
    )
    span.duration_ms = duration_ms
    return span


class TestProfileScope:
    def test_collects_top_functions(self):
        def busy():
            return sum(i * i for i in range(20_000))

        with profile_scope(top=5) as profile:
            busy()
        assert profile.enabled
        assert 0 < len(profile.top) <= 5
        row = profile.top[0]
        assert set(row) == {"func", "ncalls", "tottime_ms", "cumtime_ms"}

    def test_attaches_results_to_active_span(self):
        tracer = Tracer()
        with tracer.span("work.profiled") as span:
            with profile_scope(top=3):
                sum(range(10_000))
        assert "profile.top" in span.attrs
        assert span.attrs["profile.sort"] == "cumulative"

    def test_nested_scope_degrades_to_noop(self):
        with profile_scope() as outer:
            with profile_scope() as inner:
                sum(range(1_000))
        assert outer.enabled
        assert inner.enabled is False
        assert inner.top == []


class TestMemoryScope:
    def test_measures_peak_of_a_large_allocation(self):
        with memory_scope() as mem:
            buffer = np.zeros(256 * 1024, dtype=np.uint8)  # 256 KiB
            del buffer
        assert mem.peak_kb >= 256.0
        # The buffer was freed, so little of the peak remains live.
        assert mem.net_kb < mem.peak_kb

    def test_attaches_results_to_active_span(self):
        tracer = Tracer()
        with tracer.span("work.measured") as span:
            with memory_scope():
                list(range(1_000))
        assert span.attrs["mem.peak_kb"] >= 0.0
        assert "mem.net_kb" in span.attrs

    def test_composes_with_outer_scope(self):
        with memory_scope() as outer:
            with memory_scope() as inner:
                data = np.zeros(64 * 1024, dtype=np.uint8)
                del data
        assert inner.peak_kb >= 64.0
        assert outer.peak_kb >= inner.peak_kb


class TestSlowSpanLog:
    def test_rejects_nonpositive_per_op(self):
        with pytest.raises(ValueError, match="per_op"):
            SlowSpanLog(per_op=0)

    def test_keeps_worst_n_per_operation(self):
        log = SlowSpanLog(per_op=2)
        for i, duration in enumerate([10.0, 50.0, 30.0, 5.0]):
            log.export(make_span("op.a", f"s{i}", duration))
        records = log.slowest("op.a")
        assert [r["duration_ms"] for r in records] == [50.0, 30.0]

    def test_slowest_merges_operations_and_limits(self):
        log = SlowSpanLog()
        log.export(make_span("op.a", "s1", 10.0))
        log.export(make_span("op.b", "s2", 90.0))
        log.export(make_span("op.b", "s3", 40.0))
        merged = log.slowest()
        assert [r["name"] for r in merged] == ["op.b", "op.b", "op.a"]
        assert len(log.slowest(limit=1)) == 1
        assert log.operations() == ["op.a", "op.b"]

    def test_records_carry_ancestry(self):
        log = SlowSpanLog()
        log.export(make_span("index.query", "s1", 5.0, ancestry=("http.request", "query.spatial")))
        record = log.slowest("index.query")[0]
        assert record["ancestry"] == ["http.request", "query.spatial"]

    def test_counter_deltas_exclude_tracer_bookkeeping(self):
        registry = MetricsRegistry()
        log = SlowSpanLog(registry=registry)
        tracer = Tracer(registry=registry, exporters=[log])
        with tracer.span("query.spatial"):
            registry.counter("index.rtree.node_visits").inc(7)
        record = log.slowest("query.spatial")[0]
        assert record["counter_deltas"] == {"index.rtree.node_visits": 7.0}

    def test_deltas_count_only_work_inside_the_span(self):
        registry = MetricsRegistry()
        log = SlowSpanLog(registry=registry)
        tracer = Tracer(registry=registry, exporters=[log])
        registry.counter("index.probes").inc(100)  # before the span opens
        with tracer.span("query.visual"):
            registry.counter("index.probes").inc(3)
        record = log.slowest("query.visual")[0]
        assert record["counter_deltas"] == {"index.probes": 3.0}

    def test_clear_drops_everything(self):
        log = SlowSpanLog()
        log.export(make_span("op.a", "s1", 1.0))
        log.clear()
        assert log.slowest() == []
        assert log.operations() == []

    def test_default_capacity(self):
        log = SlowSpanLog()
        for i in range(DEFAULT_SLOW_SPANS_PER_OP + 5):
            log.export(make_span("op.a", f"s{i}", float(i)))
        assert len(log.slowest("op.a")) == DEFAULT_SLOW_SPANS_PER_OP
