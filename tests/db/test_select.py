"""Tests for Table.select (declarative reads)."""

import pytest

from repro.db import Column, ColumnType, Table, TableSchema
from repro.errors import SchemaError

I, R, T = ColumnType.INTEGER, ColumnType.REAL, ColumnType.TEXT


@pytest.fixture()
def table():
    t = Table(
        TableSchema(
            "obs",
            (
                Column("id", I, primary_key=True),
                Column("kind", T),
                Column("score", R, nullable=True),
            ),
        )
    )
    t.create_index("kind")
    rows = [
        ("fire", 0.9),
        ("fire", 0.4),
        ("smoke", 0.7),
        ("normal", None),
        ("fire", 0.8),
    ]
    for kind, score in rows:
        t.insert({"kind": kind, "score": score})
    return t


class TestSelect:
    def test_no_filters_returns_everything(self, table):
        assert len(table.select()) == 5

    def test_where_equality(self, table):
        fires = table.select(where={"kind": "fire"})
        assert len(fires) == 3
        assert all(row["kind"] == "fire" for row in fires)

    def test_where_multiple_columns(self, table):
        rows = table.select(where={"kind": "fire", "score": 0.9})
        assert len(rows) == 1
        assert rows[0]["id"] == 1

    def test_order_by_descending_with_limit(self, table):
        top = table.select(where={"kind": "fire"}, order_by="score", descending=True, limit=2)
        assert [row["score"] for row in top] == [0.9, 0.8]

    def test_order_by_ascending_nulls_first(self, table):
        ordered = table.select(order_by="score")
        assert ordered[0]["score"] is None
        scores = [row["score"] for row in ordered[1:]]
        assert scores == sorted(scores)

    def test_limit_zero(self, table):
        assert table.select(limit=0) == []

    def test_unknown_column_raises(self, table):
        with pytest.raises(SchemaError):
            table.select(where={"ghost": 1})
        with pytest.raises(SchemaError):
            table.select(order_by="ghost")

    def test_negative_limit_raises(self, table):
        with pytest.raises(SchemaError):
            table.select(limit=-1)

    def test_indexed_driver_matches_scan(self, table):
        indexed = table.select(where={"kind": "smoke"})
        scanned = [row for row in table.all_rows() if row["kind"] == "smoke"]
        assert indexed == scanned

    def test_select_returns_copies(self, table):
        row = table.select(where={"kind": "smoke"})[0]
        row["kind"] = "mutated"
        assert table.select(where={"kind": "smoke"})  # still present
