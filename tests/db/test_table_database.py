"""Tests for the table engine and the FK-enforcing database."""

import pytest

from repro.db import Column, ColumnType, Database, ForeignKey, Table, TableSchema
from repro.errors import IntegrityError, SchemaError

I, R, T, B = ColumnType.INTEGER, ColumnType.REAL, ColumnType.TEXT, ColumnType.BOOLEAN


def things_schema():
    return TableSchema(
        "things",
        (
            Column("id", I, primary_key=True),
            Column("name", T),
            Column("tag", T, nullable=True, unique=True),
            Column("size", R, nullable=True),
        ),
    )


class TestTable:
    def setup_method(self):
        self.table = Table(things_schema())

    def test_autoincrement(self):
        assert self.table.insert({"name": "a"}) == 1
        assert self.table.insert({"name": "b"}) == 2
        assert len(self.table) == 2

    def test_explicit_pk_respected(self):
        assert self.table.insert({"id": 10, "name": "a"}) == 10
        assert self.table.insert({"name": "b"}) == 11

    def test_duplicate_pk_raises(self):
        self.table.insert({"id": 5, "name": "a"})
        with pytest.raises(IntegrityError):
            self.table.insert({"id": 5, "name": "b"})

    def test_get_returns_copy(self):
        pk = self.table.insert({"name": "a"})
        row = self.table.get(pk)
        row["name"] = "mutated"
        assert self.table.get(pk)["name"] == "a"

    def test_get_missing_raises(self):
        with pytest.raises(IntegrityError):
            self.table.get(99)

    def test_unique_constraint(self):
        self.table.insert({"name": "a", "tag": "x"})
        with pytest.raises(IntegrityError):
            self.table.insert({"name": "b", "tag": "x"})
        # Null tags don't collide.
        self.table.insert({"name": "c"})
        self.table.insert({"name": "d"})

    def test_update(self):
        pk = self.table.insert({"name": "a", "size": 1.0})
        self.table.update(pk, {"size": 2.0})
        assert self.table.get(pk)["size"] == 2.0

    def test_update_pk_forbidden(self):
        pk = self.table.insert({"name": "a"})
        with pytest.raises(SchemaError):
            self.table.update(pk, {"id": 9})

    def test_update_unique_to_own_value_ok(self):
        pk = self.table.insert({"name": "a", "tag": "t"})
        self.table.update(pk, {"name": "renamed"})
        assert self.table.get(pk)["tag"] == "t"

    def test_update_unique_collision_raises(self):
        self.table.insert({"name": "a", "tag": "x"})
        pk = self.table.insert({"name": "b", "tag": "y"})
        with pytest.raises(IntegrityError):
            self.table.update(pk, {"tag": "x"})

    def test_delete_frees_unique_value(self):
        pk = self.table.insert({"name": "a", "tag": "x"})
        self.table.delete(pk)
        self.table.insert({"name": "b", "tag": "x"})

    def test_delete_missing_raises(self):
        with pytest.raises(IntegrityError):
            self.table.delete(42)

    def test_find_without_index(self):
        self.table.insert({"name": "a"})
        self.table.insert({"name": "a"})
        self.table.insert({"name": "b"})
        assert len(self.table.find("name", "a")) == 2

    def test_find_with_index_matches_scan(self):
        for i in range(20):
            self.table.insert({"name": f"n{i % 3}"})
        without = self.table.find("name", "n1")
        self.table.create_index("name")
        with_index = self.table.find("name", "n1")
        assert without == with_index

    def test_index_maintained_across_mutations(self):
        self.table.create_index("name")
        pk = self.table.insert({"name": "a"})
        assert len(self.table.find("name", "a")) == 1
        self.table.update(pk, {"name": "b"})
        assert self.table.find("name", "a") == []
        assert len(self.table.find("name", "b")) == 1
        self.table.delete(pk)
        assert self.table.find("name", "b") == []

    def test_scan_with_predicate(self):
        for size in (1.0, 2.0, 3.0):
            self.table.insert({"name": "x", "size": size})
        big = list(self.table.scan(lambda r: (r["size"] or 0) > 1.5))
        assert len(big) == 2


class TestDatabase:
    def make_db(self):
        db = Database()
        db.create_table(
            TableSchema(
                "owners",
                (Column("owner_id", I, primary_key=True), Column("name", T)),
            )
        )
        db.create_table(
            TableSchema(
                "pets",
                (
                    Column("pet_id", I, primary_key=True),
                    Column("name", T),
                    Column(
                        "owner_id", I, foreign_key=ForeignKey("owners", "owner_id")
                    ),
                ),
            )
        )
        return db

    def test_fk_enforced_on_insert(self):
        db = self.make_db()
        with pytest.raises(IntegrityError):
            db.insert("pets", {"name": "rex", "owner_id": 1})
        owner = db.insert("owners", {"name": "ann"})
        db.insert("pets", {"name": "rex", "owner_id": owner})

    def test_nullable_fk_allowed(self):
        db = Database()
        db.create_table(
            TableSchema(
                "nodes",
                (
                    Column("node_id", I, primary_key=True),
                    Column(
                        "parent_id",
                        I,
                        nullable=True,
                        foreign_key=ForeignKey("nodes", "node_id"),
                    ),
                ),
            )
        )
        root = db.insert("nodes", {"parent_id": None})
        db.insert("nodes", {"parent_id": root})

    def test_delete_restricted(self):
        db = self.make_db()
        owner = db.insert("owners", {"name": "ann"})
        db.insert("pets", {"name": "rex", "owner_id": owner})
        with pytest.raises(IntegrityError):
            db.delete("owners", owner)

    def test_delete_after_children_removed(self):
        db = self.make_db()
        owner = db.insert("owners", {"name": "ann"})
        pet = db.insert("pets", {"name": "rex", "owner_id": owner})
        db.delete("pets", pet)
        db.delete("owners", owner)
        assert db.row_counts() == {"owners": 0, "pets": 0}

    def test_delete_cascade(self):
        db = self.make_db()
        owner = db.insert("owners", {"name": "ann"})
        db.insert("pets", {"name": "rex", "owner_id": owner})
        db.insert("pets", {"name": "fido", "owner_id": owner})
        removed = db.delete_cascade("owners", owner)
        assert removed == 3
        assert db.row_counts() == {"owners": 0, "pets": 0}

    def test_unknown_table_raises(self):
        with pytest.raises(SchemaError):
            Database().table("ghost")

    def test_duplicate_table_raises(self):
        db = self.make_db()
        with pytest.raises(SchemaError):
            db.create_table(
                TableSchema("owners", (Column("x", I, primary_key=True),))
            )

    def test_fk_to_missing_table_raises(self):
        with pytest.raises(SchemaError):
            Database().create_table(
                TableSchema(
                    "pets",
                    (
                        Column("pet_id", I, primary_key=True),
                        Column("o", I, foreign_key=ForeignKey("owners", "owner_id")),
                    ),
                )
            )

    def test_tvdp_database_builds(self):
        db = Database.tvdp()
        assert "images" in db.table_names()
        user = db.insert("users", {"name": "usc", "role": "researcher"})
        image = db.insert(
            "images",
            {
                "uri": "img://1",
                "content_hash": "abc",
                "lat": 34.0,
                "lng": -118.0,
                "timestamp_capturing": 1.0,
                "timestamp_uploading": 2.0,
                "is_augmented": False,
                "uploader_id": user,
            },
        )
        db.insert(
            "image_fov",
            {"image_id": image, "direction_deg": 90.0, "angle_deg": 60.0, "range_m": 100.0},
        )
        with pytest.raises(IntegrityError):
            db.delete("images", image)  # FOV references it
