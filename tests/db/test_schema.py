"""Tests for schema definitions and row validation."""

import pytest

from repro.db import Column, ColumnType, ForeignKey, TableSchema, tvdp_schema
from repro.errors import SchemaError

I, R, T, B = ColumnType.INTEGER, ColumnType.REAL, ColumnType.TEXT, ColumnType.BOOLEAN


def simple_schema():
    return TableSchema(
        "things",
        (
            Column("id", I, primary_key=True),
            Column("name", T),
            Column("score", R, nullable=True),
            Column("active", B),
        ),
    )


class TestColumnType:
    def test_integer_accepts_int(self):
        assert ColumnType.INTEGER.validate(5) == 5

    def test_integer_rejects_bool_and_float(self):
        with pytest.raises(SchemaError):
            ColumnType.INTEGER.validate(True)
        with pytest.raises(SchemaError):
            ColumnType.INTEGER.validate(1.5)

    def test_real_coerces_int(self):
        assert ColumnType.REAL.validate(3) == 3.0
        assert isinstance(ColumnType.REAL.validate(3), float)

    def test_real_rejects_bool(self):
        with pytest.raises(SchemaError):
            ColumnType.REAL.validate(False)

    def test_text_rejects_numbers(self):
        with pytest.raises(SchemaError):
            ColumnType.TEXT.validate(5)

    def test_boolean_strict(self):
        assert ColumnType.BOOLEAN.validate(True) is True
        with pytest.raises(SchemaError):
            ColumnType.BOOLEAN.validate(1)

    def test_json_accepts_anything(self):
        assert ColumnType.JSON.validate([1, {"a": 2}]) == [1, {"a": 2}]


class TestTableSchema:
    def test_requires_single_pk(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (Column("a", I),))
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                (Column("a", I, primary_key=True), Column("b", I, primary_key=True)),
            )

    def test_pk_must_be_integer(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (Column("a", T, primary_key=True),))

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t", (Column("a", I, primary_key=True), Column("a", T))
            )

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ())

    def test_column_lookup(self):
        schema = simple_schema()
        assert schema.column("name").type is ColumnType.TEXT
        with pytest.raises(SchemaError):
            schema.column("missing")

    def test_primary_key_property(self):
        assert simple_schema().primary_key.name == "id"


class TestValidateRow:
    def test_valid_row(self):
        row = simple_schema().validate_row(
            {"name": "x", "score": 1.5, "active": True}
        )
        assert row == {"name": "x", "score": 1.5, "active": True}

    def test_nullable_defaults_to_none(self):
        row = simple_schema().validate_row({"name": "x", "active": False})
        assert row["score"] is None

    def test_missing_required_raises(self):
        with pytest.raises(SchemaError):
            simple_schema().validate_row({"active": True})

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            simple_schema().validate_row({"name": "x", "active": True, "bogus": 1})

    def test_type_violation_raises(self):
        with pytest.raises(SchemaError):
            simple_schema().validate_row({"name": 5, "active": True})


class TestTvdpSchema:
    def test_contains_paper_entities(self):
        names = {schema.name for schema in tvdp_schema()}
        expected = {
            "images",
            "videos",
            "image_fov",
            "image_scene_location",
            "image_visual_features",
            "image_content_classification",
            "image_content_classification_types",
            "image_content_annotation",
            "image_manual_keywords",
            "users",
            "api_keys",
        }
        assert expected <= names

    def test_annotation_links_to_types_and_images(self):
        schemas = {s.name: s for s in tvdp_schema()}
        annotation = schemas["image_content_annotation"]
        assert annotation.column("image_id").foreign_key == ForeignKey(
            "images", "image_id"
        )
        assert annotation.column("type_id").foreign_key == ForeignKey(
            "image_content_classification_types", "type_id"
        )

    def test_images_have_spatiotemporal_descriptors(self):
        schemas = {s.name: s for s in tvdp_schema()}
        images = schemas["images"]
        for col in ("lat", "lng", "timestamp_capturing", "timestamp_uploading"):
            assert images.column(col).type is ColumnType.REAL
