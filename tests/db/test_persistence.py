"""Round-trip tests for JSON persistence."""

import pytest

from repro.db import (
    Column,
    ColumnType,
    Database,
    ForeignKey,
    TableSchema,
    dump_database,
    load_database,
)
from repro.errors import SchemaError

I, T = ColumnType.INTEGER, ColumnType.TEXT


def populated_tvdp():
    db = Database.tvdp()
    user = db.insert("users", {"name": "lasan", "role": "government"})
    for i in range(3):
        image = db.insert(
            "images",
            {
                "uri": f"img://{i}",
                "content_hash": f"hash{i}",
                "lat": 34.0 + i * 0.01,
                "lng": -118.0,
                "timestamp_capturing": float(i),
                "timestamp_uploading": float(i) + 0.5,
                "is_augmented": False,
                "uploader_id": user,
            },
        )
        db.insert(
            "image_fov",
            {
                "image_id": image,
                "direction_deg": 45.0,
                "angle_deg": 60.0,
                "range_m": 120.0,
            },
        )
        db.insert(
            "image_visual_features",
            {"image_id": image, "extractor_name": "color", "vector": [0.1, 0.2]},
        )
    # An augmented image referencing image 2 (self-FK within images).
    db.insert(
        "images",
        {
            "uri": "img://aug",
            "content_hash": "hash-aug",
            "lat": 34.0,
            "lng": -118.0,
            "timestamp_capturing": 9.0,
            "timestamp_uploading": 9.5,
            "is_augmented": True,
            "source_image_id": 2,
            "augmentation_name": "flip_h",
        },
    )
    return db


class TestPersistence:
    def test_round_trip_counts(self, tmp_path):
        db = populated_tvdp()
        path = tmp_path / "db.json"
        dump_database(db, path)
        restored = load_database(path)
        assert restored.row_counts() == db.row_counts()

    def test_round_trip_rows(self, tmp_path):
        db = populated_tvdp()
        path = tmp_path / "db.json"
        dump_database(db, path)
        restored = load_database(path)
        assert restored.table("images").all_rows() == db.table("images").all_rows()
        assert (
            restored.table("image_visual_features").all_rows()
            == db.table("image_visual_features").all_rows()
        )

    def test_indexes_restored(self, tmp_path):
        db = populated_tvdp()
        path = tmp_path / "db.json"
        dump_database(db, path)
        restored = load_database(path)
        table = restored.table("image_visual_features")
        assert "image_id" in table._indexes

    def test_fk_still_enforced_after_load(self, tmp_path):
        db = populated_tvdp()
        path = tmp_path / "db.json"
        dump_database(db, path)
        restored = load_database(path)
        from repro.errors import IntegrityError

        with pytest.raises(IntegrityError):
            restored.insert(
                "image_fov",
                {
                    "image_id": 999,
                    "direction_deg": 0.0,
                    "angle_deg": 60.0,
                    "range_m": 1.0,
                },
            )

    def test_pk_sequence_continues_after_load(self, tmp_path):
        db = populated_tvdp()
        path = tmp_path / "db.json"
        dump_database(db, path)
        restored = load_database(path)
        new_pk = restored.insert("users", {"name": "new", "role": "citizen"})
        existing = {row["user_id"] for row in db.table("users").all_rows()}
        assert new_pk not in existing

    def test_bad_version_raises(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text('{"version": 99, "tables": []}')
        with pytest.raises(SchemaError):
            load_database(path)

    def test_empty_database_round_trip(self, tmp_path):
        path = tmp_path / "db.json"
        dump_database(Database(), path)
        restored = load_database(path)
        assert restored.table_names() == []
