"""Regression: every time-shaped code path runs on simulated clocks.

The package-wide autouse fixture replaces ``time.sleep`` with an
assertion, so simply *driving* retries, breaker recovery, injected
latency, and modelled transfer times through here proves none of them
touch the wall clock.  (The ``no-sleep`` devtools lint pins the same
invariant statically.)
"""

from __future__ import annotations

import time

import pytest

from repro.edge import (
    PAPER_DEVICES,
    PAPER_MODELS,
    UploadPlan,
    dispatch_fleet_resilient,
    execute_upload,
    feature_vector_bytes,
    upload_fleet,
)
from repro.errors import FaultInjected
from repro.resilience import FaultPlan, ManualClock, Retry, SystemClock


def test_guard_itself_trips_on_real_sleep():
    with pytest.raises(AssertionError, match="real time.sleep"):
        time.sleep(0.001)


def test_system_clock_skips_nonpositive_sleep():
    SystemClock().sleep(0.0)  # must not reach time.sleep
    SystemClock().sleep(-1.0)


def test_retry_storm_is_sleepless(manual_clock, flaky_call):
    retry = Retry(max_attempts=6, base_delay_s=1.0, clock=manual_clock, site="t")
    assert retry.call(flaky_call(5)) == "ok"
    assert manual_clock.slept > 1.0  # minutes of virtual backoff, no real pause


def test_transfer_executor_defaults_to_virtual_time():
    plan_for = {
        device.name: UploadPlan(
            n_items=64, bytes_per_item=feature_vector_bytes(512), device=device
        )
        for device in PAPER_DEVICES
    }
    # No explicit clock and no active FaultPlan: transfers still must
    # not block — transfer_time_s is *modelled*, on a fresh ManualClock.
    report = upload_fleet(plan_for)
    assert report.delivery_ratio == 1.0
    for receipt in report.delivered.values():
        assert receipt.duration_s > 0.0  # simulated link time was spent


def test_chaos_latency_and_retries_are_sleepless():
    clock = ManualClock()
    plan = (
        FaultPlan(seed=3, clock=clock)
        .delay("edge.transfer", latency_s=5.0, at_calls={1})
        .kill("edge.transfer", at_calls={1})
    )
    upload = UploadPlan(
        n_items=8,
        bytes_per_item=feature_vector_bytes(128),
        device=PAPER_DEVICES[0],
    )
    with plan.activate():
        receipt = execute_upload(upload, seed=3)
    assert receipt.attempts >= 2  # the killed attempt was retried
    assert clock.slept >= 5.0  # injected latency landed on the virtual clock


def test_resilient_dispatch_is_sleepless():
    clock = ManualClock()
    plan = FaultPlan(seed=5, clock=clock).kill(
        "edge.dispatch", rate=0.5, max_faults=4
    )
    with plan.activate():
        report = dispatch_fleet_resilient(
            list(PAPER_DEVICES), list(PAPER_MODELS), 1_000.0, seed=5
        )
    # Faults either retried into success or isolated per device; nothing
    # raised out and nothing slept for real (the guard would have fired).
    assert set(report.decisions) | set(report.failed) == {
        d.name for d in PAPER_DEVICES
    }


def test_persistence_retries_are_sleepless(tmp_path):
    from repro.core import TVDP
    from repro.db.persistence import dump_database, load_database

    platform = TVDP()
    plan = FaultPlan(seed=1).kill("db.save", at_calls={1}).kill(
        "db.load", error=lambda s, i: FaultInjected(s, i), at_calls={1}
    )
    target = tmp_path / "db.json"
    with plan.activate():
        dump_database(platform.db, target)
        restored = load_database(target)
    assert restored.table_names() == platform.db.table_names()
    assert plan.summary() == {"db.save": {"error": 1}, "db.load": {"error": 1}}
