"""FaultPlan scripting, determinism, and the contextvar activation."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import FaultInjected, ResilienceError
from repro.resilience import (
    FaultPlan,
    FaultRule,
    ManualClock,
    active_plan,
    corrupt,
    current_clock,
    inject,
    seed_from_env,
)
from repro.resilience.clock import SystemClock
from repro.resilience.faults import SEED_ENV_VAR


class TestFaultRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ResilienceError, match="unknown fault kind"):
            FaultRule(site="s", kind="explode")

    def test_rate_bounds(self):
        with pytest.raises(ResilienceError, match="rate"):
            FaultRule(site="s", kind="error", rate=1.5)

    def test_at_calls_one_based(self):
        with pytest.raises(ResilienceError, match="1-based"):
            FaultRule(site="s", kind="error", at_calls=frozenset({0}))


class TestScheduling:
    def test_at_calls_fires_exactly_there(self):
        plan = FaultPlan(seed=1).kill("s", at_calls={2, 4})
        outcomes = []
        with plan.activate():
            for _ in range(5):
                try:
                    inject("s")
                    outcomes.append("ok")
                except FaultInjected:
                    outcomes.append("fault")
        assert outcomes == ["ok", "fault", "ok", "fault", "ok"]

    def test_max_faults_caps_injections(self):
        plan = FaultPlan(seed=1).kill("s", rate=1.0, max_faults=2)
        with plan.activate():
            for _ in range(10):
                try:
                    inject("s")
                except FaultInjected:
                    pass
        assert plan.summary()["s"]["error"] == 2

    def test_stochastic_schedule_reproducible(self):
        def run(seed):
            plan = FaultPlan(seed=seed).kill("s", rate=0.4)
            with plan.activate():
                for _ in range(50):
                    try:
                        inject("s")
                    except FaultInjected:
                        pass
            return plan.events

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_latency_spends_plan_clock(self):
        clock = ManualClock()
        plan = FaultPlan(seed=1, clock=clock).delay("s", latency_s=1.5, at_calls={1})
        with plan.activate():
            inject("s")
            inject("s")
        assert clock.slept == pytest.approx(1.5)
        assert plan.summary()["s"]["latency"] == 1

    def test_custom_error_factory(self):
        plan = FaultPlan(seed=1).kill(
            "s", error=lambda site, idx: TimeoutError(f"{site}#{idx}")
        )
        with plan.activate():
            with pytest.raises(TimeoutError, match="s#1"):
                inject("s")

    def test_corruption_garbles_payload(self):
        plan = FaultPlan(seed=1).garble("s", at_calls={1})
        with plan.activate():
            first = corrupt("s", '{"fine": true}')
            second = corrupt("s", '{"fine": true}')
        assert "<<corrupted>>" in first
        assert second == '{"fine": true}'

    def test_sites_independent(self):
        plan = FaultPlan(seed=1).kill("a", at_calls={1})
        with plan.activate():
            inject("b")  # other site: untouched
            with pytest.raises(FaultInjected):
                inject("a")
        assert plan.calls("a") == 1 and plan.calls("b") == 1


class TestActivation:
    def test_no_plan_means_noop(self):
        assert active_plan() is None
        inject("anything")  # must not raise
        assert corrupt("anything", "v") == "v"

    def test_activation_scoped(self):
        plan = FaultPlan(seed=1).kill("s")
        with plan.activate():
            assert active_plan() is plan
        assert active_plan() is None
        inject("s")  # deactivated: no fault

    def test_injections_metered_and_span_annotated(self):
        plan = FaultPlan(seed=1).kill("s", at_calls={1})
        with plan.activate(), obs.span("op") as sp:
            with pytest.raises(FaultInjected):
                inject("s")
        counter = obs.metrics().counter(
            "resilience.faults", {"site": "s", "kind": "error"}
        )
        assert counter.value == 1
        assert sp.attrs["fault"] == "error" and sp.attrs["fault_site"] == "s"


class TestClockResolution:
    def test_explicit_wins(self, manual_clock):
        assert current_clock(manual_clock) is manual_clock

    def test_plan_clock_next(self):
        plan = FaultPlan(seed=1)
        with plan.activate():
            assert current_clock() is plan.clock

    def test_system_clock_last(self):
        assert isinstance(current_clock(), SystemClock)


class TestSeedFromEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(SEED_ENV_VAR, raising=False)
        assert seed_from_env(default=5) == 5

    def test_reads_env(self, monkeypatch):
        monkeypatch.setenv(SEED_ENV_VAR, "17")
        assert seed_from_env() == 17

    def test_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(SEED_ENV_VAR, "soon")
        with pytest.raises(ResilienceError, match=SEED_ENV_VAR):
            seed_from_env()
