"""Policy semantics: Retry, Timeout, CircuitBreaker, Fallback, stacking."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import (
    APIError,
    CallTimeoutError,
    CircuitOpenError,
    RetryBudgetExceeded,
)
from repro.resilience import (
    CircuitBreaker,
    Fallback,
    ManualClock,
    Retry,
    Timeout,
    backoff_delays,
    breaker_states,
    execute,
    get_breaker,
    resilient,
)


class TestBackoffDelays:
    def test_deterministic_per_seed(self):
        a = backoff_delays(6, seed=42)
        b = backoff_delays(6, seed=42)
        assert a == b
        assert backoff_delays(6, seed=43) != a

    def test_monotone_and_capped(self):
        delays = backoff_delays(8, base_delay_s=0.1, max_delay_s=1.0, budget_s=100.0)
        assert all(b >= a for a, b in zip(delays, delays[1:]))
        assert all(d <= 1.0 for d in delays)

    def test_budget_stops_schedule(self):
        delays = backoff_delays(50, base_delay_s=1.0, max_delay_s=10.0, budget_s=5.0)
        assert sum(delays) <= 5.0


class TestRetry:
    def test_transient_failures_absorbed(self, manual_clock, flaky_call):
        call = flaky_call(2)
        retry = Retry(max_attempts=4, clock=manual_clock, site="t")
        assert retry.call(call) == "ok"
        assert call.calls == 3
        assert manual_clock.slept > 0  # backoff happened, virtually

    def test_exhaustion_reraises_last_error(self, manual_clock, flaky_call):
        call = flaky_call(10, error=ConnectionError("down"))
        retry = Retry(max_attempts=3, clock=manual_clock, site="t")
        with pytest.raises(ConnectionError, match="down"):
            retry.call(call)
        assert call.calls == 3

    def test_exhaustion_can_wrap(self, manual_clock, flaky_call):
        retry = Retry(max_attempts=2, reraise=False, clock=manual_clock, site="t")
        with pytest.raises(RetryBudgetExceeded) as err:
            retry.call(flaky_call(10))
        assert isinstance(err.value.last_error, ConnectionError)

    def test_non_retryable_propagates_immediately(self, manual_clock, flaky_call):
        call = flaky_call(1, error=ValueError("a bug, not weather"))
        retry = Retry(max_attempts=5, clock=manual_clock, site="t")
        with pytest.raises(ValueError):
            retry.call(call)
        assert call.calls == 1

    def test_retryable_predicate_filters(self, manual_clock, flaky_call):
        call = flaky_call(1, error=APIError(404, "gone"))
        retry = Retry(
            max_attempts=5,
            retry_on=(APIError,),
            retryable=lambda exc: getattr(exc, "status", 0) >= 500,
            clock=manual_clock,
            site="t",
        )
        with pytest.raises(APIError):
            retry.call(call)
        assert call.calls == 1  # 4xx: one attempt, no retry

    def test_retries_metered(self, manual_clock, flaky_call):
        Retry(max_attempts=3, clock=manual_clock, site="metered").call(flaky_call(1))
        counter = obs.metrics().counter("resilience.retries", {"site": "metered"})
        assert counter.value == 1


class TestTimeout:
    def test_fast_call_passes(self, manual_clock):
        policy = Timeout(1.0, clock=manual_clock, site="t")
        assert policy.call(lambda: "fine") == "fine"

    def test_slow_call_converted(self, manual_clock):
        policy = Timeout(0.5, clock=manual_clock, site="t")

        def slow():
            manual_clock.advance(2.0)
            return "late"

        with pytest.raises(CallTimeoutError) as err:
            policy.call(slow)
        assert err.value.elapsed_s == pytest.approx(2.0)


class TestCircuitBreaker:
    def make(self, clock, **kwargs):
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("recovery_time_s", 30.0)
        return CircuitBreaker("test", clock=clock, **kwargs)

    def trip(self, breaker, failing):
        for _ in range(breaker.failure_threshold):
            with pytest.raises(ConnectionError):
                breaker.call(failing)
        assert breaker.state == "open"

    def test_trips_after_threshold_and_fast_fails(self, manual_clock, flaky_call):
        breaker = self.make(manual_clock)
        self.trip(breaker, flaky_call(99))
        with pytest.raises(CircuitOpenError) as err:
            breaker.call(lambda: "never runs")
        assert err.value.retry_after_s > 0

    def test_recovers_via_half_open_probe(self, manual_clock, flaky_call):
        breaker = self.make(manual_clock)
        self.trip(breaker, flaky_call(99))
        manual_clock.advance(31.0)
        assert breaker.call(lambda: "probe") == "probe"
        assert breaker.state == "closed"
        # The state machine went open -> half_open -> closed, never
        # open -> closed directly.
        states = [(frm, to) for frm, to, _ in breaker.transitions]
        assert ("open", "closed") not in states
        assert ("open", "half_open") in states and ("half_open", "closed") in states

    def test_failed_probe_reopens(self, manual_clock, flaky_call):
        breaker = self.make(manual_clock)
        self.trip(breaker, flaky_call(99))
        manual_clock.advance(31.0)
        with pytest.raises(ConnectionError):
            breaker.call(flaky_call(1))
        assert breaker.state == "open"

    def test_success_resets_consecutive_failures(self, manual_clock, flaky_call):
        breaker = self.make(manual_clock)
        for _ in range(2):
            with pytest.raises(ConnectionError):
                breaker.call(flaky_call(1))
        breaker.call(lambda: "ok")
        assert breaker.failures == 0 and breaker.state == "closed"

    def test_failure_on_scopes_what_counts(self, manual_clock):
        breaker = self.make(manual_clock, failure_on=(ConnectionError,))
        for _ in range(5):
            with pytest.raises(KeyError):
                breaker.call(failing := (lambda: (_ for _ in ()).throw(KeyError("x"))))
        assert breaker.state == "closed"  # KeyError is a bug, not weather

    def test_registry_snapshot(self, manual_clock, flaky_call):
        breaker = get_breaker("snap", failure_threshold=1, clock=manual_clock)
        with pytest.raises(ConnectionError):
            breaker.call(flaky_call(1))
        states = breaker_states()
        assert states["snap"]["state"] == "open"
        assert states["snap"]["trips"] == 1


class TestFallbackAndStacking:
    def test_fallback_value(self, manual_clock):
        policy = Fallback([], catch=(ConnectionError,), site="t")
        assert policy.call(lambda: (_ for _ in ()).throw(ConnectionError())) == []

    def test_fallback_callable_receives_error(self):
        policy = Fallback(lambda exc: type(exc).__name__, catch=(ConnectionError,))
        assert policy.call(lambda: (_ for _ in ()).throw(ConnectionError())) == (
            "ConnectionError"
        )

    def test_resilient_stacks_outermost_first(self, manual_clock, flaky_call):
        call = flaky_call(5)  # more failures than the retry absorbs

        @resilient(
            Fallback("degraded", catch=(ConnectionError,)),
            Retry(max_attempts=3, clock=manual_clock, retry_on=(ConnectionError,)),
        )
        def operation():
            return call()

        assert operation() == "degraded"
        assert call.calls == 3  # retry ran out, fallback absorbed

    def test_execute_ad_hoc(self, manual_clock, flaky_call):
        call = flaky_call(1)
        result = execute(
            call, Retry(max_attempts=2, clock=manual_clock, retry_on=(ConnectionError,))
        )
        assert result == "ok"
