"""Shared failure-mode fixtures for the resilience suites.

Other test packages import these helpers too (the API router tests use
:func:`failing_stub` instead of hand-rolled raising handlers), the same
way ``tests.devtools.conftest`` shares ``TINY_LAYERS``.

The autouse guard replaces ``time.sleep`` with an assertion for every
test in this package: the whole resilience suite — retry storms,
breaker recovery windows, injected latency — must run in *simulated*
time only.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.resilience import ManualClock, reset_breakers


def failing_stub(error: BaseException):
    """A callable (any signature) that always raises ``error``."""

    def stub(*args, **kwargs):
        raise error

    return stub


class FlakyCall:
    """Callable that fails its first ``failures`` invocations, then
    returns ``result`` forever; ``calls`` counts every invocation."""

    def __init__(self, failures: int, error=None, result: object = "ok") -> None:
        self.failures = failures
        self.error = error if error is not None else ConnectionError("link dropped")
        self.result = result
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return self.result


class FailAfter:
    """Callable that succeeds ``successes`` times, then raises ``error``
    forever — the shape of a dependency that degrades mid-run."""

    def __init__(self, successes: int, error=None, result: object = "ok") -> None:
        self.successes = successes
        self.error = error if error is not None else ConnectionError("link dropped")
        self.result = result
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        if self.calls > self.successes:
            raise self.error
        return self.result


@pytest.fixture
def manual_clock() -> ManualClock:
    return ManualClock()


@pytest.fixture
def flaky_call():
    """Factory: ``flaky_call(failures, error=..., result=...)``."""
    return FlakyCall


@pytest.fixture
def fail_after():
    """Factory: ``fail_after(successes, error=..., result=...)``."""
    return FailAfter


@pytest.fixture(autouse=True)
def _isolated_and_sleepless(monkeypatch):
    """Fresh obs/breaker state per test, and any real ``time.sleep``
    fails the test outright."""
    obs.reset()
    reset_breakers()

    def forbidden_sleep(seconds: float) -> None:
        raise AssertionError(
            f"real time.sleep({seconds!r}) during a resilience test — "
            f"route waits through an injected Clock"
        )

    monkeypatch.setattr(time, "sleep", forbidden_sleep)
    yield
    reset_breakers()
