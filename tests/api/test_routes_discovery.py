"""Tests for API route discovery."""

from repro.api import Request, TVDPClient, TVDPService
from repro.core import TVDP


class TestRouteDiscovery:
    def test_routes_listed(self):
        service = TVDPService(TVDP(), deterministic_keys=True)
        client = TVDPClient(service)
        user_id = client.register_user("x", role="citizen")
        client.create_key(user_id)
        body = client._call("GET", "/routes")
        routes = body["routes"]
        # The paper's seven common APIs are all present.
        assert "POST /images" in routes
        assert "POST /search" in routes
        assert "GET /images/{image_id}" in routes
        assert "POST /features/{extractor}" in routes
        assert "POST /models/{name}/predict" in routes
        assert "GET /models/{name}/download" in routes
        assert "POST /models" in routes
        assert routes == sorted(routes)

    def test_routes_require_key(self):
        service = TVDPService(TVDP())
        response = service.handle(Request("GET", "/routes"))
        assert response.status == 401
