"""16-thread hammer over ``Router.dispatch`` with the lock sanitizers on.

The serving-readiness passes promise that every route — including the
``/debug/*`` introspection family, which reads the most shared state —
is safe under a thread pool.  This suite is the runtime witness: 16
threads hammer the dispatch boundary while the lock-order *and*
lock-coverage sanitizers watch every acquisition and guarded-attribute
write, and the run must end with zero violations and exactly-consistent
``/stats`` counters.

Under ``REPRO_SANITIZE=1`` (the CI sanitize job) the repo-wide conftest
already installed the sanitizers; otherwise this module installs its
own pair from the checked-in concurrency manifest, so the hammer is a
sanitizer run in every configuration.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest

import tests.conftest as repo_hooks
from repro import obs
from repro.api import Request, TVDPClient, TVDPService
from repro.core import TVDP
from repro.datasets import generate_lasan_dataset
from repro.devtools.sanitizers import LockCoverageSanitizer, LockOrderSanitizer
from repro.features import ColorHistogramExtractor
from repro.imaging import CLEANLINESS_CLASSES

N_THREADS = 16
ROUNDS_PER_THREAD = 6

_MANIFEST = Path(__file__).resolve().parents[2] / "tools" / "concurrency_manifest.json"

SEARCH_SPEC = {
    "type": "spatial",
    "region": {
        "min_lat": 34.0,
        "min_lng": -118.3,
        "max_lat": 34.1,
        "max_lng": -118.2,
    },
}


@pytest.fixture()
def sanitizers():
    """(order, coverage, order_offset, coverage_offset) — the repo-wide
    pair when active, else a locally installed pair."""
    if repo_hooks._sanitizer is not None or repo_hooks._coverage is not None:
        order, coverage = repo_hooks._sanitizer, repo_hooks._coverage
        yield (
            order,
            coverage,
            len(order.violations) if order is not None else 0,
            len(coverage.violations) if coverage is not None else 0,
        )
        return
    order = LockOrderSanitizer()
    order.install()
    coverage = LockCoverageSanitizer()
    coverage.install_from_manifest(json.loads(_MANIFEST.read_text(encoding="utf-8")))
    try:
        yield order, coverage, 0, 0
    finally:
        coverage.uninstrument()
        order.uninstall()


@pytest.fixture()
def service(sanitizers):
    """A populated platform built *after* the sanitizers are live, so
    its locks and guarded containers are instrumented."""
    obs.reset()
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
    for record in generate_lasan_dataset(n_per_class=3, image_size=24, seed=0):
        platform.upload_image(
            record.image, record.fov, record.captured_at, record.uploaded_at,
            keywords=record.keywords,
        )
    platform.extract_features("color_hsv_20_20_10")
    yield TVDPService(platform, deterministic_keys=True)
    obs.reset()


def test_sixteen_thread_debug_hammer_is_violation_free(service, sanitizers):
    order, coverage, order_before, coverage_before = sanitizers
    client = TVDPClient(service)
    user_id = client.register_user("hammer", role="researcher")
    api_key = client.create_key(user_id)
    baseline_stats = service.handle(Request("GET", "/stats", api_key=api_key))
    assert baseline_stats.status == 200
    setup_requests = 3  # register + key + baseline stats

    def make_requests():
        return [
            Request("GET", "/stats", api_key=api_key),
            Request("GET", "/debug/slow", api_key=api_key),
            Request("GET", "/debug/hot", api_key=api_key),
            Request("GET", "/debug/resources", api_key=api_key),
            Request(
                "GET", "/debug/explain", body=dict(SEARCH_SPEC), api_key=api_key
            ),
            Request("POST", "/search", body=dict(SEARCH_SPEC), api_key=api_key),
            Request("GET", "/metrics"),
            Request("GET", "/health"),
        ]

    per_thread = len(make_requests()) * ROUNDS_PER_THREAD
    statuses: list[list[int]] = [[] for _ in range(N_THREADS)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(N_THREADS)

    def worker(index: int) -> None:
        barrier.wait()
        try:
            for _ in range(ROUNDS_PER_THREAD):
                for request in make_requests():
                    statuses[index].append(service.handle(request).status)
        except BaseException as exc:  # surface into the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(t,), name=f"hammer-{t}")
        for t in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    flat = [s for per_worker in statuses for s in per_worker]
    assert len(flat) == N_THREADS * per_thread
    assert all(status == 200 for status in flat)

    # Zero sanitizer violations across every dispatch.
    if order is not None:
        fresh = order.violations[order_before:]
        assert fresh == [], "\n".join(v.render() for v in fresh)
    fresh_cov = coverage.violations[coverage_before:]
    assert fresh_cov == [], "\n".join(v.render() for v in fresh_cov)

    # /stats stayed consistent: read-only hammering moved no platform
    # state, and the request counters account for every dispatch.
    final_stats = service.handle(Request("GET", "/stats", api_key=api_key))
    assert final_stats.status == 200
    assert final_stats.body["blobs"] == baseline_stats.body["blobs"]
    assert final_stats.body["rows"] == baseline_stats.body["rows"]
    counters = obs.metrics().counter_values()
    dispatched = sum(
        value for name, value in counters.items() if name.startswith("api.requests")
    )
    # setup requests + hammer + the final /stats read just issued
    assert dispatched == setup_requests + N_THREADS * per_thread + 1
