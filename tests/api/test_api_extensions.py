"""Tests for the annotation and campaign API extensions."""

import numpy as np
import pytest

from repro.api import TVDPClient, TVDPService
from repro.core import TVDP
from repro.datasets import generate_lasan_dataset
from repro.errors import APIError
from repro.features import ColorHistogramExtractor
from repro.geo import FieldOfView, GeoPoint
from repro.imaging import CLEANLINESS_CLASSES

REGION = {
    "min_lat": 34.03,
    "min_lng": -118.27,
    "max_lat": 34.06,
    "max_lng": -118.23,
}


@pytest.fixture()
def client():
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    service = TVDPService(platform, deterministic_keys=True)
    client = TVDPClient(service)
    user_id = client.register_user("usc", role="researcher")
    client.create_key(user_id)
    return client


@pytest.fixture()
def records():
    return generate_lasan_dataset(n_per_class=2, image_size=32, seed=0)


class TestAnnotationRoutes:
    def test_define_annotate_list(self, client, records):
        client.define_classification(
            "street_cleanliness", list(CLEANLINESS_CLASSES)
        )
        record = records[0]
        image_id = client.add_image(
            record.image, record.fov, record.captured_at, record.uploaded_at
        )["image_id"]
        annotation_id = client.annotate(
            image_id, "street_cleanliness", record.label, 0.9, "machine", "svm_v1"
        )
        assert annotation_id > 0
        annotations = client.annotations_of(image_id)
        assert len(annotations) == 1
        assert annotations[0]["label"] == record.label
        assert annotations[0]["annotator"] == "svm_v1"

    def test_duplicate_classification_400(self, client):
        client.define_classification("graffiti", ["yes", "no"])
        with pytest.raises(APIError):
            client.define_classification("graffiti", ["a", "b"])

    def test_annotate_unknown_label_400(self, client, records):
        client.define_classification("graffiti", ["yes", "no"])
        record = records[0]
        image_id = client.add_image(
            record.image, record.fov, record.captured_at, record.uploaded_at
        )["image_id"]
        with pytest.raises(APIError) as err:
            client.annotate(image_id, "graffiti", "maybe")
        assert err.value.status == 400

    def test_empty_annotations(self, client, records):
        record = records[0]
        image_id = client.add_image(
            record.image, record.fov, record.captured_at, record.uploaded_at
        )["image_id"]
        assert client.annotations_of(image_id) == []


class TestCampaignRoutes:
    def test_campaign_lifecycle(self, client, records):
        campaign_id = client.create_campaign(REGION, target_coverage=0.8)
        report = client.campaign_tasks(campaign_id, max_tasks=10)
        assert report["coverage"] == 0.0  # nothing uploaded yet
        assert len(report["tasks"]) == 10

        # A worker fulfils the first task.
        task = report["tasks"][0]
        fov = FieldOfView(
            GeoPoint(task["lat"], task["lng"]),
            task["direction_deg"] or 0.0,
            60.0,
            300.0,
        )
        outcome = client.submit_capture(
            campaign_id, task["task_id"], records[0].image, fov, captured_at=1.0
        )
        assert outcome["reward"] == 1.0
        assert outcome["image_id"] > 0

        # Coverage improves on the next gap report.
        second = client.campaign_tasks(campaign_id, max_tasks=10)
        assert second["coverage"] > 0.0

    def test_submit_to_unknown_task_404(self, client, records):
        campaign_id = client.create_campaign(REGION)
        fov = FieldOfView(GeoPoint(34.04, -118.25), 0.0, 60.0, 100.0)
        with pytest.raises(APIError) as err:
            client.submit_capture(campaign_id, 424242, records[0].image, fov, 1.0)
        assert err.value.status == 404

    def test_unknown_campaign_404(self, client):
        with pytest.raises(APIError) as err:
            client.campaign_tasks(999)
        assert err.value.status == 404

    def test_bad_campaign_spec_400(self, client):
        with pytest.raises(APIError) as err:
            client.create_campaign({"min_lat": 1})
        assert err.value.status == 400

    def test_tasks_shrink_as_coverage_grows(self, client, records):
        campaign_id = client.create_campaign(REGION, min_directions=1)
        first = client.campaign_tasks(campaign_id)
        n_first = len(first["tasks"])
        # Upload a broad panoramic capture covering much of the region.
        fov = FieldOfView(
            GeoPoint(34.045, -118.25), 0.0, 360.0, 2_500.0
        )
        client.add_image(records[1].image, fov, 1.0, 2.0)
        second = client.campaign_tasks(campaign_id)
        assert len(second["tasks"]) < n_first
