"""Router.dispatch under concurrent threads.

The load harness (``benchmarks/loadgen.py``) drives the in-process API
from many threads; this suite pins down the thread-safety contract it
relies on — parallel dispatches to the metrics/health/search/debug
routes complete without dropped requests, corrupted counters, or (under
``REPRO_SANITIZE=1``, which the CI sanitize job sets) lock-order
inversions.
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.api import Request, TVDPClient, TVDPService
from repro.core import TVDP
from repro.datasets import generate_lasan_dataset
from repro.features import ColorHistogramExtractor
from repro.imaging import CLEANLINESS_CLASSES


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture()
def service():
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
    for record in generate_lasan_dataset(n_per_class=3, image_size=24, seed=0):
        platform.upload_image(
            record.image, record.fov, record.captured_at, record.uploaded_at,
            keywords=record.keywords,
        )
    platform.extract_features("color_hsv_20_20_10")
    return TVDPService(platform, deterministic_keys=True)


@pytest.fixture()
def api_key(service):
    client = TVDPClient(service)
    user_id = client.register_user("threads", role="researcher")
    return client.create_key(user_id)


SEARCH_SPEC = {
    "type": "spatial",
    "region": {
        "min_lat": 34.0,
        "min_lng": -118.3,
        "max_lat": 34.1,
        "max_lng": -118.2,
    },
}


def _hammer(service, requests, n_threads):
    """Dispatch ``requests`` round-robin from ``n_threads`` threads;
    returns (statuses, exceptions)."""
    statuses: list[list[int]] = [[] for _ in range(n_threads)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_threads)

    def worker(index: int) -> None:
        barrier.wait()
        try:
            for i, request in enumerate(requests):
                if i % n_threads != index:
                    continue
                response = service.handle(request())
                statuses[index].append(response.status)
        except BaseException as exc:  # surface into the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [s for worker_statuses in statuses for s in worker_statuses], errors


class TestConcurrentDispatch:
    def test_parallel_mixed_routes_all_succeed(self, service, api_key):
        def search():
            return Request("POST", "/search", body=dict(SEARCH_SPEC), api_key=api_key)

        def metrics():
            return Request("GET", "/metrics")

        def health():
            return Request("GET", "/health")

        def hot():
            return Request("GET", "/debug/hot", api_key=api_key)

        requests = [search, metrics, health, hot] * 25
        statuses, errors = _hammer(service, requests, n_threads=8)
        assert errors == []
        assert len(statuses) == 100
        assert all(status == 200 for status in statuses)

    def test_request_counters_lose_nothing_under_contention(self, service, api_key):
        n_requests = 120
        # The api_key fixture already routed two requests; diff from here.
        window_before = obs.latency_windows().count("http.request")

        def search():
            return Request("POST", "/search", body=dict(SEARCH_SPEC), api_key=api_key)

        statuses, errors = _hammer(service, [search] * n_requests, n_threads=6)
        assert errors == []
        assert len(statuses) == n_requests
        counters = obs.metrics().counter_values()
        dispatched = sum(
            value
            for name, value in counters.items()
            if name.startswith("api.requests") and 'route="/search"' in name
        )
        assert dispatched == n_requests
        assert (
            obs.latency_windows().count("http.request") - window_before == n_requests
        )
        hot = obs.hot_queries().top(1)
        assert hot and hot[0]["count"] == n_requests

    def test_parallel_errors_are_isolated(self, service, api_key):
        def good():
            return Request("GET", "/health")

        def bad():
            return Request("POST", "/search", body={"type": "warp"}, api_key=api_key)

        statuses, errors = _hammer(service, [good, bad] * 30, n_threads=6)
        assert errors == []
        assert statuses.count(200) == 30
        assert statuses.count(400) == 30
