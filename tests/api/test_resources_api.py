"""The ``/debug/resources`` and ``/debug/trace/{trace_id}`` endpoints.

Request traffic must show up in the usage report attributed to the
calling key's principal label and the query's shape, and any trace id
surfaced anywhere (usage exemplars, error bodies) must resolve to a
span tree at ``/debug/trace`` while it is still in the ring buffer.
"""

import pytest

from repro import obs
from repro.api import Request, TVDPClient, TVDPService
from repro.api.auth import principal_label
from repro.core import TVDP
from repro.datasets import generate_lasan_dataset
from repro.features import ColorHistogramExtractor


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture()
def service():
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    return TVDPService(platform, deterministic_keys=True)


@pytest.fixture()
def client(service):
    client = TVDPClient(service)
    user_id = client.register_user("resources", role="researcher")
    client.create_key(user_id)
    return client


def _seed_traffic(client) -> dict:
    """One upload + one spatial search; returns the search region."""
    record = generate_lasan_dataset(n_per_class=1, image_size=32, seed=0)[0]
    body = client.add_image(
        record.image, record.fov, record.captured_at, record.uploaded_at,
        keywords=record.keywords,
    )
    client.get_image(body["image_id"])  # a row read, so rows_scanned > 0
    region = {
        "min_lat": record.fov.camera.lat - 0.05,
        "min_lng": record.fov.camera.lng - 0.05,
        "max_lat": record.fov.camera.lat + 0.05,
        "max_lng": record.fov.camera.lng + 0.05,
    }
    client.search({"type": "spatial", "region": region})
    return region


class TestResourcesEndpoint:
    def test_requires_an_api_key(self, service):
        response = service.handle(Request("GET", "/debug/resources"))
        assert response.status == 401

    def test_attributes_traffic_to_principal_and_shape(self, client):
        _seed_traffic(client)
        report = client.resources()
        me = principal_label(client.api_key)
        by_principal = {row["key"]: row for row in report["by_principal"]}
        assert me in by_principal
        my_row = by_principal[me]
        assert my_row["count"] >= 3  # upload, image read, and search
        assert my_row["charges"].get("rows_scanned", 0) > 0
        assert my_row["charges"].get("probes.rtree", 0) > 0
        shapes = [row["key"] for row in report["by_shape"]]
        assert any(shape.startswith("spatial") for shape in shapes)
        operations = [row["key"] for row in report["by_operation"]]
        assert "POST /search" in operations and "POST /images" in operations

    def test_search_probes_and_bytes_are_charged(self, client):
        _seed_traffic(client)
        report = client.resources()
        [search_row] = [
            row for row in report["by_operation"] if row["key"] == "POST /search"
        ]
        assert any(
            kind.startswith("probes.") for kind in search_row["charges"]
        ), search_row["charges"]

    def test_exemplar_trace_resolves_at_debug_trace(self, client):
        _seed_traffic(client)
        report = client.resources()
        me = principal_label(client.api_key)
        [my_row] = [row for row in report["by_principal"] if row["key"] == me]
        exemplar = my_row["exemplar"]
        assert exemplar is not None
        tree = client.trace(exemplar["trace_id"])
        assert tree["trace_id"] == exemplar["trace_id"]
        assert tree["spans"] >= 1

    def test_top_bounds_each_ranking(self, client):
        _seed_traffic(client)
        report = client.resources(top=1)
        assert len(report["by_operation"]) == 1
        # top=1 keeps the costliest operation.
        full = client.resources()
        assert report["by_operation"][0]["key"] == full["by_operation"][0]["key"]

    @pytest.mark.parametrize(
        "params, message",
        [
            ({"top": "many"}, "top must be an integer"),
            ({"top": "0"}, "top must be >= 1"),
            ({"budget": "lots"}, "budget and window_s must be numeric"),
            ({"budget": "10", "window_s": "soon"}, "budget and window_s must be numeric"),
            ({"budget": "-1"}, "budget must be >= 0 and window_s > 0"),
            ({"budget": "10", "window_s": "0"}, "budget must be >= 0 and window_s > 0"),
        ],
    )
    def test_parameter_validation(self, client, service, params, message):
        response = service.handle(
            Request("GET", "/debug/resources", params=params, api_key=client.api_key)
        )
        assert response.status == 400
        assert response.body["error"]["message"] == message

    def test_what_if_budget_flags_would_shed(self, client):
        _seed_traffic(client)
        report = client.resources(budget=0.0, window_s=60.0)
        assert report["budget"] == {
            "cost_per_window": 0.0,
            "window_s": 60.0,
            "overridden": True,
        }
        assert principal_label(client.api_key) in report["would_shed"]
        # Dry run only: the un-overridden report stays budget-free.
        assert client.resources()["budget"] is None
        assert client.resources()["would_shed"] == []


class TestTraceEndpoint:
    def test_unknown_trace_is_404(self, client, service):
        response = service.handle(
            Request("GET", "/debug/trace/deadbeef", api_key=client.api_key)
        )
        assert response.status == 404
        assert "not in the ring buffer" in response.body["error"]["message"]

    def test_returns_the_reassembled_tree(self, client):
        _seed_traffic(client)
        search_span = obs.ring_buffer().spans("query.spatial")[-1]
        tree = client.trace(search_span.trace_id)
        [root] = tree["roots"]
        assert root["name"] == "client.request"
        assert tree["spans"] == len(
            [s for s in obs.ring_buffer().spans() if s.trace_id == search_span.trace_id]
        )

    def test_error_bodies_link_to_their_trace(self, client, service):
        response = service.handle(
            Request(
                "POST",
                "/search",
                body={"type": "no-such-family"},
                api_key=client.api_key,
            )
        )
        assert 400 <= response.status < 500
        trace_id = response.body["error"]["trace_id"]
        assert trace_id
        tree = client.trace(trace_id)
        assert any(root["name"] == "http.request" for root in tree["roots"])
