"""The /debug/hot and /debug/explain workload-observability routes."""

import pytest

from repro import obs
from repro.api import Request, TVDPClient, TVDPService
from repro.core import TVDP
from repro.datasets import generate_lasan_dataset
from repro.features import ColorHistogramExtractor
from repro.imaging import CLEANLINESS_CLASSES


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture()
def service():
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
    for record in generate_lasan_dataset(n_per_class=3, image_size=24, seed=0):
        receipt = platform.upload_image(
            record.image, record.fov, record.captured_at, record.uploaded_at,
            keywords=record.keywords,
        )
        platform.annotations.annotate(
            receipt.image_id, "street_cleanliness", record.label, 1.0, "human"
        )
    platform.extract_features("color_hsv_20_20_10")
    return TVDPService(platform, deterministic_keys=True)


@pytest.fixture()
def client(service):
    client = TVDPClient(service)
    user_id = client.register_user("debug", role="researcher")
    client.create_key(user_id)
    return client


SPATIAL_SPEC = {
    "type": "spatial",
    "region": {
        "min_lat": 34.0,
        "min_lng": -118.3,
        "max_lat": 34.1,
        "max_lng": -118.2,
    },
}


class TestDebugHot:
    def test_requires_api_key(self, service):
        response = service.handle(Request("GET", "/debug/hot"))
        assert response.status == 401

    def test_empty_tracker(self, client):
        report = client.hot_queries()
        assert report == {"hot": [], "tracked": 0, "evicted": 0}

    def test_searches_populate_hot_shapes(self, client):
        for _ in range(3):
            client.search(SPATIAL_SPEC)
        client.search({"type": "textual", "text": "trash"})
        report = client.hot_queries()
        assert report["tracked"] == 2
        top = report["hot"][0]
        assert top["shape"] == "spatial(mode=scene,region)"
        assert top["count"] == 3
        assert top["total_ms"] >= 0.0
        assert top["mean_ms"] <= top["max_ms"] + 1e-9

    def test_limit_param(self, client):
        client.search(SPATIAL_SPEC)
        client.search({"type": "textual", "text": "trash"})
        report = client.hot_queries(limit=1)
        assert len(report["hot"]) == 1
        assert report["tracked"] == 2

    def test_bad_limit_rejected(self, service, client):
        response = service.handle(
            Request(
                "GET", "/debug/hot", params={"limit": "nope"}, api_key=client.api_key
            )
        )
        assert response.status == 400
        response = service.handle(
            Request(
                "GET", "/debug/hot", params={"limit": "0"}, api_key=client.api_key
            )
        )
        assert response.status == 400


class TestDebugExplain:
    def test_requires_api_key(self, service):
        response = service.handle(
            Request("GET", "/debug/explain", body=SPATIAL_SPEC)
        )
        assert response.status == 401

    def test_analyze_default_fills_rows_and_probes(self, client):
        report = client.explain(SPATIAL_SPEC)
        assert report["analyze"] is True
        plan = report["plan"]
        assert plan["query_type"] == "spatial"
        assert "oriented_rtree" in plan["access_path"]
        assert plan["rows"] is not None
        assert plan["elapsed_ms"] >= 0.0
        assert plan["shape"] == "spatial(mode=scene,region)"
        assert any(
            name.startswith("platform.queries") for name in plan["counter_deltas"]
        )
        assert "rows=" in report["rendered"]

    def test_analyze_off_returns_bare_plan(self, client):
        report = client.explain(SPATIAL_SPEC, analyze=False)
        assert report["analyze"] is False
        assert report["plan"]["rows"] is None
        assert report["plan"]["counter_deltas"] == {}

    def test_hybrid_children_analyzed(self, client):
        spec = {
            "type": "hybrid",
            "queries": [
                SPATIAL_SPEC,
                {
                    "type": "visual",
                    "extractor": "color_hsv_20_20_10",
                    "vector": [0.0] * 50,
                    "k": 3,
                },
            ],
        }
        plan = client.explain(spec)["plan"]
        assert plan["query_type"] == "hybrid"
        assert len(plan["children"]) == 2
        for child in plan["children"]:
            assert child["rows"] is not None

    def test_bad_spec_is_400(self, service, client):
        response = service.handle(
            Request(
                "GET",
                "/debug/explain",
                body={"type": "warp"},
                api_key=client.api_key,
            )
        )
        assert response.status == 400

    def test_analyze_on_cold_extractor_is_409(self, clean_metrics):
        platform = TVDP()
        platform.register_extractor(ColorHistogramExtractor())
        service = TVDPService(platform, deterministic_keys=True)
        client = TVDPClient(service)
        user_id = client.register_user("cold", role="researcher")
        client.create_key(user_id)
        response = service.handle(
            Request(
                "GET",
                "/debug/explain",
                body={
                    "type": "visual",
                    "extractor": "color_hsv_20_20_10",
                    "vector": [0.0] * 50,
                    "k": 3,
                },
                api_key=client.api_key,
            )
        )
        assert response.status == 409

    def test_explain_itself_is_traced_with_plan_attached(self, client, service):
        client.explain(SPATIAL_SPEC)
        explain_spans = [
            s
            for s in obs.ring_buffer().spans("http.request")
            if s.attrs.get("route") == "/debug/explain"
        ]
        assert explain_spans
        assert explain_spans[-1].attrs["plan"]["query_type"] == "spatial"
