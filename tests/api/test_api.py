"""End-to-end tests of the API layer: auth, routes, client."""

import numpy as np
import pytest

from repro.api import (
    ApiKeyManager,
    Request,
    Router,
    TVDPClient,
    TVDPService,
    deserialize_classifier,
    image_from_payload,
    image_to_payload,
)
from repro.core import TVDP
from repro.datasets import generate_lasan_dataset
from repro.errors import APIError, AuthenticationError
from repro.features import ColorHistogramExtractor
from repro.imaging import CLEANLINESS_CLASSES, solid_color
from repro.api.http import Response


@pytest.fixture()
def service():
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    return TVDPService(platform, deterministic_keys=True)


@pytest.fixture()
def client(service):
    client = TVDPClient(service)
    user_id = client.register_user("usc", role="researcher")
    client.create_key(user_id)
    return client


@pytest.fixture()
def records():
    return generate_lasan_dataset(n_per_class=4, image_size=32, seed=0)


def upload_all(client, records):
    ids = []
    for record in records:
        body = client.add_image(
            record.image, record.fov, record.captured_at, record.uploaded_at,
            keywords=record.keywords,
        )
        ids.append(body["image_id"])
    return ids


class TestAuth:
    def test_issue_validate_revoke(self):
        platform = TVDP()
        manager = ApiKeyManager(platform.db, deterministic_seed=1)
        user = platform.add_user("x", role="citizen")
        key = manager.issue(user)
        assert manager.validate(key) == user
        assert manager.keys_of(user) == [key]
        manager.revoke(key)
        with pytest.raises(AuthenticationError):
            manager.validate(key)

    def test_missing_key_rejected(self):
        platform = TVDP()
        manager = ApiKeyManager(platform.db)
        with pytest.raises(AuthenticationError):
            manager.validate(None)
        with pytest.raises(AuthenticationError):
            manager.validate("bogus")

    def test_service_requires_key(self, service):
        response = service.handle(Request("GET", "/stats"))
        assert response.status == 401

    def test_key_for_unknown_user_404(self, service):
        response = service.handle(
            Request("POST", "/keys", body={"user_id": 999})
        )
        assert response.status == 404


class TestRouter:
    def test_404_and_405(self):
        router = Router()
        router.add("GET", "/things/{id}", lambda r: Response(200, {"id": r.path_params["id"]}))
        assert router.dispatch(Request("GET", "/nothing")).status == 404
        assert router.dispatch(Request("POST", "/things/3")).status == 405
        ok = router.dispatch(Request("GET", "/things/3"))
        assert ok.status == 200 and ok.body["id"] == "3"

    def test_exception_mapping(self):
        from tests.resilience.conftest import failing_stub

        router = Router()
        router.add("GET", "/boom", failing_stub(APIError(418, "teapot")))
        router.add("GET", "/crash", failing_stub(RuntimeError("oops")))
        assert router.dispatch(Request("GET", "/boom")).status == 418
        assert router.dispatch(Request("GET", "/crash")).status == 500


class TestImagePayload:
    def test_round_trip(self):
        image = solid_color(8, 8, (0.2, 0.5, 0.8))
        restored = image_from_payload(image_to_payload(image))
        assert restored == image

    def test_bad_payload(self):
        with pytest.raises(APIError):
            image_from_payload({})
        with pytest.raises(APIError):
            image_from_payload({"pixels_u8": [[1, 2], [3, 4]]})


class TestDataRoutes:
    def test_upload_and_download(self, client, records):
        ids = upload_all(client, records[:3])
        assert len(set(ids)) == 3
        metadata = client.get_image(ids[0])["metadata"]
        assert metadata["image_id"] == ids[0]
        with_pixels = client.get_image(ids[0], include_pixels=True)
        restored = image_from_payload(with_pixels["image"])
        assert restored == records[0].image

    def test_duplicate_upload_flagged(self, client, records):
        first = records[0]
        client.add_image(first.image, first.fov, 0.0, 1.0)
        body = client.add_image(first.image, first.fov, 0.0, 1.0)
        assert body["deduplicated"] is True

    def test_unknown_image_404(self, client):
        with pytest.raises(APIError) as err:
            client.get_image(424242)
        assert err.value.status == 404

    def test_search_textual(self, client, records):
        upload_all(client, records)
        hits = client.search({"type": "textual", "text": "encampment tent"})
        assert hits
        assert all("image_id" in h for h in hits)

    def test_search_spatial(self, client, records):
        upload_all(client, records)
        region = {
            "min_lat": 34.03, "min_lng": -118.27, "max_lat": 34.06, "max_lng": -118.23,
        }
        hits = client.search({"type": "spatial", "region": region, "mode": "camera"})
        assert hits  # downtown region contains the dataset

    def test_search_bad_spec_400(self, client):
        with pytest.raises(APIError) as err:
            client.search({"type": "spatial"})
        assert err.value.status == 400
        with pytest.raises(APIError) as err:
            client.search({"type": "quantum"})
        assert err.value.status == 400

    def test_features_roundtrip(self, client, records):
        ids = upload_all(client, records[:2])
        by_image = client.get_features("color_hsv_20_20_10", image=records[0].image)
        by_id = client.get_features("color_hsv_20_20_10", image_id=ids[0])
        assert by_image.shape == (50,)
        assert np.allclose(by_image, by_id)

    def test_features_unknown_extractor_404(self, client, records):
        with pytest.raises(APIError) as err:
            client.get_features("nonexistent", image=records[0].image)
        assert err.value.status == 404


class TestModelRoutes:
    def setup_trained_model(self, client, service, records):
        ids = upload_all(client, records)
        platform = service.platform
        platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))
        for image_id, record in zip(ids, records):
            platform.annotations.annotate(
                image_id, "street_cleanliness", record.label, 1.0, "human"
            )
        client.devise_model(
            "cleanliness_lr",
            extractor="color_hsv_20_20_10",
            classification="street_cleanliness",
            classifier="logistic_regression",
        )
        trained_on = client.train_model("cleanliness_lr")
        return ids, trained_on

    def test_devise_train_predict(self, client, service, records):
        ids, trained_on = self.setup_trained_model(client, service, records)
        assert trained_on == len(ids)
        result = client.predict("cleanliness_lr", image=records[0].image)
        assert result["label"] in CLEANLINESS_CLASSES
        assert 0.0 <= result["confidence"] <= 1.0

    def test_predict_with_annotate_writes_back(self, client, service, records):
        ids, _ = self.setup_trained_model(client, service, records)
        result = client.predict("cleanliness_lr", image_id=ids[0], annotate=True)
        assert result["annotated"] is True
        annotations = service.platform.annotations.annotations_of(ids[0])
        machine = [a for a in annotations if a.source == "machine"]
        assert machine and machine[0].annotator == "cleanliness_lr"

    def test_download_and_edge_side_load(self, client, service, records):
        self.setup_trained_model(client, service, records)
        payload = client.download_model("cleanliness_lr")
        assert payload["type"] == "LogisticRegression"
        model = deserialize_classifier(payload)
        vector = client.get_features("color_hsv_20_20_10", image=records[0].image)
        local = model.predict(vector[np.newaxis, :])[0]
        remote = client.predict("cleanliness_lr", image=records[0].image)["label"]
        assert str(local) == remote

    def test_devise_duplicate_409(self, client, service, records):
        self.setup_trained_model(client, service, records)
        with pytest.raises(APIError) as err:
            client.devise_model(
                "cleanliness_lr", "color_hsv_20_20_10", "street_cleanliness"
            )
        assert err.value.status == 409

    def test_train_without_annotations_409(self, client, service, records):
        upload_all(client, records[:2])
        service.platform.catalog.define(
            "street_cleanliness", list(CLEANLINESS_CLASSES)
        )
        client.devise_model(
            "empty_model", "color_hsv_20_20_10", "street_cleanliness",
            classifier="logistic_regression",
        )
        with pytest.raises(APIError) as err:
            client.train_model("empty_model")
        assert err.value.status == 409

    def test_unknown_model_404(self, client, records):
        with pytest.raises(APIError) as err:
            client.predict("ghost", image=records[0].image)
        assert err.value.status == 404

    def test_unknown_classifier_400(self, client):
        with pytest.raises(APIError) as err:
            client.devise_model("m", "color_hsv_20_20_10", "c", classifier="xgboost")
        assert err.value.status == 400

    def test_stats_lists_models(self, client, service, records):
        self.setup_trained_model(client, service, records)
        stats = client.stats()
        assert "cleanliness_lr" in stats["models"]
        assert stats["rows"]["images"] == len(records)
