"""The /metrics, /health, and /debug/slow endpoints, the request
middleware, and structured errors."""

import pytest

from repro import obs
from repro.api import Request, TVDPClient, TVDPService
from repro.core import TVDP
from repro.errors import APIError
from repro.features import ColorHistogramExtractor


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture()
def service():
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    return TVDPService(platform, deterministic_keys=True)


@pytest.fixture()
def client(service):
    client = TVDPClient(service)
    user_id = client.register_user("obs", role="researcher")
    client.create_key(user_id)
    return client


class TestMetricsEndpoint:
    def test_open_without_key(self, service):
        response = service.handle(Request("GET", "/metrics"))
        assert response.status == 200
        assert "counters" in response.body["metrics"]

    def test_json_snapshot_reflects_traffic(self, client):
        client.stats()
        snapshot = client.metrics()
        requests = {
            k: v for k, v in snapshot["counters"].items() if k.startswith("api.requests")
        }
        assert any('route="/stats"' in k and 'status="200"' in k for k in requests)

    def test_prometheus_format(self, client):
        client.stats()
        text = client.metrics(prometheus=True)
        assert "# TYPE tvdp_api_requests counter" in text
        assert "tvdp_api_request_ms_count" in text

    def test_prometheus_content_type_is_exposition_text(self, service):
        response = service.handle(
            Request("GET", "/metrics", params={"format": "prometheus"})
        )
        assert response.status == 200
        assert response.content_type == "text/plain; version=0.0.4"
        assert response.text is not None and response.text.endswith("\n")
        assert response.body == {}

    def test_json_default_content_type(self, service):
        response = service.handle(Request("GET", "/metrics"))
        assert response.content_type == "application/json"
        assert response.text is None


class TestHealthEndpoint:
    def test_open_without_key_and_cold_is_ok(self, service):
        response = service.handle(Request("GET", "/health"))
        assert response.status == 200
        assert response.body["status"] == "ok"
        assert all(o["insufficient_data"] for o in response.body["objectives"])

    def test_reports_every_default_objective(self, client):
        report = client.health()
        objectives = {o["objective"] for o in report["objectives"]}
        assert "query.spatial.p95" in objectives
        assert "upload.availability" in objectives
        assert "api.request.p99" in objectives

    def test_latency_spike_degrades_health(self, client):
        # Inject a sustained latency spike into the histogram the tracer
        # feeds: p95 of spatial queries lands at ~150 ms against the
        # 100 ms objective -> burn 1.5 -> degraded.
        histogram = obs.metrics().histogram(
            "span.duration_ms", {"span": "query.spatial"}
        )
        for _ in range(50):
            histogram.observe(150.0)
        report = client.health()
        assert report["status"] == "degraded"
        worst = report["objectives"][0]
        assert worst["objective"] == "query.spatial.p95"
        assert worst["status"] == "degraded"
        assert 1.0 < worst["burn_ratio"] <= 2.0

    def test_error_burst_fails_health(self, client):
        obs.metrics().counter("spans.total", {"span": "query.visual"}).inc(100)
        obs.metrics().counter("spans.errors", {"span": "query.visual"}).inc(10)
        report = client.health()
        assert report["status"] == "failing"
        assert report["objectives"][0]["objective"] == "query.visual.availability"


class TestDebugSlowEndpoint:
    def test_requires_key(self, service):
        response = service.handle(Request("GET", "/debug/slow"))
        assert response.status == 401

    def test_returns_worst_spans_with_deltas(self, client):
        client.stats()
        payload = client.slow_spans()
        assert "http.request" in payload["operations"]
        # The client wraps every dispatch in a client.request span, so
        # the outermost (and therefore slowest) span is the client's.
        record = payload["slow"][0]
        assert record["name"] == "client.request"
        assert "counter_deltas" in record
        assert "ancestry" in record

    def test_op_and_limit_filters(self, client):
        client.stats()
        client.stats()
        payload = client.slow_spans(op="http.request", limit=1)
        assert len(payload["slow"]) == 1
        none = client.slow_spans(op="no.such.op")
        assert none["slow"] == []

    def test_rejects_bad_limit(self, client):
        with pytest.raises(APIError) as err:
            client.slow_spans(limit=0)
        assert err.value.status == 400
        response = client._request("GET", "/metrics")  # still serving
        assert response.status == 200


class TestMiddleware:
    def test_every_dispatch_gets_request_id_and_timing(self, client, service):
        client.stats()
        snap = obs.snapshot()
        hist = snap["histograms"]['api.request_ms{method="GET",route="/stats"}']
        assert hist["count"] >= 1
        [span] = obs.ring_buffer().spans("http.request")[-1:]
        assert span.attrs["route"] == "/stats"
        assert span.attrs["status"] == 200
        assert span.attrs["request_id"].startswith("req-")

    def test_status_labelled_counters(self, service):
        key_request = Request("POST", "/users", body={"name": "a", "role": "citizen"})
        service.handle(key_request)
        counters = obs.snapshot()["counters"]
        assert (
            counters['api.requests{method="POST",route="/users",status="201"}'] == 1.0
        )


class TestStructuredErrors:
    def test_api_error_body_shape(self, service):
        response = service.handle(Request("GET", "/metrics"))  # warm auth-free
        response = service.handle(
            Request("POST", "/users", body=None)  # missing body -> 400
        )
        assert response.status == 400
        error = response.body["error"]
        assert error["type"] == "APIError"
        assert error["status"] == 400
        assert error["request_id"].startswith("req-")
        assert "body required" in error["message"]

    def test_auth_error_is_structured_and_counted(self, service):
        response = service.handle(Request("GET", "/stats", api_key="nope"))
        assert response.status == 401
        error = response.body["error"]
        assert error["request_id"].startswith("req-")
        counters = obs.snapshot()["counters"]
        assert any(k.startswith('api.errors{exception="') for k in counters)

    def test_unknown_route_and_method(self, service):
        # Straight through the router: unmatched paths and methods come
        # back as structured 404/405 envelopes from the middleware.
        missing = service.router.dispatch(Request("GET", "/metrics/nope"))
        assert missing.status == 404
        assert missing.body["error"]["type"] == "NotFound"
        wrong_method = service.router.dispatch(Request("DELETE", "/metrics"))
        assert wrong_method.status == 405
        assert wrong_method.body["error"]["type"] == "MethodNotAllowed"

    def test_errors_counter_labelled_by_route_and_type(self, client, service):
        with pytest.raises(APIError):
            client.get_image(999_999)
        counters = obs.snapshot()["counters"]
        key = 'api.errors{exception="APIError",route="/images/{image_id}"}'
        assert counters[key] == 1.0

    def test_client_surfaces_message_and_request_id(self, client):
        with pytest.raises(APIError) as err:
            client.get_image(999_999)
        assert err.value.status == 404
        assert "request req-" in err.value.message
