"""The /metrics endpoint, request middleware, and structured errors."""

import pytest

from repro import obs
from repro.api import Request, TVDPClient, TVDPService
from repro.core import TVDP
from repro.errors import APIError
from repro.features import ColorHistogramExtractor


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture()
def service():
    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    return TVDPService(platform, deterministic_keys=True)


@pytest.fixture()
def client(service):
    client = TVDPClient(service)
    user_id = client.register_user("obs", role="researcher")
    client.create_key(user_id)
    return client


class TestMetricsEndpoint:
    def test_open_without_key(self, service):
        response = service.handle(Request("GET", "/metrics"))
        assert response.status == 200
        assert "counters" in response.body["metrics"]

    def test_json_snapshot_reflects_traffic(self, client):
        client.stats()
        snapshot = client.metrics()
        requests = {
            k: v for k, v in snapshot["counters"].items() if k.startswith("api.requests")
        }
        assert any('route="/stats"' in k and 'status="200"' in k for k in requests)

    def test_prometheus_format(self, client):
        client.stats()
        text = client.metrics(prometheus=True)
        assert "# TYPE tvdp_api_requests counter" in text
        assert "tvdp_api_request_ms_count" in text


class TestMiddleware:
    def test_every_dispatch_gets_request_id_and_timing(self, client, service):
        client.stats()
        snap = obs.snapshot()
        hist = snap["histograms"]['api.request_ms{method="GET",route="/stats"}']
        assert hist["count"] >= 1
        [span] = obs.ring_buffer().spans("http.request")[-1:]
        assert span.attrs["route"] == "/stats"
        assert span.attrs["status"] == 200
        assert span.attrs["request_id"].startswith("req-")

    def test_status_labelled_counters(self, service):
        key_request = Request("POST", "/users", body={"name": "a", "role": "citizen"})
        service.handle(key_request)
        counters = obs.snapshot()["counters"]
        assert (
            counters['api.requests{method="POST",route="/users",status="201"}'] == 1.0
        )


class TestStructuredErrors:
    def test_api_error_body_shape(self, service):
        response = service.handle(Request("GET", "/metrics"))  # warm auth-free
        response = service.handle(
            Request("POST", "/users", body=None)  # missing body -> 400
        )
        assert response.status == 400
        error = response.body["error"]
        assert error["type"] == "APIError"
        assert error["status"] == 400
        assert error["request_id"].startswith("req-")
        assert "body required" in error["message"]

    def test_auth_error_is_structured_and_counted(self, service):
        response = service.handle(Request("GET", "/stats", api_key="nope"))
        assert response.status == 401
        error = response.body["error"]
        assert error["request_id"].startswith("req-")
        counters = obs.snapshot()["counters"]
        assert any(k.startswith('api.errors{exception="') for k in counters)

    def test_unknown_route_and_method(self, service):
        # Straight through the router: unmatched paths and methods come
        # back as structured 404/405 envelopes from the middleware.
        missing = service.router.dispatch(Request("GET", "/metrics/nope"))
        assert missing.status == 404
        assert missing.body["error"]["type"] == "NotFound"
        wrong_method = service.router.dispatch(Request("DELETE", "/metrics"))
        assert wrong_method.status == 405
        assert wrong_method.body["error"]["type"] == "MethodNotAllowed"

    def test_errors_counter_labelled_by_route_and_type(self, client, service):
        with pytest.raises(APIError):
            client.get_image(999_999)
        counters = obs.snapshot()["counters"]
        key = 'api.errors{exception="APIError",route="/images/{image_id}"}'
        assert counters[key] == 1.0

    def test_client_surfaces_message_and_request_id(self, client):
        with pytest.raises(APIError) as err:
            client.get_image(999_999)
        assert err.value.status == 404
        assert "request req-" in err.value.message
