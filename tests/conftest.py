"""Repo-wide test hooks: the runtime lock sanitizers.

``REPRO_SANITIZE=1 pytest ...`` installs, before test collection:

* :class:`repro.devtools.sanitizers.LockOrderSanitizer` — every
  ``threading.Lock``/``RLock`` the platform creates is wrapped, and
  lock-order inversions or blocking calls under a lock are recorded;
* :class:`repro.devtools.sanitizers.LockCoverageSanitizer` — every
  class the concurrency manifest (``tools/concurrency_manifest.json``)
  declares ``lock-guarded`` is instrumented, and any rebind or
  container mutation of a guarded attribute without the declared lock
  held by the current thread is recorded.

An autouse fixture fails any test whose execution introduced a
violation of either kind.  Without the variable, this module does
nothing.

CI runs the concurrency-sensitive suites this way in the ``sanitize``
job; locally it is opt-in because the wrappers add a little overhead
to every acquisition and attribute write.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

_sanitizer = None
_coverage = None


def pytest_configure(config: pytest.Config) -> None:
    global _sanitizer, _coverage
    if os.environ.get("REPRO_SANITIZE") != "1":
        return
    from repro.devtools.sanitizers import LockCoverageSanitizer, LockOrderSanitizer

    _sanitizer = LockOrderSanitizer()
    _sanitizer.install()
    manifest_path = Path(__file__).resolve().parents[1] / "tools" / "concurrency_manifest.json"
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except ValueError:
            manifest = None
        if manifest is not None:
            _coverage = LockCoverageSanitizer()
            _coverage.install_from_manifest(manifest)
    config.addinivalue_line(
        "markers", "sanitized: runtime lock sanitizers are active"
    )


def pytest_unconfigure(config: pytest.Config) -> None:
    global _sanitizer, _coverage
    if _coverage is not None:
        _coverage.uninstrument()
        _coverage = None
    if _sanitizer is not None:
        _sanitizer.uninstall()
        _sanitizer = None


@pytest.fixture(autouse=True)
def _lock_order_guard(request: pytest.FixtureRequest):
    """Fail the test that introduced a sanitizer violation."""
    if _sanitizer is None and _coverage is None:
        yield
        return
    before = len(_sanitizer.violations) if _sanitizer is not None else 0
    before_cov = len(_coverage.violations) if _coverage is not None else 0
    yield
    fresh = list(_sanitizer.violations[before:]) if _sanitizer is not None else []
    if _coverage is not None:
        fresh.extend(_coverage.violations[before_cov:])
    if fresh:
        rendered = "\n".join(v.render() for v in fresh)
        pytest.fail(
            f"lock sanitizer recorded {len(fresh)} violation(s) during "
            f"{request.node.nodeid}:\n{rendered}",
            pytrace=False,
        )
