"""Repo-wide test hooks: the runtime lock-order sanitizer.

``REPRO_SANITIZE=1 pytest ...`` installs
:class:`repro.devtools.sanitizers.LockOrderSanitizer` before test
collection (so every ``threading.Lock``/``RLock`` the platform creates
is wrapped), and an autouse fixture fails any test whose execution
introduced a lock-order inversion or a blocking call under a lock.
Without the variable, this module does nothing.

CI runs the concurrency-sensitive suites this way in the ``sanitize``
job; locally it is opt-in because the wrappers add a little overhead
to every acquisition.
"""

from __future__ import annotations

import os

import pytest

_sanitizer = None


def pytest_configure(config: pytest.Config) -> None:
    global _sanitizer
    if os.environ.get("REPRO_SANITIZE") != "1":
        return
    from repro.devtools.sanitizers import LockOrderSanitizer

    _sanitizer = LockOrderSanitizer()
    _sanitizer.install()
    config.addinivalue_line(
        "markers", "sanitized: runtime lock-order sanitizer is active"
    )


def pytest_unconfigure(config: pytest.Config) -> None:
    global _sanitizer
    if _sanitizer is not None:
        _sanitizer.uninstall()
        _sanitizer = None


@pytest.fixture(autouse=True)
def _lock_order_guard(request: pytest.FixtureRequest):
    """Fail the test that introduced a sanitizer violation."""
    if _sanitizer is None:
        yield
        return
    before = len(_sanitizer.violations)
    yield
    fresh = _sanitizer.violations[before:]
    if fresh:
        rendered = "\n".join(v.render() for v in fresh)
        pytest.fail(
            f"lock sanitizer recorded {len(fresh)} violation(s) during "
            f"{request.node.nodeid}:\n{rendered}",
            pytrace=False,
        )
