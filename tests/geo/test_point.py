"""Tests for GeoPoint and BoundingBox."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeoError
from repro.geo import BoundingBox, GeoPoint

lat_st = st.floats(min_value=-89.0, max_value=89.0, allow_nan=False)
lng_st = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)
points_st = st.builds(GeoPoint, lat=lat_st, lng=lng_st)


class TestGeoPoint:
    def test_valid_construction(self):
        p = GeoPoint(34.05, -118.25)
        assert p.lat == 34.05
        assert p.lng == -118.25

    def test_latitude_out_of_range_raises(self):
        with pytest.raises(GeoError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(GeoError):
            GeoPoint(-90.1, 0.0)

    def test_longitude_out_of_range_raises(self):
        with pytest.raises(GeoError):
            GeoPoint(0.0, 181.0)
        with pytest.raises(GeoError):
            GeoPoint(0.0, -180.5)

    def test_boundary_values_allowed(self):
        GeoPoint(90.0, 180.0)
        GeoPoint(-90.0, -180.0)

    def test_as_tuple(self):
        assert GeoPoint(1.0, 2.0).as_tuple() == (1.0, 2.0)

    def test_equality_and_hash(self):
        assert GeoPoint(1.0, 2.0) == GeoPoint(1.0, 2.0)
        assert hash(GeoPoint(1.0, 2.0)) == hash(GeoPoint(1.0, 2.0))
        assert GeoPoint(1.0, 2.0) != GeoPoint(2.0, 1.0)

    @given(points_st)
    def test_dict_round_trip(self, p):
        assert GeoPoint.from_dict(p.to_dict()) == p

    def test_frozen(self):
        p = GeoPoint(0.0, 0.0)
        with pytest.raises(AttributeError):
            p.lat = 5.0


class TestBoundingBox:
    def test_invalid_order_raises(self):
        with pytest.raises(GeoError):
            BoundingBox(2.0, 0.0, 1.0, 1.0)
        with pytest.raises(GeoError):
            BoundingBox(0.0, 2.0, 1.0, 1.0)

    def test_from_points(self):
        box = BoundingBox.from_points(
            [GeoPoint(1.0, 5.0), GeoPoint(-1.0, 7.0), GeoPoint(0.5, 6.0)]
        )
        assert box == BoundingBox(-1.0, 5.0, 1.0, 7.0)

    def test_from_points_empty_raises(self):
        with pytest.raises(GeoError):
            BoundingBox.from_points([])

    def test_contains_point_inclusive(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains_point(GeoPoint(0.0, 0.0))
        assert box.contains_point(GeoPoint(1.0, 1.0))
        assert box.contains_point(GeoPoint(0.5, 0.5))
        assert not box.contains_point(GeoPoint(1.0001, 0.5))

    def test_intersects_and_intersection(self):
        a = BoundingBox(0.0, 0.0, 2.0, 2.0)
        b = BoundingBox(1.0, 1.0, 3.0, 3.0)
        c = BoundingBox(5.0, 5.0, 6.0, 6.0)
        assert a.intersects(b)
        assert a.intersection(b) == BoundingBox(1.0, 1.0, 2.0, 2.0)
        assert not a.intersects(c)
        assert a.intersection(c) is None

    def test_touching_boxes_intersect(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(1.0, 1.0, 2.0, 2.0)
        assert a.intersects(b)

    def test_union(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(2.0, 2.0, 3.0, 3.0)
        assert a.union(b) == BoundingBox(0.0, 0.0, 3.0, 3.0)

    def test_contains_box(self):
        outer = BoundingBox(0.0, 0.0, 10.0, 10.0)
        inner = BoundingBox(1.0, 1.0, 2.0, 2.0)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_center_and_area(self):
        box = BoundingBox(0.0, 0.0, 2.0, 4.0)
        assert box.center == GeoPoint(1.0, 2.0)
        assert box.area == pytest.approx(8.0)

    def test_around_contains_center(self):
        center = GeoPoint(34.0, -118.0)
        box = BoundingBox.around(center, 500.0)
        assert box.contains_point(center)
        # Half a km is roughly 0.0045 degrees of latitude.
        assert box.max_lat - center.lat == pytest.approx(0.0045, rel=0.05)

    def test_around_negative_radius_raises(self):
        with pytest.raises(GeoError):
            BoundingBox.around(GeoPoint(0.0, 0.0), -1.0)

    def test_corners(self):
        box = BoundingBox(0.0, 0.0, 1.0, 2.0)
        corners = list(box.corners())
        assert len(corners) == 4
        assert GeoPoint(0.0, 0.0) in corners
        assert GeoPoint(1.0, 2.0) in corners

    def test_expand_clamps_to_globe(self):
        box = BoundingBox(89.0, 179.0, 90.0, 180.0).expand(5.0)
        assert box.max_lat == 90.0
        assert box.max_lng == 180.0

    @given(points_st, points_st)
    def test_union_of_two_point_boxes_contains_both(self, p, q):
        a = BoundingBox(p.lat, p.lng, p.lat, p.lng)
        b = BoundingBox(q.lat, q.lng, q.lat, q.lng)
        u = a.union(b)
        assert u.contains_point(p) and u.contains_point(q)

    @given(points_st, st.floats(min_value=1.0, max_value=50_000.0))
    def test_around_dict_round_trip(self, p, radius):
        box = BoundingBox.around(p, radius)
        assert BoundingBox.from_dict(box.to_dict()) == box

    @given(points_st)
    def test_intersection_is_commutative(self, p):
        a = BoundingBox.around(p, 1000.0)
        b = BoundingBox.around(p, 2000.0)
        assert a.intersection(b) == b.intersection(a)
        assert b.contains_box(a)
