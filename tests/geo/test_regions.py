"""Tests for named regions and region grids."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeoError
from repro.geo import BoundingBox, GeoPoint, LOS_ANGELES, DOWNTOWN_LA, RegionGrid


class TestNamedRegions:
    def test_downtown_inside_la(self):
        assert LOS_ANGELES.contains_box(DOWNTOWN_LA)


class TestRegionGrid:
    def setup_method(self):
        self.grid = RegionGrid(BoundingBox(0.0, 0.0, 10.0, 20.0), rows=5, cols=10)

    def test_len(self):
        assert len(self.grid) == 50

    def test_invalid_dims_raise(self):
        with pytest.raises(GeoError):
            RegionGrid(BoundingBox(0, 0, 1, 1), rows=0, cols=5)

    def test_cell_box(self):
        cell = self.grid.cell(0, 0)
        assert cell.box == BoundingBox(0.0, 0.0, 2.0, 2.0)
        cell = self.grid.cell(4, 9)
        assert cell.box == BoundingBox(8.0, 18.0, 10.0, 20.0)

    def test_cell_out_of_range_raises(self):
        with pytest.raises(GeoError):
            self.grid.cell(5, 0)
        with pytest.raises(GeoError):
            self.grid.cell(0, 10)

    def test_cell_of_interior_point(self):
        cell = self.grid.cell_of(GeoPoint(1.0, 1.0))
        assert cell is not None
        assert (cell.row, cell.col) == (0, 0)

    def test_cell_of_outside_point(self):
        assert self.grid.cell_of(GeoPoint(-1.0, 0.0)) is None

    def test_cell_of_max_corner_clamps(self):
        cell = self.grid.cell_of(GeoPoint(10.0, 20.0))
        assert cell is not None
        assert (cell.row, cell.col) == (4, 9)

    def test_cells_iterates_all(self):
        cells = list(self.grid.cells())
        assert len(cells) == 50
        assert len({(c.row, c.col) for c in cells}) == 50

    def test_cells_intersecting(self):
        hits = list(self.grid.cells_intersecting(BoundingBox(0.5, 0.5, 2.5, 2.5)))
        coords = {(c.row, c.col) for c in hits}
        assert coords == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_cells_intersecting_disjoint(self):
        assert list(self.grid.cells_intersecting(BoundingBox(50.0, 50.0, 60.0, 60.0))) == []

    @given(
        st.floats(min_value=0.01, max_value=9.99),
        st.floats(min_value=0.01, max_value=19.99),
    )
    def test_cell_of_returns_containing_cell(self, lat, lng):
        p = GeoPoint(lat, lng)
        cell = self.grid.cell_of(p)
        assert cell is not None
        assert cell.box.contains_point(p)

    def test_cells_tile_region_without_overlap(self):
        total_area = sum(c.box.area for c in self.grid.cells())
        assert total_area == pytest.approx(self.grid.region.area)
