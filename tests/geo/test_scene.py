"""Tests for scene-location estimation."""

import pytest

from repro.errors import GeoError
from repro.geo import (
    FieldOfView,
    GeoPoint,
    LocalizedScene,
    destination_point,
    scene_location,
    scene_location_multi,
)


def fov_at(camera, direction, angle=60.0, range_m=300.0):
    return FieldOfView(camera, direction, angle, range_m)


class TestSceneLocation:
    def test_single_fov_scene_is_mbr(self):
        fov = fov_at(GeoPoint(34.0, -118.0), 0.0)
        assert scene_location(fov) == fov.mbr()

    def test_empty_raises(self):
        with pytest.raises(GeoError):
            scene_location_multi([])

    def test_single_element_multi_matches_single(self):
        fov = fov_at(GeoPoint(34.0, -118.0), 0.0)
        assert scene_location_multi([fov]) == scene_location(fov)

    def test_two_crossing_fovs_shrink_estimate(self):
        # Two cameras 400 m apart, both looking at the midpoint scene.
        scene = GeoPoint(34.0, -118.0)
        cam_a = destination_point(scene, 180.0, 200.0)
        cam_b = destination_point(scene, 270.0, 200.0)
        fov_a = fov_at(cam_a, 0.0)
        fov_b = fov_at(cam_b, 90.0)
        refined = scene_location_multi([fov_a, fov_b])
        assert refined.contains_point(scene)
        assert refined.area < fov_a.mbr().area
        assert refined.area < fov_b.mbr().area

    def test_disjoint_fovs_fall_back_to_union(self):
        a = fov_at(GeoPoint(34.0, -118.0), 0.0, range_m=100.0)
        far_cam = destination_point(GeoPoint(34.0, -118.0), 90.0, 50_000.0)
        b = fov_at(far_cam, 0.0, range_m=100.0)
        box = scene_location_multi([a, b])
        assert box.contains_box(a.mbr()) or box.intersects(a.mbr())


class TestLocalizedScene:
    def test_confidence_grows_with_support(self):
        scene = GeoPoint(34.0, -118.0)
        cams = [destination_point(scene, bearing, 200.0) for bearing in (0, 90, 180)]
        fovs = [
            fov_at(cam, (bearing + 180) % 360)
            for cam, bearing in zip(cams, (0, 90, 180))
        ]
        single = LocalizedScene.estimate(fovs[:1])
        triple = LocalizedScene.estimate(fovs)
        assert triple.supporting_fovs == 3
        assert triple.confidence > single.confidence

    def test_confidence_bounds(self):
        fov = fov_at(GeoPoint(34.0, -118.0), 0.0)
        est = LocalizedScene.estimate([fov])
        assert 0.0 < est.confidence < 1.0
