"""Tests for the Field-of-View sector model (paper Fig. 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeoError
from repro.geo import (
    BoundingBox,
    FieldOfView,
    GeoPoint,
    destination_point,
)

camera_st = st.builds(
    GeoPoint,
    lat=st.floats(min_value=-60.0, max_value=60.0, allow_nan=False),
    lng=st.floats(min_value=-170.0, max_value=170.0, allow_nan=False),
)
fov_st = st.builds(
    FieldOfView,
    camera=camera_st,
    direction_deg=st.floats(min_value=0.0, max_value=359.9, allow_nan=False),
    angle_deg=st.floats(min_value=10.0, max_value=180.0, allow_nan=False),
    range_m=st.floats(min_value=10.0, max_value=2_000.0, allow_nan=False),
)


def make_fov(direction=0.0, angle=60.0, range_m=100.0):
    return FieldOfView(GeoPoint(34.0, -118.0), direction, angle, range_m)


class TestValidation:
    def test_bad_angle_raises(self):
        with pytest.raises(GeoError):
            make_fov(angle=0.0)
        with pytest.raises(GeoError):
            make_fov(angle=361.0)

    def test_bad_range_raises(self):
        with pytest.raises(GeoError):
            make_fov(range_m=0.0)

    def test_direction_normalised(self):
        assert make_fov(direction=370.0).direction_deg == pytest.approx(10.0)
        assert make_fov(direction=-10.0).direction_deg == pytest.approx(350.0)


class TestContainsPoint:
    def test_camera_location_is_contained(self):
        fov = make_fov()
        assert fov.contains_point(fov.camera)

    def test_point_ahead_within_range(self):
        fov = make_fov(direction=0.0, angle=60.0, range_m=200.0)
        ahead = destination_point(fov.camera, 0.0, 100.0)
        assert fov.contains_point(ahead)

    def test_point_behind_not_contained(self):
        fov = make_fov(direction=0.0, angle=60.0, range_m=200.0)
        behind = destination_point(fov.camera, 180.0, 100.0)
        assert not fov.contains_point(behind)

    def test_point_beyond_range_not_contained(self):
        fov = make_fov(direction=0.0, angle=60.0, range_m=200.0)
        far = destination_point(fov.camera, 0.0, 250.0)
        assert not fov.contains_point(far)

    def test_point_outside_angle_not_contained(self):
        fov = make_fov(direction=0.0, angle=60.0, range_m=200.0)
        side = destination_point(fov.camera, 45.0, 100.0)
        assert not fov.contains_point(side)

    def test_point_just_inside_angle(self):
        fov = make_fov(direction=0.0, angle=60.0, range_m=200.0)
        edge = destination_point(fov.camera, 29.0, 100.0)
        assert fov.contains_point(edge)

    @given(fov_st, st.floats(min_value=0.05, max_value=0.95), st.floats(min_value=-0.45, max_value=0.45))
    def test_interior_sample_always_contained(self, fov, radial_frac, angular_frac):
        bearing = fov.direction_deg + angular_frac * fov.angle_deg
        p = destination_point(fov.camera, bearing, radial_frac * fov.range_m)
        assert fov.contains_point(p)


class TestMBR:
    @given(fov_st)
    def test_mbr_contains_camera_and_boundary(self, fov):
        box = fov.mbr()
        assert box.contains_point(fov.camera)
        for p in fov.boundary_points(12):
            assert box.min_lat - 1e-9 <= p.lat <= box.max_lat + 1e-9
            assert box.min_lng - 1e-9 <= p.lng <= box.max_lng + 1e-9

    def test_north_facing_mbr_bulges_north(self):
        fov = make_fov(direction=0.0, angle=90.0, range_m=500.0)
        box = fov.mbr()
        # Almost all of the box should be north of the camera.
        assert box.max_lat - fov.camera.lat > 10 * (fov.camera.lat - box.min_lat)

    def test_full_circle_mbr_symmetric(self):
        fov = make_fov(direction=0.0, angle=360.0, range_m=500.0)
        box = fov.mbr()
        north = box.max_lat - fov.camera.lat
        south = fov.camera.lat - box.min_lat
        assert north == pytest.approx(south, rel=0.01)


class TestIntersectsBox:
    def test_box_containing_camera(self):
        fov = make_fov()
        assert fov.intersects_box(BoundingBox.around(fov.camera, 10.0))

    def test_box_in_front(self):
        fov = make_fov(direction=0.0, angle=60.0, range_m=500.0)
        ahead = destination_point(fov.camera, 0.0, 250.0)
        assert fov.intersects_box(BoundingBox.around(ahead, 20.0))

    def test_box_behind(self):
        fov = make_fov(direction=0.0, angle=60.0, range_m=500.0)
        behind = destination_point(fov.camera, 180.0, 250.0)
        assert not fov.intersects_box(BoundingBox.around(behind, 20.0))

    def test_distant_box(self):
        fov = make_fov(range_m=100.0)
        far = destination_point(fov.camera, 0.0, 50_000.0)
        assert not fov.intersects_box(BoundingBox.around(far, 100.0))


class TestOverlap:
    def test_same_fov_overlaps_itself(self):
        fov = make_fov()
        assert fov.overlaps_fov(fov)

    def test_facing_each_other(self):
        a = make_fov(direction=0.0, angle=60.0, range_m=300.0)
        cam_b = destination_point(a.camera, 0.0, 400.0)
        b = FieldOfView(cam_b, 180.0, 60.0, 300.0)
        assert a.overlaps_fov(b)

    def test_back_to_back_disjoint(self):
        a = make_fov(direction=0.0, angle=60.0, range_m=200.0)
        b = FieldOfView(a.camera, 180.0, 60.0, 200.0)
        # Sectors share only the apex; apex containment counts as overlap.
        assert a.overlaps_fov(b)

    def test_far_apart_disjoint(self):
        a = make_fov(range_m=100.0)
        cam_b = destination_point(a.camera, 90.0, 10_000.0)
        b = FieldOfView(cam_b, 0.0, 60.0, 100.0)
        assert not a.overlaps_fov(b)


class TestMisc:
    def test_coverage_area(self):
        fov = make_fov(angle=90.0, range_m=100.0)
        # Quarter circle of radius 100: pi * 100^2 / 4.
        assert fov.coverage_area_m2() == pytest.approx(7853.98, rel=1e-4)

    def test_direction_matches(self):
        fov = make_fov(direction=10.0)
        assert fov.direction_matches(350.0, tolerance_deg=30.0)
        assert not fov.direction_matches(180.0, tolerance_deg=30.0)

    def test_midpoint_on_axis(self):
        fov = make_fov(direction=90.0, range_m=400.0)
        mid = fov.midpoint()
        assert fov.contains_point(mid)

    @given(fov_st)
    def test_dict_round_trip(self, fov):
        restored = FieldOfView.from_dict(fov.to_dict())
        assert restored.camera == fov.camera
        assert restored.direction_deg == pytest.approx(fov.direction_deg)
        assert restored.angle_deg == fov.angle_deg
        assert restored.range_m == fov.range_m

    def test_boundary_points_count(self):
        assert len(make_fov().boundary_points(10)) == 10
        with pytest.raises(GeoError):
            make_fov().boundary_points(1)
