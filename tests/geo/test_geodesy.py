"""Tests for spherical geodesy helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import (
    GeoPoint,
    angular_difference_deg,
    destination_point,
    haversine_m,
    initial_bearing_deg,
    meters_per_degree,
    normalize_bearing,
)

lat_st = st.floats(min_value=-80.0, max_value=80.0, allow_nan=False)
lng_st = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)
points_st = st.builds(GeoPoint, lat=lat_st, lng=lng_st)


class TestHaversine:
    def test_zero_distance(self):
        p = GeoPoint(34.05, -118.25)
        assert haversine_m(p, p) == 0.0

    def test_known_distance_la_to_sf(self):
        la = GeoPoint(34.0522, -118.2437)
        sf = GeoPoint(37.7749, -122.4194)
        # Known great-circle distance ~559 km.
        assert haversine_m(la, sf) == pytest.approx(559_000, rel=0.01)

    def test_one_degree_latitude(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(1.0, 0.0)
        assert haversine_m(a, b) == pytest.approx(111_195, rel=0.001)

    @given(points_st, points_st)
    def test_symmetry(self, a, b):
        assert haversine_m(a, b) == pytest.approx(haversine_m(b, a), abs=1e-6)

    @given(points_st, points_st)
    def test_non_negative(self, a, b):
        assert haversine_m(a, b) >= 0.0


class TestBearing:
    def test_due_north(self):
        assert initial_bearing_deg(GeoPoint(0.0, 0.0), GeoPoint(1.0, 0.0)) == pytest.approx(0.0)

    def test_due_east(self):
        assert initial_bearing_deg(GeoPoint(0.0, 0.0), GeoPoint(0.0, 1.0)) == pytest.approx(90.0)

    def test_due_south(self):
        assert initial_bearing_deg(GeoPoint(1.0, 0.0), GeoPoint(0.0, 0.0)) == pytest.approx(180.0)

    def test_due_west(self):
        assert initial_bearing_deg(GeoPoint(0.0, 1.0), GeoPoint(0.0, 0.0)) == pytest.approx(270.0)


class TestDestination:
    @given(points_st, st.floats(min_value=0.0, max_value=359.9), st.floats(min_value=1.0, max_value=100_000.0))
    def test_round_trip_distance(self, origin, bearing, dist):
        dest = destination_point(origin, bearing, dist)
        assert haversine_m(origin, dest) == pytest.approx(dist, rel=1e-6)

    @given(points_st, st.floats(min_value=0.0, max_value=359.9), st.floats(min_value=100.0, max_value=50_000.0))
    def test_bearing_consistency(self, origin, bearing, dist):
        dest = destination_point(origin, bearing, dist)
        recovered = initial_bearing_deg(origin, dest)
        assert angular_difference_deg(recovered, bearing) < 0.5

    def test_zero_distance_is_identity(self):
        p = GeoPoint(34.0, -118.0)
        dest = destination_point(p, 123.0, 0.0)
        assert dest.lat == pytest.approx(p.lat)
        assert dest.lng == pytest.approx(p.lng)


class TestAngles:
    def test_angular_difference_wraps(self):
        assert angular_difference_deg(350.0, 10.0) == pytest.approx(20.0)
        assert angular_difference_deg(10.0, 350.0) == pytest.approx(20.0)
        assert angular_difference_deg(0.0, 180.0) == pytest.approx(180.0)

    @given(st.floats(min_value=-720.0, max_value=720.0, allow_nan=False))
    def test_normalize_bearing_range(self, deg):
        n = normalize_bearing(deg)
        assert 0.0 <= n < 360.0

    @given(
        st.floats(min_value=0.0, max_value=360.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=360.0, allow_nan=False),
    )
    def test_angular_difference_bounds(self, a, b):
        d = angular_difference_deg(a, b)
        assert 0.0 <= d <= 180.0


class TestMetersPerDegree:
    def test_equator(self):
        m_lat, m_lng = meters_per_degree(0.0)
        assert m_lat == pytest.approx(111_195, rel=0.001)
        assert m_lng == pytest.approx(111_195, rel=0.001)

    def test_longitude_shrinks_with_latitude(self):
        _, at_equator = meters_per_degree(0.0)
        _, at_60 = meters_per_degree(60.0)
        assert at_60 == pytest.approx(at_equator / 2.0, rel=0.001)
