"""Tests for the synthetic road network."""

import networkx as nx
import pytest

from repro.errors import GeoError
from repro.geo import (
    BoundingBox,
    GeoPoint,
    RoadNetwork,
    haversine_m,
    waypoints_to_headings,
)

REGION = BoundingBox(34.00, -118.30, 34.04, -118.26)


@pytest.fixture(scope="module")
def network():
    return RoadNetwork.manhattan(REGION, rows=6, cols=6, seed=0)


class TestConstruction:
    def test_node_count(self, network):
        assert network.graph.number_of_nodes() == 36

    def test_connected(self, network):
        assert nx.is_connected(network.graph)

    def test_nodes_inside_region(self, network):
        for node in network.graph.nodes:
            assert REGION.contains_point(network.node_point(node))

    def test_edges_have_lengths(self, network):
        for _, _, data in network.graph.edges(data=True):
            assert data["length_m"] > 0
        assert network.total_length_m() > 10_000.0

    def test_drop_rate_removes_edges_but_keeps_connectivity(self):
        full = RoadNetwork.manhattan(REGION, rows=6, cols=6, drop_rate=0.0, seed=1)
        dropped = RoadNetwork.manhattan(REGION, rows=6, cols=6, drop_rate=0.2, seed=1)
        assert dropped.graph.number_of_edges() < full.graph.number_of_edges()
        assert nx.is_connected(dropped.graph)

    def test_validation(self):
        with pytest.raises(GeoError):
            RoadNetwork.manhattan(REGION, rows=1, cols=5)
        with pytest.raises(GeoError):
            RoadNetwork.manhattan(REGION, jitter=0.9)
        with pytest.raises(GeoError):
            RoadNetwork.manhattan(REGION, drop_rate=1.0)

    def test_deterministic(self):
        a = RoadNetwork.manhattan(REGION, seed=7)
        b = RoadNetwork.manhattan(REGION, seed=7)
        assert {n: a.node_point(n) for n in a.graph.nodes} == {
            n: b.node_point(n) for n in b.graph.nodes
        }


class TestRouting:
    def test_route_connects_endpoints(self, network):
        start = GeoPoint(34.005, -118.295)
        goal = GeoPoint(34.035, -118.265)
        route = network.route(start, goal)
        assert len(route) >= 2
        assert haversine_m(route[0], start) < 1_500.0
        assert haversine_m(route[-1], goal) < 1_500.0

    def test_route_follows_edges(self, network):
        route = network.route(GeoPoint(34.00, -118.30), GeoPoint(34.04, -118.26))
        points = {network.node_point(n) for n in network.graph.nodes}
        assert all(p in points for p in route)

    def test_route_is_shortest(self, network):
        start, goal = GeoPoint(34.00, -118.30), GeoPoint(34.04, -118.26)
        route = network.route(start, goal)
        direct = haversine_m(route[0], route[-1])
        # Shortest street route can't beat the crow-flies distance...
        assert network.route_length_m(route) >= direct - 1.0
        # ...but on a Manhattan grid it shouldn't exceed ~2x it either.
        assert network.route_length_m(route) <= 2.5 * direct

    def test_same_endpoint_route(self, network):
        p = GeoPoint(34.02, -118.28)
        route = network.route(p, p)
        assert len(route) == 1

    def test_patrol_walks_edges(self, network):
        waypoints = network.patrol(GeoPoint(34.02, -118.28), hops=10, seed=0)
        assert len(waypoints) == 11
        node_points = {network.node_point(n) for n in network.graph.nodes}
        assert all(p in node_points for p in waypoints)
        # Consecutive waypoints are adjacent intersections.
        for a, b in zip(waypoints, waypoints[1:]):
            assert haversine_m(a, b) < 2_000.0

    def test_patrol_bad_hops(self, network):
        with pytest.raises(GeoError):
            network.patrol(GeoPoint(34.02, -118.28), hops=0)


class TestHeadings:
    def test_headings_follow_travel_direction(self, network):
        a = GeoPoint(34.00, -118.28)
        b = GeoPoint(34.03, -118.28)  # due north
        poses = waypoints_to_headings([a, b])
        assert len(poses) == 2
        assert poses[0][1] == pytest.approx(0.0, abs=1.0)
        assert poses[1][1] == poses[0][1]  # last pose repeats heading

    def test_too_few_waypoints_raises(self):
        with pytest.raises(GeoError):
            waypoints_to_headings([GeoPoint(0, 0)])
