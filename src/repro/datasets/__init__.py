"""Synthetic datasets standing in for the paper's proprietary corpora."""

from repro.datasets.lasan import (
    CLASS_KEYWORDS,
    EPOCH_START,
    LasanRecord,
    dataset_summary,
    generate_lasan_dataset,
)
from repro.datasets.geougv import (
    SyntheticVideo,
    VideoFrame,
    generate_fleet_videos,
    generate_route_video,
    generate_video,
)

__all__ = [
    "LasanRecord",
    "CLASS_KEYWORDS",
    "EPOCH_START",
    "generate_lasan_dataset",
    "dataset_summary",
    "VideoFrame",
    "SyntheticVideo",
    "generate_video",
    "generate_route_video",
    "generate_fleet_videos",
]
