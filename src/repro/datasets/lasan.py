"""Synthetic LASAN street-cleanliness dataset.

Stands in for the paper's 22K geo-tagged street images from the Los
Angeles Sanitation Department.  Every record carries what the real
collection pipeline produced: the image itself, the cleanliness label,
a full FOV descriptor (camera GPS + compass), capture/upload
timestamps, and a few human keywords.

Spatial structure mirrors the phenomena the paper's translational
studies rely on: encampments cluster into a handful of hotspots
(so DBSCAN tent clustering in Fig. 9 has something to find), illegal
dumping concentrates along a corridor, vegetation skews residential,
and clean scenes are everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TVDPError
from repro.geo.fov import FieldOfView
from repro.geo.point import BoundingBox, GeoPoint
from repro.geo.regions import DOWNTOWN_LA
from repro.imaging.image import Image
from repro.imaging.synthetic import CLEANLINESS_CLASSES, render_street_scene

#: Keywords a LASAN operator might type per class.
CLASS_KEYWORDS = {
    "bulky_item": ["bulky", "furniture", "couch", "mattress"],
    "illegal_dumping": ["dumping", "trash", "bags", "debris"],
    "encampment": ["encampment", "tent", "homeless"],
    "overgrown_vegetation": ["vegetation", "overgrown", "weeds"],
    "clean": ["clean", "street"],
}

#: Default capture epoch (seconds): an arbitrary week in 2018, matching
#: the paper's collection period; kept fixed for reproducibility.
EPOCH_START = 1_525_000_000.0


@dataclass(frozen=True)
class LasanRecord:
    """One collected street image with its metadata."""

    image: Image
    label: str
    fov: FieldOfView
    captured_at: float
    uploaded_at: float
    keywords: tuple[str, ...]
    #: Independent graffiti overlay flag — ground truth for the paper's
    #: second ("translational") analysis over the same dataset.
    has_graffiti: bool = False


def _hotspots(region: BoundingBox, n: int, rng: np.random.Generator) -> list[GeoPoint]:
    return [
        GeoPoint(
            float(rng.uniform(region.min_lat, region.max_lat)),
            float(rng.uniform(region.min_lng, region.max_lng)),
        )
        for _ in range(n)
    ]


def _sample_location(
    label: str,
    region: BoundingBox,
    hotspots: dict[str, list[GeoPoint]],
    rng: np.random.Generator,
) -> GeoPoint:
    """Class-conditional spatial sampling."""
    span_lat = region.max_lat - region.min_lat
    span_lng = region.max_lng - region.min_lng
    if label in hotspots:
        center = hotspots[label][rng.integers(len(hotspots[label]))]
        sigma = 0.04 * min(span_lat, span_lng)
        lat = float(np.clip(rng.normal(center.lat, sigma), region.min_lat, region.max_lat))
        lng = float(np.clip(rng.normal(center.lng, sigma), region.min_lng, region.max_lng))
        return GeoPoint(lat, lng)
    return GeoPoint(
        float(rng.uniform(region.min_lat, region.max_lat)),
        float(rng.uniform(region.min_lng, region.max_lng)),
    )


def generate_lasan_dataset(
    n_per_class: int = 40,
    image_size: int = 48,
    region: BoundingBox = DOWNTOWN_LA,
    seed: int = 0,
    encampment_hotspots: int = 3,
    dumping_hotspots: int = 2,
    graffiti_prob: float = 0.3,
) -> list[LasanRecord]:
    """Generate a balanced labelled dataset of street scenes.

    Deterministic for a given seed.  Records are interleaved by class
    (round-robin) so any prefix of the list is roughly balanced.
    """
    if n_per_class < 1:
        raise TVDPError(f"n_per_class must be >= 1, got {n_per_class}")
    rng = np.random.default_rng(seed)
    hotspots = {
        "encampment": _hotspots(region, encampment_hotspots, rng),
        "illegal_dumping": _hotspots(region, dumping_hotspots, rng),
    }
    records: list[LasanRecord] = []
    for i in range(n_per_class):
        for label in CLEANLINESS_CLASSES:
            has_graffiti = bool(rng.random() < graffiti_prob)
            image = render_street_scene(
                label, rng, size=image_size, graffiti=has_graffiti
            )
            location = _sample_location(label, region, hotspots, rng)
            fov = FieldOfView(
                camera=location,
                direction_deg=float(rng.uniform(0.0, 360.0)),
                angle_deg=float(rng.uniform(50.0, 70.0)),
                range_m=float(rng.uniform(80.0, 200.0)),
            )
            captured = EPOCH_START + float(rng.uniform(0.0, 7 * 86_400.0))
            keyword_pool = CLASS_KEYWORDS[label]
            n_kw = int(rng.integers(1, len(keyword_pool) + 1))
            keywords = tuple(
                sorted(rng.choice(keyword_pool, size=n_kw, replace=False).tolist())
            )
            records.append(
                LasanRecord(
                    image=image,
                    label=label,
                    fov=fov,
                    captured_at=captured,
                    uploaded_at=captured + float(rng.uniform(60.0, 3_600.0)),
                    keywords=keywords,
                    has_graffiti=has_graffiti,
                )
            )
    return records


def dataset_summary(records: list[LasanRecord]) -> dict[str, object]:
    """Descriptive statistics used by the Fig. 5 dataset bench."""
    if not records:
        raise TVDPError("cannot summarise an empty dataset")
    by_class: dict[str, int] = {}
    for record in records:
        by_class[record.label] = by_class.get(record.label, 0) + 1
    lats = [r.fov.camera.lat for r in records]
    lngs = [r.fov.camera.lng for r in records]
    return {
        "total": len(records),
        "per_class": dict(sorted(by_class.items())),
        "bbox": BoundingBox(min(lats), min(lngs), max(lats), max(lngs)),
        "capture_span_s": max(r.captured_at for r in records)
        - min(r.captured_at for r in records),
        "image_size": records[0].image.shape,
    }
