"""Synthetic GeoUGV-style mobile video dataset.

GeoUGV (paper ref. [11]) is a corpus of user-generated mobile videos
with *fine-granularity* spatial metadata: every frame tagged with an
FOV.  We synthesise the same structure: a vehicle (garbage truck, per
the paper's LASAN scenario) drives a piecewise-straight street path,
capturing frames at fixed intervals, the camera looking along the
heading.  Frame images are rendered lazily on request — trajectories
and metadata are cheap, pixels are not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TVDPError
from repro.geo.fov import FieldOfView
from repro.geo.geodesy import destination_point
from repro.geo.point import BoundingBox, GeoPoint
from repro.geo.regions import DOWNTOWN_LA
from repro.imaging.image import Image
from repro.imaging.synthetic import CLEANLINESS_CLASSES, render_street_scene


@dataclass(frozen=True)
class VideoFrame:
    """One frame's metadata: FOV, time, and scene label.

    ``run_id`` identifies the contiguous stretch of frames showing the
    same street scene; frames in a run render as the same scene plus
    per-frame sensor noise, giving videos realistic temporal coherence.
    """

    frame_number: int
    fov: FieldOfView
    timestamp: float
    label: str
    run_id: int = 0


@dataclass(frozen=True)
class SyntheticVideo:
    """A trajectory of frames plus enough state to render any of them."""

    video_id: int
    frames: tuple[VideoFrame, ...]
    image_size: int
    seed: int

    def render_frame(self, frame_number: int) -> Image:
        """Render one frame (deterministic per video+frame).

        Scene content is seeded by the frame's *run*, so consecutive
        frames of the same scene look alike; a small per-frame noise
        layer keeps every frame's pixels unique (no accidental dedup).
        """
        frame = next(
            (f for f in self.frames if f.frame_number == frame_number), None
        )
        if frame is None:
            raise TVDPError(f"video {self.video_id} has no frame {frame_number}")
        scene_rng = np.random.default_rng((self.seed, self.video_id, frame.run_id))
        base = render_street_scene(
            frame.label, scene_rng, size=self.image_size, noise_sigma=0.0
        )
        noise_rng = np.random.default_rng(
            (self.seed, self.video_id, frame.run_id, frame_number)
        )
        return Image(
            base.pixels + noise_rng.normal(0.0, 0.01, base.pixels.shape)
        )

    def key_frames(self, every: int = 5) -> list[VideoFrame]:
        """Uniform key-frame selection: every ``every``-th frame.

        The paper stores "a video ... as a set of images where each one
        is tagged with various descriptors"; this picks that set.
        """
        if every < 1:
            raise TVDPError(f"key-frame interval must be >= 1, got {every}")
        return [f for f in self.frames if f.frame_number % every == 0]


def generate_video(
    video_id: int,
    start: GeoPoint,
    initial_bearing: float,
    n_frames: int = 30,
    frame_interval_s: float = 1.0,
    speed_mps: float = 8.0,
    turn_prob: float = 0.1,
    scene_change_prob: float = 0.25,
    region: BoundingBox = DOWNTOWN_LA,
    image_size: int = 48,
    seed: int = 0,
    start_time: float = 0.0,
) -> SyntheticVideo:
    """Simulate one drive: straight segments with occasional 90° turns,
    camera facing the direction of travel, street-scene labels drawn
    with clean dominating (most streets are fine)."""
    if n_frames < 1:
        raise TVDPError(f"n_frames must be >= 1, got {n_frames}")
    rng = np.random.default_rng((seed, video_id))
    labels = list(CLEANLINESS_CLASSES)
    label_probs = np.array([0.1, 0.1, 0.1, 0.1, 0.6])  # mostly clean streets
    position = start
    bearing = initial_bearing % 360.0
    frames: list[VideoFrame] = []
    label = labels[int(rng.choice(len(labels), p=label_probs))]
    run_id = 0
    for k in range(n_frames):
        if k > 0:
            if rng.random() < turn_prob:
                bearing = (bearing + float(rng.choice((-90.0, 90.0)))) % 360.0
            position = destination_point(position, bearing, speed_mps * frame_interval_s)
            if not region.contains_point(position):
                bearing = (bearing + 180.0) % 360.0  # U-turn at the boundary
            # Street scenes persist across frames: resample occasionally.
            if rng.random() < scene_change_prob:
                label = labels[int(rng.choice(len(labels), p=label_probs))]
                run_id += 1
        fov = FieldOfView(
            camera=position,
            direction_deg=bearing + float(rng.normal(0.0, 3.0)),
            angle_deg=60.0,
            range_m=100.0,
        )
        frames.append(
            VideoFrame(
                frame_number=k,
                fov=fov,
                timestamp=start_time + k * frame_interval_s,
                label=label,
                run_id=run_id,
            )
        )
    return SyntheticVideo(
        video_id=video_id,
        frames=tuple(frames),
        image_size=image_size,
        seed=seed,
    )


def generate_route_video(
    video_id: int,
    waypoints: list[GeoPoint],
    frame_interval_s: float = 1.0,
    speed_mps: float = 8.0,
    scene_change_prob: float = 0.25,
    image_size: int = 48,
    seed: int = 0,
    start_time: float = 0.0,
) -> SyntheticVideo:
    """A drive along an explicit waypoint polyline (e.g. a street route
    from :class:`repro.geo.RoadNetwork`), capturing at fixed intervals
    with the camera facing the direction of travel.

    This is the realistic counterpart of :func:`generate_video`'s
    random walk: trucks follow streets.
    """
    if len(waypoints) < 2:
        raise TVDPError("route video needs at least two waypoints")
    rng = np.random.default_rng((seed, video_id))
    labels = list(CLEANLINESS_CLASSES)
    label_probs = np.array([0.1, 0.1, 0.1, 0.1, 0.6])
    step_m = speed_mps * frame_interval_s

    # Resample the polyline at constant arc length.
    positions: list[tuple[GeoPoint, float]] = []
    from repro.geo.geodesy import haversine_m, initial_bearing_deg

    carry = 0.0
    for a, b in zip(waypoints, waypoints[1:]):
        segment = haversine_m(a, b)
        bearing = initial_bearing_deg(a, b) if segment > 0 else 0.0
        offset = carry
        while offset < segment:
            positions.append((destination_point(a, bearing, offset), bearing))
            offset += step_m
        carry = offset - segment
    if not positions:
        positions = [(waypoints[0], 0.0)]

    frames: list[VideoFrame] = []
    label = labels[int(rng.choice(len(labels), p=label_probs))]
    run_id = 0
    for k, (position, bearing) in enumerate(positions):
        if k > 0 and rng.random() < scene_change_prob:
            label = labels[int(rng.choice(len(labels), p=label_probs))]
            run_id += 1
        frames.append(
            VideoFrame(
                frame_number=k,
                fov=FieldOfView(
                    camera=position,
                    direction_deg=bearing + float(rng.normal(0.0, 3.0)),
                    angle_deg=60.0,
                    range_m=100.0,
                ),
                timestamp=start_time + k * frame_interval_s,
                label=label,
                run_id=run_id,
            )
        )
    return SyntheticVideo(
        video_id=video_id, frames=tuple(frames), image_size=image_size, seed=seed
    )


def generate_fleet_videos(
    n_videos: int = 5,
    region: BoundingBox = DOWNTOWN_LA,
    seed: int = 0,
    **video_kwargs,
) -> list[SyntheticVideo]:
    """A fleet of trucks, each producing one video from a random start."""
    if n_videos < 1:
        raise TVDPError(f"n_videos must be >= 1, got {n_videos}")
    rng = np.random.default_rng(seed)
    videos = []
    for vid in range(1, n_videos + 1):
        start = GeoPoint(
            float(rng.uniform(region.min_lat, region.max_lat)),
            float(rng.uniform(region.min_lng, region.max_lng)),
        )
        videos.append(
            generate_video(
                video_id=vid,
                start=start,
                initial_bearing=float(rng.uniform(0.0, 360.0)),
                region=region,
                seed=seed,
                start_time=float(vid) * 1_000.0,
                **video_kwargs,
            )
        )
    return videos
