"""``python -m repro`` — a two-minute guided tour of the platform.

Runs a miniature end-to-end cycle (upload, query, annotate, translate,
dispatch) and narrates what happened at each step.  Pass ``--stats`` to
also dump the observability snapshot (counters, gauges, latency
histograms) the tour produced; add ``--json`` to suppress all
narration and emit the snapshot as one machine-readable JSON document
(metrics + SLO health + breaker states + hot queries) on stdout, for
piping into ``jq`` or a collector.  Pass ``--chaos`` to run a fault-drill
on top: a seeded :class:`~repro.resilience.FaultPlan` (seed from
``$REPRO_FAULT_SEED``) kills a share of edge transfers and the first
database save while the resilient fleet/persistence paths ride it out —
then prints what was injected, what retried, and how the breakers and
SLOs look afterwards.  The full experiment reproductions live in
``examples/`` and ``benchmarks/``.

The narration goes through :func:`repro.obs.console` — the library-wide
``no-print`` lint holds here too, and routing the tour through the
logging stack keeps its output joinable with trace ids when a host app
reconfigures the console formatter.
"""

from __future__ import annotations

import json
import sys

from repro import TVDP, __version__, obs
from repro.analysis import cluster_encampments
from repro.core import CategoricalQuery, SpatialQuery, TextualQuery, VisualQuery, explain
from repro.datasets import generate_lasan_dataset
from repro.edge import PAPER_DEVICES, PAPER_MODELS, dispatch_fleet
from repro.features import ColorHistogramExtractor
from repro.geo import BoundingBox
from repro.imaging import CLEANLINESS_CLASSES

_out = obs.console("tour")


def _chaos_drill(platform: TVDP) -> None:
    """Run the resilient fleet + persistence paths under a scripted
    fault plan and narrate what the platform absorbed."""
    import tempfile
    from pathlib import Path

    from repro.db.persistence import dump_database, load_database
    from repro.edge import (
        UploadPlan,
        dispatch_fleet_resilient,
        feature_vector_bytes,
        upload_fleet,
    )
    from repro.resilience import (
        FaultPlan,
        breaker_states,
        reset_breakers,
        seed_from_env,
    )

    seed = seed_from_env(default=0)
    _out.info("\n[chaos] fault drill, seed=%d ($REPRO_FAULT_SEED)", seed)
    reset_breakers()
    plan = (
        FaultPlan(seed=seed)
        .kill("edge.transfer", rate=0.3)
        .kill("db.save", at_calls={1})
    )
    with plan.activate():
        dispatch = dispatch_fleet_resilient(
            list(PAPER_DEVICES), list(PAPER_MODELS), 1_000.0, seed=seed
        )
        plans = {
            name: UploadPlan(
                n_items=32,
                bytes_per_item=feature_vector_bytes(512),
                device=decision.device,
            )
            for name, decision in dispatch.decisions.items()
        }
        transfers = upload_fleet(plans, seed=seed)
        with tempfile.TemporaryDirectory() as tmp:
            snapshot = Path(tmp) / "tvdp.json"
            dump_database(platform.db, snapshot, seed=seed)
            restored = load_database(snapshot, seed=seed)
        _out.info(
            "  dispatched %d/%d devices, delivered %d/%d batches, "
            "snapshot round-tripped %d tables",
            len(dispatch.decisions),
            len(dispatch.decisions) + len(dispatch.failed),
            len(transfers.delivered),
            len(plans),
            len(restored.table_names()),
        )
        for name, reason in sorted(transfers.failed.items()):
            _out.info("  lost despite retries: %-18s %s", name, reason)
        _out.info("  faults injected: %s", json.dumps(plan.summary(), sort_keys=True))
        snap = obs.snapshot()
        retries = {
            key: value
            for key, value in snap["counters"].items()
            if key.startswith("resilience.retries")
        }
        _out.info("  retries: %s", json.dumps(retries, sort_keys=True))
        for name, state in breaker_states().items():
            _out.info(
                "  breaker %-24s %-9s trips=%d", name, state["state"], state["trips"]
            )
        health = obs.health()
        _out.info(
            "  health after drill: %s (virtual time elapsed: %.2fs, real sleeps: 0)",
            health["status"],
            plan.clock.now(),
        )


def _stats_document() -> dict:
    """The ``--stats --json`` payload: one document with everything the
    human-readable stats narration reports, machine-readable."""
    from repro.resilience import breaker_states

    return {
        "version": __version__,
        "metrics": obs.snapshot(),
        "health": obs.health(),
        "breakers": breaker_states(),
        "hot_queries": obs.hot_queries().top(),
        "latency_ms_window": obs.latency_windows().summaries(),
        "usage": obs.usage().report(),
    }


def main(argv: list[str] | None = None) -> int:
    argv = list(argv or ())
    show_stats = "--stats" in argv
    run_chaos = "--chaos" in argv
    as_json = "--json" in argv
    import logging

    if as_json:
        # Machine-readable mode: mute the console branch so the only
        # bytes on stdout are the final JSON document.
        logging.getLogger("tvdp.console").setLevel(logging.WARNING)
    _out.info("TVDP reproduction v%s — guided tour\n", __version__)

    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))

    _out.info("[acquisition] uploading 50 synthetic LASAN street images...")
    records = generate_lasan_dataset(n_per_class=10, image_size=40, seed=0)
    for record in records:
        receipt = platform.upload_image(
            record.image, record.fov, record.captured_at, record.uploaded_at,
            keywords=record.keywords,
        )
        platform.annotations.annotate(
            receipt.image_id, "street_cleanliness", record.label, 1.0, "human"
        )
    platform.extract_features("color_hsv_20_20_10")
    _out.info("             rows: %s images\n", platform.stats()["rows"]["images"])

    _out.info("[access] one query per family:")
    block = BoundingBox(34.035, -118.26, 34.05, -118.24)
    for query in (
        SpatialQuery(region=block),
        TextualQuery(text="encampment tent"),
        CategoricalQuery("street_cleanliness", labels=("encampment",)),
        VisualQuery(extractor_name="color_hsv_20_20_10", example=records[0].image, k=5),
    ):
        plan = explain(platform, query, analyze=True)
        _out.info("  %s", plan.render().replace("\n", "\n  "))
    _out.info("")

    _out.info("[analysis -> translation] homeless study over shared annotations:")
    report = cluster_encampments(platform, min_confidence=0.5, eps_m=600.0, min_samples=2)
    _out.info(
        "  %s encampment sightings -> %s clusters (+%s isolated)\n",
        report.total_sightings, report.n_clusters, report.noise_sightings,
    )

    _out.info("[action] capability-aware model dispatch (1 s latency budget):")
    for name, decision in sorted(
        dispatch_fleet(list(PAPER_DEVICES), list(PAPER_MODELS), 1_000.0).items()
    ):
        _out.info(
            "  %-18s -> %-14s (%.0f ms predicted)",
            name, decision.model.name, decision.predicted_latency_ms,
        )
    if run_chaos:
        _chaos_drill(platform)

    _out.info("\ndone — see examples/ and benchmarks/ for the full reproductions.")

    if show_stats and as_json:
        document = _stats_document()
        logging.getLogger("tvdp.console").setLevel(logging.NOTSET)
        sys.stdout.write(json.dumps(document, indent=2, sort_keys=True) + "\n")
    elif show_stats:
        _out.info("\n[observability] metrics snapshot for this tour:")
        _out.info(json.dumps(platform.metrics_snapshot(), indent=2, sort_keys=True))
        health = obs.health()
        _out.info(
            "\n[observability] SLO health: %s (%s objectives)",
            health["status"], len(health["objectives"]),
        )
        for objective in health["objectives"]:
            _out.info(
                "  %-28s %-9s burn=%-7.2f %s",
                objective["objective"],
                objective["status"]
                + ("*" if objective["insufficient_data"] else ""),
                objective["burn_ratio"],
                objective["description"],
            )
        _out.info("  (* = fewer samples than the objective's minimum)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
