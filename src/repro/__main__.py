"""``python -m repro`` — a two-minute guided tour of the platform.

Runs a miniature end-to-end cycle (upload, query, annotate, translate,
dispatch) and prints what happened at each step.  Pass ``--stats`` to
also dump the observability snapshot (counters, gauges, latency
histograms) the tour produced.  The full experiment reproductions live
in ``examples/`` and ``benchmarks/``.
"""

from __future__ import annotations

import json
import sys

from repro import TVDP, __version__
from repro.analysis import cluster_encampments
from repro.core import CategoricalQuery, SpatialQuery, TextualQuery, VisualQuery, explain
from repro.datasets import generate_lasan_dataset
from repro.edge import PAPER_DEVICES, PAPER_MODELS, dispatch_fleet
from repro.features import ColorHistogramExtractor
from repro.geo import BoundingBox
from repro.imaging import CLEANLINESS_CLASSES


def main(argv: list[str] | None = None) -> int:
    argv = list(argv or ())
    show_stats = "--stats" in argv
    print(f"TVDP reproduction v{__version__} — guided tour\n")

    platform = TVDP()
    platform.register_extractor(ColorHistogramExtractor())
    platform.catalog.define("street_cleanliness", list(CLEANLINESS_CLASSES))

    print("[acquisition] uploading 50 synthetic LASAN street images...")
    records = generate_lasan_dataset(n_per_class=10, image_size=40, seed=0)
    for record in records:
        receipt = platform.upload_image(
            record.image, record.fov, record.captured_at, record.uploaded_at,
            keywords=record.keywords,
        )
        platform.annotations.annotate(
            receipt.image_id, "street_cleanliness", record.label, 1.0, "human"
        )
    platform.extract_features("color_hsv_20_20_10")
    print(f"             rows: {platform.stats()['rows']['images']} images\n")

    print("[access] one query per family:")
    block = BoundingBox(34.035, -118.26, 34.05, -118.24)
    for query in (
        SpatialQuery(region=block),
        TextualQuery(text="encampment tent"),
        CategoricalQuery("street_cleanliness", labels=("encampment",)),
        VisualQuery(extractor_name="color_hsv_20_20_10", example=records[0].image, k=5),
    ):
        plan = explain(platform, query, analyze=True)
        print("  " + plan.render().replace("\n", "\n  "))
    print()

    print("[analysis -> translation] homeless study over shared annotations:")
    report = cluster_encampments(platform, min_confidence=0.5, eps_m=600.0, min_samples=2)
    print(
        f"  {report.total_sightings} encampment sightings -> "
        f"{report.n_clusters} clusters (+{report.noise_sightings} isolated)\n"
    )

    print("[action] capability-aware model dispatch (1 s latency budget):")
    for name, decision in sorted(
        dispatch_fleet(list(PAPER_DEVICES), list(PAPER_MODELS), 1_000.0).items()
    ):
        print(
            f"  {name:<18} -> {decision.model.name:<14} "
            f"({decision.predicted_latency_ms:.0f} ms predicted)"
        )
    print("\ndone — see examples/ and benchmarks/ for the full reproductions.")

    if show_stats:
        print("\n[observability] metrics snapshot for this tour:")
        print(json.dumps(platform.metrics_snapshot(), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
