"""Distributed data selection on the edge.

"To limit the bandwidth consumption, the framework deploys a
distributed selection algorithm that prioritizes the crowdsourced data
and transfers a selected subset of data."  We prioritise by prediction
*uncertainty* (entropy of the local model's class posterior, the
classic active-learning signal) with a greedy diversity term so the
uploaded subset is not n copies of the same confusing scene.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import EdgeError


def prediction_entropy(probabilities: np.ndarray) -> np.ndarray:
    """Shannon entropy per row of a class-posterior matrix (n, k)."""
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.ndim != 2:
        raise EdgeError(f"probabilities must be 2-D, got ndim={probs.ndim}")
    if (probs < -1e-9).any():
        raise EdgeError("probabilities must be non-negative")
    safe = np.clip(probs, 1e-12, 1.0)
    return -(safe * np.log(safe)).sum(axis=1)


@dataclass(frozen=True)
class SelectionResult:
    """Chosen sample indices with their priority scores."""

    indices: list[int]
    scores: list[float]


def select_for_upload(
    features: np.ndarray,
    probabilities: np.ndarray,
    budget: int,
    diversity_weight: float = 0.5,
) -> SelectionResult:
    """Greedy uncertainty + diversity selection of ``budget`` samples.

    Iteratively picks the sample maximising
    ``entropy + diversity_weight * distance_to_nearest_selected``
    (distances normalised by the corpus scale), so the subset is both
    informative and spread out in feature space.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise EdgeError("features must be 2-D")
    n = features.shape[0]
    if probabilities.shape[0] != n:
        raise EdgeError(
            f"features have {n} rows but probabilities {probabilities.shape[0]}"
        )
    if budget < 0:
        raise EdgeError(f"budget must be >= 0, got {budget}")
    if diversity_weight < 0:
        raise EdgeError(f"diversity_weight must be >= 0, got {diversity_weight}")
    budget = min(budget, n)
    if budget == 0:
        return SelectionResult(indices=[], scores=[])

    entropy = prediction_entropy(probabilities)
    scale = float(
        np.median(np.linalg.norm(features - features.mean(axis=0), axis=1))
    )
    scale = max(scale, 1e-9)

    chosen: list[int] = []
    scores: list[float] = []
    min_dist = np.full(n, np.inf)
    for _ in range(budget):
        if chosen:
            gain = entropy + diversity_weight * np.minimum(min_dist / scale, 2.0)
        else:
            gain = entropy.copy()
        gain[chosen] = -np.inf
        pick = int(gain.argmax())
        chosen.append(pick)
        scores.append(float(gain[pick]))
        distances = np.linalg.norm(features - features[pick], axis=1)
        min_dist = np.minimum(min_dist, distances)
    return SelectionResult(indices=chosen, scores=scores)


def select_random(n: int, budget: int, seed: int = 0) -> SelectionResult:
    """Uniform random selection — the baseline the ablation bench
    compares prioritised selection against."""
    if budget < 0:
        raise EdgeError(f"budget must be >= 0, got {budget}")
    rng = np.random.default_rng(seed)
    budget = min(budget, n)
    indices = rng.choice(n, size=budget, replace=False).tolist()
    return SelectionResult(indices=indices, scores=[math.nan] * budget)
