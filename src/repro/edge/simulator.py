"""Discrete-event simulation of an edge fleet processing a frame stream.

The paper argues that "having a single model for a diverse set of edge
devices with different processing capabilities introduces new
challenges" — a heavy model saturates weak devices.  This simulator
makes that quantitative: frames arrive at each device as a Poisson
stream; each device is a single-server FIFO queue whose service time is
the dispatched model's predicted latency (with jitter); saturated
queues drop frames.  Comparing one-model-for-all against
capability-aware dispatch is the ablation the Action service rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import EdgeError
from repro.edge.devices import DeviceProfile
from repro.edge.dispatch import predicted_latency_ms
from repro.edge.models import ModelVariant

_FRAMES_ARRIVED = obs.metrics().counter("edge.frames_arrived")
_FRAMES_PROCESSED = obs.metrics().counter("edge.frames_processed")
_FRAMES_DROPPED = obs.metrics().counter("edge.frames_dropped")


@dataclass(frozen=True)
class DeviceStats:
    """Outcome for one device over the simulated window."""

    device: str
    model: str
    frames_arrived: int
    frames_processed: int
    frames_dropped: int
    mean_latency_ms: float  # queueing + service, processed frames only
    p95_latency_ms: float
    utilization: float
    expected_accuracy: float

    @property
    def drop_rate(self) -> float:
        if self.frames_arrived == 0:
            return 0.0
        return self.frames_dropped / self.frames_arrived

    @property
    def effective_accuracy(self) -> float:
        """Accuracy weighted by the fraction of frames actually served —
        a dropped frame is a wrong (missing) answer."""
        if self.frames_arrived == 0:
            return 0.0
        return self.expected_accuracy * self.frames_processed / self.frames_arrived


@dataclass(frozen=True)
class FleetReport:
    """Per-device stats plus fleet-level aggregates."""

    stats: tuple[DeviceStats, ...]

    @property
    def fleet_effective_accuracy(self) -> float:
        arrived = sum(s.frames_arrived for s in self.stats)
        if arrived == 0:
            return 0.0
        served_acc = sum(s.expected_accuracy * s.frames_processed for s in self.stats)
        return served_acc / arrived

    @property
    def total_dropped(self) -> int:
        return sum(s.frames_dropped for s in self.stats)


def simulate_device(
    device: DeviceProfile,
    model: ModelVariant,
    duration_s: float,
    arrival_rate_hz: float,
    max_queue: int = 10,
    jitter: float = 0.1,
    seed: int = 0,
) -> DeviceStats:
    """Simulate one device serving a Poisson frame stream with ``model``."""
    if duration_s <= 0 or arrival_rate_hz <= 0:
        raise EdgeError("duration and arrival rate must be positive")
    if max_queue < 1:
        raise EdgeError(f"max_queue must be >= 1, got {max_queue}")
    if not (0.0 <= jitter < 1.0):
        raise EdgeError(f"jitter must be in [0, 1), got {jitter}")
    rng = np.random.default_rng(seed)
    base_service_s = predicted_latency_ms(device, model) / 1e3

    with obs.span(
        "edge.simulate_device", device=device.name, model=model.name
    ) as sp:
        t = 0.0
        arrivals = []
        while True:
            t += rng.exponential(1.0 / arrival_rate_hz)
            if t >= duration_s:
                break
            arrivals.append(t)

        server_free_at = 0.0
        busy_s = 0.0
        queue: list[float] = []  # arrival times waiting
        latencies: list[float] = []
        dropped = 0
        for arrival in arrivals:
            # Drain every job the server finishes before this arrival.
            while queue and server_free_at <= arrival:
                start = max(server_free_at, queue[0])
                service = base_service_s * (1.0 + jitter * float(rng.standard_normal()))
                service = max(service, base_service_s * 0.2)
                waiting = queue.pop(0)
                finish = start + service
                busy_s += service
                latencies.append((finish - waiting) * 1e3)
                server_free_at = finish
            if len(queue) >= max_queue:
                dropped += 1
                continue
            queue.append(arrival)
        # Drain the remainder after the last arrival.
        while queue:
            start = max(server_free_at, queue[0])
            service = base_service_s * (1.0 + jitter * float(rng.standard_normal()))
            service = max(service, base_service_s * 0.2)
            waiting = queue.pop(0)
            finish = start + service
            busy_s += service
            latencies.append((finish - waiting) * 1e3)
            server_free_at = finish

        processed = len(latencies)
        sp.set("frames_arrived", len(arrivals))
        sp.set("frames_processed", processed)
        sp.set("frames_dropped", dropped)
        _FRAMES_ARRIVED.inc(len(arrivals))
        _FRAMES_PROCESSED.inc(processed)
        _FRAMES_DROPPED.inc(dropped)
        horizon = max(duration_s, server_free_at)
        return DeviceStats(
            device=device.name,
            model=model.name,
            frames_arrived=len(arrivals),
            frames_processed=processed,
            frames_dropped=dropped,
            mean_latency_ms=float(np.mean(latencies)) if latencies else 0.0,
            p95_latency_ms=float(np.percentile(latencies, 95)) if latencies else 0.0,
            utilization=min(busy_s / horizon, 1.0),
            expected_accuracy=model.expected_accuracy,
        )


def simulate_fleet(
    assignments: dict[str, tuple[DeviceProfile, ModelVariant]],
    duration_s: float = 120.0,
    arrival_rate_hz: float = 1.0,
    max_queue: int = 10,
    seed: int = 0,
) -> FleetReport:
    """Simulate every (device, model) assignment on the same stream
    parameters and aggregate."""
    stats = []
    with obs.span("edge.simulate_fleet", devices=len(assignments)):
        for offset, (name, (device, model)) in enumerate(sorted(assignments.items())):
            stats.append(
                simulate_device(
                    device,
                    model,
                    duration_s=duration_s,
                    arrival_rate_hz=arrival_rate_hz,
                    max_queue=max_queue,
                    seed=seed + offset,
                )
            )
    return FleetReport(stats=tuple(stats))
