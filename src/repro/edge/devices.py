"""Edge-device capability profiles.

The paper evaluates on "a common desktop machine, a Raspberry PI 3 B+
(RPI) and a smartphone" and observes the RPI "on average is 1.5x order
of magnitude slower compared to desktop class devices".  Real hardware
is unavailable here, so devices are cost models: effective GFLOPS for
neural inference, memory, bandwidth, and battery.  The throughput
numbers are calibrated so the desktop/RPI ratio is ~10^1.5 ≈ 32x,
reproducing the Fig. 8 structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EdgeError


@dataclass(frozen=True, slots=True)
class DeviceProfile:
    """Capability description of one edge device class."""

    name: str
    effective_gflops: float  # sustained throughput on conv workloads
    memory_mb: float
    bandwidth_mbps: float
    battery_wh: float | None  # None = mains powered
    inference_overhead_ms: float  # per-call runtime/dispatch overhead
    active_power_w: float = 5.0  # draw while running inference

    def __post_init__(self) -> None:
        if self.effective_gflops <= 0:
            raise EdgeError(f"effective_gflops must be positive: {self.name}")
        if self.memory_mb <= 0 or self.bandwidth_mbps <= 0:
            raise EdgeError(f"memory and bandwidth must be positive: {self.name}")
        if self.inference_overhead_ms < 0:
            raise EdgeError(f"overhead must be >= 0: {self.name}")

    def inference_time_ms(self, flops: float) -> float:
        """Milliseconds to run ``flops`` multiply-accumulates."""
        if flops < 0:
            raise EdgeError(f"flops must be >= 0, got {flops}")
        return self.inference_overhead_ms + flops / (self.effective_gflops * 1e9) * 1e3

    def transmission_time_s(self, n_bytes: int) -> float:
        """Seconds to upload ``n_bytes`` at this device's bandwidth."""
        if n_bytes < 0:
            raise EdgeError(f"bytes must be >= 0, got {n_bytes}")
        return (n_bytes * 8.0) / (self.bandwidth_mbps * 1e6)

    def energy_per_inference_j(self, flops: float) -> float:
        """Joules one inference costs on this device."""
        return self.active_power_w * self.inference_time_ms(flops) / 1e3

    def inferences_per_charge(self, flops: float) -> float:
        """How many inferences one battery charge affords (``inf`` for
        mains-powered devices) — the budget the dispatcher respects for
        crowd devices whose owners won't tolerate a dead phone."""
        if self.battery_wh is None:
            return float("inf")
        per_inference = self.energy_per_inference_j(flops)
        if per_inference <= 0:
            return float("inf")
        return (self.battery_wh * 3_600.0) / per_inference


#: Desktop: tens of ms for the paper's models.
DESKTOP = DeviceProfile(
    name="desktop",
    effective_gflops=100.0,
    memory_mb=16_384.0,
    bandwidth_mbps=500.0,
    battery_wh=None,
    inference_overhead_ms=2.0,
    active_power_w=120.0,
)

#: Smartphone: mid-range mobile SoC, a few hundred ms.
SMARTPHONE = DeviceProfile(
    name="smartphone",
    effective_gflops=12.0,
    memory_mb=4_096.0,
    bandwidth_mbps=50.0,
    battery_wh=12.0,
    inference_overhead_ms=8.0,
    active_power_w=4.0,
)

#: Raspberry Pi 3 B+: ~10^1.5 slower than the desktop, seconds per frame.
RASPBERRY_PI = DeviceProfile(
    name="raspberry_pi_3b+",
    effective_gflops=100.0 / 10**1.5,  # calibrated to the paper's 1.5 orders
    memory_mb=1_024.0,
    bandwidth_mbps=25.0,
    battery_wh=None,
    inference_overhead_ms=30.0,
    active_power_w=5.0,
)

#: The evaluation grid of Fig. 8.
PAPER_DEVICES = (DESKTOP, RASPBERRY_PI, SMARTPHONE)


def device_by_name(name: str) -> DeviceProfile:
    """Look up one of the paper's devices by name."""
    for device in PAPER_DEVICES:
        if device.name == name:
            return device
    raise EdgeError(f"unknown device {name!r}; known: {[d.name for d in PAPER_DEVICES]}")
