"""Model-variant cost models for edge dispatch.

The paper transfers street-cleanliness models onto MobileNetV1,
MobileNetV2, and InceptionV3 backbones.  Each variant here carries the
published FLOPs / parameter counts of the real architecture (at its
canonical input resolution, scaled quadratically with input size) plus
an expected-accuracy figure so the dispatcher can trade speed against
quality.  A variant can also embed one of our own
:class:`~repro.features.cnn.CnnFeatureExtractor` configs, which is what
edges actually execute in this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EdgeError


@dataclass(frozen=True, slots=True)
class ModelVariant:
    """One deployable model complexity level."""

    name: str
    base_flops: float  # multiply-accumulates at base_input_px
    base_input_px: int  # canonical input resolution (square)
    size_mb: float  # download / memory footprint
    expected_accuracy: float  # validation accuracy estimate in [0, 1]

    def __post_init__(self) -> None:
        if self.base_flops <= 0 or self.base_input_px <= 0:
            raise EdgeError(f"invalid cost parameters for model {self.name!r}")
        if self.size_mb <= 0:
            raise EdgeError(f"size_mb must be positive for {self.name!r}")
        if not (0.0 < self.expected_accuracy <= 1.0):
            raise EdgeError(
                f"expected_accuracy must be in (0, 1] for {self.name!r}"
            )

    def flops_at(self, input_px: int) -> float:
        """FLOPs at a different square input resolution (conv cost is
        quadratic in side length)."""
        if input_px <= 0:
            raise EdgeError(f"input_px must be positive, got {input_px}")
        return self.base_flops * (input_px / self.base_input_px) ** 2


#: Published costs of the paper's three backbones (224x224 / 299x299).
MOBILENET_V1 = ModelVariant(
    name="mobilenet_v1",
    base_flops=569e6,
    base_input_px=224,
    size_mb=16.0,
    expected_accuracy=0.78,
)
MOBILENET_V2 = ModelVariant(
    name="mobilenet_v2",
    base_flops=300e6,
    base_input_px=224,
    size_mb=14.0,
    expected_accuracy=0.80,
)
INCEPTION_V3 = ModelVariant(
    name="inception_v3",
    base_flops=5_713e6,
    base_input_px=299,
    size_mb=92.0,
    expected_accuracy=0.86,
)

#: The evaluation grid of Fig. 8, in the paper's order.
PAPER_MODELS = (MOBILENET_V1, MOBILENET_V2, INCEPTION_V3)


def model_by_name(name: str) -> ModelVariant:
    """Look up one of the paper's models by name."""
    for model in PAPER_MODELS:
        if model.name == name:
            return model
    raise EdgeError(f"unknown model {name!r}; known: {[m.name for m in PAPER_MODELS]}")
