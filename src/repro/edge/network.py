"""Bandwidth accounting for edge uploads.

The paper's bandwidth-saving claim: "the framework extracts the visual
feature vectors of the selected subset locally on the edge device and
transmits them to the TVDP server, instead of sending the raw
high-quality image".  These helpers quantify exactly that trade.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EdgeError
from repro.edge.devices import DeviceProfile

#: Bytes per float32 feature component on the wire.
FLOAT_BYTES = 4

#: Rough JPEG size in bytes per pixel for street photos (quality ~85).
JPEG_BYTES_PER_PIXEL = 0.35


def raw_image_bytes(width: int, height: int, jpeg: bool = True) -> int:
    """Upload size of one image, JPEG-compressed or raw RGB."""
    if width < 1 or height < 1:
        raise EdgeError(f"image dimensions must be positive: {width}x{height}")
    if jpeg:
        return int(width * height * JPEG_BYTES_PER_PIXEL)
    return width * height * 3


def feature_vector_bytes(dimension: int) -> int:
    """Upload size of one feature vector."""
    if dimension < 1:
        raise EdgeError(f"dimension must be positive, got {dimension}")
    return dimension * FLOAT_BYTES


@dataclass(frozen=True, slots=True)
class UploadPlan:
    """Cost of uploading a batch from one device."""

    n_items: int
    bytes_per_item: int
    device: DeviceProfile

    @property
    def total_bytes(self) -> int:
        return self.n_items * self.bytes_per_item

    @property
    def transfer_time_s(self) -> float:
        return self.device.transmission_time_s(self.total_bytes)


def compare_upload_strategies(
    device: DeviceProfile,
    n_items: int,
    image_px: int,
    feature_dim: int,
) -> dict[str, UploadPlan]:
    """Raw-image vs feature-vector upload plans for the same batch."""
    if n_items < 0:
        raise EdgeError(f"n_items must be >= 0, got {n_items}")
    return {
        "raw_images": UploadPlan(
            n_items=n_items,
            bytes_per_item=raw_image_bytes(image_px, image_px),
            device=device,
        ),
        "features": UploadPlan(
            n_items=n_items,
            bytes_per_item=feature_vector_bytes(feature_dim),
            device=device,
        ),
    }
