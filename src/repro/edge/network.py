"""Bandwidth accounting and resilient transfer execution for edge uploads.

The paper's bandwidth-saving claim: "the framework extracts the visual
feature vectors of the selected subset locally on the edge device and
transmits them to the TVDP server, instead of sending the raw
high-quality image".  The planning helpers quantify exactly that trade;
:func:`execute_upload` / :func:`upload_fleet` then *run* a plan over an
unreliable link with the platform's resilience stack: retries with
seeded backoff, and one circuit breaker per device so a dead Raspberry
Pi fast-fails instead of stalling the rest of a campaign round.

All timing goes through the injectable :class:`~repro.resilience.Clock`
— transfers "take" their modelled ``transfer_time_s`` on a *virtual*
clock by default (an active :class:`~repro.resilience.FaultPlan`'s
clock when chaos is on), so neither production simulation nor any test
ever calls ``time.sleep``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import CircuitOpenError, EdgeError, TVDPError
from repro.edge.devices import DeviceProfile
from repro.resilience import (
    Clock,
    ManualClock,
    Retry,
    active_plan,
    get_breaker,
    inject,
)

_DELIVERED = obs.metrics().counter("edge.transfer.delivered")
_FAILED = obs.metrics().counter("edge.transfer.failed")

#: Bytes per float32 feature component on the wire.
FLOAT_BYTES = 4

#: Rough JPEG size in bytes per pixel for street photos (quality ~85).
JPEG_BYTES_PER_PIXEL = 0.35


def raw_image_bytes(width: int, height: int, jpeg: bool = True) -> int:
    """Upload size of one image, JPEG-compressed or raw RGB."""
    if width < 1 or height < 1:
        raise EdgeError(f"image dimensions must be positive: {width}x{height}")
    if jpeg:
        return int(width * height * JPEG_BYTES_PER_PIXEL)
    return width * height * 3


def feature_vector_bytes(dimension: int) -> int:
    """Upload size of one feature vector."""
    if dimension < 1:
        raise EdgeError(f"dimension must be positive, got {dimension}")
    return dimension * FLOAT_BYTES


@dataclass(frozen=True, slots=True)
class UploadPlan:
    """Cost of uploading a batch from one device."""

    n_items: int
    bytes_per_item: int
    device: DeviceProfile

    @property
    def total_bytes(self) -> int:
        return self.n_items * self.bytes_per_item

    @property
    def transfer_time_s(self) -> float:
        return self.device.transmission_time_s(self.total_bytes)


def compare_upload_strategies(
    device: DeviceProfile,
    n_items: int,
    image_px: int,
    feature_dim: int,
) -> dict[str, UploadPlan]:
    """Raw-image vs feature-vector upload plans for the same batch."""
    if n_items < 0:
        raise EdgeError(f"n_items must be >= 0, got {n_items}")
    return {
        "raw_images": UploadPlan(
            n_items=n_items,
            bytes_per_item=raw_image_bytes(image_px, image_px),
            device=device,
        ),
        "features": UploadPlan(
            n_items=n_items,
            bytes_per_item=feature_vector_bytes(feature_dim),
            device=device,
        ),
    }


# -- resilient transfer execution --------------------------------------------

#: Fault-injection site for upload transfers (see ``repro.resilience``).
TRANSFER_SITE = "edge.transfer"


@dataclass(frozen=True, slots=True)
class TransferReceipt:
    """One upload batch successfully delivered from one device."""

    device: str
    n_items: int
    total_bytes: int
    duration_s: float  # simulated link time, retries included
    attempts: int


@dataclass(frozen=True)
class FleetTransferReport:
    """Outcome of pushing one batch per device through flaky links."""

    delivered: dict[str, TransferReceipt]
    failed: dict[str, str]  # device name -> terminal error

    @property
    def delivery_ratio(self) -> float:
        total = len(self.delivered) + len(self.failed)
        if total == 0:
            return 1.0
        return len(self.delivered) / total


def _simulation_clock(clock: Clock | None) -> Clock:
    """Transfers model elapsed time rather than spend it: an explicit
    clock wins, then an active fault plan's (chaos shares one virtual
    timeline), then a fresh :class:`ManualClock` — never the real
    wall clock, so nothing here can ever block."""
    if clock is not None:
        return clock
    plan = active_plan()
    if plan is not None:
        return plan.clock
    return ManualClock()


def execute_upload(
    plan: UploadPlan,
    clock: Clock | None = None,
    max_attempts: int = 4,
    breaker_threshold: int = 3,
    breaker_recovery_s: float = 60.0,
    seed: int = 0,
) -> TransferReceipt:
    """Run one upload batch with retry + a per-device circuit breaker.

    Each attempt spends the plan's ``transfer_time_s`` on the injected
    clock and passes through the :data:`TRANSFER_SITE` fault hook.  A
    device whose breaker is open fast-fails with
    :class:`~repro.errors.CircuitOpenError` — callers doing fleet rounds
    treat that as "skip this device for now", not as a reason to wait.
    """
    clock = _simulation_clock(clock)
    device = plan.device
    breaker = get_breaker(
        f"edge.device.{device.name}",
        failure_threshold=breaker_threshold,
        recovery_time_s=breaker_recovery_s,
        failure_on=(TVDPError,),
        clock=clock,
    )
    attempts = 0

    def one_attempt() -> None:
        nonlocal attempts
        attempts += 1
        with obs.span(
            "edge.transfer.attempt", device=device.name, attempt=attempts
        ):
            inject(TRANSFER_SITE, clock)
            clock.sleep(plan.transfer_time_s)

    retry = Retry(
        max_attempts=max_attempts,
        base_delay_s=0.1,
        budget_s=30.0,
        seed=seed,
        clock=clock,
        site=TRANSFER_SITE,
    )
    started = clock.now()
    with obs.span(
        TRANSFER_SITE,
        device=device.name,
        items=plan.n_items,
        bytes=plan.total_bytes,
    ) as sp:
        try:
            retry.call(lambda: breaker.call(one_attempt))
        except TVDPError:
            _FAILED.inc()
            raise
        _DELIVERED.inc()
        duration = clock.now() - started
        sp.set("attempts", attempts)
        return TransferReceipt(
            device=device.name,
            n_items=plan.n_items,
            total_bytes=plan.total_bytes,
            duration_s=duration,
            attempts=attempts,
        )


def upload_fleet(
    plans: dict[str, UploadPlan],
    clock: Clock | None = None,
    max_attempts: int = 4,
    breaker_threshold: int = 3,
    breaker_recovery_s: float = 60.0,
    seed: int = 0,
) -> FleetTransferReport:
    """Push one batch per device; isolate failures per device.

    A device that exhausts its retries — or whose breaker is already
    open from an earlier round — lands in ``failed`` and the loop moves
    on; one dead Raspberry Pi costs the fleet exactly its own batch.
    """
    clock = _simulation_clock(clock)
    delivered: dict[str, TransferReceipt] = {}
    failed: dict[str, str] = {}
    with obs.span("edge.upload_fleet", devices=len(plans)):
        for offset, (name, plan) in enumerate(sorted(plans.items())):
            try:
                delivered[name] = execute_upload(
                    plan,
                    clock=clock,
                    max_attempts=max_attempts,
                    breaker_threshold=breaker_threshold,
                    breaker_recovery_s=breaker_recovery_s,
                    seed=seed + offset,
                )
            except CircuitOpenError as exc:
                failed[name] = f"breaker open: {exc}"
            except TVDPError as exc:
                failed[name] = f"{type(exc).__name__}: {exc}"
    return FleetTransferReport(delivered=delivered, failed=failed)
