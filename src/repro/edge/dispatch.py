"""Capability-aware model dispatch.

The core of the Action service: "the framework trains models on the
server with diverse complexities and dispatches the appropriate model
according to the edge device capabilities".  Given a device profile
and constraints, pick the most accurate variant that fits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.errors import EdgeError, TVDPError
from repro.edge.devices import DeviceProfile
from repro.edge.models import ModelVariant
from repro.resilience import Clock, Retry, current_clock, inject

_DECISIONS = obs.metrics().counter("edge.dispatch.decisions")
_INFEASIBLE = obs.metrics().counter("edge.dispatch.infeasible")
_OVER_BUDGET = obs.metrics().counter("edge.dispatch.over_budget")

#: Fault-injection site for per-device dispatch (see ``repro.resilience``).
DISPATCH_SITE = "edge.dispatch"


@dataclass(frozen=True, slots=True)
class DispatchDecision:
    """Outcome of matching a model to a device."""

    device: DeviceProfile
    model: ModelVariant
    input_px: int
    predicted_latency_ms: float
    download_time_s: float


def predicted_latency_ms(
    device: DeviceProfile, model: ModelVariant, input_px: int | None = None
) -> float:
    """Latency estimate for one inference on ``device``."""
    px = input_px or model.base_input_px
    return device.inference_time_ms(model.flops_at(px))


def dispatch_model(
    device: DeviceProfile,
    candidates: list[ModelVariant],
    latency_budget_ms: float = float("inf"),
    memory_fraction: float = 0.5,
    input_px: int | None = None,
    min_inferences_on_battery: float = 0.0,
) -> DispatchDecision:
    """Pick the most accurate candidate that satisfies the device's
    memory limit, the latency budget, and — for battery devices — an
    inferences-per-charge floor.

    Ties on accuracy break toward lower latency.  When nothing fits the
    budget, the *fastest feasible-by-memory* model is returned instead —
    a degraded answer beats no model at all on a crowd device — and when
    memory or energy rules everything out, :class:`EdgeError` is raised.
    """
    if not candidates:
        raise EdgeError("no candidate models to dispatch")
    if latency_budget_ms <= 0:
        raise EdgeError(f"latency budget must be positive, got {latency_budget_ms}")
    if not (0.0 < memory_fraction <= 1.0):
        raise EdgeError(f"memory_fraction must be in (0, 1], got {memory_fraction}")
    if min_inferences_on_battery < 0:
        raise EdgeError(
            f"min_inferences_on_battery must be >= 0, got {min_inferences_on_battery}"
        )

    with obs.span(
        "edge.dispatch", device=device.name, candidates=len(candidates)
    ) as sp:
        memory_ok = [
            m for m in candidates if m.size_mb <= device.memory_mb * memory_fraction
        ]
        if not memory_ok:
            _INFEASIBLE.inc()
            raise EdgeError(
                f"no model fits in {device.memory_mb * memory_fraction:.0f} MB "
                f"on {device.name}"
            )
        if min_inferences_on_battery > 0:
            energy_ok = [
                m
                for m in memory_ok
                if device.inferences_per_charge(m.flops_at(input_px or m.base_input_px))
                >= min_inferences_on_battery
            ]
            if not energy_ok:
                _INFEASIBLE.inc()
                raise EdgeError(
                    f"no model sustains {min_inferences_on_battery:.0f} inferences "
                    f"per charge on {device.name}"
                )
            memory_ok = energy_ok

        def latency(model: ModelVariant) -> float:
            return predicted_latency_ms(device, model, input_px)

        within_budget = [m for m in memory_ok if latency(m) <= latency_budget_ms]
        if within_budget:
            chosen = max(within_budget, key=lambda m: (m.expected_accuracy, -latency(m)))
        else:
            _OVER_BUDGET.inc()
            chosen = min(memory_ok, key=latency)
        px = input_px or chosen.base_input_px
        sp.set("model", chosen.name)
        _DECISIONS.inc()
        return DispatchDecision(
            device=device,
            model=chosen,
            input_px=px,
            predicted_latency_ms=latency(chosen),
            download_time_s=device.transmission_time_s(int(chosen.size_mb * 1e6)),
        )


def dispatch_fleet(
    devices: list[DeviceProfile],
    candidates: list[ModelVariant],
    latency_budget_ms: float = float("inf"),
) -> dict[str, DispatchDecision]:
    """Dispatch every device in a heterogeneous fleet; device name ->
    decision.  All-or-nothing: any infeasible device raises.  Campaign
    code that must survive flaky devices uses
    :func:`dispatch_fleet_resilient` instead."""
    with obs.span("edge.dispatch_fleet", devices=len(devices)):
        return {
            device.name: dispatch_model(device, candidates, latency_budget_ms)
            for device in devices
        }


@dataclass(frozen=True)
class FleetDispatchReport:
    """Per-device dispatch outcomes for a fleet round."""

    decisions: dict[str, DispatchDecision] = field(default_factory=dict)
    failed: dict[str, str] = field(default_factory=dict)  # name -> error

    @property
    def dispatch_ratio(self) -> float:
        total = len(self.decisions) + len(self.failed)
        if total == 0:
            return 1.0
        return len(self.decisions) / total


def dispatch_fleet_resilient(
    devices: list[DeviceProfile],
    candidates: list[ModelVariant],
    latency_budget_ms: float = float("inf"),
    clock: Clock | None = None,
    max_attempts: int = 3,
    seed: int = 0,
    **dispatch_kwargs: float,
) -> FleetDispatchReport:
    """Dispatch a fleet where individual devices may be unreachable.

    Each device's dispatch runs through the :data:`DISPATCH_SITE` fault
    hook and a seeded retry; a device that stays unreachable (or is
    genuinely infeasible) is recorded in ``failed`` and the round
    continues — the paper's heterogeneous crowd fleets lose members
    routinely, and one dead phone must not void everyone else's model.
    """
    resolved = current_clock(clock)
    report = FleetDispatchReport()
    with obs.span("edge.dispatch_fleet", devices=len(devices), resilient=True) as fleet:
        # The per-device negotiation is a simulated transfer to another
        # machine: serialise the fleet span's context to the wire format
        # a real transport would carry, and re-join the trace from the
        # parsed header on the "device side" (remote_parent), exactly as
        # a device-resident agent would.  The contextvars stack is left
        # intact — detaching it would drop the active fault plan.
        wire_traceparent = obs.format_traceparent(
            obs.TraceContext(fleet.trace_id, fleet.span_id)
        )
        for offset, device in enumerate(devices):

            def negotiate(device: DeviceProfile = device) -> DispatchDecision:
                inject(DISPATCH_SITE, resolved)
                with obs.span(
                    "edge.device_negotiate",
                    remote_parent=obs.parse_traceparent(wire_traceparent),
                    device=device.name,
                    traceparent=wire_traceparent,
                ):
                    return dispatch_model(
                        device, candidates, latency_budget_ms, **dispatch_kwargs
                    )

            retry = Retry(
                max_attempts=max_attempts,
                base_delay_s=0.05,
                seed=seed + offset,
                clock=resolved,
                site=DISPATCH_SITE,
            )
            try:
                report.decisions[device.name] = retry.call(negotiate)
            except TVDPError as exc:
                report.failed[device.name] = f"{type(exc).__name__}: {exc}"
    return report
