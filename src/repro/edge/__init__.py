"""Edge computing: device profiles, model dispatch, crowd learning."""

from repro.edge.devices import (
    DESKTOP,
    PAPER_DEVICES,
    RASPBERRY_PI,
    SMARTPHONE,
    DeviceProfile,
    device_by_name,
)
from repro.edge.models import (
    INCEPTION_V3,
    MOBILENET_V1,
    MOBILENET_V2,
    PAPER_MODELS,
    ModelVariant,
    model_by_name,
)
from repro.edge.dispatch import (
    DispatchDecision,
    FleetDispatchReport,
    dispatch_fleet,
    dispatch_fleet_resilient,
    dispatch_model,
    predicted_latency_ms,
)
from repro.edge.network import (
    FLOAT_BYTES,
    FleetTransferReport,
    TransferReceipt,
    UploadPlan,
    compare_upload_strategies,
    execute_upload,
    feature_vector_bytes,
    raw_image_bytes,
    upload_fleet,
)
from repro.edge.selection import (
    SelectionResult,
    prediction_entropy,
    select_for_upload,
    select_random,
)
from repro.edge.learning import CrowdLearningFramework, EdgeBatch, LearningRound
from repro.edge.simulator import (
    DeviceStats,
    FleetReport,
    simulate_device,
    simulate_fleet,
)

__all__ = [
    "DeviceProfile",
    "DESKTOP",
    "SMARTPHONE",
    "RASPBERRY_PI",
    "PAPER_DEVICES",
    "device_by_name",
    "ModelVariant",
    "MOBILENET_V1",
    "MOBILENET_V2",
    "INCEPTION_V3",
    "PAPER_MODELS",
    "model_by_name",
    "DispatchDecision",
    "FleetDispatchReport",
    "dispatch_model",
    "dispatch_fleet",
    "dispatch_fleet_resilient",
    "predicted_latency_ms",
    "raw_image_bytes",
    "feature_vector_bytes",
    "FLOAT_BYTES",
    "UploadPlan",
    "TransferReceipt",
    "FleetTransferReport",
    "compare_upload_strategies",
    "execute_upload",
    "upload_fleet",
    "prediction_entropy",
    "SelectionResult",
    "select_for_upload",
    "select_random",
    "EdgeBatch",
    "LearningRound",
    "CrowdLearningFramework",
    "DeviceStats",
    "FleetReport",
    "simulate_device",
    "simulate_fleet",
]
