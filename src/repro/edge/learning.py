"""Crowd-based learning framework (paper Fig. 4, ref. [34]).

End-to-end loop integrating machine learning, edge computing and
crowdsourcing:

1. the **server** trains a classifier on its labelled pool and
   dispatches capability-matched model variants to edge devices;
2. each **edge** runs local inference over newly crowdsourced images,
   prioritises the most informative ones under an upload budget,
   extracts feature vectors locally, and uploads features + labels
   (machine-predicted, or human-confirmed with some probability);
3. the server folds the uploads into its pool and **retrains**,
   improving the model without ever shipping raw images.

The loop operates on feature vectors end to end, so it composes with
any of the platform's extractors and classifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import EdgeError
from repro.edge.devices import DeviceProfile
from repro.edge.dispatch import DispatchDecision, dispatch_model
from repro.edge.models import ModelVariant
from repro.edge.network import feature_vector_bytes
from repro.edge.selection import SelectionResult, select_for_upload, select_random
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import accuracy


@dataclass
class EdgeBatch:
    """Unlabelled crowdsourced data sitting on one edge device."""

    device: DeviceProfile
    features: np.ndarray
    true_labels: np.ndarray  # ground truth, revealed only on human labelling


@dataclass(frozen=True)
class LearningRound:
    """Telemetry for one train-dispatch-collect-retrain cycle."""

    round_index: int
    test_accuracy: float
    pool_size: int
    uploaded_samples: int
    uploaded_bytes: int
    human_labels: int
    dispatch: dict[str, DispatchDecision]


@dataclass
class CrowdLearningFramework:
    """Server-side coordinator of the crowd-based learning loop.

    Parameters
    ----------
    model_variants:
        Complexity ladder to dispatch from (e.g. the paper's three).
    make_classifier:
        Zero-arg factory for the server model; must expose
        ``fit``/``predict``/``predict_proba``.
    upload_budget:
        Max samples each edge uploads per round.
    human_label_rate:
        Probability an uploaded sample gets a (correct) human label via
        the edge app; the rest carry machine labels from the local model.
    strategy:
        ``"prioritized"`` (entropy + diversity) or ``"random"``.
    """

    model_variants: list[ModelVariant]
    make_classifier: Callable[[], object] = field(
        default=lambda: LogisticRegression(epochs=40)
    )
    upload_budget: int = 20
    human_label_rate: float = 0.3
    strategy: str = "prioritized"
    seed: int = 0
    pool_features: np.ndarray | None = None
    pool_labels: np.ndarray | None = None
    classifier: object | None = None
    history: list[LearningRound] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.model_variants:
            raise EdgeError("need at least one model variant")
        if self.strategy not in ("prioritized", "random"):
            raise EdgeError(f"unknown strategy {self.strategy!r}")
        if not (0.0 <= self.human_label_rate <= 1.0):
            raise EdgeError(
                f"human_label_rate must be in [0, 1], got {self.human_label_rate}"
            )
        if self.upload_budget < 1:
            raise EdgeError(f"upload_budget must be >= 1, got {self.upload_budget}")

    # -- server-side ---------------------------------------------------------

    def seed_pool(self, features: np.ndarray, labels: np.ndarray) -> None:
        """Install the initial labelled dataset and train the first model."""
        self.pool_features = np.asarray(features, dtype=np.float64)
        self.pool_labels = np.asarray(labels)
        self._retrain()

    def _retrain(self) -> None:
        self.classifier = self.make_classifier()
        self.classifier.fit(self.pool_features, self.pool_labels)

    def _predict_proba(self, features: np.ndarray) -> np.ndarray:
        if hasattr(self.classifier, "predict_proba"):
            return self.classifier.predict_proba(features)
        # Margin-based fallback for classifiers without probabilities.
        margins = self.classifier.decision_function(features)
        shifted = margins - margins.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    # -- one full cycle --------------------------------------------------------

    def run_round(
        self,
        batches: list[EdgeBatch],
        test_features: np.ndarray,
        test_labels: np.ndarray,
        latency_budget_ms: float = float("inf"),
    ) -> LearningRound:
        """Dispatch, collect selected uploads from every edge, retrain,
        and report test accuracy."""
        if self.classifier is None:
            raise EdgeError("seed_pool must be called before run_round")
        rng = np.random.default_rng(self.seed + len(self.history))

        dispatch: dict[str, DispatchDecision] = {}
        uploaded_features: list[np.ndarray] = []
        uploaded_labels: list[object] = []
        uploaded_bytes = 0
        human_labels = 0

        for batch in batches:
            dispatch[batch.device.name] = dispatch_model(
                batch.device, self.model_variants, latency_budget_ms
            )
            if batch.features.shape[0] == 0:
                continue
            # Edge-local inference with the (shared-weights) model.
            probabilities = self._predict_proba(batch.features)
            if self.strategy == "prioritized":
                selection: SelectionResult = select_for_upload(
                    batch.features, probabilities, self.upload_budget
                )
            else:
                selection = select_random(
                    batch.features.shape[0],
                    self.upload_budget,
                    seed=self.seed + len(self.history),
                )
            machine_predictions = self.classifier.predict(batch.features)
            for idx in selection.indices:
                if rng.random() < self.human_label_rate:
                    uploaded_labels.append(batch.true_labels[idx])
                    human_labels += 1
                else:
                    uploaded_labels.append(machine_predictions[idx])
                uploaded_features.append(batch.features[idx])
                uploaded_bytes += feature_vector_bytes(batch.features.shape[1])

        if uploaded_features:
            self.pool_features = np.vstack(
                [self.pool_features, np.vstack(uploaded_features)]
            )
            self.pool_labels = np.concatenate(
                [self.pool_labels, np.array(uploaded_labels)]
            )
            self._retrain()

        round_stats = LearningRound(
            round_index=len(self.history) + 1,
            test_accuracy=accuracy(test_labels, self.classifier.predict(test_features)),
            pool_size=int(self.pool_features.shape[0]),
            uploaded_samples=len(uploaded_features),
            uploaded_bytes=uploaded_bytes,
            human_labels=human_labels,
            dispatch=dispatch,
        )
        self.history.append(round_stats)
        return round_stats
