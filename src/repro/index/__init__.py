"""Index structures: R-tree, Oriented R-tree, LSH, inverted, hybrid."""

from repro.index.ordering import tie_key
from repro.index.rtree import RTree, box_point_distance_deg
from repro.index.oriented_rtree import SECTORS, OrientedRTree, direction_mask
from repro.index.lsh import LSHIndex
from repro.index.inverted import STOPWORDS, InvertedIndex, tokenize
from repro.index.hybrid import VisualRTree
from repro.index.grid import GridIndex

__all__ = [
    "RTree",
    "box_point_distance_deg",
    "OrientedRTree",
    "direction_mask",
    "SECTORS",
    "LSHIndex",
    "InvertedIndex",
    "tokenize",
    "STOPWORDS",
    "VisualRTree",
    "GridIndex",
    "tie_key",
]
