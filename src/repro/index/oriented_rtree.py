"""Oriented R-tree: an R-tree over FOVs that also prunes by direction.

Follows the idea of Lu, Shahabi & Kim (GeoInformatica 2016, paper
ref. [25]): each node augments its MBR with a summary of the viewing
directions stored beneath it, so directional queries ("images looking
north at this intersection") skip subtrees whose orientations can't
match.  We summarise directions as a bitmask over 16 equal sectors of
the compass — compact, unions are single ORs, and pruning is exact at
the sector granularity.
"""

from __future__ import annotations

import threading

from repro.errors import IndexError_
from repro.geo.fov import FieldOfView
from repro.geo.geodesy import angular_difference_deg, normalize_bearing
from repro.geo.point import BoundingBox, GeoPoint
from repro.index.rtree import RTree
from repro.obs import metrics as _metrics
from repro.obs.accounting import charge_probes

# Probe counters: how many MBR candidates each query pulled from the
# underlying tree, how many the direction bitmask pruned before the
# exact angular check, and how many survived full refinement.
_QUERIES = _metrics().counter("index.oriented.queries")
_CANDIDATES = _metrics().counter("index.oriented.candidates")
_MASK_PRUNED = _metrics().counter("index.oriented.mask_pruned")
_REFINED_HITS = _metrics().counter("index.oriented.refined_hits")

#: Number of compass sectors in a direction bitmask.
SECTORS = 16
_SECTOR_DEG = 360.0 / SECTORS


def direction_mask(direction_deg: float, tolerance_deg: float = 0.0) -> int:
    """Bitmask of compass sectors within ``tolerance_deg`` of a bearing."""
    direction = normalize_bearing(direction_deg)
    mask = 0
    for sector in range(SECTORS):
        center = (sector + 0.5) * _SECTOR_DEG
        if angular_difference_deg(center, direction) <= tolerance_deg + _SECTOR_DEG / 2.0:
            mask |= 1 << sector
    return mask


class OrientedRTree:
    """R-tree over FOV sectors with per-entry direction masks.

    Items are indexed by the MBR of their FOV; each leaf entry also
    carries its FOV so queries can refine exactly (sector containment /
    intersection) after the filter step.
    """

    def __init__(self, max_entries: int = 8) -> None:
        self._tree = RTree(max_entries=max_entries)
        self._fovs: dict[object, FieldOfView] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        """Pickle support for the shard boundary: every field but the
        (process-local) lock crosses the wire."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._tree)

    def insert(self, item: object, fov: FieldOfView) -> None:
        """Index one image's FOV."""
        with self._lock:
            if item in self._fovs:
                raise IndexError_(f"item {item!r} already indexed")
            self._fovs[item] = fov
            self._tree.insert((item, direction_mask(fov.direction_deg)), fov.mbr())

    def fov_of(self, item: object) -> FieldOfView:
        """The FOV an item was indexed with."""
        if item not in self._fovs:
            raise IndexError_(f"item {item!r} not in index")
        return self._fovs[item]

    def bounds(self) -> BoundingBox | None:
        """Union MBR of every indexed FOV (``None`` when empty) — the
        spatial extent the shard planner prunes against."""
        return self._tree.bounds()

    # -- queries ------------------------------------------------------------

    def search_range(
        self,
        box: BoundingBox,
        direction_deg: float | None = None,
        tolerance_deg: float = 45.0,
    ) -> list[object]:
        """Items whose FOV sector intersects ``box``; optionally only
        those looking within ``tolerance_deg`` of ``direction_deg``.

        Two-phase: MBR + direction-mask filter in the tree, exact
        sector-vs-box and angular refinement on candidates.
        """
        query_mask = (
            direction_mask(direction_deg, tolerance_deg)
            if direction_deg is not None
            else None
        )
        results = []
        candidates = self._tree.search_range(box)
        mask_pruned = 0
        for payload in candidates:
            item, mask = payload
            if query_mask is not None and not (mask & query_mask):
                mask_pruned += 1
                continue
            fov = self._fovs[item]
            if direction_deg is not None and not fov.direction_matches(
                direction_deg, tolerance_deg
            ):
                continue
            if fov.intersects_box(box):
                results.append(item)
        _QUERIES.inc()
        _CANDIDATES.inc(len(candidates))
        charge_probes("oriented", len(candidates))
        _MASK_PRUNED.inc(mask_pruned)
        _REFINED_HITS.inc(len(results))
        return results

    def search_point(
        self,
        lat: float,
        lng: float,
        direction_deg: float | None = None,
        tolerance_deg: float = 45.0,
    ) -> list[object]:
        """Items whose FOV contains the query point (i.e. images that
        *depict* this location), optionally direction-filtered."""
        point = GeoPoint(lat, lng)
        probe = BoundingBox(lat, lng, lat, lng)
        results = []
        candidates = self._tree.search_range(probe)
        for payload in candidates:
            item, _ = payload
            fov = self._fovs[item]
            if direction_deg is not None and not fov.direction_matches(
                direction_deg, tolerance_deg
            ):
                continue
            if fov.contains_point(point):
                results.append(item)
        _QUERIES.inc()
        _CANDIDATES.inc(len(candidates))
        charge_probes("oriented", len(candidates))
        _REFINED_HITS.inc(len(results))
        return results

    def search_overlapping(self, fov: FieldOfView) -> list[object]:
        """Items whose FOV overlaps the query FOV (used to find other
        images of the same scene for multi-view localisation)."""
        results = []
        candidates = self._tree.search_range(fov.mbr())
        for payload in candidates:
            item, _ = payload
            if self._fovs[item].overlaps_fov(fov):
                results.append(item)
        _QUERIES.inc()
        _CANDIDATES.inc(len(candidates))
        charge_probes("oriented", len(candidates))
        _REFINED_HITS.inc(len(results))
        return results
