"""Canonical tie-break ordering shared by every ranked index path.

Equal-scored hits used to surface in whatever order a heap, a hash set,
or a stable argsort happened to produce them — fine for one process,
fatal for scatter-gather: a coordinator merging per-shard top-k lists
would interleave ties differently than a serial scan, so sharded and
serial answers could disagree on *order* while agreeing on *content*.

Every ranked path therefore breaks ties on :func:`tie_key`, giving one
total order — ``(score, media_id)`` — that serial execution and the
shard merge both produce bit-for-bit.
"""

from __future__ import annotations

_KeyTuple = tuple[int, float, str]


def tie_key(item: object) -> _KeyTuple:
    """Total-order sort key for opaque item ids.

    Numeric ids (the platform's media ids) order numerically and before
    non-numeric ids, which order by their string form — so mixed id
    vocabularies still compare without ``TypeError``.
    """
    if isinstance(item, bool):
        return (1, 0.0, str(item))
    if isinstance(item, (int, float)):
        return (0, float(item), "")
    return (1, 0.0, str(item))
