"""Visual R*-tree: the paper's hybrid index for spatial-visual search.

Following Alfarrarjeh, Shahabi & Kim (ACM MM Workshops 2017, paper
ref. [28]), each R-tree node is augmented with a summary of the feature
vectors stored beneath it — the centroid and a covering radius — so a
spatial-visual query can prune subtrees on *either* modality:

* spatially, when the node MBR misses the query region, and
* visually, when ``|query - centroid| - radius`` already exceeds the
  current k-th best feature distance.
"""

from __future__ import annotations

import heapq
import itertools
import threading

import numpy as np

from repro.errors import IndexError_
from repro.geo.point import BoundingBox, GeoPoint
from repro.index.ordering import tie_key
from repro.obs import metrics as _metrics
from repro.obs.accounting import charge_probes

# Probe counters for the best-first spatial-visual search: heap pops
# (nodes + entries expanded) and subtrees discarded by spatial pruning.
_QUERIES = _metrics().counter("index.visual_rtree.queries")
_HEAP_POPS = _metrics().counter("index.visual_rtree.heap_pops")
_SPATIAL_PRUNED = _metrics().counter("index.visual_rtree.spatial_pruned")


class _VNode:
    """Node carrying a box plus a feature-space bounding sphere."""

    __slots__ = ("leaf", "entries", "box", "centroid", "radius", "count")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.entries: list = []
        self.box: BoundingBox | None = None
        self.centroid: np.ndarray | None = None
        self.radius: float = 0.0
        self.count: int = 0

    def refresh(self) -> None:
        """Recompute box and feature sphere from children/entries."""
        if not self.entries:
            self.box, self.centroid, self.radius, self.count = None, None, 0.0, 0
            return
        if self.leaf:
            boxes = [e[0] for e in self.entries]
            vectors = np.vstack([e[1] for e in self.entries])
            counts = len(self.entries)
        else:
            boxes = [c.box for c in self.entries]
            vectors = np.vstack([c.centroid for c in self.entries])
            counts = sum(c.count for c in self.entries)
        box = boxes[0]
        for other in boxes[1:]:
            box = box.union(other)
        self.box = box
        self.centroid = vectors.mean(axis=0)
        if self.leaf:
            distances = np.linalg.norm(vectors - self.centroid, axis=1)
            self.radius = float(distances.max())
        else:
            self.radius = max(
                float(np.linalg.norm(c.centroid - self.centroid)) + c.radius
                for c in self.entries
            )
        self.count = counts


class VisualRTree:
    """Hybrid spatial-visual index.

    Entries are ``(box, vector, item)``; construction uses the same
    quadratic-split policy as the plain R-tree on the spatial keys, with
    feature spheres maintained alongside.
    """

    def __init__(self, dimension: int, max_entries: int = 8) -> None:
        if dimension < 1:
            raise IndexError_(f"dimension must be >= 1, got {dimension}")
        if max_entries < 4:
            raise IndexError_(f"max_entries must be >= 4, got {max_entries}")
        self.dimension = dimension
        self.max_entries = max_entries
        self.min_entries = max(2, int(0.4 * max_entries))
        self._root = _VNode(leaf=True)
        self._size = 0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        """Pickle support for the shard boundary: every field but the
        (process-local) lock crosses the wire."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._size

    # -- insertion ----------------------------------------------------------

    def insert(self, item: object, point: GeoPoint, vector: np.ndarray) -> None:
        """Index an item by camera location and feature vector."""
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.shape[0] != self.dimension:
            raise IndexError_(
                f"expected {self.dimension}-D vector, got {vector.shape[0]}-D"
            )
        box = BoundingBox(point.lat, point.lng, point.lat, point.lng)
        with self._lock:
            split = self._insert(self._root, (box, vector, item))
            if split is not None:
                old_root = self._root
                self._root = _VNode(leaf=False)
                self._root.entries = [old_root, split]
                self._root.refresh()
            self._size += 1

    def _insert(self, node: _VNode, entry: tuple) -> "_VNode | None":
        if node.leaf:
            node.entries.append(entry)
            node.refresh()
            if len(node.entries) > self.max_entries:
                return self._split(node)
            return None
        box = entry[0]
        best, best_key = None, None
        for child in node.entries:
            union = child.box.union(box)
            key = (union.area - child.box.area, child.box.area)
            if best_key is None or key < best_key:
                best_key, best = key, child
        split = self._insert(best, entry)
        if split is not None:
            node.entries.append(split)
        node.refresh()
        if len(node.entries) > self.max_entries:
            return self._split(node)
        return None

    def _split(self, node: _VNode) -> "_VNode":
        boxes = [e[0] if node.leaf else e.box for e in node.entries]
        worst, seeds = -1.0, (0, 1)
        for i, j in itertools.combinations(range(len(boxes)), 2):
            union = boxes[i].union(boxes[j])
            waste = union.area - boxes[i].area - boxes[j].area
            if waste > worst:
                worst, seeds = waste, (i, j)
        group1 = [node.entries[seeds[0]]]
        group2 = [node.entries[seeds[1]]]
        box1, box2 = boxes[seeds[0]], boxes[seeds[1]]
        rest = [e for idx, e in enumerate(node.entries) if idx not in seeds]
        for entry in rest:
            box = entry[0] if node.leaf else entry.box
            grow1 = box1.union(box).area - box1.area
            grow2 = box2.union(box).area - box2.area
            if len(group1) + (len(rest)) == self.min_entries or grow1 <= grow2:
                group1.append(entry)
                box1 = box1.union(box)
            else:
                group2.append(entry)
                box2 = box2.union(box)
        node.entries = group1
        node.refresh()
        sibling = _VNode(leaf=node.leaf)
        sibling.entries = group2
        sibling.refresh()
        return sibling

    # -- queries ------------------------------------------------------------

    def spatial_visual_knn(
        self, region: BoundingBox, vector: np.ndarray, k: int
    ) -> list[tuple[object, float]]:
        """Top-``k`` most visually similar items *within* ``region``.

        Best-first search on the visual lower bound
        ``max(0, |q - centroid| - radius)``, with spatial pruning at
        every node.  Returns ``(item, feature_distance)`` ascending.
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.shape[0] != self.dimension:
            raise IndexError_(
                f"expected {self.dimension}-D vector, got {vector.shape[0]}-D"
            )
        counter = itertools.count()
        heap: list[tuple[float, int, object, bool]] = []
        if self._root.box is not None:
            heap.append((0.0, next(counter), self._root, False))
        results: list[tuple[object, float]] = []
        pops = 0
        pruned = 0

        def expand(node: _VNode) -> None:
            nonlocal pruned
            if node.leaf:
                kept = [e for e in node.entries if e[0].intersects(region)]
                if kept:
                    # One vectorised distance op per visited leaf, not a
                    # NumPy call per entry.
                    distances = np.linalg.norm(
                        np.vstack([e[1] for e in kept]) - vector, axis=1
                    )
                    for entry, distance in zip(kept, distances):
                        heapq.heappush(
                            heap, (float(distance), next(counter), entry, True)
                        )
            else:
                kept_children = [
                    c
                    for c in node.entries
                    if c.box is not None and c.box.intersects(region)
                ]
                pruned += len(node.entries) - len(kept_children)
                if kept_children:
                    lowers = np.maximum(
                        0.0,
                        np.linalg.norm(
                            np.vstack([c.centroid for c in kept_children]) - vector,
                            axis=1,
                        )
                        - np.array([c.radius for c in kept_children]),
                    )
                    for child, lower in zip(kept_children, lowers):
                        heapq.heappush(heap, (float(lower), next(counter), child, False))

        while heap and len(results) < k:
            pops += 1
            bound, _, payload, is_entry = heapq.heappop(heap)
            if is_entry:
                results.append((payload[2], bound))
                continue
            node = payload
            if node.box is None or not node.box.intersects(region):
                pruned += 1
                continue
            expand(node)
        # Drain the equal-distance frontier: anything whose lower bound
        # still equals the k-th collected distance could legitimately
        # displace a collected tie, so ties at the boundary must be
        # decided by the canonical order, not by heap insertion order.
        if results:
            kth = max(distance for _, distance in results)
            while heap and heap[0][0] <= kth:
                pops += 1
                bound, _, payload, is_entry = heapq.heappop(heap)
                if is_entry:
                    results.append((payload[2], bound))
                    continue
                node = payload
                if node.box is None or not node.box.intersects(region):
                    pruned += 1
                    continue
                expand(node)
        results.sort(key=lambda pair: (pair[1], tie_key(pair[0])))
        results = results[:k]
        _QUERIES.inc()
        _HEAP_POPS.inc(pops)
        _SPATIAL_PRUNED.inc(pruned)
        charge_probes("visual_rtree", pops)
        return results

    def linear_spatial_visual_knn(
        self, region: BoundingBox, vector: np.ndarray, k: int
    ) -> list[tuple[object, float]]:
        """Exact baseline: scan everything, filter by region, sort by
        feature distance (used by the ablation bench)."""
        vector = np.asarray(vector, dtype=np.float64).ravel()
        out = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                kept = [e for e in node.entries if e[0].intersects(region)]
                if kept:
                    distances = np.linalg.norm(
                        np.vstack([e[1] for e in kept]) - vector, axis=1
                    )
                    out.extend(
                        (entry[2], float(distance))
                        for entry, distance in zip(kept, distances)
                    )
            else:
                stack.extend(node.entries)
        out.sort(key=lambda pair: (pair[1], tie_key(pair[0])))
        return out[:k]
