"""Inverted index with tf-idf ranking for textual queries.

Zobel & Moffat-style inverted files (paper ref. [27]) over the manual
keywords and descriptions attached to images.
"""

from __future__ import annotations

import math
import re
import threading
from collections import Counter

from repro.errors import IndexError_
from repro.index.ordering import tie_key
from repro.obs import metrics as _metrics
from repro.obs.accounting import charge_probes

# Probe counters: postings entries touched while scoring (search_all
# delegates its ranking to search_any, so counts land there once).
_QUERIES = _metrics().counter("index.inverted.queries")
_POSTINGS_SCANNED = _metrics().counter("index.inverted.postings_scanned")

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Words too common to carry signal in short keyword strings.
STOPWORDS = frozenset(
    "a an and are as at be by for from has in is it of on or the to with".split()
)


def tokenize(text: str) -> list[str]:
    """Lowercase alphanumeric tokens minus stopwords."""
    return [t for t in _TOKEN_RE.findall(text.lower()) if t not in STOPWORDS]


class InvertedIndex:
    """Document index mapping terms to posting lists with tf counts."""

    def __init__(self) -> None:
        self._postings: dict[str, dict[object, int]] = {}
        self._doc_lengths: dict[object, int] = {}
        # Reentrant: query methods hold it across scoring loops that
        # call locked helpers (_idf) internally.
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        """Pickle support for the shard boundary: every field but the
        (process-local) lock crosses the wire."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._doc_lengths)

    def __contains__(self, doc_id: object) -> bool:
        with self._lock:
            return doc_id in self._doc_lengths

    def add(self, doc_id: object, text: str) -> None:
        """Index a document; adding the same id again extends it."""
        tokens = tokenize(text)
        with self._lock:
            self._doc_lengths[doc_id] = self._doc_lengths.get(doc_id, 0) + len(tokens)
            for term, count in Counter(tokens).items():
                bucket = self._postings.setdefault(term, {})
                bucket[doc_id] = bucket.get(doc_id, 0) + count

    def remove(self, doc_id: object) -> None:
        """Drop a document from every posting list."""
        with self._lock:
            if doc_id not in self._doc_lengths:
                raise IndexError_(f"document {doc_id!r} not indexed")
            del self._doc_lengths[doc_id]
            empty_terms = []
            for term, bucket in self._postings.items():
                bucket.pop(doc_id, None)
                if not bucket:
                    empty_terms.append(term)
            for term in empty_terms:
                del self._postings[term]

    def _idf(self, term: str) -> float:
        with self._lock:
            df = len(self._postings.get(term, ()))
            if df == 0:
                return 0.0
            return math.log(1.0 + len(self._doc_lengths) / df)

    # -- queries ------------------------------------------------------------

    def search_any(self, query: str) -> list[tuple[object, float]]:
        """Documents matching *any* query term, tf-idf ranked."""
        scores: dict[object, float] = {}
        scanned = 0
        # Score under the lock: idf and posting traversal must observe
        # one consistent index state per query, not a half-applied add().
        with self._lock:
            for term in sorted(set(tokenize(query))):
                idf = self._idf(term)
                postings = self._postings.get(term, {})
                scanned += len(postings)
                for doc_id, tf in postings.items():
                    length = max(self._doc_lengths[doc_id], 1)
                    scores[doc_id] = scores.get(doc_id, 0.0) + (tf / length) * idf
        _QUERIES.inc()
        _POSTINGS_SCANNED.inc(scanned)
        charge_probes("inverted", scanned)
        return sorted(scores.items(), key=lambda pair: (-pair[1], str(pair[0])))

    def search_all(self, query: str) -> list[tuple[object, float]]:
        """Documents matching *every* query term (conjunctive), ranked."""
        terms = set(tokenize(query))
        if not terms:
            return []
        with self._lock:
            candidate_sets = [set(self._postings.get(term, {})) for term in terms]
        common = set.intersection(*candidate_sets) if candidate_sets else set()
        ranked = [
            (doc_id, score)
            for doc_id, score in self.search_any(query)
            if doc_id in common
        ]
        return ranked

    def vocabulary(self) -> list[str]:
        """Sorted indexed terms."""
        with self._lock:
            return sorted(self._postings)

    # -- scatter-gather exports ---------------------------------------------

    def doc_count(self) -> int:
        """Documents indexed — the ``N`` of the idf formula."""
        with self._lock:
            return len(self._doc_lengths)

    def term_dfs(self) -> dict[str, int]:
        """Term -> document frequency for every indexed term.

        Shard statistics for the scale-out planner: pruning a shard must
        not change ranking, so the coordinator computes *global* idf
        from the per-shard dfs of **all** shards — including ones the
        match itself prunes.
        """
        with self._lock:
            return {term: len(bucket) for term, bucket in self._postings.items()}

    def postings_for(
        self, terms: list[str]
    ) -> dict[str, list[tuple[object, int, int]]]:
        """Raw postings for ``terms``: term -> ``(doc, tf, doc_length)``
        triples, docs in canonical id order, absent terms omitted.

        The scatter-gather coordinator rescores these with global
        document frequencies, accumulating per-document contributions in
        sorted-term order — the same float-addition sequence
        :meth:`search_any` performs, so sharded tf-idf scores are
        bit-identical to serial ones.
        """
        out: dict[str, list[tuple[object, int, int]]] = {}
        scanned = 0
        with self._lock:
            for term in terms:
                postings = self._postings.get(term)
                if not postings:
                    continue
                scanned += len(postings)
                out[term] = sorted(
                    (
                        (doc, tf, max(self._doc_lengths[doc], 1))
                        for doc, tf in postings.items()
                    ),
                    key=lambda triple: tie_key(triple[0]),
                )
        _QUERIES.inc()
        _POSTINGS_SCANNED.inc(scanned)
        charge_probes("inverted", scanned)
        return out
