"""R-tree spatial index (quadratic split) over lat/lng bounding boxes.

The platform's spatial queries ("search visual data using a referential
spatial point or spatial range") run against this structure; the
oriented and hybrid variants subclass its node machinery.
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import IndexError_
from repro.geo.point import BoundingBox, GeoPoint
from repro.obs import metrics as _metrics
from repro.obs.accounting import charge_probes

# Probe counters shared by every tree instance; incremented once per
# query with locally-accumulated totals so the traversal loop stays hot.
_RANGE_QUERIES = _metrics().counter("index.rtree.range_queries")
_NODE_VISITS = _metrics().counter("index.rtree.node_visits")
_ENTRIES_TESTED = _metrics().counter("index.rtree.entries_tested")
_KNN_QUERIES = _metrics().counter("index.rtree.knn_queries")
_KNN_HEAP_POPS = _metrics().counter("index.rtree.knn_heap_pops")


@dataclass
class _Entry:
    """Leaf payload: a box and an opaque item id."""

    box: BoundingBox
    item: object


@dataclass
class _Node:
    """Tree node: leaves hold entries, internals hold children."""

    leaf: bool
    entries: list = field(default_factory=list)  # _Entry (leaf) or _Node (internal)
    box: BoundingBox | None = None

    def recompute_box(self) -> None:
        boxes = [e.box for e in self.entries]
        if not boxes:
            self.box = None
            return
        box = boxes[0]
        for other in boxes[1:]:
            box = box.union(other)
        self.box = box


def _enlargement(box: BoundingBox, other: BoundingBox) -> float:
    union = box.union(other)
    return union.area - box.area


def box_point_distance_deg(box: BoundingBox, point: GeoPoint) -> float:
    """Euclidean degree-space distance from a point to a box (0 inside).

    Longitude is scaled by cos(lat) so distances are locally isotropic —
    sufficient for nearest-neighbour ordering at city scale.
    """
    scale = max(math.cos(math.radians(point.lat)), 1e-12)
    dlat = max(box.min_lat - point.lat, 0.0, point.lat - box.max_lat)
    dlng = max(box.min_lng - point.lng, 0.0, point.lng - box.max_lng) * scale
    return math.hypot(dlat, dlng)


class RTree:
    """Quadratic-split R-tree with range and k-NN search.

    ``max_entries`` controls the node fan-out; ``min_entries`` defaults
    to 40% of it, the classic Guttman recommendation.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 4:
            raise IndexError_(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = max(2, int(0.4 * max_entries))
        self._root = _Node(leaf=True)
        self._size = 0
        # Guards structural mutation: the API layer shares one tree
        # across worker threads, and a reader racing a node split would
        # see a half-linked tree.
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        """Pickle support for the shard boundary: every field but the
        (process-local) lock crosses the wire."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._size

    # -- insertion ----------------------------------------------------------

    def insert(self, item: object, box: BoundingBox) -> None:
        """Insert an item under its bounding box."""
        entry = _Entry(box=box, item=item)
        with self._lock:
            split = self._insert(self._root, entry)
            if split is not None:
                old_root = self._root
                self._root = _Node(leaf=False, entries=[old_root, split])
                self._root.recompute_box()
            self._size += 1

    def insert_point(self, item: object, point: GeoPoint) -> None:
        """Convenience: insert a degenerate (point) box."""
        self.insert(item, BoundingBox(point.lat, point.lng, point.lat, point.lng))

    @classmethod
    def bulk_load(
        cls, entries: list[tuple[object, BoundingBox]], max_entries: int = 8
    ) -> "RTree":
        """Sort-Tile-Recursive (STR) packing: builds a near-optimally
        packed tree in one pass — the right way to index a batch upload
        (e.g. a whole LASAN collection run) instead of N inserts."""
        tree = cls(max_entries=max_entries)
        if not entries:
            return tree
        leaves = [
            _Entry(box=box, item=item) for item, box in entries
        ]
        nodes = tree._str_pack(leaves, leaf=True)
        while len(nodes) > 1:
            nodes = tree._str_pack(nodes, leaf=False)
        # The tree is still thread-local, but _root/_size are declared
        # lock-guarded — install the packed structure under the lock.
        with tree._lock:
            tree._root = nodes[0]
            tree._size = len(entries)
        return tree

    def _str_pack(self, children: list, leaf: bool) -> list[_Node]:
        """One STR level: sort by lat-center, slice into vertical runs,
        sort each run by lng-center, chunk into nodes."""
        capacity = self.max_entries

        def center(child):
            box = child.box
            return ((box.min_lat + box.max_lat) / 2.0, (box.min_lng + box.max_lng) / 2.0)

        ordered = sorted(children, key=lambda c: center(c)[0])
        n_nodes = math.ceil(len(ordered) / capacity)
        n_slices = max(1, math.ceil(math.sqrt(n_nodes)))
        slice_size = math.ceil(len(ordered) / n_slices) if n_slices else len(ordered)
        nodes: list[_Node] = []
        for start in range(0, len(ordered), slice_size):
            run = sorted(
                ordered[start : start + slice_size], key=lambda c: center(c)[1]
            )
            for chunk_start in range(0, len(run), capacity):
                node = _Node(leaf=leaf, entries=run[chunk_start : chunk_start + capacity])
                node.recompute_box()
                nodes.append(node)
        return nodes

    def delete(self, item: object, box: BoundingBox) -> bool:
        """Remove one entry matching ``(item, box)``; returns whether an
        entry was found.  Underfull nodes are condensed by reinserting
        their remaining entries (Guttman's CondenseTree)."""
        path: list[_Node] = []

        def find(node: _Node) -> _Entry | None:
            if node.box is None or not node.box.intersects(box):
                return None
            path.append(node)
            if node.leaf:
                for entry in node.entries:
                    if entry.item == item and entry.box == box:
                        return entry
                path.pop()
                return None
            for child in node.entries:
                found = find(child)
                if found is not None:
                    return found
            path.pop()
            return None

        with self._lock:
            entry = find(self._root)
            if entry is None:
                return False
            leaf = path[-1]
            leaf.entries.remove(entry)
            self._size -= 1

            orphans: list[_Entry] = []
            for depth in range(len(path) - 1, 0, -1):
                node, parent = path[depth], path[depth - 1]
                if len(node.entries) < self.min_entries:
                    parent.entries.remove(node)
                    stack = [node]
                    while stack:
                        current = stack.pop()
                        if current.leaf:
                            orphans.extend(current.entries)
                        else:
                            stack.extend(current.entries)
                else:
                    node.recompute_box()
            for node in reversed(path):
                node.recompute_box()
            if not self._root.leaf and len(self._root.entries) == 1:
                self._root = self._root.entries[0]
            for orphan in orphans:
                split = self._insert(self._root, orphan)
                if split is not None:
                    old_root = self._root
                    self._root = _Node(leaf=False, entries=[old_root, split])
                    self._root.recompute_box()
            return True

    def _insert(self, node: _Node, entry: _Entry) -> _Node | None:
        if node.leaf:
            node.entries.append(entry)
            node.box = entry.box if node.box is None else node.box.union(entry.box)
            if len(node.entries) > self.max_entries:
                return self._split(node)
            return None
        child = self._choose_subtree(node, entry.box)
        split = self._insert(child, entry)
        if split is not None:
            node.entries.append(split)
        node.box = entry.box if node.box is None else node.box.union(entry.box)
        if len(node.entries) > self.max_entries:
            return self._split(node)
        return None

    def _choose_subtree(self, node: _Node, box: BoundingBox) -> _Node:
        best = None
        best_key = None
        for child in node.entries:
            key = (_enlargement(child.box, box), child.box.area)
            if best_key is None or key < best_key:
                best_key = key
                best = child
        return best

    def _split(self, node: _Node) -> _Node:
        """Guttman quadratic split; mutates ``node`` into group 1 and
        returns a new sibling holding group 2."""
        entries = node.entries
        # Pick seeds: the pair wasting the most area together.
        worst, seeds = -1.0, (0, 1)
        for i, j in itertools.combinations(range(len(entries)), 2):
            union = entries[i].box.union(entries[j].box)
            waste = union.area - entries[i].box.area - entries[j].box.area
            if waste > worst:
                worst, seeds = waste, (i, j)
        group1 = [entries[seeds[0]]]
        group2 = [entries[seeds[1]]]
        box1, box2 = group1[0].box, group2[0].box
        rest = [e for idx, e in enumerate(entries) if idx not in seeds]
        while rest:
            # Honour minimum fill first.
            if len(group1) + len(rest) == self.min_entries:
                group1.extend(rest)
                for e in rest:
                    box1 = box1.union(e.box)
                break
            if len(group2) + len(rest) == self.min_entries:
                group2.extend(rest)
                for e in rest:
                    box2 = box2.union(e.box)
                break
            # Assign the entry with the strongest preference.
            best_idx, best_diff, to_first = 0, -1.0, True
            for idx, e in enumerate(rest):
                d1 = _enlargement(box1, e.box)
                d2 = _enlargement(box2, e.box)
                diff = abs(d1 - d2)
                if diff > best_diff:
                    best_idx, best_diff, to_first = idx, diff, d1 < d2
            chosen = rest.pop(best_idx)
            if to_first:
                group1.append(chosen)
                box1 = box1.union(chosen.box)
            else:
                group2.append(chosen)
                box2 = box2.union(chosen.box)
        node.entries = group1
        node.recompute_box()
        sibling = _Node(leaf=node.leaf, entries=group2)
        sibling.recompute_box()
        return sibling

    # -- queries ------------------------------------------------------------

    def bounds(self) -> BoundingBox | None:
        """Root MBR — the union of every indexed box (``None`` when
        empty).  The shard planner prunes a shard when its bounds miss
        the query region."""
        return self._root.box

    def search_range(self, box: BoundingBox) -> list[object]:
        """Items whose boxes intersect ``box``."""
        out: list[object] = []
        visited = 0
        tested = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            visited += 1
            if node.box is None or not node.box.intersects(box):
                continue
            if node.leaf:
                tested += len(node.entries)
                for entry in node.entries:
                    if entry.box.intersects(box):
                        out.append(entry.item)
            else:
                stack.extend(node.entries)
        _RANGE_QUERIES.inc()
        _NODE_VISITS.inc(visited)
        _ENTRIES_TESTED.inc(tested)
        charge_probes("rtree", visited + tested)
        return out

    def _range_entries(self, box: BoundingBox) -> Iterator[_Entry]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.box is None or not node.box.intersects(box):
                continue
            if node.leaf:
                for entry in node.entries:
                    if entry.box.intersects(box):
                        yield entry
            else:
                stack.extend(node.entries)

    def search_knn(self, point: GeoPoint, k: int) -> list[tuple[object, float]]:
        """The ``k`` nearest items to ``point`` with degree-space
        distances, best-first traversal."""
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        counter = itertools.count()
        heap: list[tuple[float, int, object]] = []
        if self._root.box is not None:
            heap.append((box_point_distance_deg(self._root.box, point), next(counter), self._root))
        results: list[tuple[object, float]] = []
        pops = 0
        while heap and len(results) < k:
            pops += 1
            distance, _, node_or_entry = heapq.heappop(heap)
            if isinstance(node_or_entry, _Entry):
                results.append((node_or_entry.item, distance))
                continue
            node = node_or_entry
            for child in node.entries:
                child_box = child.box
                if child_box is None:
                    continue
                heapq.heappush(
                    heap,
                    (box_point_distance_deg(child_box, point), next(counter), child),
                )
        _KNN_QUERIES.inc()
        _KNN_HEAP_POPS.inc(pops)
        charge_probes("rtree", pops)
        return results

    def height(self) -> int:
        """Tree height (leaf root = 1)."""
        node, height = self._root, 1
        while not node.leaf:
            node = node.entries[0]
            height += 1
        return height

    def all_items(self) -> list[object]:
        """Every stored item (order unspecified)."""
        out = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                out.extend(e.item for e in node.entries)
            else:
                stack.extend(node.entries)
        return out
