"""Uniform grid index over point data.

A simple alternative to the R-tree for uniformly dense city data; the
ablation bench compares the two.
"""

from __future__ import annotations

import threading

from repro.geo.point import BoundingBox, GeoPoint
from repro.geo.regions import RegionGrid


class GridIndex:
    """Point index bucketing items into a fixed lat/lng lattice.

    Out-of-region points land in an overflow bucket scanned by every
    query, so the index never silently drops data.
    """

    def __init__(self, region: BoundingBox, rows: int = 32, cols: int = 32) -> None:
        self._grid = RegionGrid(region, rows, cols)
        self._cells: dict[tuple[int, int], list[tuple[object, GeoPoint]]] = {}
        self._overflow: list[tuple[object, GeoPoint]] = []
        self._size = 0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        """Pickle support for the shard boundary: every field but the
        (process-local) lock crosses the wire."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._size

    def insert(self, item: object, point: GeoPoint) -> None:
        """Index an item at a point."""
        cell = self._grid.cell_of(point)
        with self._lock:
            if cell is None:
                self._overflow.append((item, point))
            else:
                self._cells.setdefault((cell.row, cell.col), []).append((item, point))
            self._size += 1

    def search_range(self, box: BoundingBox) -> list[object]:
        """Items whose point lies inside ``box``."""
        results = []
        for cell in self._grid.cells_intersecting(box):
            for item, point in self._cells.get((cell.row, cell.col), ()):
                if box.contains_point(point):
                    results.append(item)
        for item, point in self._overflow:
            if box.contains_point(point):
                results.append(item)
        return results

    def cell_counts(self) -> dict[tuple[int, int], int]:
        """Occupancy per non-empty cell (coverage heat map input)."""
        return {key: len(bucket) for key, bucket in self._cells.items()}

    def cell_items(self) -> dict[tuple[int, int], list[tuple[object, GeoPoint]]]:
        """Bucket contents per non-empty cell — the geo-tile partitioner
        assigns whole cells to shards."""
        with self._lock:
            return {key: list(bucket) for key, bucket in self._cells.items()}

    def overflow_items(self) -> list[tuple[object, GeoPoint]]:
        """Out-of-region items (the partitioner pins them to shard 0 so
        no data silently drops out of the sharded catalog)."""
        with self._lock:
            return list(self._overflow)
