"""Locality-sensitive hashing for visual similarity search.

p-stable LSH (Datar et al., SoCG 2004 — the paper's ref. [26]): each of
``n_tables`` hash tables applies ``n_projections`` random Gaussian
projections quantised with bucket width ``w``; near vectors collide
with high probability.  Used for the platform's visual queries
("retrieve top-k similar images to the example image or all similar
images using a similarity threshold").
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import IndexError_
from repro.index.ordering import tie_key
from repro.obs import metrics as _metrics
from repro.obs.accounting import charge_probes

# Probe counters: per query, how many table buckets had a collision and
# how many distinct candidates those buckets yielded for exact ranking.
_QUERIES = _metrics().counter("index.lsh.queries")
_BUCKET_HITS = _metrics().counter("index.lsh.bucket_hits")
_CANDIDATES = _metrics().counter("index.lsh.candidates")
_FALLBACK_SCANS = _metrics().counter("index.lsh.fallback_scans")


class LSHIndex:
    """Euclidean LSH over fixed-dimension feature vectors."""

    def __init__(
        self,
        dimension: int,
        n_tables: int = 8,
        n_projections: int = 12,
        bucket_width: float = 0.5,
        seed: int = 0,
    ) -> None:
        if dimension < 1:
            raise IndexError_(f"dimension must be >= 1, got {dimension}")
        if n_tables < 1 or n_projections < 1:
            raise IndexError_("n_tables and n_projections must be >= 1")
        if bucket_width <= 0:
            raise IndexError_(f"bucket_width must be positive, got {bucket_width}")
        self.dimension = dimension
        self.n_tables = n_tables
        self.n_projections = n_projections
        self.bucket_width = bucket_width
        rng = np.random.default_rng(seed)
        self._projections = rng.normal(0.0, 1.0, (n_tables, n_projections, dimension))
        self._offsets = rng.uniform(0.0, bucket_width, (n_tables, n_projections))
        self._tables: list[dict[tuple, list[object]]] = [{} for _ in range(n_tables)]
        self._vectors: dict[object, np.ndarray] = {}
        # Dense mirrors of the vector store for vectorised ranking; the
        # stacked matrix is cached and invalidated on insert.
        self._items: list[object] = []
        self._matrix_rows: list[np.ndarray] = []
        self._row_of: dict[object, int] = {}
        self._matrix_cache: np.ndarray | None = None
        # One lock covers inserts and the lazy matrix build: a query
        # racing an insert must not vstack a half-updated row list.
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        """Pickle support for the shard boundary: every field but the
        (process-local) lock crosses the wire."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._vectors)

    def clone_empty(self) -> "LSHIndex":
        """An empty index sharing this one's exact hash functions.

        Shard slices built from clones produce candidate sets that
        *partition* the parent's: a vector hashes to the same buckets in
        every clone, so the union of per-shard candidates equals the
        serial candidate set — the invariant the scatter-gather
        equivalence proof rests on.
        """
        clone = LSHIndex(
            self.dimension, self.n_tables, self.n_projections, self.bucket_width
        )
        clone._projections = self._projections.copy()
        clone._offsets = self._offsets.copy()
        return clone

    def _check_vector(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.shape[0] != self.dimension:
            raise IndexError_(
                f"expected {self.dimension}-D vector, got {vector.shape[0]}-D"
            )
        return vector

    def _keys(self, vector: np.ndarray) -> list[tuple]:
        # (tables, projections) bucket ids in one shot.
        buckets = np.floor(
            (self._projections @ vector + self._offsets) / self.bucket_width
        ).astype(np.int64)
        return [tuple(row) for row in buckets]

    # -- mutations ----------------------------------------------------------

    def insert(self, item: object, vector: np.ndarray) -> None:
        """Index a feature vector under an opaque item id."""
        vector = self._check_vector(vector)
        keys = self._keys(vector)
        with self._lock:
            if item in self._vectors:
                raise IndexError_(f"item {item!r} already indexed")
            self._vectors[item] = vector
            self._row_of[item] = len(self._items)
            self._items.append(item)
            self._matrix_rows.append(vector)
            self._matrix_cache = None
            for table, key in zip(self._tables, keys):
                table.setdefault(key, []).append(item)

    # -- queries ------------------------------------------------------------

    def _candidates(self, vector: np.ndarray) -> set[object]:
        found: set[object] = set()
        bucket_hits = 0
        for table, key in zip(self._tables, self._keys(vector)):
            bucket = table.get(key)
            if bucket:
                bucket_hits += 1
                found.update(bucket)
        _QUERIES.inc()
        _BUCKET_HITS.inc(bucket_hits)
        _CANDIDATES.inc(len(found))
        charge_probes("lsh", len(found))
        return found

    def query_topk(
        self, vector: np.ndarray, k: int, exhaustive_fallback: bool = True
    ) -> list[tuple[object, float]]:
        """Top-``k`` nearest items by true L2 distance among hash
        candidates, ``(item, distance)`` sorted ascending.

        When the candidate set is smaller than ``k`` and
        ``exhaustive_fallback`` is set, falls back to a linear scan so
        recall never silently collapses (the platform prefers a slower
        exact answer over a wrong one).
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        vector = self._check_vector(vector)
        candidates = self._candidates(vector)
        if exhaustive_fallback and len(candidates) < k:
            _FALLBACK_SCANS.inc()
            with self._lock:
                n_indexed = len(self._vectors)
            charge_probes("lsh", n_indexed)
            return self.linear_topk(vector, k)
        return self._rank(list(candidates), vector, k)

    def topk_with_stats(
        self, vector: np.ndarray, k: int
    ) -> tuple[list[tuple[object, float]], int]:
        """Phase-1 scatter probe: ranked top-``k`` among hash candidates
        plus the candidate-set size, *without* the exhaustive fallback.

        The scatter-gather coordinator sums the per-shard candidate
        counts and triggers the exact fallback globally iff the total is
        below ``k`` — reproducing the serial fallback decision exactly.
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        vector = self._check_vector(vector)
        candidates = self._candidates(vector)
        return self._rank(list(candidates), vector, k), len(candidates)

    def _rank(
        self, items: list[object], vector: np.ndarray, k: int | None
    ) -> list[tuple[object, float]]:
        """Vectorised exact ranking of ``items`` by distance to
        ``vector``, equal distances broken by item id (canonical order —
        see :mod:`repro.index.ordering`)."""
        if not items:
            return []
        rows = np.array([self._row_of[item] for item in items])
        matrix = self._dense_matrix()[rows]
        distances = np.linalg.norm(matrix - vector, axis=1)
        order = sorted(
            range(len(items)),
            key=lambda i: (float(distances[i]), tie_key(items[i])),
        )
        if k is not None:
            order = order[:k]
        return [(items[i], float(distances[i])) for i in order]

    def query_radius(self, vector: np.ndarray, radius: float) -> list[tuple[object, float]]:
        """All hash candidates within true distance ``radius``."""
        if radius < 0:
            raise IndexError_(f"radius must be >= 0, got {radius}")
        vector = self._check_vector(vector)
        ranked = self._rank(list(self._candidates(vector)), vector, k=None)
        return [(item, d) for item, d in ranked if d <= radius]

    def linear_topk(self, vector: np.ndarray, k: int) -> list[tuple[object, float]]:
        """Exact brute-force top-k — the baseline the LSH ablation bench
        compares against."""
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        vector = self._check_vector(vector)
        # Items and matrix must come from one locked snapshot: a
        # concurrent insert between the two reads would leave more
        # items than matrix rows and the sort would index past the end.
        with self._lock:
            if not self._items:
                return []
            items = list(self._items)
            matrix = self._dense_matrix_locked()
        distances = np.linalg.norm(matrix - vector, axis=1)
        order = sorted(
            range(len(items)),
            key=lambda i: (float(distances[i]), tie_key(items[i])),
        )[:k]
        return [(items[i], float(distances[i])) for i in order]

    def _dense_matrix(self) -> np.ndarray:
        with self._lock:
            return self._dense_matrix_locked()

    def _dense_matrix_locked(self) -> np.ndarray:
        if self._matrix_cache is None:
            self._matrix_cache = np.vstack(self._matrix_rows)
        return self._matrix_cache
