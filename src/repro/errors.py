"""Exception hierarchy for the TVDP reproduction.

Every error raised by the library derives from :class:`TVDPError` so
applications can catch platform failures with a single ``except`` clause
while still distinguishing subsystems when they need to.
"""

from __future__ import annotations


class TVDPError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GeoError(TVDPError):
    """Invalid geographic input (latitude/longitude out of range, etc.)."""


class ImagingError(TVDPError):
    """Invalid image data or unsupported imaging operation."""


class FeatureError(TVDPError):
    """Feature-extraction failure (unfitted vocabulary, shape mismatch)."""


class MLError(TVDPError):
    """Machine-learning failure (unfitted model, bad training input)."""


class NotFittedError(MLError):
    """An estimator was used before ``fit`` was called."""


class SchemaError(TVDPError):
    """Database schema violation (unknown column, bad type, missing PK)."""


class IntegrityError(SchemaError):
    """Constraint violation: duplicate primary key or dangling foreign key."""


class QueryError(TVDPError):
    """Malformed or unsupported query."""


class IndexError_(TVDPError):
    """Index-structure failure (dimension mismatch, empty index, etc.)."""


class CrowdError(TVDPError):
    """Spatial-crowdsourcing failure (bad campaign, no such worker)."""


class EdgeError(TVDPError):
    """Edge-computing failure (unknown device, undispatchable model)."""


class APIError(TVDPError):
    """API-layer failure; carries an HTTP-like status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class AuthenticationError(APIError):
    """Missing or invalid API key."""

    def __init__(self, message: str = "invalid or missing API key") -> None:
        super().__init__(401, message)
