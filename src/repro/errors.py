"""Exception hierarchy for the TVDP reproduction.

Every error raised by the library derives from :class:`TVDPError` so
applications can catch platform failures with a single ``except`` clause
while still distinguishing subsystems when they need to.
"""

from __future__ import annotations


class TVDPError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GeoError(TVDPError):
    """Invalid geographic input (latitude/longitude out of range, etc.)."""


class ImagingError(TVDPError):
    """Invalid image data or unsupported imaging operation."""


class FeatureError(TVDPError):
    """Feature-extraction failure (unfitted vocabulary, shape mismatch)."""


class MLError(TVDPError):
    """Machine-learning failure (unfitted model, bad training input)."""


class NotFittedError(MLError):
    """An estimator was used before ``fit`` was called."""


class SchemaError(TVDPError):
    """Database schema violation (unknown column, bad type, missing PK)."""


class IntegrityError(SchemaError):
    """Constraint violation: duplicate primary key or dangling foreign key."""


class QueryError(TVDPError):
    """Malformed or unsupported query."""


class IndexError_(TVDPError):
    """Index-structure failure (dimension mismatch, empty index, etc.)."""


class CrowdError(TVDPError):
    """Spatial-crowdsourcing failure (bad campaign, no such worker)."""


class EdgeError(TVDPError):
    """Edge-computing failure (unknown device, undispatchable model)."""


class ShardError(TVDPError):
    """Scale-out execution failure (shard worker died, bad shard task)."""


class ResilienceError(TVDPError):
    """Resilience-policy failure (retry budget spent, breaker open...)."""


class RetryBudgetExceeded(ResilienceError):
    """A retry policy ran out of attempts or backoff budget.

    ``last_error`` carries the exception the final attempt raised, so
    callers can still see *why* the operation kept failing.
    """

    def __init__(self, message: str, last_error: BaseException | None = None) -> None:
        super().__init__(message)
        self.last_error = last_error


class CircuitOpenError(ResilienceError):
    """A circuit breaker rejected the call without running it."""

    def __init__(self, breaker: str, retry_after_s: float) -> None:
        super().__init__(
            f"circuit {breaker!r} is open; retry in {retry_after_s:.3f}s"
        )
        self.breaker = breaker
        self.retry_after_s = retry_after_s


class CallTimeoutError(ResilienceError):
    """A call exceeded its timeout policy's limit."""

    def __init__(self, limit_s: float, elapsed_s: float) -> None:
        super().__init__(
            f"call exceeded its {limit_s:.3f}s timeout (took {elapsed_s:.3f}s)"
        )
        self.limit_s = limit_s
        self.elapsed_s = elapsed_s


class FaultInjected(ResilienceError):
    """An error scripted by an active :class:`~repro.resilience.FaultPlan`.

    Raised only under fault injection (tests, ``python -m repro
    --chaos``) — production code paths never construct it themselves.
    """

    def __init__(self, site: str, call_index: int) -> None:
        super().__init__(f"injected fault at {site!r} (call #{call_index})")
        self.site = site
        self.call_index = call_index


class APIError(TVDPError):
    """API-layer failure; carries an HTTP-like status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class AuthenticationError(APIError):
    """Missing or invalid API key."""

    def __init__(self, message: str = "invalid or missing API key") -> None:
        super().__init__(401, message)
