"""JSON persistence for the database.

A TVDP deployment would sit on PostgreSQL; for the reproduction the
whole store round-trips through a single JSON document, which keeps
examples self-contained and the on-disk format inspectable.

Saves and loads are *resilient*: both run through the platform's
retry policies and the ``db.save`` / ``db.load`` fault-injection sites
(see :mod:`repro.resilience`).  A save writes to a temp file, reads it
back to verify the JSON survived, and only then atomically replaces the
target — so a torn or corrupted write is detected and retried instead
of destroying the previous good snapshot, and a retried save is
idempotent by construction.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import obs
from repro.errors import FaultInjected, SchemaError
from repro.db.database import Database
from repro.db.schema import Column, ColumnType, ForeignKey, TableSchema
from repro.resilience import Clock, Retry, corrupt, current_clock, inject

_FORMAT_VERSION = 1

#: Fault-injection sites for persistence (see ``repro.resilience``).
SAVE_SITE = "db.save"
LOAD_SITE = "db.load"

#: Errors worth retrying around persistence: injected chaos, filesystem
#: hiccups, and corruption caught by save verification / load parsing.
_PERSIST_TRANSIENT = (FaultInjected, OSError, SchemaError)

_VERIFY_FAILURES = obs.metrics().counter("db.persist.verify_failures")


def _schema_to_dict(schema: TableSchema) -> dict:
    return {
        "name": schema.name,
        "columns": [
            {
                "name": c.name,
                "type": c.type.value,
                "nullable": c.nullable,
                "primary_key": c.primary_key,
                "unique": c.unique,
                "foreign_key": (
                    {"table": c.foreign_key.table, "column": c.foreign_key.column}
                    if c.foreign_key
                    else None
                ),
            }
            for c in schema.columns
        ],
    }


def _schema_from_dict(data: dict) -> TableSchema:
    columns = tuple(
        Column(
            name=c["name"],
            type=ColumnType(c["type"]),
            nullable=c["nullable"],
            primary_key=c["primary_key"],
            unique=c["unique"],
            foreign_key=(
                ForeignKey(c["foreign_key"]["table"], c["foreign_key"]["column"])
                if c.get("foreign_key")
                else None
            ),
        )
        for c in data["columns"]
    )
    return TableSchema(data["name"], columns)


def dump_database(
    db: Database,
    path: str | Path,
    clock: Clock | None = None,
    max_attempts: int = 3,
    seed: int = 0,
) -> None:
    """Write schema + rows + index definitions to a JSON file.

    The document is serialised once, then each attempt writes it to a
    sibling temp file, reads that back to prove the bytes parse, and
    atomically renames over ``path``.  A verification failure (e.g. a
    ``db.save`` corruption fault, or a disk that lied) raises
    :class:`SchemaError` and is retried; ``path`` never holds a partial
    snapshot.
    """
    document = {"version": _FORMAT_VERSION, "tables": []}
    for name in db.table_names():
        table = db.table(name)
        document["tables"].append(
            {
                "schema": _schema_to_dict(table.schema),
                "rows": table.all_rows(),
                "indexes": sorted(table._indexes),
            }
        )
    serialized = json.dumps(document)
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    resolved = current_clock(clock)

    def one_attempt() -> None:
        with obs.span("db.persist.attempt", op="save"):
            inject(SAVE_SITE, resolved)
            text = corrupt(SAVE_SITE, serialized)
            if not isinstance(text, str):
                raise SchemaError("database snapshot corrupted before write")
            tmp.write_text(text)
            try:
                json.loads(tmp.read_text())
            except ValueError as exc:
                _VERIFY_FAILURES.inc()
                tmp.unlink(missing_ok=True)
                raise SchemaError(
                    f"database snapshot failed read-back verification: {exc}"
                ) from exc
            os.replace(tmp, target)

    retry = Retry(
        max_attempts=max_attempts,
        base_delay_s=0.05,
        retry_on=_PERSIST_TRANSIENT,
        seed=seed,
        clock=resolved,
        site=SAVE_SITE,
    )
    with obs.span("db.persist", op="save", tables=len(document["tables"])):
        retry.call(one_attempt)


def load_database(
    path: str | Path,
    clock: Clock | None = None,
    max_attempts: int = 3,
    seed: int = 0,
) -> Database:
    """Rebuild a database from :func:`dump_database` output.

    Reads run through the ``db.load`` fault site and the same retry
    policy as saves — a transient read error or an injected corruption
    gets a fresh read of the (atomically written, hence never partial)
    snapshot.
    """
    resolved = current_clock(clock)

    def one_attempt() -> dict:
        with obs.span("db.persist.attempt", op="load"):
            inject(LOAD_SITE, resolved)
            text = corrupt(LOAD_SITE, Path(path).read_text())
            if not isinstance(text, str):
                raise SchemaError("database snapshot corrupted during read")
            try:
                parsed = json.loads(text)
            except ValueError as exc:
                raise SchemaError(f"database file is not valid JSON: {exc}") from exc
            if not isinstance(parsed, dict):
                raise SchemaError("database file must hold a JSON object")
            return parsed

    retry = Retry(
        max_attempts=max_attempts,
        base_delay_s=0.05,
        retry_on=_PERSIST_TRANSIENT,
        seed=seed,
        clock=resolved,
        site=LOAD_SITE,
    )
    with obs.span("db.persist", op="load"):
        document = retry.call(one_attempt)
        return _build_database(document)


def _build_database(document: dict) -> Database:
    """Rebuild the in-memory database from one parsed snapshot."""
    if document.get("version") != _FORMAT_VERSION:
        raise SchemaError(
            f"unsupported database file version {document.get('version')!r}"
        )
    db = Database()
    # Two passes: create all tables first so FK targets resolve in any order.
    entries = document["tables"]
    pending = list(entries)
    created: set[str] = set()
    while pending:
        progressed = False
        remaining = []
        for entry in pending:
            schema = _schema_from_dict(entry["schema"])
            deps = {
                c.foreign_key.table
                for c in schema.columns
                if c.foreign_key and c.foreign_key.table != schema.name
            }
            if deps <= created:
                db.create_table(schema)
                created.add(schema.name)
                progressed = True
            else:
                remaining.append(entry)
        if not progressed:
            raise SchemaError("circular foreign-key dependencies in database file")
        pending = remaining

    # Rows: insert in dependency order too, using raw table inserts with
    # explicit PKs (the file is trusted to be internally consistent, but
    # we still run FK checks via Database.insert).
    by_name = {entry["schema"]["name"]: entry for entry in entries}
    inserted: set[str] = set()

    def insert_table(name: str) -> None:
        if name in inserted:
            return
        inserted.add(name)
        entry = by_name[name]
        schema = db.table(name).schema
        deps = {
            c.foreign_key.table
            for c in schema.columns
            if c.foreign_key and c.foreign_key.table != name
        }
        for dep in deps:
            insert_table(dep)
        # Self-referencing rows (e.g. augmented images pointing at their
        # source image) must follow their parents, whatever the file order.
        self_fk_columns = [
            c.name
            for c in schema.columns
            if c.foreign_key and c.foreign_key.table == name
        ]
        pk_name = schema.primary_key.name
        rows = list(entry["rows"])
        present: set[int] = set()
        while rows:
            progressed = False
            deferred = []
            for row in rows:
                parents = {
                    row.get(c) for c in self_fk_columns if row.get(c) is not None
                }
                if parents <= present:
                    db.insert(name, row)
                    present.add(row[pk_name])
                    progressed = True
                else:
                    deferred.append(row)
            if not progressed:
                raise SchemaError(
                    f"circular self-references among rows of table {name!r}"
                )
            rows = deferred
        for column in entry.get("indexes", []):
            db.table(name).create_index(column)

    for name in by_name:
        insert_table(name)
    return db
