"""JSON persistence for the database.

A TVDP deployment would sit on PostgreSQL; for the reproduction the
whole store round-trips through a single JSON document, which keeps
examples self-contained and the on-disk format inspectable.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import SchemaError
from repro.db.database import Database
from repro.db.schema import Column, ColumnType, ForeignKey, TableSchema

_FORMAT_VERSION = 1


def _schema_to_dict(schema: TableSchema) -> dict:
    return {
        "name": schema.name,
        "columns": [
            {
                "name": c.name,
                "type": c.type.value,
                "nullable": c.nullable,
                "primary_key": c.primary_key,
                "unique": c.unique,
                "foreign_key": (
                    {"table": c.foreign_key.table, "column": c.foreign_key.column}
                    if c.foreign_key
                    else None
                ),
            }
            for c in schema.columns
        ],
    }


def _schema_from_dict(data: dict) -> TableSchema:
    columns = tuple(
        Column(
            name=c["name"],
            type=ColumnType(c["type"]),
            nullable=c["nullable"],
            primary_key=c["primary_key"],
            unique=c["unique"],
            foreign_key=(
                ForeignKey(c["foreign_key"]["table"], c["foreign_key"]["column"])
                if c.get("foreign_key")
                else None
            ),
        )
        for c in data["columns"]
    )
    return TableSchema(data["name"], columns)


def dump_database(db: Database, path: str | Path) -> None:
    """Write schema + rows + index definitions to a JSON file."""
    document = {"version": _FORMAT_VERSION, "tables": []}
    for name in db.table_names():
        table = db.table(name)
        document["tables"].append(
            {
                "schema": _schema_to_dict(table.schema),
                "rows": table.all_rows(),
                "indexes": sorted(table._indexes),
            }
        )
    Path(path).write_text(json.dumps(document))


def load_database(path: str | Path) -> Database:
    """Rebuild a database from :func:`dump_database` output."""
    document = json.loads(Path(path).read_text())
    if document.get("version") != _FORMAT_VERSION:
        raise SchemaError(
            f"unsupported database file version {document.get('version')!r}"
        )
    db = Database()
    # Two passes: create all tables first so FK targets resolve in any order.
    entries = document["tables"]
    pending = list(entries)
    created: set[str] = set()
    while pending:
        progressed = False
        remaining = []
        for entry in pending:
            schema = _schema_from_dict(entry["schema"])
            deps = {
                c.foreign_key.table
                for c in schema.columns
                if c.foreign_key and c.foreign_key.table != schema.name
            }
            if deps <= created:
                db.create_table(schema)
                created.add(schema.name)
                progressed = True
            else:
                remaining.append(entry)
        if not progressed:
            raise SchemaError("circular foreign-key dependencies in database file")
        pending = remaining

    # Rows: insert in dependency order too, using raw table inserts with
    # explicit PKs (the file is trusted to be internally consistent, but
    # we still run FK checks via Database.insert).
    by_name = {entry["schema"]["name"]: entry for entry in entries}
    inserted: set[str] = set()

    def insert_table(name: str) -> None:
        if name in inserted:
            return
        inserted.add(name)
        entry = by_name[name]
        schema = db.table(name).schema
        deps = {
            c.foreign_key.table
            for c in schema.columns
            if c.foreign_key and c.foreign_key.table != name
        }
        for dep in deps:
            insert_table(dep)
        # Self-referencing rows (e.g. augmented images pointing at their
        # source image) must follow their parents, whatever the file order.
        self_fk_columns = [
            c.name
            for c in schema.columns
            if c.foreign_key and c.foreign_key.table == name
        ]
        pk_name = schema.primary_key.name
        rows = list(entry["rows"])
        present: set[int] = set()
        while rows:
            progressed = False
            deferred = []
            for row in rows:
                parents = {
                    row.get(c) for c in self_fk_columns if row.get(c) is not None
                }
                if parents <= present:
                    db.insert(name, row)
                    present.add(row[pk_name])
                    progressed = True
                else:
                    deferred.append(row)
            if not progressed:
                raise SchemaError(
                    f"circular self-references among rows of table {name!r}"
                )
            rows = deferred
        for column in entry.get("indexes", []):
            db.table(name).create_index(column)

    for name in by_name:
        insert_table(name)
    return db
