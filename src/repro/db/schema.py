"""Relational schema definitions, plus the TVDP schema of paper Fig. 2.

The engine is deliberately small — typed columns, primary keys, foreign
keys, uniqueness — because that is what the paper's data model needs:
images linked to FOVs, scene locations, visual features, annotations,
classification types, and keywords.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """Storage types; ``JSON`` holds any JSON-serialisable value (used
    for feature vectors and bounding boxes)."""

    INTEGER = "integer"
    REAL = "real"
    TEXT = "text"
    BOOLEAN = "boolean"
    JSON = "json"

    def validate(self, value: object) -> object:
        """Coerce/validate a Python value for this column type."""
        if self is ColumnType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected integer, got {value!r}")
            return value
        if self is ColumnType.REAL:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected real, got {value!r}")
            return float(value)
        if self is ColumnType.TEXT:
            if not isinstance(value, str):
                raise SchemaError(f"expected text, got {value!r}")
            return value
        if self is ColumnType.BOOLEAN:
            if not isinstance(value, bool):
                raise SchemaError(f"expected boolean, got {value!r}")
            return value
        return value  # JSON accepts anything serialisable


@dataclass(frozen=True, slots=True)
class ForeignKey:
    """Reference to ``table.column`` enforced on insert and delete."""

    table: str
    column: str


@dataclass(frozen=True, slots=True)
class Column:
    """One column: name, type, and constraints."""

    name: str
    type: ColumnType
    nullable: bool = False
    primary_key: bool = False
    unique: bool = False
    foreign_key: ForeignKey | None = None


@dataclass(frozen=True)
class TableSchema:
    """An ordered set of columns with exactly one integer primary key."""

    name: str
    columns: tuple[Column, ...]
    _by_name: dict[str, Column] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError(f"table {self.name!r} has no columns")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        pks = [c for c in self.columns if c.primary_key]
        if len(pks) != 1:
            raise SchemaError(
                f"table {self.name!r} must have exactly one primary key, has {len(pks)}"
            )
        if pks[0].type is not ColumnType.INTEGER:
            raise SchemaError(f"primary key of {self.name!r} must be INTEGER")
        object.__setattr__(self, "_by_name", {c.name: c for c in self.columns})

    @property
    def primary_key(self) -> Column:
        """The table's primary-key column."""
        return next(c for c in self.columns if c.primary_key)

    def column(self, name: str) -> Column:
        """Column by name; raises on unknown names."""
        if name not in self._by_name:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return self._by_name[name]

    def validate_row(self, row: dict) -> dict:
        """Validate and normalise a row dict (PK may be absent — the
        table auto-assigns it)."""
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown columns for {self.name!r}: {sorted(unknown)}")
        normalized: dict = {}
        for col in self.columns:
            if col.primary_key and col.name not in row:
                continue
            value = row.get(col.name)
            if value is None:
                if not col.nullable and not col.primary_key:
                    raise SchemaError(
                        f"{self.name}.{col.name} is not nullable and missing"
                    )
                normalized[col.name] = None
            else:
                normalized[col.name] = col.type.validate(value)
        return normalized


def tvdp_schema() -> list[TableSchema]:
    """The TVDP database schema (paper Fig. 2).

    Images carry GPS + temporal descriptors inline; FOV, scene location,
    visual features, annotations, and keywords hang off them in
    satellite tables; annotations point at classification types which
    belong to classifications — exactly the paper's entity layout.
    """
    I, R, T, B, J = (
        ColumnType.INTEGER,
        ColumnType.REAL,
        ColumnType.TEXT,
        ColumnType.BOOLEAN,
        ColumnType.JSON,
    )
    return [
        TableSchema(
            "users",
            (
                Column("user_id", I, primary_key=True),
                Column("name", T),
                Column("organization", T, nullable=True),
                Column("role", T),
            ),
        ),
        TableSchema(
            "api_keys",
            (
                Column("key_id", I, primary_key=True),
                Column("user_id", I, foreign_key=ForeignKey("users", "user_id")),
                Column("key", T, unique=True),
                Column("created_at", R),
                Column("active", B),
            ),
        ),
        TableSchema(
            "videos",
            (
                Column("video_id", I, primary_key=True),
                Column("uri", T),
                Column("uploader_id", I, nullable=True, foreign_key=ForeignKey("users", "user_id")),
                Column("description", T, nullable=True),
            ),
        ),
        TableSchema(
            "images",
            (
                Column("image_id", I, primary_key=True),
                Column("uri", T),
                Column("content_hash", T, unique=True),
                Column("lat", R),
                Column("lng", R),
                Column("timestamp_capturing", R),
                Column("timestamp_uploading", R),
                Column("video_id", I, nullable=True, foreign_key=ForeignKey("videos", "video_id")),
                Column("frame_number", I, nullable=True),
                Column("is_augmented", B),
                Column("source_image_id", I, nullable=True, foreign_key=ForeignKey("images", "image_id")),
                Column("augmentation_name", T, nullable=True),
                Column("uploader_id", I, nullable=True, foreign_key=ForeignKey("users", "user_id")),
            ),
        ),
        TableSchema(
            "image_fov",
            (
                Column("fov_id", I, primary_key=True),
                Column("image_id", I, unique=True, foreign_key=ForeignKey("images", "image_id")),
                Column("direction_deg", R),
                Column("angle_deg", R),
                Column("range_m", R),
            ),
        ),
        TableSchema(
            "image_scene_location",
            (
                Column("scene_id", I, primary_key=True),
                Column("image_id", I, unique=True, foreign_key=ForeignKey("images", "image_id")),
                Column("min_lat", R),
                Column("min_lng", R),
                Column("max_lat", R),
                Column("max_lng", R),
            ),
        ),
        TableSchema(
            "image_visual_features",
            (
                Column("feature_id", I, primary_key=True),
                Column("image_id", I, foreign_key=ForeignKey("images", "image_id")),
                Column("extractor_name", T),
                Column("vector", J),
            ),
        ),
        TableSchema(
            "image_content_classification",
            (
                Column("classification_id", I, primary_key=True),
                Column("name", T, unique=True),
                Column("description", T, nullable=True),
                Column("owner_id", I, nullable=True, foreign_key=ForeignKey("users", "user_id")),
            ),
        ),
        TableSchema(
            "image_content_classification_types",
            (
                Column("type_id", I, primary_key=True),
                Column(
                    "classification_id",
                    I,
                    foreign_key=ForeignKey("image_content_classification", "classification_id"),
                ),
                Column("label", T),
            ),
        ),
        TableSchema(
            "image_content_annotation",
            (
                Column("annotation_id", I, primary_key=True),
                Column("image_id", I, foreign_key=ForeignKey("images", "image_id")),
                Column(
                    "type_id",
                    I,
                    foreign_key=ForeignKey("image_content_classification_types", "type_id"),
                ),
                Column("confidence", R),
                Column("source", T),  # 'human' or 'machine'
                Column("bbox", J, nullable=True),
                Column("annotator", T, nullable=True),
                Column("created_at", R),
            ),
        ),
        TableSchema(
            "image_manual_keywords",
            (
                Column("keyword_id", I, primary_key=True),
                Column("image_id", I, foreign_key=ForeignKey("images", "image_id")),
                Column("keyword", T),
            ),
        ),
    ]
