"""Row storage for one table: primary keys, uniqueness, hash indexes."""

from __future__ import annotations

import threading
from typing import Callable, Iterator

from repro.errors import IntegrityError, SchemaError
from repro.db.schema import TableSchema
from repro.obs.accounting import active_ledger, charge


class Table:
    """In-memory row store with auto-increment PK and secondary indexes.

    Rows are plain dicts keyed by column name; the table owns a copy of
    every stored row, so callers can't mutate storage from outside.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        # Concurrent request handlers insert and read through one
        # shared Database; every row/index access holds this lock.
        self._lock = threading.RLock()
        self._rows: dict[int, dict] = {}
        self._next_pk = 1
        self._unique: dict[str, dict[object, int]] = {
            c.name: {} for c in schema.columns if c.unique
        }
        self._indexes: dict[str, dict[object, set[int]]] = {}

    def __getstate__(self) -> dict:
        # Tables cross the shard boundary by pickle; locks are
        # process-local and are recreated on the far side.
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def __contains__(self, pk: int) -> bool:
        with self._lock:
            return pk in self._rows

    # -- secondary indexes --------------------------------------------------

    def create_index(self, column: str) -> None:
        """Build (or rebuild) an equality hash index on ``column``."""
        self.schema.column(column)
        with self._lock:
            index: dict[object, set[int]] = {}
            for pk, row in self._rows.items():
                index.setdefault(row[column], set()).add(pk)
            self._indexes[column] = index

    def _index_add(self, pk: int, row: dict) -> None:
        for column, index in self._indexes.items():
            index.setdefault(row[column], set()).add(pk)

    def _index_remove(self, pk: int, row: dict) -> None:
        for column, index in self._indexes.items():
            bucket = index.get(row[column])
            if bucket is not None:
                bucket.discard(pk)
                if not bucket:
                    del index[row[column]]

    # -- mutations ----------------------------------------------------------

    def insert(self, row: dict) -> int:
        """Insert a row; returns the assigned primary key."""
        normalized = self.schema.validate_row(row)
        pk_name = self.schema.primary_key.name
        with self._lock:
            if pk_name in normalized and normalized[pk_name] is not None:
                pk = normalized[pk_name]
                if pk in self._rows:
                    raise IntegrityError(
                        f"duplicate primary key {pk} in {self.schema.name!r}"
                    )
                self._next_pk = max(self._next_pk, pk + 1)
            else:
                pk = self._next_pk
                self._next_pk += 1
            normalized[pk_name] = pk
            for column, seen in self._unique.items():
                value = normalized.get(column)
                if value is not None and value in seen:
                    raise IntegrityError(
                        f"unique violation on {self.schema.name}.{column}: {value!r}"
                    )
            self._rows[pk] = normalized
            for column, seen in self._unique.items():
                value = normalized.get(column)
                if value is not None:
                    seen[value] = pk
            self._index_add(pk, normalized)
        return pk

    def update(self, pk: int, changes: dict) -> None:
        """Update columns of an existing row."""
        pk_name = self.schema.primary_key.name
        if pk_name in changes:
            raise SchemaError("primary keys are immutable")
        with self._lock:
            if pk not in self._rows:
                raise IntegrityError(f"no row {pk} in {self.schema.name!r}")
            current = dict(self._rows[pk])
            current.update(changes)
            normalized = self.schema.validate_row(current)
            normalized[pk_name] = pk
            for column, seen in self._unique.items():
                value = normalized.get(column)
                if value is not None and seen.get(value, pk) != pk:
                    raise IntegrityError(
                        f"unique violation on {self.schema.name}.{column}: {value!r}"
                    )
            old = self._rows[pk]
            self._index_remove(pk, old)
            for column, seen in self._unique.items():
                if old.get(column) is not None:
                    seen.pop(old[column], None)
                if normalized.get(column) is not None:
                    seen[normalized[column]] = pk
            self._rows[pk] = normalized
            self._index_add(pk, normalized)

    def delete(self, pk: int) -> None:
        """Remove a row by primary key."""
        with self._lock:
            if pk not in self._rows:
                raise IntegrityError(f"no row {pk} in {self.schema.name!r}")
            row = self._rows.pop(pk)
            self._index_remove(pk, row)
            for column, seen in self._unique.items():
                if row.get(column) is not None:
                    seen.pop(row[column], None)

    # -- reads ----------------------------------------------------------------

    def get(self, pk: int) -> dict:
        """Row by primary key (a defensive copy)."""
        with self._lock:
            if pk not in self._rows:
                raise IntegrityError(f"no row {pk} in {self.schema.name!r}")
            charge("rows_scanned", 1)
            return dict(self._rows[pk])

    def find(self, column: str, value: object) -> list[dict]:
        """Rows where ``column == value``; uses a hash index if present.

        Rows-scanned accounting charges what the access path actually
        touched: the index bucket for indexed/unique columns, the whole
        table for the fallback scan.
        """
        self.schema.column(column)
        with self._lock:
            if column in self._indexes:
                rows = [
                    dict(self._rows[pk])
                    for pk in sorted(self._indexes[column].get(value, ()))
                ]
                charge("rows_scanned", len(rows))
                return rows
            if column in self._unique:
                pk = self._unique[column].get(value)
                charge("rows_scanned", 1 if pk is not None else 0)
                return [dict(self._rows[pk])] if pk is not None else []
            charge("rows_scanned", len(self._rows))
            return [
                dict(row) for row in self._rows.values() if row[column] == value
            ]

    def scan(self, predicate: Callable[[dict], bool] | None = None) -> Iterator[dict]:
        """Iterate rows (copies) in primary-key order, optionally filtered."""
        # One ledger lookup per scan, not per row; the generator is
        # consumed in the context that opened it.  The row snapshot is
        # taken under the lock so concurrent inserts never tear the
        # iteration; update() replaces row dicts wholesale, so the
        # snapshotted dicts themselves are stable.
        ledger = active_ledger()
        with self._lock:
            snapshot = [self._rows[pk] for pk in sorted(self._rows)]
        for row in snapshot:
            if ledger is not None:
                ledger.add("rows_scanned", 1)
            if predicate is None or predicate(row):
                yield dict(row)

    def all_rows(self) -> list[dict]:
        """Every row, PK-ordered."""
        return list(self.scan())

    def select(
        self,
        where: dict | None = None,
        order_by: str | None = None,
        descending: bool = False,
        limit: int | None = None,
    ) -> list[dict]:
        """Declarative read: equality filters, ordering, and a limit.

        ``where`` maps column names to required values (conjunctive);
        the most selective indexed/unique column drives the scan.  Rows
        with ``None`` in the ``order_by`` column sort first (ascending).
        """
        if limit is not None and limit < 0:
            raise SchemaError(f"limit must be >= 0, got {limit}")
        where = where or {}
        for column in where:
            self.schema.column(column)
        if order_by is not None:
            self.schema.column(order_by)

        # Drive from an indexed equality predicate when one exists.
        driver = next(
            (
                column
                for column in where
                if column in self._indexes or column in self._unique
            ),
            None,
        )
        if driver is not None:
            candidates = self.find(driver, where[driver])
        else:
            candidates = self.all_rows()
        rows = [
            row
            for row in candidates
            if all(row[column] == value for column, value in where.items())
        ]
        if order_by is not None:
            rows.sort(
                key=lambda row: (row[order_by] is not None, row[order_by]),
                reverse=descending,
            )
        if limit is not None:
            rows = rows[:limit]
        return rows
