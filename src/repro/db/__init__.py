"""Embedded relational engine implementing the TVDP schema (Fig. 2)."""

from repro.db.schema import (
    Column,
    ColumnType,
    ForeignKey,
    TableSchema,
    tvdp_schema,
)
from repro.db.table import Table
from repro.db.database import Database
from repro.db.persistence import dump_database, load_database

__all__ = [
    "ColumnType",
    "ForeignKey",
    "Column",
    "TableSchema",
    "tvdp_schema",
    "Table",
    "Database",
    "dump_database",
    "load_database",
]
