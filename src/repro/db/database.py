"""The database: a set of tables with foreign-key enforcement."""

from __future__ import annotations

from repro.errors import IntegrityError, SchemaError
from repro.db.schema import TableSchema, tvdp_schema
from repro.db.table import Table


class Database:
    """Multi-table store enforcing referential integrity.

    Inserts check that referenced rows exist; deletes are *restricted*
    (refused while referencing rows remain), which is the safe default
    for an archival platform where images anchor satellite records.
    """

    def __init__(self, schemas: list[TableSchema] | None = None) -> None:
        self._tables: dict[str, Table] = {}
        for schema in schemas or []:
            self.create_table(schema)

    @classmethod
    def tvdp(cls) -> "Database":
        """A database with the paper's Fig. 2 schema, with hash indexes
        on the hot foreign keys."""
        db = cls(tvdp_schema())
        db.table("image_visual_features").create_index("image_id")
        db.table("image_visual_features").create_index("extractor_name")
        db.table("image_content_annotation").create_index("image_id")
        db.table("image_content_annotation").create_index("type_id")
        db.table("image_manual_keywords").create_index("image_id")
        db.table("image_fov").create_index("image_id")
        db.table("images").create_index("video_id")
        return db

    # -- schema ---------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Register a new table; FK targets must already exist (self-
        references allowed)."""
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for column in schema.columns:
            fk = column.foreign_key
            if fk is None:
                continue
            if fk.table != schema.name and fk.table not in self._tables:
                raise SchemaError(
                    f"{schema.name}.{column.name} references unknown table {fk.table!r}"
                )
            target_schema = (
                schema if fk.table == schema.name else self._tables[fk.table].schema
            )
            if target_schema.column(fk.column).primary_key is False:
                raise SchemaError(
                    f"foreign keys must reference primary keys; "
                    f"{fk.table}.{fk.column} is not one"
                )
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        """Table handle by name."""
        if name not in self._tables:
            raise SchemaError(f"no such table {name!r}")
        return self._tables[name]

    def table_names(self) -> list[str]:
        """Sorted table names."""
        return sorted(self._tables)

    # -- integrity-checked mutations -------------------------------------------

    def insert(self, table_name: str, row: dict) -> int:
        """Insert with FK existence checks; returns the new PK."""
        table = self.table(table_name)
        normalized = table.schema.validate_row(row)
        for column in table.schema.columns:
            fk = column.foreign_key
            value = normalized.get(column.name)
            if fk is None or value is None:
                continue
            if value not in self.table(fk.table):
                raise IntegrityError(
                    f"{table_name}.{column.name}={value} references missing "
                    f"{fk.table}.{fk.column}"
                )
        return table.insert(normalized)

    def delete(self, table_name: str, pk: int) -> None:
        """Delete with restrict semantics: fails if referenced."""
        self.table(table_name).get(pk)  # existence check
        for other_name, other in self._tables.items():
            for column in other.schema.columns:
                fk = column.foreign_key
                if fk is None or fk.table != table_name:
                    continue
                if other.find(column.name, pk):
                    raise IntegrityError(
                        f"cannot delete {table_name}[{pk}]: referenced by "
                        f"{other_name}.{column.name}"
                    )
        self.table(table_name).delete(pk)

    def delete_cascade(self, table_name: str, pk: int) -> int:
        """Delete a row and, recursively, every row referencing it.
        Returns the number of rows removed."""
        self.table(table_name).get(pk)
        removed = 0
        for other_name, other in list(self._tables.items()):
            for column in other.schema.columns:
                fk = column.foreign_key
                if fk is None or fk.table != table_name:
                    continue
                for row in other.find(column.name, pk):
                    child_pk = row[other.schema.primary_key.name]
                    if other_name == table_name and child_pk == pk:
                        continue
                    removed += self.delete_cascade(other_name, child_pk)
        self.table(table_name).delete(pk)
        return removed + 1

    def row_counts(self) -> dict[str, int]:
        """Table name -> row count (for stats endpoints and tests)."""
        return {name: len(table) for name, table in self._tables.items()}
