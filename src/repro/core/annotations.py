"""Annotation service: human/machine labels as shared knowledge.

This is where TVDP becomes *translational*: "once the classification of
new unlabeled images is done, the results are annotated as an augmented
knowledge of the original images in the database.  Then, it can be
shared and utilized for other independent analysis ... by any
interested parties."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.db.database import Database
from repro.geo.point import GeoPoint
from repro.core.catalog import ClassificationCatalog


@dataclass(frozen=True)
class Annotation:
    """A label attached to an image, with provenance."""

    annotation_id: int
    image_id: int
    classification: str
    label: str
    confidence: float
    source: str
    annotator: str | None
    created_at: float
    bbox: dict | None = None


class AnnotationService:
    """CRUD + query layer over ``image_content_annotation``."""

    def __init__(self, db: Database, catalog: ClassificationCatalog) -> None:
        self._db = db
        self._catalog = catalog

    def annotate(
        self,
        image_id: int,
        classification: str,
        label: str,
        confidence: float = 1.0,
        source: str = "human",
        annotator: str | None = None,
        created_at: float = 0.0,
        bbox: dict | None = None,
    ) -> int:
        """Attach a label to an image; returns the annotation id."""
        if source not in ("human", "machine"):
            raise QueryError(f"source must be human or machine, got {source!r}")
        if not (0.0 <= confidence <= 1.0):
            raise QueryError(f"confidence must be in [0, 1], got {confidence}")
        type_id = self._catalog.type_id(classification, label)
        return self._db.insert(
            "image_content_annotation",
            {
                "image_id": image_id,
                "type_id": type_id,
                "confidence": float(confidence),
                "source": source,
                "bbox": bbox,
                "annotator": annotator,
                "created_at": float(created_at),
            },
        )

    def _to_annotation(self, row: dict) -> Annotation:
        classification, label = self._catalog.label_of_type(row["type_id"])
        return Annotation(
            annotation_id=row["annotation_id"],
            image_id=row["image_id"],
            classification=classification,
            label=label,
            confidence=row["confidence"],
            source=row["source"],
            annotator=row["annotator"],
            created_at=row["created_at"],
            bbox=row["bbox"],
        )

    def annotations_of(self, image_id: int) -> list[Annotation]:
        """Every annotation on one image (all classifications)."""
        rows = self._db.table("image_content_annotation").find("image_id", image_id)
        return [self._to_annotation(row) for row in rows]

    def images_with_label(
        self,
        classification: str,
        labels: tuple[str, ...] | list[str],
        min_confidence: float = 0.0,
        source: str | None = None,
    ) -> dict[int, float]:
        """Image id -> best confidence for any of ``labels``.

        This is the categorical-query primitive, and the translational
        entry point: the homeless study calls it with
        ``("encampment",)`` over the street-cleanliness classification.
        """
        out: dict[int, float] = {}
        for label in labels:
            type_id = self._catalog.type_id(classification, label)
            for row in self._db.table("image_content_annotation").find(
                "type_id", type_id
            ):
                if row["confidence"] < min_confidence:
                    continue
                if source is not None and row["source"] != source:
                    continue
                image_id = row["image_id"]
                out[image_id] = max(out.get(image_id, 0.0), row["confidence"])
        return out

    def label_locations(
        self,
        classification: str,
        label: str,
        min_confidence: float = 0.0,
    ) -> list[tuple[int, GeoPoint]]:
        """Camera locations of images labelled ``label`` — the input to
        downstream spatial studies (tent clustering, hotspot maps)."""
        hits = self.images_with_label(classification, (label,), min_confidence)
        images = self._db.table("images")
        return [
            (image_id, GeoPoint(row["lat"], row["lng"]))
            for image_id in sorted(hits)
            for row in [images.get(image_id)]
        ]

    def label_histogram(self, classification: str) -> dict[str, int]:
        """Label -> annotation count for one classification."""
        out: dict[str, int] = {}
        for label in self._catalog.labels(classification):
            type_id = self._catalog.type_id(classification, label)
            rows = self._db.table("image_content_annotation").find("type_id", type_id)
            out[label] = len(rows)
        return out
