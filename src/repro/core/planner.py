"""Query planning / EXPLAIN support.

``explain`` reports, for any query the platform executes, which access
path serves it (which index, what filter/refine steps), and — in
ANALYZE mode — the actual result count, wall-clock time, and the
observability probe-counter deltas (index node visits, bucket hits,
postings scanned, ...) the execution produced, *per plan node*.
Exposed so non-technical partners can see *why* a query is fast or
slow, in the spirit of the paper's "easy and effective working
environment" — and so the upcoming scale-out planner has per-operator
cost visibility to prune and fan out against.

ANALYZE semantics: the root node's numbers come from executing the
query exactly as the platform would.  A hybrid plan's children are
*additionally* executed stand-alone to attribute rows/time/probes to
each sub-path — EXPLAIN ANALYZE on a hybrid therefore costs roughly
the hybrid plus the sum of its parts, like re-running each arm of a
join under its own EXPLAIN.

When ANALYZE runs inside an active span (e.g. the ``/debug/explain``
route's ``http.request``), the analyzed plan is attached to that span
as its ``plan`` attribute, so slow-span exemplars carry the plan that
produced them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs
from repro.obs import accounting
from repro.errors import QueryError
from repro.geo.point import BoundingBox
from repro.index.inverted import tokenize
from repro.core.costmodel import cost_annotation
from repro.core.platform import TVDP
from repro.core.queries import (
    CategoricalQuery,
    HybridQuery,
    SpatialQuery,
    TemporalQuery,
    TextualQuery,
    VisualQuery,
    query_family,
    query_shape,
)


@dataclass(frozen=True)
class QueryPlan:
    """One node of an access-path description.

    ``rows`` / ``elapsed_ms`` / ``counter_deltas`` are filled only in
    ANALYZE mode; ``shape`` carries the normalized query signature
    (see :func:`repro.core.queries.query_shape`) on the root node.
    """

    query_type: str
    access_path: str
    details: dict = field(default_factory=dict)
    children: tuple["QueryPlan", ...] = ()
    rows: int | None = None
    elapsed_ms: float | None = None
    counter_deltas: dict = field(default_factory=dict)
    #: Ledger-charge deltas of executing this node (ANALYZE only) —
    #: unlike ``counter_deltas`` these are context-scoped, so they are
    #: exact even with concurrent traffic on the process.
    charges: dict = field(default_factory=dict)
    shape: str | None = None
    #: Static cost annotation from :mod:`repro.core.costmodel` —
    #: ``{cost, dominant_counters, note}`` — present on every node whose
    #: family the model covers, in plain EXPLAIN and ANALYZE alike.
    cost: dict | None = None

    def render(self, indent: int = 0) -> str:
        """Human-readable multi-line plan."""
        pad = "  " * indent
        extras = " ".join(f"{k}={v}" for k, v in self.details.items())
        timing = ""
        if self.rows is not None:
            timing = f"  [rows={self.rows}"
            if self.elapsed_ms is not None:
                timing += f" time={self.elapsed_ms:.2f}ms"
            timing += "]"
        lines = [f"{pad}{self.query_type}: {self.access_path} {extras}{timing}".rstrip()]
        if self.cost is not None:
            lines.append(f"{pad}  cost: {self.cost['cost']}")
        if self.counter_deltas:
            probes = " ".join(
                f"{name}={value:g}"
                for name, value in sorted(self.counter_deltas.items())
            )
            lines.append(f"{pad}  probes: {probes}")
        if self.charges:
            charged = " ".join(
                f"{name}={value:g}" for name, value in sorted(self.charges.items())
            )
            lines.append(f"{pad}  charges: {charged}")
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-compatible nested plan (what ``/debug/explain`` serves
        and what ANALYZE attaches to the active span)."""
        return {
            "query_type": self.query_type,
            "access_path": self.access_path,
            "details": dict(self.details),
            "rows": self.rows,
            "elapsed_ms": self.elapsed_ms,
            "counter_deltas": dict(self.counter_deltas),
            "charges": dict(self.charges),
            "shape": self.shape,
            "cost": dict(self.cost) if self.cost is not None else None,
            "children": [child.to_dict() for child in self.children],
        }


@dataclass(frozen=True)
class ShardStats:
    """Pruning statistics one geo-tile shard publishes to the planner.

    Built once at partition time (see :mod:`repro.shard.partition`) and
    held by the coordinator; the scatter stage consults them to skip
    shards that *provably* contribute nothing to a query — the pruning
    predicates below are sound, never lossy, so pruning cannot change a
    result, only the fan-out width.  ``term_dfs`` and ``text_docs``
    additionally feed the distributed tf-idf merge: document frequency
    is summed over **all** shards (pruned ones included), so ranking
    scores stay bit-identical to serial regardless of pruning.
    """

    shard_id: int
    n_images: int
    #: Union MBR of every FOV *and* every camera point in the shard
    #: (augmented images have no FOV row but still carry a camera
    #: point); ``None`` for an empty shard.
    bounds: BoundingBox | None
    #: Documents in the shard's inverted index.
    text_docs: int
    #: term -> document frequency within this shard.
    term_dfs: dict
    #: temporal field -> (min, max) over the shard's images.
    time_ranges: dict
    #: annotation type_id -> annotation count within this shard.
    annotation_types: dict
    #: Extractor names with vectors indexed in this shard.
    extractors: tuple


def shard_survives(stats: ShardStats, query: object, type_ids_of=None) -> bool:
    """Could ``query`` possibly match anything in this shard?

    ``type_ids_of`` maps a :class:`CategoricalQuery` to its resolved
    annotation type ids (resolution needs the catalog, which lives with
    the coordinator); without it categorical queries conservatively
    survive.  Every predicate is an over-approximation: ``False`` means
    *provably empty*, ``True`` merely *cannot rule out*.
    """
    if stats.n_images == 0:
        return False
    if isinstance(query, SpatialQuery):
        return stats.bounds is not None and stats.bounds.intersects(
            query.bounding_region()
        )
    if isinstance(query, TemporalQuery):
        window = stats.time_ranges.get(query.field)
        if window is None:
            return False
        lo = query.start if query.start is not None else float("-inf")
        hi = query.end if query.end is not None else float("inf")
        return window[0] <= hi and lo <= window[1]
    if isinstance(query, TextualQuery):
        terms = set(tokenize(query.text))
        if not terms:
            return False
        if query.match == "all":
            return all(stats.term_dfs.get(term, 0) > 0 for term in terms)
        return any(stats.term_dfs.get(term, 0) > 0 for term in terms)
    if isinstance(query, CategoricalQuery):
        if type_ids_of is None:
            return True
        type_ids = type_ids_of(query)
        return any(stats.annotation_types.get(t, 0) > 0 for t in type_ids)
    if isinstance(query, VisualQuery):
        return query.extractor_name in stats.extractors
    if isinstance(query, HybridQuery):
        parts = list(query.queries)
        spatial = next((q for q in parts if isinstance(q, SpatialQuery)), None)
        visual = next((q for q in parts if isinstance(q, VisualQuery)), None)
        if len(parts) == 2 and spatial is not None and visual is not None:
            # Fused path: one spatial_visual_knn task per shard, so the
            # shard is needed only when both filters could match.
            return shard_survives(stats, spatial, type_ids_of) and shard_survives(
                stats, visual, type_ids_of
            )
        # General hybrids scatter each part independently (top-k parts
        # are order-sensitive to their full candidate pool, so per-part
        # pruning must not be narrowed by sibling parts): the shard is
        # needed when *any* part needs it.
        return any(shard_survives(stats, sub, type_ids_of) for sub in parts)
    raise QueryError(f"cannot prune for query type {type(query).__name__}")


def prune_shards(
    stats: list[ShardStats], query: object, type_ids_of=None
) -> list[ShardStats]:
    """The shards ``query`` must scatter to (ascending shard id)."""
    return sorted(
        (s for s in stats if shard_survives(s, query, type_ids_of)),
        key=lambda s: s.shard_id,
    )


def _plan_node(platform: TVDP, query: object) -> QueryPlan:
    if isinstance(query, SpatialQuery):
        path = "oriented_rtree.search_range"
        if query.point is not None and query.radius_m == 0.0 and query.mode == "scene":
            path = "oriented_rtree.search_point"
        details = {"mode": query.mode}
        if query.direction_deg is not None:
            details["direction_filter"] = (
                f"{query.direction_deg:.0f}deg +/- {query.direction_tolerance_deg:.0f}"
            )
        details["refine"] = "fov_sector" if query.mode == "scene" else "camera_point"
        return QueryPlan("spatial", path, details, cost=cost_annotation("spatial"))
    if isinstance(query, VisualQuery):
        details = {"extractor": query.extractor_name, "k": query.k}
        if query.max_distance is not None:
            details["radius"] = query.max_distance
            return QueryPlan(
                "visual", "lsh.query_radius", details, cost=cost_annotation("visual")
            )
        return QueryPlan(
            "visual",
            "lsh.query_topk (exhaustive fallback)",
            details,
            cost=cost_annotation("visual"),
        )
    if isinstance(query, CategoricalQuery):
        return QueryPlan(
            "categorical",
            "annotation_table.hash_index[type_id]",
            {
                "classification": query.classification,
                "labels": ",".join(query.labels),
                "min_confidence": query.min_confidence,
            },
            cost=cost_annotation("categorical"),
        )
    if isinstance(query, TextualQuery):
        path = "inverted_index." + ("search_all" if query.match == "all" else "search_any")
        return QueryPlan(
            "textual", path, {"terms": query.text}, cost=cost_annotation("textual")
        )
    if isinstance(query, TemporalQuery):
        return QueryPlan(
            "temporal",
            "images.sequential_scan",
            {"field": query.field, "start": query.start, "end": query.end},
            cost=cost_annotation("temporal"),
        )
    if isinstance(query, HybridQuery):
        parts = list(query.queries)
        spatial = next((q for q in parts if isinstance(q, SpatialQuery)), None)
        visual = next((q for q in parts if isinstance(q, VisualQuery)), None)
        if len(parts) == 2 and spatial is not None and visual is not None:
            return QueryPlan(
                "hybrid",
                "visual_rtree.spatial_visual_knn (single-pass dual pruning)",
                {"extractor": visual.extractor_name, "k": visual.k},
                children=(_plan_node(platform, spatial), _plan_node(platform, visual)),
                cost=cost_annotation("hybrid"),
            )
        return QueryPlan(
            "hybrid",
            "intersect(sub-results)",
            {"parts": len(parts)},
            children=tuple(_plan_node(platform, q) for q in parts),
            cost=cost_annotation("hybrid"),
        )
    raise QueryError(f"cannot plan query type {type(query).__name__}")


def _child_queries(query: HybridQuery) -> tuple:
    """Sub-queries in the order their plan-node children appear: the
    fused spatial-visual path normalizes to (spatial, visual)."""
    parts = list(query.queries)
    if len(parts) == 2:
        spatial = next((q for q in parts if isinstance(q, SpatialQuery)), None)
        visual = next((q for q in parts if isinstance(q, VisualQuery)), None)
        if spatial is not None and visual is not None:
            return (spatial, visual)
    return tuple(parts)


def _measured_execute(
    platform: TVDP, query: object
) -> tuple[int, float, dict[str, float], dict[str, float]]:
    """Execute ``query``; (rows, elapsed_ms, probe-counter deltas,
    ledger-charge deltas).

    The counter deltas are whole-registry increments during the run —
    on a quiet process that is exactly the query's own probe work; the
    platform is single-writer per request, so concurrent traffic can
    only over-attribute, never crash.  The charge deltas come from a
    nested ledger scoped to this one execution, so they are exact
    regardless of concurrent traffic; they are replayed into the
    enclosing ledger afterwards so EXPLAIN ANALYZE under an API request
    still bills the requesting principal.  With no enclosing ledger the
    measured charges go straight to the usage table as ``local`` work,
    matching what a bare ``platform.execute`` would have billed.
    """
    registry = obs.metrics()
    outer = accounting.active_ledger()
    before = registry.counter_values()
    # analyze=True reports the real execution time; elapsed_ms is
    # display metadata, not result data.
    start = time.perf_counter()  # devtools: allow[determinism] — see above
    with accounting.ledger_scope() as measured:
        results = platform.execute(query)
    elapsed_ms = (time.perf_counter() - start) * 1000.0  # devtools: allow[determinism] — see above
    after = registry.counter_values()
    deltas = {
        name: value - before.get(name, 0.0)
        for name, value in after.items()
        if value - before.get(name, 0.0)
    }
    charges = dict(measured.charges)
    if outer is not None:
        for kind, amount in charges.items():
            outer.add(kind, amount)
    else:
        # Bare analyze (CLI tour, notebooks): bill the usage table the
        # way a bare execute would — the analyze run *is* load.
        measured.annotate(operation=f"execute.{query_family(query)}")
        obs.usage().absorb(measured)
    return len(results), elapsed_ms, deltas, charges


def _analyze_node(platform: TVDP, query: object, plan: QueryPlan) -> QueryPlan:
    """Re-build ``plan`` with per-node rows/time/probe deltas filled."""
    children = plan.children
    if isinstance(query, HybridQuery) and children:
        children = tuple(
            _analyze_node(platform, sub, child)
            for sub, child in zip(_child_queries(query), plan.children)
        )
    rows, elapsed_ms, deltas, charges = _measured_execute(platform, query)
    return QueryPlan(
        query_type=plan.query_type,
        access_path=plan.access_path,
        details=plan.details,
        children=children,
        rows=rows,
        elapsed_ms=elapsed_ms,
        counter_deltas=deltas,
        charges=charges,
        shape=query_shape(query),
        cost=plan.cost,
    )


def explain(platform: TVDP, query: object, analyze: bool = False) -> QueryPlan:
    """Access-path plan for ``query``; ``analyze=True`` also executes it
    and fills in actual row counts, elapsed times, and probe-counter
    deltas on every node (hybrid children are executed stand-alone to
    attribute their cost — see the module docstring)."""
    plan = _plan_node(platform, query)
    if analyze:
        plan = _analyze_node(platform, query, plan)
    preview = platform.shard_plan_preview(query)
    if preview is not None:
        # On a sharded platform the access-path plan executes inside a
        # scatter-gather: wrap it in the fan-out node so EXPLAIN shows
        # how many shards the pruning predicates eliminated.
        plan = QueryPlan(
            "scatter_gather",
            "shard.scatter_gather",
            details=dict(preview),
            children=(plan,),
        )
    if analyze:
        active = obs.current_span()
        if active is not None:
            active.set("plan", plan.to_dict())
    return plan
