"""Query planning / EXPLAIN support.

``explain`` reports, for any query the platform executes, which access
path serves it (which index, what filter/refine steps), and — in
ANALYZE mode — the actual result count and wall-clock time.  Exposed so
non-technical partners can see *why* a query is fast or slow, in the
spirit of the paper's "easy and effective working environment".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.core.platform import TVDP
from repro.core.queries import (
    CategoricalQuery,
    HybridQuery,
    SpatialQuery,
    TemporalQuery,
    TextualQuery,
    VisualQuery,
)


@dataclass(frozen=True)
class QueryPlan:
    """One node of an access-path description."""

    query_type: str
    access_path: str
    details: dict = field(default_factory=dict)
    children: tuple["QueryPlan", ...] = ()
    rows: int | None = None
    elapsed_ms: float | None = None

    def render(self, indent: int = 0) -> str:
        """Human-readable multi-line plan."""
        pad = "  " * indent
        extras = " ".join(f"{k}={v}" for k, v in self.details.items())
        timing = ""
        if self.rows is not None:
            timing = f"  [rows={self.rows}"
            if self.elapsed_ms is not None:
                timing += f" time={self.elapsed_ms:.2f}ms"
            timing += "]"
        lines = [f"{pad}{self.query_type}: {self.access_path} {extras}{timing}".rstrip()]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def _plan_node(platform: TVDP, query: object) -> QueryPlan:
    if isinstance(query, SpatialQuery):
        path = "oriented_rtree.search_range"
        if query.point is not None and query.radius_m == 0.0 and query.mode == "scene":
            path = "oriented_rtree.search_point"
        details = {"mode": query.mode}
        if query.direction_deg is not None:
            details["direction_filter"] = (
                f"{query.direction_deg:.0f}deg +/- {query.direction_tolerance_deg:.0f}"
            )
        details["refine"] = "fov_sector" if query.mode == "scene" else "camera_point"
        return QueryPlan("spatial", path, details)
    if isinstance(query, VisualQuery):
        details = {"extractor": query.extractor_name, "k": query.k}
        if query.max_distance is not None:
            details["radius"] = query.max_distance
            return QueryPlan("visual", "lsh.query_radius", details)
        return QueryPlan("visual", "lsh.query_topk (exhaustive fallback)", details)
    if isinstance(query, CategoricalQuery):
        return QueryPlan(
            "categorical",
            "annotation_table.hash_index[type_id]",
            {
                "classification": query.classification,
                "labels": ",".join(query.labels),
                "min_confidence": query.min_confidence,
            },
        )
    if isinstance(query, TextualQuery):
        path = "inverted_index." + ("search_all" if query.match == "all" else "search_any")
        return QueryPlan("textual", path, {"terms": query.text})
    if isinstance(query, TemporalQuery):
        return QueryPlan(
            "temporal",
            "images.sequential_scan",
            {"field": query.field, "start": query.start, "end": query.end},
        )
    if isinstance(query, HybridQuery):
        parts = list(query.queries)
        spatial = next((q for q in parts if isinstance(q, SpatialQuery)), None)
        visual = next((q for q in parts if isinstance(q, VisualQuery)), None)
        if len(parts) == 2 and spatial is not None and visual is not None:
            return QueryPlan(
                "hybrid",
                "visual_rtree.spatial_visual_knn (single-pass dual pruning)",
                {"extractor": visual.extractor_name, "k": visual.k},
                children=(_plan_node(platform, spatial), _plan_node(platform, visual)),
            )
        return QueryPlan(
            "hybrid",
            "intersect(sub-results)",
            {"parts": len(parts)},
            children=tuple(_plan_node(platform, q) for q in parts),
        )
    raise QueryError(f"cannot plan query type {type(query).__name__}")


def explain(platform: TVDP, query: object, analyze: bool = False) -> QueryPlan:
    """Access-path plan for ``query``; ``analyze=True`` also executes it
    and fills in the actual row count and elapsed time."""
    plan = _plan_node(platform, query)
    if not analyze:
        return plan
    # analyze=True reports the real execution time; elapsed_ms is
    # display metadata, not result data.
    start = time.perf_counter()  # devtools: allow[determinism] — see above
    results = platform.execute(query)
    elapsed_ms = (time.perf_counter() - start) * 1000.0  # devtools: allow[determinism] — see above
    return QueryPlan(
        query_type=plan.query_type,
        access_path=plan.access_path,
        details=plan.details,
        children=plan.children,
        rows=len(results),
        elapsed_ms=elapsed_ms,
    )
