"""Static cost annotations for the six query families.

Scale-out planning needs to know, per access path, *where the work is*:
which per-item loops dominate, which probe counters measure them, and
what the asymptotic shape of each family's execution is.  This module
is that knowledge, written down as data:

* :data:`COST_MODEL` maps each query family to its access path, a cost
  class, the **dominant probe counters** that measure its hot loops at
  runtime, and the **hot sites** — fully-qualified names of the
  per-item loops static analysis found on that family's execution path.
* :func:`cost_annotation` serves the planner: ``explain()`` attaches
  the entry for a plan node's family so ``/debug/explain`` output can
  be cross-checked against the measured ``counter_deltas`` (an
  annotation whose dominant counters never move under ANALYZE is stale).

The table is deliberately a **pure literal**: the ``hot-path`` pass in
``repro.devtools`` (which may not import this package — the layer DAG
isolates devtools) reads it straight out of the AST with
``ast.literal_eval`` and fails the build when a per-item loop on a
query path is neither listed here nor explicitly allowed inline.
Keeping the literal honest is therefore machine-enforced in both
directions: unlisted hot loops fail the lint, and listed sites that no
longer exist fail it too.
"""

from __future__ import annotations

#: family -> static cost annotation.  Pure literal — parsed by
#: ``repro.devtools.hotpath`` with ``ast.literal_eval``; keep every
#: value a plain str/list/dict literal.
COST_MODEL: dict = {
    "spatial": {
        "access_path": "oriented_rtree.search_range",
        "cost": "O(log n + c) MBR filter + O(c) sector refine",
        "dominant_counters": [
            "index.rtree.range_queries",
            "index.rtree.node_visits",
            "index.rtree.entries_tested",
            "index.oriented.candidates",
        ],
        "hot_sites": [
            "repro.index.rtree.RTree.search_range",
            "repro.index.oriented_rtree.OrientedRTree.search_range",
            "repro.index.oriented_rtree.OrientedRTree.search_point",
            "repro.core.platform.TVDP._run_spatial",
        ],
        "note": (
            "c = MBR candidates; refine is per-candidate FOV geometry, "
            "measured by index.oriented.candidates vs refined_hits"
        ),
    },
    "visual": {
        "access_path": "lsh.query_topk",
        "cost": "O(T*P) hashing + O(c*d) vectorised exact ranking",
        "dominant_counters": [
            "index.lsh.queries",
            "index.lsh.bucket_hits",
            "index.lsh.candidates",
        ],
        "hot_sites": [
            "repro.index.lsh.LSHIndex._candidates",
            "repro.index.lsh.LSHIndex._rank",
            "repro.index.lsh.LSHIndex.linear_topk",
        ],
        "note": (
            "c = distinct bucket candidates; ranking is one NumPy matrix "
            "op, not a per-candidate Python loop (fallback scans are "
            "counted by index.lsh.fallback_scans)"
        ),
    },
    "categorical": {
        "access_path": "annotation_table.hash_index[type_id]",
        "cost": "O(a) postings walk per requested label",
        "dominant_counters": [],
        "hot_sites": [
            "repro.core.platform.TVDP._run_categorical",
            "repro.core.annotations.AnnotationService.images_with_label",
        ],
        "note": (
            "a = annotations per label via the type_id hash index; no "
            "index-level probe counters yet — platform.queries{family="
            "categorical} counts executions"
        ),
    },
    "textual": {
        "access_path": "inverted_index.search_any",
        "cost": "O(sum df(t)) postings scan over query terms",
        "dominant_counters": [
            "index.inverted.queries",
            "index.inverted.postings_scanned",
        ],
        "hot_sites": [
            "repro.index.inverted.InvertedIndex.search_any",
        ],
        "note": "postings_scanned is exactly the per-term loop trip count",
    },
    "temporal": {
        "access_path": "images.sequential_scan",
        "cost": "O(n) full-table predicate scan",
        "dominant_counters": [],
        "hot_sites": [
            "repro.core.platform.TVDP._run_temporal",
            "repro.db.table.Table.scan",
        ],
        "note": (
            "known unindexed path: every image row is tested inside "
            "Table.scan; a timestamp index is the obvious shard-local "
            "optimisation"
        ),
    },
    "hybrid": {
        "access_path": "visual_rtree.spatial_visual_knn",
        "cost": "O(h log n) best-first pops with dual spatial/visual pruning",
        "dominant_counters": [
            "index.visual_rtree.queries",
            "index.visual_rtree.heap_pops",
            "index.visual_rtree.spatial_pruned",
        ],
        "hot_sites": [
            "repro.index.hybrid.VisualRTree.spatial_visual_knn",
            "repro.index.hybrid.VisualRTree.linear_spatial_visual_knn",
            "repro.core.platform.TVDP._run_hybrid",
        ],
        "note": (
            "h = heap pops; leaf entries are ranked with one vectorised "
            "NumPy distance op per visited leaf, not per entry"
        ),
    },
    "shard_partition": {
        "access_path": "shard.partition.partition_catalog",
        "cost": "O(n) slice + per-shard index rebuild, once per catalog version",
        "dominant_counters": [],
        "hot_sites": [
            "repro.core.catalog.ClassificationCatalog.replicate_into",
            "repro.db.table.Table.all_rows",
            "repro.shard.partition._data_region",
            "repro.shard.partition._assign_shards",
            "repro.shard.partition._slice_database",
            "repro.shard.partition._build_indexes",
            "repro.shard.partition._shard_stats",
            "repro.index.hybrid._VNode.refresh",
        ],
        "note": (
            "build-time full scans by design: partitioning slices every "
            "table and rebuilds every index, amortised across queries by "
            "the router's catalog-version fingerprint (no per-query cost)"
        ),
    },
    "shard_scatter_gather": {
        "access_path": "shard.router.ShardRouter.execute_many",
        "cost": "O(s) dispatches + O(sum payload) coordinator merge per query",
        "dominant_counters": [
            "shard.fanouts",
            "shard.shards_pruned",
        ],
        "hot_sites": [
            "repro.shard.router.ShardRouter.execute_many",
            "repro.shard.executor.ScatterGatherExecutor.absorb",
        ],
        "note": (
            "s = surviving shards after pruning; per-shard merge loops "
            "sort only that shard's payload slice (bounded by k for "
            "ranked families), measured by shard.fanouts vs "
            "shard.shards_pruned"
        ),
    },
}


def cost_annotation(family: str) -> dict | None:
    """The static cost annotation for one query family, shaped for a
    plan node: ``{cost, dominant_counters, note}`` (``None`` for
    families the model does not cover)."""
    entry = COST_MODEL.get(family)
    if entry is None:
        return None
    return {
        "cost": entry["cost"],
        "dominant_counters": list(entry["dominant_counters"]),
        "note": entry["note"],
    }
