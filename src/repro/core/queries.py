"""Query model for TVDP data access (paper Section IV-C).

Five primitive query families — spatial, visual, categorical, textual,
temporal — plus hybrid composition.  Queries are plain declarative
objects; the platform (:class:`repro.core.platform.TVDP`) executes them
against its indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import QueryError
from repro.geo.point import BoundingBox, GeoPoint
from repro.imaging.image import Image
from repro.index.ordering import tie_key


@dataclass(frozen=True)
class QueryResult:
    """One hit: the image id and a query-specific relevance score
    (higher is better; 0.0 for unranked boolean matches)."""

    image_id: int
    score: float = 0.0


@dataclass(frozen=True)
class SpatialQuery:
    """Find images by location.

    Exactly one of ``region`` or (``point`` + ``radius_m``) must be
    given.  ``mode='camera'`` matches camera positions; ``mode='scene'``
    matches images whose FOV *depicts* the area.  An optional viewing
    ``direction_deg`` (with tolerance) restricts orientation.
    """

    region: BoundingBox | None = None
    point: GeoPoint | None = None
    radius_m: float | None = None
    mode: str = "scene"
    direction_deg: float | None = None
    direction_tolerance_deg: float = 45.0

    def __post_init__(self) -> None:
        has_region = self.region is not None
        has_point = self.point is not None and self.radius_m is not None
        if has_region == has_point:
            raise QueryError(
                "SpatialQuery needs either a region or a point+radius, not both"
            )
        if self.radius_m is not None and self.radius_m < 0:
            raise QueryError(f"radius must be >= 0, got {self.radius_m}")
        if self.mode not in ("camera", "scene"):
            raise QueryError(f"mode must be 'camera' or 'scene', got {self.mode!r}")

    def bounding_region(self) -> BoundingBox:
        """The query region, or a box around the point+radius."""
        if self.region is not None:
            return self.region
        return BoundingBox.around(self.point, self.radius_m)


@dataclass(frozen=True)
class VisualQuery:
    """Find images similar to an example.

    Provide either a raw ``example`` image (features are extracted with
    ``extractor_name``) or a precomputed ``vector``.  ``k`` limits the
    result count; ``max_distance`` optionally thresholds similarity.
    """

    extractor_name: str
    example: Image | None = None
    vector: np.ndarray | None = None
    k: int = 10
    max_distance: float | None = None

    def __post_init__(self) -> None:
        if (self.example is None) == (self.vector is None):
            raise QueryError("VisualQuery needs exactly one of example or vector")
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")
        if self.max_distance is not None and self.max_distance < 0:
            raise QueryError(f"max_distance must be >= 0, got {self.max_distance}")


@dataclass(frozen=True)
class CategoricalQuery:
    """Find images carrying annotations of a classification label."""

    classification: str
    labels: tuple[str, ...]
    min_confidence: float = 0.0
    source: str | None = None  # 'human', 'machine', or None for both

    def __post_init__(self) -> None:
        if not self.labels:
            raise QueryError("CategoricalQuery needs at least one label")
        if not (0.0 <= self.min_confidence <= 1.0):
            raise QueryError(
                f"min_confidence must be in [0, 1], got {self.min_confidence}"
            )
        if self.source not in (None, "human", "machine"):
            raise QueryError(f"source must be human/machine/None, got {self.source!r}")


@dataclass(frozen=True)
class TextualQuery:
    """Find images by keyword text. ``match='any'`` is disjunctive
    tf-idf ranking; ``'all'`` requires every term."""

    text: str
    match: str = "any"

    def __post_init__(self) -> None:
        if self.match not in ("any", "all"):
            raise QueryError(f"match must be 'any' or 'all', got {self.match!r}")
        if not self.text.strip():
            raise QueryError("TextualQuery needs non-empty text")


@dataclass(frozen=True)
class TemporalQuery:
    """Find images captured (or uploaded) in a time window."""

    start: float | None = None
    end: float | None = None
    field: str = "timestamp_capturing"

    def __post_init__(self) -> None:
        if self.start is None and self.end is None:
            raise QueryError("TemporalQuery needs start and/or end")
        if self.start is not None and self.end is not None and self.start > self.end:
            raise QueryError(f"start {self.start} is after end {self.end}")
        if self.field not in ("timestamp_capturing", "timestamp_uploading"):
            raise QueryError(f"unknown temporal field {self.field!r}")


@dataclass(frozen=True)
class HybridQuery:
    """Conjunction of sub-queries (e.g. spatial + visual).

    Results are the intersection of all components' hits; scores come
    from the *last ranked* component (visual or textual), falling back
    to 0.0 for purely boolean combinations.
    """

    queries: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(self.queries) < 2:
            raise QueryError("HybridQuery needs at least two sub-queries")
        for query in self.queries:
            if isinstance(query, HybridQuery):
                raise QueryError("HybridQuery cannot nest hybrids")


#: Query class -> family name, the label vocabulary shared by span names
#: (``query.<family>``) and the ``platform.queries`` counter.
_QUERY_FAMILIES = {
    SpatialQuery: "spatial",
    VisualQuery: "visual",
    CategoricalQuery: "categorical",
    TextualQuery: "textual",
    TemporalQuery: "temporal",
    HybridQuery: "hybrid",
}


def query_family(query: object) -> str:
    """Family name of a query instance (``'spatial'``, ... ``'hybrid'``)."""
    family = _QUERY_FAMILIES.get(type(query))
    if family is None:
        raise QueryError(f"unsupported query type {type(query).__name__}")
    return family


def query_shape(query: object) -> str:
    """Literal-free normalized signature of a query — its *shape*.

    Two queries share a shape when they exercise the same access path
    with the same structural parameters, regardless of the literals
    (coordinates, text, vectors, timestamps) they carry::

        SpatialQuery(region=A)            -> "spatial(mode=scene,region)"
        SpatialQuery(region=B)            -> "spatial(mode=scene,region)"
        VisualQuery("hsv", vector=v, k=5) -> "visual(extractor=hsv,k=5)"

    The hot-query tracker (``repro.obs.hotqueries``) aggregates the
    workload by these strings; parameters that change the access path
    or its cost class (mode, match, k, radius-vs-topk, label count)
    stay in the shape, parameters that merely move it around do not.
    """
    if isinstance(query, SpatialQuery):
        parts = [f"mode={query.mode}"]
        parts.append("region" if query.region is not None else "point+radius")
        if query.direction_deg is not None:
            parts.append("direction")
        return f"spatial({','.join(parts)})"
    if isinstance(query, VisualQuery):
        parts = [f"extractor={query.extractor_name}", f"k={query.k}"]
        if query.max_distance is not None:
            parts.append("radius")
        return f"visual({','.join(parts)})"
    if isinstance(query, CategoricalQuery):
        parts = [
            f"classification={query.classification}",
            f"labels={len(query.labels)}",
        ]
        if query.min_confidence > 0.0:
            parts.append("min_confidence")
        if query.source is not None:
            parts.append(f"source={query.source}")
        return f"categorical({','.join(parts)})"
    if isinstance(query, TextualQuery):
        return f"textual(match={query.match},terms={len(query.text.split())})"
    if isinstance(query, TemporalQuery):
        bounds = "start+end" if query.start is not None and query.end is not None else (
            "start" if query.start is not None else "end"
        )
        return f"temporal(field={query.field},{bounds})"
    if isinstance(query, HybridQuery):
        inner = "+".join(query_shape(sub) for sub in query.queries)
        return f"hybrid({inner})"
    raise QueryError(f"unsupported query type {type(query).__name__}")


def canonical_ranked(results: list[QueryResult]) -> list[QueryResult]:
    """Canonical result order: descending score, ascending media id.

    Serial runners and the scatter-gather merge both normalise ranked
    results through this one total order, so equal-scored hits cannot
    reorder between a serial scan and a shard merge (or between two
    runs) — the tie-break guarantee the equivalence harness asserts.
    """
    return sorted(results, key=lambda r: (-r.score, tie_key(r.image_id)))


def combine_hybrid(result_sets: list[list[QueryResult]]) -> list[QueryResult]:
    """Conjunction semantics shared by serial and sharded execution:
    intersect the sub-results, score each survivor with the last
    positive sub-score seen, order by (score desc, media id asc).

    Both execution paths call exactly this function on their per-part
    result sets, so a hybrid's merge can never diverge from serial.
    """
    common = set.intersection(*[{r.image_id for r in rs} for rs in result_sets])
    scores: dict[int, float] = {i: 0.0 for i in common}
    for result_set in result_sets:
        for result in result_set:
            if result.image_id in scores and result.score > 0:
                scores[result.image_id] = result.score
    return [
        QueryResult(image_id=i, score=scores[i])
        for i in sorted(common, key=lambda i: (-scores[i], tie_key(i)))
    ]
