"""Whole-platform persistence.

The relational rows already round-trip through :mod:`repro.db`; this
module adds the pixel blobs and rebuilds the in-memory indexes on load,
so a TVDP instance survives process restarts — table stakes for a
platform whose value is accumulated shared knowledge.

Layout on disk (a directory):

* ``db.json``    — the relational store (schema + rows + index defs);
* ``blobs.npz``  — one uint8 array per image id.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import TVDPError
from repro.db.persistence import dump_database, load_database
from repro.geo.fov import FieldOfView
from repro.geo.point import GeoPoint
from repro.imaging.image import Image
from repro.index.lsh import LSHIndex
from repro.index.hybrid import VisualRTree
from repro.core.platform import TVDP

_DB_FILE = "db.json"
_BLOBS_FILE = "blobs.npz"


def save_platform(platform: TVDP, directory: str | Path) -> None:
    """Persist database rows and image blobs under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    dump_database(platform.db, directory / _DB_FILE)
    arrays = {
        str(image_id): image.to_uint8()
        for image_id, image in platform._blobs.items()
    }
    np.savez_compressed(directory / _BLOBS_FILE, **arrays)


def load_platform(directory: str | Path) -> TVDP:
    """Rebuild a platform from :func:`save_platform` output.

    Relational state and blobs are restored exactly; the spatial,
    textual, visual, and hybrid indexes are rebuilt from the rows
    (indexes are derived state, so rebuilding keeps the on-disk format
    simple and forward-compatible).  Feature *extractors* are code, not
    data — re-register them after loading before issuing visual queries
    that pass raw example images.
    """
    directory = Path(directory)
    if not (directory / _DB_FILE).exists():
        raise TVDPError(f"no platform snapshot in {directory}")
    platform = TVDP()
    platform.db = load_database(directory / _DB_FILE)
    # The helper services hold a reference to the db — repoint them.
    from repro.core.annotations import AnnotationService
    from repro.core.catalog import ClassificationCatalog

    platform.catalog = ClassificationCatalog(platform.db)
    platform.annotations = AnnotationService(platform.db, platform.catalog)

    # The platform is not yet published to other threads, but its blob
    # and dedup maps are declared lock-guarded in the concurrency
    # manifest — hydrate them under the same lock the serving paths use.
    with platform._lock:
        with np.load(directory / _BLOBS_FILE) as blobs:
            for key in blobs.files:
                platform._blobs[int(key)] = Image.from_uint8(blobs[key])

        images = platform.db.table("images")
        for row in images.all_rows():
            image_id = row["image_id"]
            if image_id in platform._blobs:
                platform._hash_to_id[row["content_hash"]] = image_id

    # Spatial index from FOV rows.
    for fov_row in platform.db.table("image_fov").all_rows():
        image_row = images.get(fov_row["image_id"])
        platform._spatial.insert(
            fov_row["image_id"],
            FieldOfView(
                camera=GeoPoint(image_row["lat"], image_row["lng"]),
                direction_deg=fov_row["direction_deg"],
                angle_deg=fov_row["angle_deg"],
                range_m=fov_row["range_m"],
            ),
        )

    # Textual index from keywords (one document per image).
    keywords_by_image: dict[int, list[str]] = {}
    for kw_row in platform.db.table("image_manual_keywords").all_rows():
        keywords_by_image.setdefault(kw_row["image_id"], []).append(kw_row["keyword"])
    for image_id, words in keywords_by_image.items():
        platform._text.add(image_id, " ".join(words))

    # Visual + hybrid indexes from stored feature vectors.  The index
    # registries are lock-guarded; the per-index inserts below take each
    # index's own lock, matching the nesting order of the upload path.
    for feature_row in platform.db.table("image_visual_features").all_rows():
        name = feature_row["extractor_name"]
        vector = np.array(feature_row["vector"], dtype=np.float64)
        with platform._lock:
            if name not in platform._lsh:
                platform._lsh[name] = LSHIndex(dimension=vector.shape[0])
                platform._hybrid[name] = VisualRTree(dimension=vector.shape[0])
            lsh, hybrid = platform._lsh[name], platform._hybrid[name]
        image_row = images.get(feature_row["image_id"])
        lsh.insert(feature_row["image_id"], vector)
        hybrid.insert(
            feature_row["image_id"],
            GeoPoint(image_row["lat"], image_row["lng"]),
            vector,
        )
    return platform
