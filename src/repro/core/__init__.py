"""Platform core: the TVDP facade, queries, catalog, annotations."""

from repro.core.queries import (
    CategoricalQuery,
    HybridQuery,
    QueryResult,
    SpatialQuery,
    TemporalQuery,
    TextualQuery,
    VisualQuery,
    query_family,
)
from repro.core.catalog import ClassificationCatalog
from repro.core.annotations import Annotation, AnnotationService
from repro.core.platform import TVDP, UploadReceipt
from repro.core.video import (
    ingest_video,
    select_keyframes_adaptive,
    select_keyframes_uniform,
)
from repro.core.persistence import load_platform, save_platform
from repro.core.planner import QueryPlan, explain

__all__ = [
    "QueryResult",
    "SpatialQuery",
    "VisualQuery",
    "CategoricalQuery",
    "TextualQuery",
    "TemporalQuery",
    "HybridQuery",
    "ClassificationCatalog",
    "Annotation",
    "AnnotationService",
    "TVDP",
    "UploadReceipt",
    "ingest_video",
    "select_keyframes_uniform",
    "select_keyframes_adaptive",
    "save_platform",
    "load_platform",
    "QueryPlan",
    "explain",
    "query_family",
]
