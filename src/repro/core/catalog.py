"""Classification catalog: named label vocabularies shared by users.

The paper's model allows "multiple annotations in correspondence to
multiple visual content classifications designed for different smart
city applications" — street cleanliness, graffiti, road damage, and so
on all coexist over the same images.  The catalog manages those
vocabularies in the ``image_content_classification(_types)`` tables.
"""

from __future__ import annotations

from repro.errors import QueryError, SchemaError
from repro.db.database import Database
from repro.obs.accounting import charge


class ClassificationCatalog:
    """Registry of classification schemes backed by the TVDP database."""

    def __init__(self, db: Database) -> None:
        self._db = db

    def define(
        self,
        name: str,
        labels: list[str],
        description: str = "",
        owner_id: int | None = None,
    ) -> int:
        """Create a classification with its label set; returns its id."""
        if not labels:
            raise QueryError(f"classification {name!r} needs at least one label")
        if len(set(labels)) != len(labels):
            raise QueryError(f"duplicate labels in classification {name!r}")
        classification_id = self._db.insert(
            "image_content_classification",
            {"name": name, "description": description or None, "owner_id": owner_id},
        )
        for label in labels:
            self._db.insert(
                "image_content_classification_types",
                {"classification_id": classification_id, "label": label},
            )
        return classification_id

    def classification_id(self, name: str) -> int:
        """Id of a classification by name."""
        charge("catalog_lookups", 1)
        rows = self._db.table("image_content_classification").find("name", name)
        if not rows:
            raise QueryError(f"unknown classification {name!r}")
        return rows[0]["classification_id"]

    def labels(self, name: str) -> list[str]:
        """Labels of a classification, in definition order."""
        charge("catalog_lookups", 1)
        cid = self.classification_id(name)
        rows = self._db.table("image_content_classification_types").find(
            "classification_id", cid
        )
        return [row["label"] for row in rows]

    def type_id(self, name: str, label: str) -> int:
        """Id of one (classification, label) pair."""
        charge("catalog_lookups", 1)
        cid = self.classification_id(name)
        for row in self._db.table("image_content_classification_types").find(
            "classification_id", cid
        ):
            if row["label"] == label:
                return row["type_id"]
        raise QueryError(f"classification {name!r} has no label {label!r}")

    def replicate_into(self, db: Database) -> None:
        """Copy every classification and its label rows into ``db`` with
        primary keys preserved.

        Shard databases replicate the catalog (it is tiny and read-only
        at query time) so a shard resolves exactly the same type ids as
        the coordinator — categorical tasks ship resolved type ids, and
        annotation rows sliced into the shard keep their FK targets.
        """
        for row in self._db.table("image_content_classification").all_rows():
            db.insert("image_content_classification", dict(row))
        for row in self._db.table("image_content_classification_types").all_rows():
            db.insert("image_content_classification_types", dict(row))

    def names(self) -> list[str]:
        """All classification names, sorted."""
        return sorted(
            row["name"]
            for row in self._db.table("image_content_classification").all_rows()
        )

    def label_of_type(self, type_id: int) -> tuple[str, str]:
        """Inverse lookup: ``(classification_name, label)`` of a type id."""
        charge("catalog_lookups", 1)
        try:
            type_row = self._db.table("image_content_classification_types").get(type_id)
        except SchemaError as exc:
            raise QueryError(f"unknown type id {type_id}") from exc
        classification = self._db.table("image_content_classification").get(
            type_row["classification_id"]
        )
        return classification["name"], type_row["label"]
